"""Tests for sampling and measurement."""

import numpy as np
import pytest

from repro.gates import Gate
from repro.statevector import StateVector, measure_qubit, sample_counts
from repro.statevector.measure import sample_bitstrings


def bell_state() -> StateVector:
    sv = StateVector(2)
    sv.apply_gate(Gate("h", (0,))).apply_gate(Gate("cnot", (0, 1)))
    return sv


class TestSampling:
    def test_deterministic_state_sampling(self):
        sv = StateVector.basis_state(3, 0b110)
        samples = sample_bitstrings(sv, 50, seed=0)
        assert np.all(samples == 0b110)

    def test_bell_sampling_only_00_11(self):
        counts = sample_counts(bell_state(), 500, seed=1)
        assert set(counts) <= {0b00, 0b11}
        assert counts[0b00] + counts[0b11] == 500
        # roughly balanced
        assert abs(counts[0b00] - 250) < 80

    def test_sample_frequencies_match_probs(self):
        sv = StateVector(3)
        sv.apply_gate(Gate("h", (0,)))
        sv.apply_gate(Gate("h", (2,)))
        counts = sample_counts(sv, 4000, seed=3)
        probs = sv.probabilities()
        for outcome, c in counts.items():
            assert c / 4000 == pytest.approx(probs[outcome], abs=0.04)

    def test_invalid_shots(self):
        with pytest.raises(ValueError):
            sample_bitstrings(StateVector(2), 0)

    def test_seeded_reproducible(self):
        sv = bell_state()
        assert np.array_equal(
            sample_bitstrings(sv, 20, seed=7), sample_bitstrings(sv, 20, seed=7)
        )


class TestMeasureQubit:
    def test_collapse_is_normalised(self):
        outcome, collapsed = measure_qubit(bell_state(), 0, seed=5)
        assert collapsed.norm() == pytest.approx(1.0)
        # Bell state: both qubits agree after measurement.
        assert collapsed.probability_of(0b11 if outcome else 0b00) == pytest.approx(1.0)

    def test_input_not_modified(self):
        sv = bell_state()
        before = sv.data.copy()
        measure_qubit(sv, 1, seed=2)
        assert np.array_equal(sv.data, before)

    def test_deterministic_qubit(self):
        sv = StateVector.basis_state(2, 0b10)
        outcome, collapsed = measure_qubit(sv, 1, seed=0)
        assert outcome == 1
        assert collapsed.probability_of(0b10) == pytest.approx(1.0)

    def test_outcome_statistics(self):
        sv = StateVector(1)
        sv.apply_gate(Gate("h", (0,)))
        outcomes = [measure_qubit(sv, 0, seed=s)[0] for s in range(200)]
        assert 60 < sum(outcomes) < 140
