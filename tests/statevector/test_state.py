"""Tests for the StateVector container."""

import numpy as np
import pytest

from repro.gates import Gate
from repro.statevector import StateVector
from repro.util.rng import random_statevector


class TestConstruction:
    def test_zero_state(self):
        sv = StateVector(3)
        assert sv.data[0] == 1.0
        assert np.count_nonzero(sv.data) == 1

    def test_plus_state(self):
        sv = StateVector(4, init="plus")
        assert np.allclose(sv.data, 0.25)
        assert sv.norm() == pytest.approx(1.0)

    def test_from_data(self):
        data = random_statevector(3, 0)
        sv = StateVector(3, data)
        assert np.allclose(sv.data, data)

    def test_bad_data_shape(self):
        with pytest.raises(ValueError, match="shape"):
            StateVector(3, np.zeros(4, dtype=complex))

    def test_bad_init(self):
        with pytest.raises(ValueError, match="init"):
            StateVector(3, init="bell")

    def test_single_precision(self):
        sv = StateVector(3, single_precision=True)
        assert sv.data.dtype == np.complex64

    def test_basis_state(self):
        sv = StateVector.basis_state(3, 0b101)
        assert sv.probability_of(0b101) == 1.0

    def test_from_array(self):
        sv = StateVector.from_array(random_statevector(4, 1))
        assert sv.num_qubits == 4


class TestGateApplication:
    def test_apply_gate_chains(self):
        sv = StateVector(2)
        out = sv.apply_gate(Gate("h", (0,))).apply_gate(Gate("cnot", (0, 1)))
        assert out is sv
        # Bell state
        assert sv.probability_of(0b00) == pytest.approx(0.5)
        assert sv.probability_of(0b11) == pytest.approx(0.5)

    def test_apply_circuit(self, small_supremacy_circuit):
        sv = StateVector(9)
        sv.apply_circuit(small_supremacy_circuit)
        assert sv.norm() == pytest.approx(1.0)


class TestProbabilities:
    def test_full_distribution_sums_to_one(self):
        sv = StateVector(5, random_statevector(5, 2))
        assert sv.probabilities().sum() == pytest.approx(1.0)

    def test_marginal_single_qubit(self):
        sv = StateVector(2)
        sv.apply_gate(Gate("h", (1,)))
        marg = sv.probabilities((1,))
        assert np.allclose(marg, [0.5, 0.5])
        assert np.allclose(sv.probabilities((0,)), [1.0, 0.0])

    def test_marginal_matches_manual(self):
        sv = StateVector(4, random_statevector(4, 3))
        full = sv.probabilities()
        marg = sv.probabilities((2, 0))
        manual = np.zeros(4)
        for idx, p in enumerate(full):
            key = ((idx >> 2) & 1) | (((idx >> 0) & 1) << 1)
            manual[key] += p
        assert np.allclose(marg, manual)

    def test_expectation_bit(self):
        sv = StateVector(2)
        sv.apply_gate(Gate("x", (1,)))
        assert sv.expectation_bit(1) == pytest.approx(1.0)
        assert sv.expectation_bit(0) == pytest.approx(0.0)

    def test_probability_of_range_check(self):
        with pytest.raises(ValueError):
            StateVector(2).probability_of(4)


class TestComparison:
    def test_inner_and_fidelity(self):
        a = StateVector(3, random_statevector(3, 0))
        assert a.fidelity(a) == pytest.approx(1.0)
        b = a.copy()
        b.data *= np.exp(0.3j)
        assert a.equal_up_to_global_phase(b)
        assert not a.allclose(b)

    def test_orthogonal_states(self):
        a = StateVector.basis_state(2, 0)
        b = StateVector.basis_state(2, 3)
        assert a.fidelity(b) == pytest.approx(0.0)

    def test_incompatible_sizes(self):
        with pytest.raises(ValueError, match="mismatch"):
            StateVector(2).inner(StateVector(3))

    def test_copy_is_deep(self):
        a = StateVector(2)
        b = a.copy()
        b.data[0] = 0
        assert a.data[0] == 1.0

    def test_normalize(self):
        sv = StateVector(2, np.array([2, 0, 0, 0], dtype=complex))
        sv.normalize()
        assert sv.norm() == pytest.approx(1.0)

    def test_normalize_zero_rejected(self):
        sv = StateVector(2, np.zeros(4, dtype=complex))
        with pytest.raises(ValueError):
            sv.normalize()
