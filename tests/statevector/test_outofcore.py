"""Tests for the disk-resident state vector."""

import numpy as np
import pytest

from repro.circuit import generate_supremacy_circuit
from repro.statevector import OutOfCoreStateVector, Simulator, StateVector
from repro.util.rng import random_statevector


@pytest.fixture
def disk_state(tmp_path):
    def make(num_qubits=8, local_qubits=5, init="zero"):
        return OutOfCoreStateVector(num_qubits, local_qubits, tmp_path, init=init)

    return make


class TestOutOfCore:
    def test_zero_init(self, disk_state):
        oc = disk_state()
        sv = oc.to_statevector()
        assert sv.probability_of(0) == pytest.approx(1.0)

    def test_spill_roundtrip(self, tmp_path):
        sv = StateVector(8, random_statevector(8, 0))
        oc = OutOfCoreStateVector.from_statevector_on_disk(sv, 5, tmp_path)
        assert oc.to_statevector().allclose(sv, atol=1e-12)

    def test_matches_in_memory_simulation(self, tmp_path):
        n, l = 9, 6
        circ = generate_supremacy_circuit(n, 8, seed=3)
        ref = Simulator(n).run(circ).state
        oc = OutOfCoreStateVector(n, l, tmp_path)
        for gate in circ:
            oc.apply_gate(gate, auto_swap=True)
        assert oc.to_statevector().allclose(ref, atol=1e-9)

    def test_persistence_across_reopen(self, tmp_path):
        sv = StateVector(7, random_statevector(7, 4))
        OutOfCoreStateVector.from_statevector_on_disk(sv, 4, tmp_path)
        # Reopen with init=None: contents must survive.
        oc2 = OutOfCoreStateVector(7, 4, tmp_path, init=None)
        assert oc2.to_statevector().allclose(sv, atol=1e-12)

    def test_swap_roundtrip_on_disk(self, tmp_path):
        sv = StateVector(8, random_statevector(8, 5))
        oc = OutOfCoreStateVector.from_statevector_on_disk(sv, 5, tmp_path)
        oc.swap_all_global_to_local()
        assert oc.to_statevector().allclose(sv, atol=1e-12)
        assert oc.stats.alltoall_steps == 1

    def test_shard_files_exist(self, tmp_path):
        OutOfCoreStateVector(8, 5, tmp_path)
        files = sorted(tmp_path.glob("shard_*.dat"))
        assert len(files) == 8  # 2**(8-5)
        assert files[0].stat().st_size == (1 << 5) * 16

    def test_plus_init(self, disk_state):
        oc = disk_state(init="plus")
        data = oc.to_statevector().data
        assert np.allclose(data, 2.0 ** (-4.0))
