"""Tests for the single-node Simulator."""

import numpy as np
import pytest

from repro.circuit import Circuit, generate_supremacy_circuit
from repro.gates import Gate
from repro.statevector import Simulator


class TestSimulator:
    def test_runs_circuit(self, small_supremacy_circuit):
        result = Simulator(9).run(small_supremacy_circuit)
        assert result.state.norm() == pytest.approx(1.0)
        assert result.wall_seconds > 0

    def test_qubit_count_mismatch(self):
        with pytest.raises(ValueError, match="qubits"):
            Simulator(4).run(Circuit(5))

    def test_plus_init_equals_h_layer(self):
        """The Sec. 3.6 shortcut: plus-init == applying the H layer."""
        circ = generate_supremacy_circuit(9, 6, seed=0)
        with_h = Simulator(9).run(circ).state
        stripped = Circuit(9, circ.gates[9:])
        shortcut = Simulator(9, initial_state="plus").run(stripped).state
        assert shortcut.allclose(with_h, atol=1e-10)

    def test_cost_accounting(self):
        circ = Circuit(4, [Gate("h", (0,)), Gate("cz", (0, 1)), Gate("t", (2,))])
        result = Simulator(4).run(circ)
        assert result.cost.total_calls == 3
        assert result.cost.diagonal_calls == 2  # cz and t
        assert result.gflops > 0

    def test_incremental_state_reuse(self):
        circ = generate_supremacy_circuit(9, 6, seed=1)
        half = len(circ) // 2
        sim = Simulator(9)
        full = sim.run(circ).state
        staged = sim.run(circ[:half]).state
        sim.run(circ[half:], state=staged)
        assert staged.allclose(full, atol=1e-10)

    def test_strategy_override(self, small_supremacy_circuit):
        a = Simulator(9, strategy="reference").run(small_supremacy_circuit).state
        b = Simulator(9, strategy="auto").run(small_supremacy_circuit).state
        assert a.allclose(b, atol=1e-9)

    def test_single_precision_run(self, small_supremacy_circuit):
        result = Simulator(9, single_precision=True).run(small_supremacy_circuit)
        assert result.state.data.dtype == np.complex64
        assert result.state.norm() == pytest.approx(1.0, abs=1e-5)
