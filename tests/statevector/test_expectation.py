"""Tests for Pauli-string expectation values."""

import pytest

from repro.gates import Gate
from repro.statevector import StateVector
from repro.statevector.expectation import PauliString, expectation_value
from repro.util.rng import random_statevector


class TestPauliString:
    def test_from_label(self):
        p = PauliString.from_label("Z0 X3", coefficient=0.5)
        assert p.factors == {0: "Z", 3: "X"}
        assert p.coefficient == 0.5

    def test_identity_dropped(self):
        assert PauliString({0: "I", 1: "Z"}).factors == {1: "Z"}

    def test_is_diagonal(self):
        assert PauliString.from_label("Z0 Z4").is_diagonal
        assert not PauliString.from_label("Z0 X4").is_diagonal

    def test_bad_letter(self):
        with pytest.raises(ValueError):
            PauliString({0: "W"})

    def test_bad_label(self):
        with pytest.raises(ValueError):
            PauliString.from_label("Zx")
        with pytest.raises(ValueError):
            PauliString.from_label("Z0 X0")

    def test_repr(self):
        assert "Z0" in repr(PauliString({0: "Z"}))


class TestExpectationValue:
    def test_z_on_basis_states(self):
        assert expectation_value(
            StateVector.basis_state(2, 0b00), PauliString({0: "Z"})
        ) == pytest.approx(1.0)
        assert expectation_value(
            StateVector.basis_state(2, 0b01), PauliString({0: "Z"})
        ) == pytest.approx(-1.0)

    def test_x_on_plus_state(self):
        sv = StateVector(1)
        sv.apply_gate(Gate("h", (0,)))
        assert expectation_value(sv, PauliString({0: "X"})) == pytest.approx(1.0)
        assert expectation_value(sv, PauliString({0: "Z"})) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_zz_correlation_of_bell_pair(self):
        bell = StateVector(2)
        bell.apply_gate(Gate("h", (0,))).apply_gate(Gate("cnot", (0, 1)))
        assert expectation_value(
            bell, PauliString.from_label("Z0 Z1")
        ) == pytest.approx(1.0)
        assert expectation_value(
            bell, PauliString.from_label("X0 X1")
        ) == pytest.approx(1.0)
        assert expectation_value(bell, PauliString({0: "Z"})) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_identity_returns_coefficient(self):
        sv = StateVector(3, random_statevector(3, 0))
        assert expectation_value(sv, PauliString({}, coefficient=2.5)) == 2.5

    def test_coefficient_scales(self):
        sv = StateVector.basis_state(1, 0)
        assert expectation_value(
            sv, PauliString({0: "Z"}, coefficient=-3.0)
        ) == pytest.approx(-3.0)

    def test_diagonal_matches_dense_path(self, rng):
        """The Z-only fast path must equal the scratch-copy route."""
        sv = StateVector(6, random_statevector(6, 4))
        diag = PauliString.from_label("Z1 Z4")
        fast = expectation_value(sv, diag)
        # Force the generic path by computing via matrices directly.
        scratch = sv.copy()
        for q in (1, 4):
            scratch.apply_gate(Gate("z", (q,)))
        assert fast == pytest.approx(sv.inner(scratch).real)

    def test_expectation_bounded(self, rng):
        sv = StateVector(6, random_statevector(6, 5))
        for label in ("Z0", "X3 Y5", "Z0 Z1 Z2", "Y4"):
            value = expectation_value(sv, PauliString.from_label(label))
            assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="qubit 5"):
            expectation_value(StateVector(3), PauliString({5: "Z"}))
