"""Tests for QFT emulation (the paper's related-work shortcut [7])."""

import numpy as np
import pytest

from repro.emulation import (
    apply_qft_emulated,
    apply_qft_gates,
    qft_circuit,
    qft_matrix,
)
from repro.statevector import StateVector
from repro.util.rng import random_statevector


class TestQftMatrix:
    def test_unitary(self):
        for n in (1, 2, 4):
            f = qft_matrix(n)
            assert np.allclose(f.conj().T @ f, np.eye(1 << n), atol=1e-10)

    def test_two_qubit_values(self):
        f = qft_matrix(1)
        assert np.allclose(f, np.array([[1, 1], [1, -1]]) / np.sqrt(2))

    def test_size_guard(self):
        with pytest.raises(ValueError):
            qft_matrix(13)


class TestQftCircuit:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_circuit_equals_matrix(self, n):
        assert np.allclose(qft_circuit(n).unitary(), qft_matrix(n), atol=1e-10)

    def test_gate_count(self):
        n = 6
        assert len(qft_circuit(n)) == n * (n + 1) // 2 + n // 2


class TestEmulation:
    @pytest.mark.parametrize("n", [2, 4, 7, 10])
    def test_fft_matches_gates(self, n):
        """The headline property: FFT emulation == gate-by-gate QFT."""
        data = random_statevector(n, n)
        gates = StateVector(n, data.copy())
        apply_qft_gates(gates)
        fft = StateVector(n, data.copy())
        apply_qft_emulated(fft)
        assert fft.allclose(gates, atol=1e-9)

    def test_qft_of_zero_state_is_uniform(self):
        state = StateVector(4)
        apply_qft_emulated(state)
        assert np.allclose(state.data, 0.25)

    def test_emulation_preserves_norm(self):
        state = StateVector(8, random_statevector(8, 1))
        apply_qft_emulated(state)
        assert state.norm() == pytest.approx(1.0)

    def test_inverse_roundtrip(self):
        state = StateVector(6, random_statevector(6, 2))
        original = state.copy()
        apply_qft_emulated(state)
        # inverse QFT = conjugate-input trick: conj -> QFT -> conj
        state.data[:] = np.conj(state.data)
        apply_qft_emulated(state)
        state.data[:] = np.conj(state.data)
        assert state.allclose(original, atol=1e-9)

    def test_emulation_faster_than_gates(self):
        """The point of emulation: asymptotically fewer operations.
        At n = 12 the FFT route must already win wall-clock."""
        import time

        n = 12
        data = random_statevector(n, 0)
        t0 = time.perf_counter()
        apply_qft_gates(StateVector(n, data.copy()))
        gate_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(5):
            apply_qft_emulated(StateVector(n, data.copy()))
        fft_time = (time.perf_counter() - t0) / 5
        assert fft_time < gate_time
