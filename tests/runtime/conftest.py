"""Shared workloads for the runtime-engine tests."""

import pytest

from repro.circuit import generate_supremacy_circuit
from repro.distributed.checkpoint import CheckpointManager
from repro.runtime import ExecutionEngine
from repro.scheduling import SchedulerConfig, schedule_circuit

N, L = 8, 5


def small_schedule(seed, *, depth=8):
    """An 8-qubit, 8-rank schedule with at least one swap."""
    circuit = generate_supremacy_circuit(N, depth, seed=seed)
    schedule = schedule_circuit(
        circuit, SchedulerConfig(local_qubits=L, kmax=3, seed=seed + 1)
    )
    assert schedule.num_swaps >= 1
    return schedule


def initial_state(schedule):
    """A fresh state initialised exactly as the engine's default."""
    return CheckpointManager.initial_state_for(schedule)


@pytest.fixture(scope="package")
def schedule():
    """The shared small schedule most tests run."""
    return small_schedule(3)


@pytest.fixture(scope="package")
def reference(schedule):
    """Fault-free raw-op final amplitudes of the shared schedule."""
    result = ExecutionEngine(schedule, use_plan=False).run()
    return result.state.to_statevector().data.copy()
