"""Composition-matrix tests for the runtime engine.

Every subset of {plan, trace, sanitize, faults, checkpoint} must produce
identical final amplitudes, and every traced combination must produce an
identical ``ExecutionTrace.signature()`` (modulo the extra ``fault``
events injected combinations add).
"""

import itertools

import numpy as np
import pytest

from repro.resilience import FaultPlan, FaultSpec, swap_op_indices
from repro.runtime import (
    CheckpointLayer,
    ExecutionEngine,
    FaultLayer,
    IntegrityLayer,
    RetryPolicy,
    SanitizerLayer,
    TracingLayer,
)
from repro.staticcheck import ShardSanitizer
from repro.telemetry import Telemetry

from tests.runtime.conftest import small_schedule


def _transient_plan(schedule):
    swap = swap_op_indices(schedule)[0]
    return FaultPlan(
        seed=1, faults=(FaultSpec(op_index=swap, kind="transient", times=2),)
    )


def _run_combo(
    schedule,
    ckpt_dir,
    *,
    use_plan,
    trace,
    sanitize,
    faults,
    checkpoint,
):
    """One engine run with exactly the requested layer subset."""
    no_sleep = lambda _s: None  # noqa: E731
    layers = []
    telemetry = Telemetry.enabled() if trace else None
    if trace:
        layers.append(TracingLayer(telemetry))
    if checkpoint:
        layers.append(CheckpointLayer(ckpt_dir, every=3))
    if faults:
        layers.append(FaultLayer(_transient_plan(schedule), sleep=no_sleep))
    if sanitize:
        layers.append(SanitizerLayer(ShardSanitizer()))
    engine = ExecutionEngine(
        schedule,
        use_plan=use_plan,
        layers=layers,
        policy=RetryPolicy() if faults else None,
        sleep=no_sleep,
    )
    return engine.run()


_MATRIX = list(itertools.product([False, True], repeat=5))


class TestCompositionMatrix:
    @pytest.mark.parametrize(
        "use_plan,trace,sanitize,faults,checkpoint", _MATRIX
    )
    def test_subset_matches_reference(
        self,
        tmp_path,
        schedule,
        reference,
        use_plan,
        trace,
        sanitize,
        faults,
        checkpoint,
    ):
        result = _run_combo(
            schedule,
            tmp_path / "ckpt",
            use_plan=use_plan,
            trace=trace,
            sanitize=sanitize,
            faults=faults,
            checkpoint=checkpoint,
        )
        amps = result.state.to_statevector().data
        # Raw-op combos are bit-exact with the raw reference; planned
        # combos reorder float ops (fused diagonals) so are allclose,
        # and bit-exact against the bare planned run.
        if use_plan:
            assert np.allclose(amps, reference)
            bare = ExecutionEngine(schedule, use_plan=True).run()
            assert np.array_equal(
                amps, bare.state.to_statevector().data
            )
        else:
            assert np.array_equal(amps, reference)

    def test_traced_signatures_identical_across_matrix(
        self, tmp_path, schedule
    ):
        base = None
        for i, (use_plan, sanitize, faults, checkpoint) in enumerate(
            itertools.product([False, True], repeat=4)
        ):
            result = _run_combo(
                schedule,
                tmp_path / f"ckpt-{i}",
                use_plan=use_plan,
                trace=True,
                sanitize=sanitize,
                faults=faults,
                checkpoint=checkpoint,
            )
            signature = result.trace.signature()
            op_events = [e for e in signature if e[0] != "fault"]
            if base is None:
                base = op_events
            # The op-event stream is identical in every combination;
            # fault combinations add their (deterministic) fault events
            # on top.
            assert op_events == base
            if faults:
                assert len(signature) > len(op_events)
            else:
                assert signature == base

    def test_fault_events_are_deterministic(self, tmp_path, schedule):
        runs = [
            _run_combo(
                schedule,
                tmp_path / f"ckpt-{i}",
                use_plan=False,
                trace=True,
                sanitize=False,
                faults=True,
                checkpoint=True,
            ).trace.signature()
            for i in range(2)
        ]
        assert runs[0] == runs[1]


class TestCrashRecoveryComposition:
    @pytest.mark.parametrize("use_plan", [False, True])
    def test_crash_with_checkpoint_resume_is_bit_exact(
        self, tmp_path, schedule, use_plan, reference
    ):
        no_sleep = lambda _s: None  # noqa: E731
        swap = swap_op_indices(schedule)[-1]
        plan = FaultPlan(
            seed=2, faults=(FaultSpec(op_index=swap, kind="crash"),)
        )
        telemetry = Telemetry.enabled()
        engine = ExecutionEngine(
            schedule,
            use_plan=use_plan,
            layers=[
                TracingLayer(telemetry, mode="resilient", trace_scope="run"),
                CheckpointLayer(tmp_path / "ckpt", every=2, resume=True),
                FaultLayer(plan, sleep=no_sleep),
                IntegrityLayer("swap"),
            ],
            policy=RetryPolicy(),
            sleep=no_sleep,
        )
        result = engine.run()
        assert result.report.restarts == 1
        bare = ExecutionEngine(schedule, use_plan=use_plan).run()
        assert np.array_equal(
            result.state.to_statevector().data,
            bare.state.to_statevector().data,
        )
        assert np.allclose(result.state.to_statevector().data, reference)
        assert any(e.kind == "fault" for e in result.trace.events)


class TestSeedSweep:
    @pytest.mark.parametrize("seed", range(20))
    def test_full_stack_matches_bare_plan_run(self, tmp_path, seed):
        """Property sweep: the full layer stack never changes the math."""
        no_sleep = lambda _s: None  # noqa: E731
        schedule = small_schedule(seed)
        bare = ExecutionEngine(schedule, use_plan=True).run()
        stacked = ExecutionEngine(
            schedule,
            use_plan=True,
            layers=[
                TracingLayer(Telemetry.enabled()),
                CheckpointLayer(tmp_path / "ckpt", every=4),
                FaultLayer(_transient_plan(schedule), sleep=no_sleep),
                SanitizerLayer(ShardSanitizer()),
            ],
            policy=RetryPolicy(),
            sleep=no_sleep,
        ).run()
        assert np.array_equal(
            stacked.state.to_statevector().data,
            bare.state.to_statevector().data,
        )
        # And the traced signature matches a plain traced raw run, op
        # for op, once the injected fault events are filtered out.
        traced = ExecutionEngine(
            schedule,
            use_plan=False,
            layers=[TracingLayer(Telemetry.enabled())],
        ).run()
        stacked_ops = [
            e for e in stacked.trace.signature() if e[0] != "fault"
        ]
        assert stacked_ops == traced.trace.signature()
