"""Pipelined execution: composition, parity, metrics, cleanup.

The :class:`~repro.runtime.PipelineLayer` is pure warm-up — it may move
msync/table work in time but never change a byte of state, a span, or a
``plan.cache.*`` counter.  These tests pin that contract against every
layer combination and both storage backends.
"""

import itertools
import threading

import numpy as np
import pytest

from repro.kernels.tables import GATHER_CACHE
from repro.runtime import (
    CheckpointLayer,
    ExecutionEngine,
    PipelineLayer,
    SanitizerLayer,
    TracingLayer,
)
from repro.statevector.outofcore import OutOfCoreStateVector
from repro.staticcheck import ShardSanitizer
from repro.telemetry import FlightRecorder, Telemetry

from tests.runtime.conftest import N, L, small_schedule


def _no_pipeline_threads():
    return not any(
        t.name.startswith("repro-pipeline") for t in threading.enumerate()
    )


def _run_piped(
    schedule,
    ckpt_dir,
    *,
    use_plan,
    trace,
    sanitize,
    checkpoint,
    state=None,
    depth=2,
):
    """One engine run with a pipeline layer plus the requested subset."""
    layers = []
    telemetry = Telemetry.enabled() if trace else None
    if trace:
        layers.append(TracingLayer(telemetry))
    layers.append(PipelineLayer(depth=depth))
    if checkpoint:
        layers.append(CheckpointLayer(ckpt_dir, every=3))
    if sanitize:
        layers.append(SanitizerLayer(ShardSanitizer()))
    engine = ExecutionEngine(schedule, use_plan=use_plan, layers=layers)
    return engine.run(state=state)


class TestPipelineComposition:
    """ISSUE acceptance: --pipeline composes with every other layer."""

    @pytest.mark.parametrize(
        "use_plan,trace,sanitize,checkpoint",
        list(itertools.product([False, True], repeat=4)),
    )
    def test_matches_reference(
        self, tmp_path, schedule, reference, use_plan, trace, sanitize, checkpoint
    ):
        result = _run_piped(
            schedule,
            tmp_path / "ckpt",
            use_plan=use_plan,
            trace=trace,
            sanitize=sanitize,
            checkpoint=checkpoint,
        )
        amps = result.state.to_statevector().data
        if use_plan:
            assert np.allclose(amps, reference)
            bare = ExecutionEngine(schedule, use_plan=True).run()
            assert np.array_equal(amps, bare.state.to_statevector().data)
        else:
            assert np.array_equal(amps, reference)
        assert _no_pipeline_threads()

    def test_signature_parity_with_serial(self, tmp_path, schedule):
        serial = ExecutionEngine(
            schedule, layers=[TracingLayer(Telemetry.enabled())]
        ).run()
        piped = _run_piped(
            schedule,
            tmp_path / "ckpt",
            use_plan=True,
            trace=True,
            sanitize=False,
            checkpoint=False,
        )
        assert piped.trace.signature() == serial.trace.signature()

    def test_plan_cache_counters_unchanged(self, schedule):
        """Warmed entries must report exactly the serial hit/miss stream."""

        def counters(pipelined):
            GATHER_CACHE.clear()
            layers = [PipelineLayer(depth=3)] if pipelined else []
            ExecutionEngine(schedule, use_plan=True, layers=layers).run()
            stats = GATHER_CACHE.stats()
            return stats["hits"], stats["misses"], stats["bytes_saved"]

        assert counters(False) == counters(True)

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            PipelineLayer(depth=0)

    def test_metrics_exposed(self, tmp_path, schedule):
        telemetry = Telemetry.enabled()
        layers = [TracingLayer(telemetry), PipelineLayer(depth=2)]
        ExecutionEngine(schedule, layers=layers).run()
        snapshot = telemetry.metrics.snapshot()
        assert snapshot.get("pipeline.depth") == 2
        prefetch_keys = [k for k in snapshot if k.startswith("pipeline.prefetch.")]
        assert prefetch_keys, snapshot

    def test_flight_recorder_events(self, tmp_path, schedule):
        recorder = FlightRecorder(capacity=512)
        layer = PipelineLayer(depth=2, recorder=recorder, trace_id="tid-1")
        ExecutionEngine(schedule, layers=[layer]).run()
        events = recorder.snapshot(kinds=("pipeline",))
        assert events
        names = {e["event"] for e in events}
        assert "armed" in names
        assert "finalized" in names
        assert "issued" in names
        assert all(e["trace_id"] == "tid-1" for e in events)

    def test_no_thread_leak_after_failure(self, schedule):
        class Boom(Exception):
            pass

        from repro.runtime.layers import RuntimeLayer

        class FailOnce(RuntimeLayer):
            def before_op(self, ctx, unit):
                if unit.index == 2:
                    raise Boom()

        layers = [PipelineLayer(depth=2), FailOnce()]
        with pytest.raises(Boom):
            ExecutionEngine(schedule, layers=layers).run()
        assert _no_pipeline_threads()


class TestOutOfCoreParity:
    """Satellite: disk-backed vs in-memory, with and without pipeline,
    produce bit-identical states and trace signatures across 10 seeds."""

    @pytest.mark.parametrize("seed", range(10))
    def test_seed_parity(self, tmp_path, seed):
        schedule = small_schedule(seed)

        def run(disk, pipelined, tag):
            state = None
            if disk:
                state = OutOfCoreStateVector(
                    N,
                    L,
                    tmp_path / tag,
                    init=getattr(schedule, "initial_state", "zero"),
                    initial_global_qubits=schedule.initial_global_qubits
                    or None,
                )
            telemetry = Telemetry.enabled()
            layers = [TracingLayer(telemetry)]
            if pipelined:
                layers.append(PipelineLayer(depth=2))
            result = ExecutionEngine(schedule, layers=layers).run(state=state)
            amps = result.state.to_statevector().data.copy()
            signature = result.trace.signature()
            if disk:
                state.close()
            return amps, signature

        base_amps, base_sig = run(False, False, "ref")
        for disk, pipelined in [(False, True), (True, False), (True, True)]:
            amps, signature = run(disk, pipelined, f"d{disk}-p{pipelined}")
            assert np.array_equal(amps, base_amps), (seed, disk, pipelined)
            assert signature == base_sig, (seed, disk, pipelined)
        assert _no_pipeline_threads()


class TestPipelineDiskOverlap:
    def test_disk_runs_use_background_io(self, tmp_path, schedule):
        state = OutOfCoreStateVector(
            N,
            L,
            tmp_path / "shards",
            init=getattr(schedule, "initial_state", "zero"),
            initial_global_qubits=schedule.initial_global_qubits or None,
        )
        layer = PipelineLayer(depth=2)
        ExecutionEngine(schedule, layers=[layer]).run(state=state)
        io_stats = state.storage.io_stats
        assert io_stats["async_syncs"] > 0
        assert io_stats["exchange_prefetched_pairs"] > 0
        # Disarmed and drained by finalize: storage is back to serial mode.
        assert state.storage._pipeline is None
        state.close()
        assert _no_pipeline_threads()
