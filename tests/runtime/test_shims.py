"""The legacy entry points must warn but behave identically."""

import numpy as np
import pytest

from repro.distributed.checkpoint import CheckpointManager
from repro.distributed.tracing import trace_schedule_execution
from repro.runtime import (
    CheckpointLayer,
    ExecutionEngine,
    SanitizerLayer,
    TracingLayer,
)
from repro.staticcheck import ShardSanitizer, run_sanitized

from tests.runtime.conftest import initial_state


class TestTraceShim:
    def test_warns_and_matches_engine(self, schedule, reference):
        state = initial_state(schedule)
        with pytest.warns(DeprecationWarning, match="trace_schedule_execution"):
            legacy = trace_schedule_execution(state, schedule)
        direct = ExecutionEngine(
            schedule, use_plan=False, layers=[TracingLayer()]
        ).run()
        assert legacy.signature() == direct.trace.signature()
        assert np.array_equal(state.to_statevector().data, reference)


class TestSanitizerShim:
    def test_warns_and_matches_engine(self, schedule, reference):
        with pytest.warns(DeprecationWarning, match="run_sanitized"):
            state, report = run_sanitized(schedule)
        assert report.passed
        assert report.ops_checked == len(list(schedule.operations()))
        assert np.array_equal(state.to_statevector().data, reference)

        sanitizer = ShardSanitizer()
        direct = ExecutionEngine(
            schedule, use_plan=False, layers=[SanitizerLayer(sanitizer)]
        ).run()
        assert sanitizer.report.passed
        assert sanitizer.report.ops_checked == report.ops_checked
        assert np.array_equal(
            direct.state.to_statevector().data, reference
        )

    def test_corruption_drills_still_fire(self, schedule):
        def corrupt(state):
            shard = np.asarray(state.storage.get(0)).copy()
            shard[0] += 1.0
            state.storage.set(0, shard)

        with pytest.warns(DeprecationWarning):
            _, report = run_sanitized(schedule, corrupt_during={2: corrupt})
        assert any(
            f.category in ("norm", "checksum", "nan") and f.op_index == 2
            for f in report.findings
        )


class TestCheckpointShim:
    def test_warns_and_matches_engine(self, tmp_path, schedule, reference):
        mgr = CheckpointManager(tmp_path / "legacy")
        with pytest.warns(DeprecationWarning, match="run_with_checkpoints"):
            state = mgr.run_with_checkpoints(schedule, every=3)
        assert np.array_equal(state.to_statevector().data, reference)
        assert mgr.has_checkpoint()

        layer = CheckpointLayer(tmp_path / "direct", every=3)
        direct = ExecutionEngine(
            schedule, use_plan=False, layers=[layer]
        ).run()
        assert np.array_equal(
            direct.state.to_statevector().data, reference
        )
        assert layer.manager.has_checkpoint()
        # Same checkpoint cadence: both directories end at the same op.
        assert layer.manager.load()[1] == mgr.load()[1]

    def test_fail_after_and_resume_unchanged(
        self, tmp_path, schedule, reference
    ):
        mgr = CheckpointManager(tmp_path)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(RuntimeError, match="injected failure"):
                mgr.run_with_checkpoints(schedule, every=3, fail_after=4)
        state = mgr.resume(schedule, every=3)
        assert np.array_equal(state.to_statevector().data, reference)
