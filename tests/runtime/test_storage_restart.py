"""Custom shard storage must survive a checkpoint restart (regression).

Before the runtime engine, ``run_resilient`` rebuilt every restart state
in memory from the checkpoint metadata, silently dropping a
``DiskShards`` backend mid-run.  The engine's ``state_factory`` plumbing
(and ``CheckpointManager.load(state_factory=...)``) keeps the run on its
original backend through recovery.
"""

import numpy as np
import pytest

from repro.distributed import DiskShards, DistributedSimulator
from repro.distributed.checkpoint import CheckpointManager
from repro.resilience import FaultPlan, FaultSpec, swap_op_indices

from tests.runtime.conftest import L, N


def _disk_storage(tmp_path):
    return DiskShards(
        num_shards=1 << (N - L),
        shard_size=1 << L,
        directory=tmp_path / "shards",
    )


def _crash_plan(schedule):
    swap = swap_op_indices(schedule)[-1]
    return FaultPlan(
        seed=2, faults=(FaultSpec(op_index=swap, kind="crash"),)
    )


class TestDiskShardsSurviveRestart:
    def test_restart_keeps_storage_backend(
        self, tmp_path, schedule, reference
    ):
        storage = _disk_storage(tmp_path)
        sim = DistributedSimulator(N, L, storage=storage)
        result = sim.run_resilient(
            schedule, tmp_path / "ckpt", plan=_crash_plan(schedule)
        )
        assert result.report.restarts == 1
        # The recovered run is still on the original disk backend and
        # still bit-exact with the fault-free reference.
        assert result.state.storage is storage
        assert np.array_equal(
            result.state.to_statevector().data, reference
        )

    def test_fault_free_run_uses_backend_too(
        self, tmp_path, schedule, reference
    ):
        storage = _disk_storage(tmp_path)
        sim = DistributedSimulator(N, L, storage=storage)
        result = sim.run_resilient(schedule, tmp_path / "ckpt")
        assert result.report.restarts == 0
        assert result.state.storage is storage
        assert np.array_equal(
            result.state.to_statevector().data, reference
        )


class TestLoadStateFactory:
    def test_load_into_custom_vessel(self, tmp_path, schedule, reference):
        mgr = CheckpointManager(tmp_path / "ckpt")
        sim = DistributedSimulator(N, L)
        run = sim.run_schedule(schedule, use_plan=False)
        mgr.save(run.state, next_op_index=7)

        storage = _disk_storage(tmp_path)
        state, next_op = mgr.load(
            state_factory=lambda: DistributedSimulator(
                N, L, storage=storage
            ).new_state()
        )
        assert next_op == 7
        assert state.storage is storage
        assert np.array_equal(state.to_statevector().data, reference)

    def test_load_rejects_mismatched_vessel(self, tmp_path, schedule):
        mgr = CheckpointManager(tmp_path / "ckpt")
        run = DistributedSimulator(N, L).run_schedule(schedule)
        mgr.save(run.state, next_op_index=0)
        with pytest.raises(ValueError, match="state_factory"):
            mgr.load(
                state_factory=lambda: DistributedSimulator(
                    N, L - 1
                ).new_state()
            )
