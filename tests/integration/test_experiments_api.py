"""Tests for the programmatic experiments API."""

import pytest

from repro.experiments import (
    fig5_size_series,
    fig8_series,
    table1_rows,
    table2_rows,
)


class TestTable1Api:
    @pytest.mark.slow
    def test_single_cell(self):
        rows = table1_rows(qubit_counts=(30,), kmax_values=(5,))
        assert len(rows) == 1
        row = rows[0]
        assert row.gates == 369
        assert row.paper_clusters == 36
        assert abs(row.clusters - 36) / 36 < 0.25
        assert row.gates_per_cluster > 5


class TestTable2Api:
    @pytest.mark.slow
    def test_36q_row(self):
        rows = table2_rows(configurations=[(36, 64)])
        row = rows[0]
        assert row.nodes == 64
        assert row.swaps <= 2
        assert row.paper_seconds == 28.92
        assert abs(row.model_seconds - 28.92) / 28.92 < 0.35
        assert row.speedup_over_baseline > 10
        assert 0.0 < row.comm_fraction < 0.7

    def test_rejects_non_power_nodes(self):
        with pytest.raises(ValueError):
            table2_rows(configurations=[(36, 63)])


class TestFig5Api:
    def test_size_series_shape(self):
        points = fig5_size_series(qubit_counts=(36, 42), local_qubits=30)
        assert [p.qubits for p in points] == [36, 42]
        for p in points:
            assert 1 <= p.swaps <= 3
            assert p.baseline_global_gates_worst >= p.baseline_global_gates_median
            assert p.baseline_global_gates_median > 4 * p.swaps


class TestFig8Api:
    @pytest.mark.slow
    def test_series_monotone(self):
        points = fig8_series(36, (16, 32, 64), kmax=4)
        assert points[0].speedup == pytest.approx(1.0)
        assert points[0].speedup < points[1].speedup < points[2].speedup
        assert points[-1].comm_fraction > points[0].comm_fraction * 0.5
