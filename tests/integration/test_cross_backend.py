"""Cross-backend consistency: every execution path, same amplitudes.

One schedule, five executions: single-node reference, in-process
distributed (RAM shards), in-process distributed (disk shards),
process-parallel shared-memory workers, and the absorbed-diagonal
variant.  All must agree bit-for-bit (up to fp addition order).
"""

import pytest

from repro import (
    DiskShards,
    DistributedSimulator,
    SchedulerConfig,
    Simulator,
    generate_supremacy_circuit,
    schedule_circuit,
)
from repro.distributed.multiproc import MultiprocessRunner


@pytest.fixture(scope="module")
def workload():
    n, depth, l = 12, 12, 8
    circuit = generate_supremacy_circuit(n, depth, seed=13)
    reference = Simulator(n).run(circuit).state
    schedule = schedule_circuit(
        circuit, SchedulerConfig(local_qubits=l, kmax=4, seed=5)
    )
    return n, l, circuit, reference, schedule


class TestCrossBackend:
    def test_in_process_ram(self, workload):
        n, l, _, reference, schedule = workload
        run = DistributedSimulator(n, l).run_schedule(schedule)
        assert run.state.to_statevector().allclose(reference, atol=1e-9)

    def test_in_process_disk(self, workload, tmp_path):
        n, l, _, reference, schedule = workload
        storage = DiskShards(1 << (n - l), 1 << l, tmp_path)
        run = DistributedSimulator(n, l, storage=storage).run_schedule(schedule)
        assert run.state.to_statevector().allclose(reference, atol=1e-9)

    def test_multiprocess(self, workload):
        n, l, _, reference, schedule = workload
        state = MultiprocessRunner(n, l).run_schedule(schedule)
        assert state.allclose(reference, atol=1e-9)

    def test_absorbed_variant(self, workload):
        n, l, circuit, reference, _ = workload
        schedule = schedule_circuit(
            circuit,
            SchedulerConfig(local_qubits=l, kmax=4, seed=5, absorb_diagonals=True),
        )
        run = DistributedSimulator(n, l).run_schedule(schedule)
        assert run.state.to_statevector().allclose(reference, atol=1e-9)

    def test_backends_agree_exactly(self, workload):
        """RAM vs disk shards execute identical kernel sequences, so the
        amplitudes must match to the last bit."""
        import numpy as np

        n, l, _, _, schedule = workload
        ram = DistributedSimulator(n, l).run_schedule(schedule)
        mp_state = MultiprocessRunner(n, l).run_schedule(schedule)
        assert np.allclose(
            ram.state.to_statevector().data, mp_state.data, atol=1e-12, rtol=0
        )

    def test_comm_accounting_matches_schedule(self, workload):
        n, l, _, _, schedule = workload
        run = DistributedSimulator(n, l).run_schedule(schedule)
        assert run.comm.alltoall_steps == schedule.num_swaps
        expected_bytes = 0
        for event in run.comm.events:
            if event.kind == "alltoall":
                expected_bytes += event.bytes
        assert run.comm.bytes_on_network == expected_bytes
