"""End-to-end integration: the full pipeline on real circuits.

These tests exercise generation -> scheduling -> distributed execution ->
analysis in one pass, at sizes small enough to run in seconds but large
enough to hit every code path (multiple stages, partial swaps, diagonal
and monomial specialization, fused clusters, out-of-core storage).
"""

import numpy as np
import pytest

from repro import (
    DistributedSimulator,
    SchedulerConfig,
    Simulator,
    generate_supremacy_circuit,
    schedule_circuit,
)
from repro.analysis import (
    distributed_entropy,
    porter_thomas_entropy_nats,
    shannon_entropy,
)
from repro.distributed import DiskShards


@pytest.fixture(scope="module")
def pipeline_16q():
    """One 16-qubit depth-16 circuit, reference state, and schedule."""
    n, depth, l = 16, 16, 11
    circ = generate_supremacy_circuit(n, depth, seed=42)
    ref = Simulator(n).run(circ).state
    sched = schedule_circuit(circ, SchedulerConfig(local_qubits=l, kmax=4, seed=7))
    return circ, ref, sched, n, l


class TestFullPipeline:
    def test_scheduled_distributed_equals_reference(self, pipeline_16q):
        circ, ref, sched, n, l = pipeline_16q
        res = DistributedSimulator(n, l).run_schedule(sched)
        assert res.state.to_statevector().allclose(ref, atol=1e-9)

    def test_swap_count_is_schedule_swaps(self, pipeline_16q):
        circ, ref, sched, n, l = pipeline_16q
        res = DistributedSimulator(n, l).run_schedule(sched)
        assert res.comm.alltoall_steps == sched.num_swaps

    def test_entropy_matches_porter_thomas(self, pipeline_16q):
        circ, ref, sched, n, l = pipeline_16q
        res = DistributedSimulator(n, l).run_schedule(sched)
        h = distributed_entropy(res.state)
        assert h == pytest.approx(shannon_entropy(ref.probabilities()), abs=1e-9)
        # depth 16 on 16 qubits is not yet fully scrambled; the strict
        # convergence check lives in tests/analysis (12q, depth 20).
        assert h == pytest.approx(porter_thomas_entropy_nats(n), abs=0.3)

    def test_out_of_core_pipeline(self, pipeline_16q, tmp_path):
        """The SSD execution mode of the paper's outlook, end to end."""
        circ, ref, sched, n, l = pipeline_16q
        storage = DiskShards(1 << (n - l), 1 << l, tmp_path)
        res = DistributedSimulator(n, l, storage=storage).run_schedule(sched)
        assert res.state.to_statevector().allclose(ref, atol=1e-9)

    def test_schedule_communication_savings(self, pipeline_16q):
        """Scheduled execution's comm steps are a small fraction of the
        per-gate baseline's global-gate count — the Fig. 5 story."""
        from repro import baseline_global_gates

        circ, ref, sched, n, l = pipeline_16q
        baseline = baseline_global_gates(circ, l, worst_case=False)
        assert sched.num_swaps * 3 <= max(baseline.global_gates, 3)

    def test_different_kmax_same_state(self, pipeline_16q):
        circ, ref, _, n, l = pipeline_16q
        for kmax in (2, 5):
            sched = schedule_circuit(
                circ, SchedulerConfig(local_qubits=l, kmax=kmax, seed=3)
            )
            res = DistributedSimulator(n, l).run_schedule(sched)
            assert res.state.to_statevector().allclose(ref, atol=1e-9), kmax


class TestScaleInvariants:
    @pytest.mark.parametrize("n,depth,l", [(9, 10, 6), (12, 12, 7), (16, 10, 12)])
    def test_pipeline_at_multiple_scales(self, n, depth, l):
        circ = generate_supremacy_circuit(n, depth, seed=n)
        ref = Simulator(n).run(circ).state
        sched = schedule_circuit(circ, SchedulerConfig(local_qubits=l, seed=1))
        res = DistributedSimulator(n, l).run_schedule(sched)
        assert res.state.to_statevector().allclose(ref, atol=1e-9)
        assert res.state.norm() == pytest.approx(1.0)

    def test_single_precision_end_to_end(self):
        """Sec. 5: single precision halves memory; fidelity stays high."""
        n = 12
        circ = generate_supremacy_circuit(n, 10, seed=3)
        double = Simulator(n).run(circ).state
        single = Simulator(n, single_precision=True).run(circ).state
        overlap = abs(np.vdot(single.data.astype(np.complex128), double.data)) ** 2
        assert overlap > 1.0 - 1e-6
