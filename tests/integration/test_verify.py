"""Tests for the cross-validation harness."""

import numpy as np
import pytest

from repro.circuit import generate_supremacy_circuit
from repro.statevector import StateVector
from repro.util.rng import random_statevector
from repro.verify import compare_states, cross_validate, spot_check_amplitudes


class TestCompareStates:
    def test_identical_states(self):
        sv = StateVector(6, random_statevector(6, 0))
        report = compare_states(sv, sv.copy())
        assert report.max_abs_deviation == 0.0
        assert report.fidelity == pytest.approx(1.0)
        assert report.ok()

    def test_detects_single_amplitude_corruption(self):
        a = StateVector(6, random_statevector(6, 1))
        b = a.copy()
        b.data[37] += 1e-6
        report = compare_states(a, b)
        assert report.worst_index == 37
        assert report.max_abs_deviation == pytest.approx(1e-6)
        assert not report.ok(atol=1e-9)
        assert report.ok(atol=1e-5)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            compare_states(StateVector(3), StateVector(4))

    def test_str(self):
        report = compare_states(StateVector(3), StateVector(3))
        assert "fidelity" in str(report)


class TestSpotCheck:
    def test_subset_comparison(self):
        a = StateVector(10, random_statevector(10, 2))
        report = spot_check_amplitudes(a, a.copy(), samples=128, seed=0)
        assert report.max_abs_deviation == 0.0
        assert report.compared_amplitudes <= 1 << 10
        assert report.fidelity == pytest.approx(1.0)

    def test_catches_heavy_amplitude_corruption(self):
        """Corrupting the largest amplitude must be caught even by a
        small spot check (top outcomes are always sampled)."""
        a = StateVector(10, random_statevector(10, 3))
        b = a.copy()
        heavy = int(np.argmax(np.abs(b.data)))
        b.data[heavy] *= -1
        report = spot_check_amplitudes(a, b, samples=64, seed=1)
        assert report.max_abs_deviation > 0.01

    def test_small_state_degenerates_gracefully(self):
        a = StateVector(3, random_statevector(3, 4))
        report = spot_check_amplitudes(a, a.copy(), samples=1000)
        assert report.compared_amplitudes <= 8


class TestCrossValidate:
    def test_all_backends_agree(self):
        circ = generate_supremacy_circuit(10, 8, seed=6)
        reports = cross_validate(circ, 7, seed=1)
        assert set(reports) == {
            "distributed-per-gate", "scheduled", "scheduled-absorbed",
        }
        for report in reports.values():
            assert report.ok(atol=1e-9)
