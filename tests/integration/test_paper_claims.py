"""Verification of the paper's headline quantitative claims.

Each test cites the claim it checks.  These are the repository's
"does the reproduction actually reproduce" gate; EXPERIMENTS.md records
the full paper-vs-measured tables.
"""

import pytest

from repro.circuit import circuit_stats, generate_supremacy_circuit
from repro.perfmodel import (
    ARIES_DRAGONFLY,
    BaselineModel,
    CORI_KNL_NODE,
    TimelineModel,
)
from repro.scheduling import (
    SchedulerConfig,
    baseline_global_gates,
    find_stages,
    schedule_circuit,
)
from repro.util.flops import operational_intensity


class TestSection31:
    def test_operational_intensity_below_half(self):
        """Sec. 3.1: 'The operational intensity is therefore less than
        1/2' for single-qubit gates."""
        assert operational_intensity(1) < 0.5


class TestSection36:
    @pytest.mark.parametrize("local_qubits", [29, 30, 31, 32])
    def test_42q_two_swaps_any_local_count(self, local_qubits):
        """Sec. 3.6.1 / Fig. 5: a depth-25 42-qubit circuit needs two
        global-to-local swaps, mostly independent of 29-32 local qubits."""
        circ = generate_supremacy_circuit(
            42, 25, seed=0, include_initial_hadamards=False
        )
        plan = find_stages(circ, local_qubits, seed=1, restarts=3)
        assert plan.num_swaps == 2

    def test_45q_two_swaps(self):
        """Sec. 3.5: '45-qubit circuits, 2 global-to-local swaps are
        necessary'."""
        circ = generate_supremacy_circuit(
            45, 25, seed=0, include_initial_hadamards=False
        )
        assert find_stages(circ, 32, seed=1, restarts=3).num_swaps == 2

    def test_49q_two_swaps(self):
        """Sec. 5: 'the simulation of a 49-qubit quantum supremacy circuit
        would require only two global-to-local swap operations'."""
        circ = generate_supremacy_circuit(
            49, 25, seed=0, include_initial_hadamards=False
        )
        assert find_stages(circ, 32, seed=1, restarts=5).num_swaps == 2

    def test_36q_one_swap_with_search(self):
        """Sec. 3.6.1: the cheap search reduces 36 qubits from 2 swaps to 1
        (no-trailing-layer instance convention; see EXPERIMENTS.md)."""
        circ = generate_supremacy_circuit(
            36, 25, seed=0,
            include_initial_hadamards=False,
            include_trailing_singles=False,
        )
        assert find_stages(circ, 30, seed=1, restarts=4).num_swaps == 1

    def test_42q_baseline_about_50_global_gates(self):
        """Sec. 4.1.2: '[5] requires about 50 global gates' (median)."""
        circ = generate_supremacy_circuit(
            42, 25, seed=0, include_initial_hadamards=False
        )
        report = baseline_global_gates(circ, 29, worst_case=False)
        assert 40 <= report.global_gates <= 60

    def test_comm_reduction_factor_over_10x(self):
        """Sec. 4.1.2's 12.5x derivation: baseline_global_gates / (2 swaps
        * 2 locality factor) exceeds an order of magnitude."""
        circ = generate_supremacy_circuit(
            42, 25, seed=0, include_initial_hadamards=False
        )
        plan = find_stages(circ, 29, seed=1, restarts=3)
        baseline = baseline_global_gates(circ, 29, worst_case=False)
        reduction = baseline.global_gates / (2.0 * plan.num_swaps)
        assert reduction > 10.0


class TestTable1:
    def test_gate_counts(self):
        """Table 1 'Number of Gates': 369/447/528/569 (30q exact, rest
        within the documented +-6)."""
        paper = {30: 369, 36: 447, 42: 528, 45: 569}
        for nq, expected in paper.items():
            total = circuit_stats(
                generate_supremacy_circuit(nq, 25, seed=0)
            ).total_gates
            assert abs(total - expected) <= 6, (nq, total)

    @pytest.mark.slow
    def test_cluster_trend_and_magnitude(self):
        """Table 1 cluster counts: within 25% of the paper, monotone in
        kmax, and averaging more than kmax gates per cluster."""
        paper = {(36, 3): 98, (36, 5): 41}
        circ = generate_supremacy_circuit(36, 25, seed=0)
        counts = {}
        for (nq, kmax), expected in paper.items():
            sched = schedule_circuit(
                circ, SchedulerConfig(local_qubits=30, kmax=kmax, seed=1)
            )
            counts[kmax] = sched.num_clusters
            assert abs(sched.num_clusters - expected) / expected < 0.30
        assert counts[3] > counts[5]


@pytest.mark.slow
class TestTable2:
    @pytest.fixture(scope="class")
    def models(self):
        return (
            TimelineModel(CORI_KNL_NODE, ARIES_DRAGONFLY),
            BaselineModel(CORI_KNL_NODE, ARIES_DRAGONFLY),
        )

    def test_45q_run_profile(self, models):
        """Table 2 last row: 8192 nodes, 552.61 s, 78% communication;
        Sec. 4.1.2: 0.428 PFLOPS sustained."""
        model, _ = models
        circ = generate_supremacy_circuit(
            45, 25, seed=0, include_trailing_singles=False
        )
        sched = schedule_circuit(circ, SchedulerConfig(local_qubits=32, kmax=4, seed=1))
        r = model.predict(sched)
        assert r.nodes == 8192
        assert abs(r.total_seconds - 552.61) / 552.61 < 0.35
        assert 68.0 < 100 * r.comm_fraction < 88.0
        assert 0.25 < r.pflops < 0.9

    def test_order_of_magnitude_speedup(self, models):
        """Abstract: 'an improvement in time-to-solution over state-of-
        the-art simulations by more than an order of magnitude'."""
        model, baseline = models
        circ = generate_supremacy_circuit(
            42, 25, seed=0, include_trailing_singles=False
        )
        sched = schedule_circuit(circ, SchedulerConfig(local_qubits=30, kmax=4, seed=1))
        speedup = (
            baseline.predict(circ, 30).total_seconds
            / model.predict(sched).total_seconds
        )
        assert speedup > 10.0
