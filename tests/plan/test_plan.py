"""Tests for repro.plan: compiled execution plans and their executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import generate_supremacy_circuit
from repro.distributed import DistributedSimulator, DistributedState
from repro.distributed.tracing import trace_schedule_execution
from repro.kernels import GATHER_CACHE, apply_gate_reference
from repro.plan import CompiledProgram, PlanOp, compile_program, plan_for
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.telemetry import Telemetry

_N, _L = 8, 5


def _small_case(seed, *, depth=8):
    circuit = generate_supremacy_circuit(_N, depth, seed=seed)
    schedule = schedule_circuit(
        circuit, SchedulerConfig(local_qubits=_L, kmax=3, seed=seed + 1)
    )
    return circuit, schedule


def _state_for(schedule, *, telemetry=None):
    """A fresh state initialised exactly as run_schedule would."""
    return DistributedState(
        _N,
        _L,
        init=getattr(schedule, "initial_state", "zero"),
        initial_global_qubits=schedule.initial_global_qubits or None,
        telemetry=telemetry,
    )


def _reference_run(circuit):
    """Per-gate apply_gate_reference loop: the ground-truth state."""
    state = np.zeros(1 << circuit.num_qubits, dtype=np.complex128)
    state[0] = 1.0
    for gate in circuit:
        apply_gate_reference(state, gate.matrix, gate.qubits)
    return state


class TestCompile:
    def test_every_schedule_op_is_accounted_for(self):
        _, schedule = _small_case(0)
        plan = compile_program(schedule)
        # Each source op appears in exactly one plan op (fused runs carry
        # all their sources), so the tallies reconcile.
        assert plan.num_source_ops == sum(op.num_sources for op in plan.ops)
        c = plan.counts
        assert len(plan.ops) == (
            c["kernel_ops"] + c["fused_kernel_ops"] + c["diagonal_ops"]
            + c["fused_diagonal_ops"] + c["swap_ops"] + c["passthrough_ops"]
        )
        assert plan.num_source_ops == (
            len(plan.ops) + c["fused_away_ops"] + c["refused_away_ops"]
        )

    def test_strategy_resolved_at_compile_time(self):
        _, schedule = _small_case(1)
        plan = compile_program(schedule)
        kernel_ops = [op for op in plan.ops if op.exec_kind == "kernel"]
        assert kernel_ops
        for op in kernel_ops:
            assert op.strategy in {"indexed", "reference"}
            assert op.chunk_size is not None
            assert op.matrix is not None

    def test_fusion_merges_consecutive_diagonals(self):
        _, schedule = _small_case(2)
        fused = compile_program(schedule, fuse_diagonals=True)
        unfused = compile_program(schedule, fuse_diagonals=False)
        assert unfused.counts["fused_diagonal_ops"] == 0
        assert unfused.counts["fused_away_ops"] == 0
        assert len(fused.ops) <= len(unfused.ops)
        if fused.counts["fused_diagonal_ops"]:
            assert fused.counts["fused_away_ops"] > 0

    def test_plan_for_memoizes_per_schedule(self):
        _, schedule = _small_case(3)
        assert plan_for(schedule) is plan_for(schedule)
        assert plan_for(schedule) is not plan_for(schedule, fuse_diagonals=False)

    def test_summary_reports_counters(self):
        _, schedule = _small_case(4)
        plan = compile_program(schedule)
        summary = plan.summary()
        assert summary["num_plan_ops"] == len(plan.ops)
        assert summary["num_source_ops"] == plan.num_source_ops
        assert summary["chunk_size"] == plan.chunk_size


class TestExecutionCorrectness:
    @pytest.mark.parametrize("seed", range(20))
    def test_planned_run_matches_reference_kernel(self, seed):
        """>=20 seeds: the compiled plan reproduces the per-gate
        apply_gate_reference ground truth."""
        circuit, schedule = _small_case(seed)
        res = DistributedSimulator(_N, _L).run_schedule(schedule)
        assert np.allclose(
            res.state.to_statevector().data, _reference_run(circuit), atol=1e-9
        )

    @pytest.mark.parametrize("seed", [0, 7, 13])
    def test_unfused_plan_bit_exact_vs_direct_execution(self, seed):
        """With all fusion off the plan replays the exact same kernel
        calls as op.execute, so amplitudes are bit-identical."""
        _, schedule = _small_case(seed)
        state = _state_for(schedule)
        compile_program(
            schedule, fuse_diagonals=False, fusion_kmax=0
        ).execute(state)

        ref = DistributedSimulator(_N, _L).run_schedule(schedule, use_plan=False)
        assert np.array_equal(
            state.to_statevector().data, ref.state.to_statevector().data
        )

    @pytest.mark.parametrize("seed", [0, 5, 11])
    def test_fused_plan_matches_unfused(self, seed):
        _, schedule = _small_case(seed)
        a = _state_for(schedule)
        compile_program(schedule, fuse_diagonals=True).execute(a)
        b = _state_for(schedule)
        compile_program(schedule, fuse_diagonals=False).execute(b)
        assert np.allclose(
            a.to_statevector().data, b.to_statevector().data, atol=1e-12
        )

    def test_cross_rank_plan_sharing(self):
        """One CompiledProgram drives every virtual rank: the same plan
        object executes repeatedly and reuses cached gather tables."""
        _, schedule = _small_case(6)
        plan = plan_for(schedule)
        GATHER_CACHE.clear()
        s1 = _state_for(schedule)
        plan.execute(s1)
        # Batched apply paths fetch each table once per op (every rank
        # then sweeps the shared arrays), so the cold run records one
        # miss per distinct table — not per-rank re-hits.
        cold_misses = GATHER_CACHE.misses
        s2 = _state_for(schedule)
        assert plan_for(schedule) is plan
        plan.execute(s2)
        assert np.array_equal(
            s1.to_statevector().data, s2.to_statevector().data
        )
        # Warm run: every lookup hits, no new table builds.
        assert GATHER_CACHE.misses == cold_misses


class TestTraceParity:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_signature_matches_legacy_tracer(self, seed):
        """Plan execution emits the same ExecutionTrace signature as the
        op-by-op trace_schedule_execution path, fusion included."""
        _, schedule = _small_case(seed)
        plan = plan_for(schedule)
        telemetry = Telemetry.enabled()
        trace = plan.execute(_state_for(schedule), telemetry=telemetry)

        legacy = trace_schedule_execution(
            _state_for(schedule), schedule, telemetry=Telemetry.enabled()
        )
        assert trace.signature() == legacy.signature()

    def test_traced_run_through_simulator(self):
        _, schedule = _small_case(1)
        sim = DistributedSimulator(_N, _L, telemetry=Telemetry.enabled())
        res = sim.run_schedule(schedule)
        assert res.trace is not None
        assert res.trace.signature()

    def test_untraced_run_returns_no_trace(self):
        _, schedule = _small_case(1)
        res = DistributedSimulator(_N, _L).run_schedule(schedule)
        assert res.trace is None


class TestPlanOpInvariants:
    def test_plan_ops_are_frozen(self):
        _, schedule = _small_case(0)
        op = compile_program(schedule).ops[0]
        assert isinstance(op, PlanOp)
        with pytest.raises(AttributeError):
            op.exec_kind = "other"

    def test_compiled_program_reports_compile_seconds(self):
        _, schedule = _small_case(0)
        plan = compile_program(schedule)
        assert isinstance(plan, CompiledProgram)
        assert plan.compile_seconds >= 0.0
