"""Fusion v2 tests: cluster refusion, PlanConfig keying, composition.

Covers the pass-pipeline refactor's new surface:

* the frozen :class:`~repro.plan.PlanConfig` as the *single* memoization
  key (regression for the old ``(chunk_size, fuse_diagonals)``-only key,
  which silently collided plans differing in any other option);
* fused-vs-unfused execution equivalence over 20 seeds, fingerprint
  determinism per config, and ``ExecutionTrace.signature()`` parity —
  fused kernels emit one (zero-length) trace event per original
  schedule op;
* monotonicity of the fusion-depth sweep;
* pipeline / checkpoint / sanitize layer composition over fused
  programs;
* :class:`~repro.plan.warmup.PlanLayout` staying bit-for-bit in step
  with the real ``DistributedState`` layout bookkeeping.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.circuit import generate_supremacy_circuit
from repro.distributed import DistributedState
from repro.plan import PlanConfig, compile_program, plan_for
from repro.plan.warmup import PlanLayout
from repro.runtime import (
    CheckpointLayer,
    ExecutionEngine,
    PipelineLayer,
    SanitizerLayer,
    TracingLayer,
)
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.service.cache import PlanCache
from repro.service.jobs import JobSpec
from repro.staticcheck import ShardSanitizer
from repro.telemetry import Telemetry

_N, _L = 8, 5

_FUSED = PlanConfig(fusion_kmax=6)
_UNFUSED = PlanConfig(fusion_kmax=0)


def _case(seed, *, depth=8):
    circuit = generate_supremacy_circuit(_N, depth, seed=seed)
    schedule = schedule_circuit(
        circuit, SchedulerConfig(local_qubits=_L, kmax=3, seed=seed + 1)
    )
    return circuit, schedule


def _state_for(schedule, *, telemetry=None):
    return DistributedState(
        _N,
        _L,
        init=getattr(schedule, "initial_state", "zero"),
        initial_global_qubits=schedule.initial_global_qubits or None,
        telemetry=telemetry,
    )


def _fusion_friendly_schedule():
    """Dense 2q runs on one local window, clustered small (kmax=2)."""
    from repro.circuit import Circuit
    from repro.gates.gate import Gate

    rng = np.random.default_rng(3)
    circuit = Circuit(_N)
    for step in range(2):
        for a, b in ((0, 1), (1, 2), (2, 3), (0, 2)):
            m = np.linalg.qr(
                rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
            )[0]
            circuit.append(Gate(f"u2_{step}_{a}_{b}", (a, b), m))
    return schedule_circuit(
        circuit, SchedulerConfig(local_qubits=6, kmax=2, seed=1)
    )


def _fingerprint(state) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(state.to_statevector().data).tobytes()
    ).hexdigest()


class TestPlanConfigKey:
    def test_every_option_participates_in_the_key(self):
        """Regression: the old cache key was (chunk_size, fuse_diagonals)
        only, so plans differing in any other option collided."""
        _, schedule = _case(0)
        base = plan_for(schedule, PlanConfig())
        assert plan_for(schedule, PlanConfig()) is base
        for other in (
            PlanConfig(fusion_kmax=0),
            PlanConfig(max_fused_qubits=2),
            PlanConfig(kernel_strategy="reference"),
            PlanConfig(chunk_size=64),
            PlanConfig(fuse_diagonals=False),
        ):
            if other == PlanConfig():
                continue  # defaults may coincide on some hosts
            assert plan_for(schedule, other) is not base, other

    def test_kwargs_form_still_memoizes(self):
        _, schedule = _case(1)
        assert plan_for(schedule, fusion_kmax=2) is plan_for(
            schedule, PlanConfig(fusion_kmax=2)
        )

    def test_plan_compiled_under_its_config(self):
        _, schedule = _case(2)
        plan = compile_program(schedule, PlanConfig(fusion_kmax=0))
        assert plan.config.fusion_kmax == 0
        assert plan.counts["fused_kernel_ops"] == 0
        assert plan.counts["refused_away_ops"] == 0

    def test_service_plan_cache_keys_on_config(self):
        circuit, _ = _case(3)
        spec = JobSpec(tenant="t", circuit=circuit, local_qubits=_L, kmax=3)
        cache = PlanCache(capacity=8)
        a = cache.get(spec, _FUSED)
        b = cache.get(spec, _UNFUSED)
        assert a is not b
        assert cache.get(spec, _FUSED) is a
        assert cache.get(spec) is cache.get(spec, PlanConfig())
        # Two distinct configs always miss separately; a None config is
        # keyed exactly like an explicit default PlanConfig().
        assert cache.misses >= 2
        assert cache.hits >= 2

    def test_invalid_config_type_rejected(self):
        _, schedule = _case(4)
        with pytest.raises(TypeError):
            compile_program(schedule, {"chunk_size": 64})


class TestFusedVsUnfused:
    @pytest.mark.parametrize("seed", range(20))
    def test_state_and_trace_parity(self, seed):
        _, schedule = _case(seed)
        fused_plan = plan_for(schedule, _FUSED)
        unfused_plan = plan_for(schedule, _UNFUSED)

        tel_f, tel_u = Telemetry.enabled(), Telemetry.enabled()
        sf, su = _state_for(schedule), _state_for(schedule)
        trace_f = fused_plan.execute(sf, telemetry=tel_f)
        trace_u = unfused_plan.execute(su, telemetry=tel_u)

        # Same physics (refusion reassociates matmuls: allclose).
        assert np.allclose(
            sf.to_statevector().data, su.to_statevector().data, atol=1e-10
        )
        # Same-config reruns are deterministic to the bit.
        sf2 = _state_for(schedule)
        fused_plan.execute(sf2)
        assert _fingerprint(sf) == _fingerprint(sf2)

        # One trace event per original schedule op, fused or not: the
        # members of a fused group surface as zero-length source events.
        assert trace_f.signature() == trace_u.signature()

    def test_fused_groups_emit_one_event_per_source(self):
        # A workload the cost model is guaranteed to refuse: runs of
        # dense 2-qubit gates on one overlapping window, clustered at
        # kmax=2 so only refusion can merge them.
        schedule = _fusion_friendly_schedule()
        plan = plan_for(schedule, _FUSED)
        assert plan.counts["fused_kernel_ops"] > 0
        assert plan.counts["refused_away_ops"] > 0
        telemetry = Telemetry.enabled()
        trace = plan.execute(
            DistributedState(
                schedule.num_qubits,
                schedule.local_qubits,
                init=getattr(schedule, "initial_state", "zero"),
                initial_global_qubits=schedule.initial_global_qubits or None,
                telemetry=telemetry,
            ),
            telemetry=telemetry,
        )
        assert len(trace.events) == plan.num_source_ops


class TestFusionDepthSweep:
    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_plan_ops_monotone_nonincreasing_in_kmax(self, seed):
        _, schedule = _case(seed)
        op_counts, refused = [], []
        for kmax in (0, 2, 3, 4, 5, 6, 7, 8):
            plan = plan_for(schedule, PlanConfig(fusion_kmax=kmax))
            op_counts.append(len(plan.ops))
            refused.append(plan.counts["refused_away_ops"])
        assert op_counts == sorted(op_counts, reverse=True)
        assert refused == sorted(refused)


class TestFusedComposition:
    @pytest.fixture()
    def schedule(self):
        return _case(11)[0:2][1]

    @pytest.fixture()
    def reference(self, schedule):
        state = _state_for(schedule)
        plan_for(schedule, _UNFUSED).execute(state)
        return state.to_statevector().data

    def _run(self, schedule, layers):
        engine = ExecutionEngine(  # lint: allow-engine-direct
            schedule, plan_config=_FUSED, layers=layers
        )
        return engine.run()

    def test_pipeline_layer_over_fused_program(self, schedule, reference):
        layer = PipelineLayer(depth=2)
        result = self._run(schedule, [layer])
        assert np.allclose(
            result.state.to_statevector().data, reference, atol=1e-10
        )

    def test_checkpoint_layer_over_fused_program(
        self, schedule, reference, tmp_path
    ):
        result = self._run(
            schedule, [CheckpointLayer(tmp_path / "ckpt", every=3)]
        )
        assert np.allclose(
            result.state.to_statevector().data, reference, atol=1e-10
        )

    def test_sanitize_and_trace_over_fused_program(
        self, schedule, reference
    ):
        telemetry = Telemetry.enabled()
        result = self._run(
            schedule,
            [TracingLayer(telemetry), SanitizerLayer(ShardSanitizer())],
        )
        assert np.allclose(
            result.state.to_statevector().data, reference, atol=1e-10
        )
        assert result.trace is not None
        # Parity with an untraced unfused run's event stream length.
        assert len(result.trace.events) == plan_for(
            schedule, _FUSED
        ).num_source_ops


class TestPlanLayoutParity:
    @pytest.mark.parametrize("seed", [0, 4, 8, 15])
    def test_layout_shadow_tracks_real_state(self, seed):
        _, schedule = _case(seed, depth=10)
        layout = PlanLayout(
            schedule.num_qubits,
            schedule.local_qubits,
            schedule.initial_global_qubits,
        )
        state = _state_for(schedule)
        assert layout.bit_of_qubit == list(state.bit_of_qubit)
        for op in schedule.operations():
            if hasattr(op, "new_global_qubits"):  # a SwapOp
                layout.swap_global_set(op.new_global_qubits)
                state.swap_global_set(op.new_global_qubits)
                assert layout.bit_of_qubit == list(state.bit_of_qubit)
