"""FlightRecorder ring-buffer semantics and postmortem bundles."""

from __future__ import annotations

import json
import threading

import pytest

from repro.telemetry.recorder import FlightRecorder


class TestRing:
    def test_records_in_arrival_order_with_seq(self):
        ring = FlightRecorder(capacity=10)
        ring.record("span", label="a")
        ring.record("transition", status="running")
        records = ring.snapshot()
        assert [r["kind"] for r in records] == ["span", "transition"]
        assert [r["seq"] for r in records] == [1, 2]

    def test_capacity_evicts_oldest(self):
        ring = FlightRecorder(capacity=3)
        for i in range(5):
            ring.record("span", i=i)
        records = ring.snapshot()
        assert [r["i"] for r in records] == [2, 3, 4]
        assert len(ring) == 3
        assert ring.dropped == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_filter_by_trace_id_and_kind(self):
        ring = FlightRecorder()
        ring.record("span", trace_id="t1", label="a")
        ring.record("span", trace_id="t2", label="b")
        ring.record("transition", trace_id="t1", status="done")
        ring.record("lock", name="plan-cache")
        t1 = ring.snapshot(trace_id="t1")
        assert [r["kind"] for r in t1] == ["span", "transition"]
        spans = ring.snapshot(kinds=("span",))
        assert len(spans) == 2
        both = ring.snapshot(trace_id="t1", kinds=("transition",))
        assert [r["status"] for r in both] == ["done"]

    def test_clear_keeps_seq_counting(self):
        ring = FlightRecorder()
        ring.record("span")
        ring.clear()
        assert len(ring) == 0 and ring.dropped == 0
        ring.record("span")
        assert ring.snapshot()[0]["seq"] == 2

    def test_stats(self):
        ring = FlightRecorder(capacity=2)
        for _ in range(3):
            ring.record("span")
        assert ring.stats() == {
            "capacity": 2,
            "size": 2,
            "recorded": 3,
            "dropped": 1,
        }


class TestDump:
    def test_jsonl_round_trip(self, tmp_path):
        ring = FlightRecorder()
        ring.record("span", trace_id="t1", label="op", seconds=0.25)
        ring.record("transition", trace_id="t2", status="failed")
        path = tmp_path / "bundle.jsonl"
        written = ring.dump_jsonl(path)
        assert written == 2
        lines = path.read_text(encoding="utf-8").splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["label"] == "op"
        assert parsed[1]["status"] == "failed"

    def test_trace_filtered_dump(self, tmp_path):
        ring = FlightRecorder()
        for trace in ("t1", "t2", "t1"):
            ring.record("span", trace_id=trace)
        path = tmp_path / "t1.jsonl"
        assert ring.dump_jsonl(path, trace_id="t1") == 2
        parsed = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert all(r["trace_id"] == "t1" for r in parsed)


class TestThreadSafety:
    def test_concurrent_producers_never_lose_seq(self):
        ring = FlightRecorder(capacity=10_000)
        threads = [
            threading.Thread(
                target=lambda t=t: [
                    ring.record("span", producer=t) for _ in range(200)
                ]
            )
            for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = ring.snapshot()
        assert len(records) == 1600
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs) and len(set(seqs)) == 1600
