"""Trace signature stability across retry/restart interleavings.

``ExecutionTrace.signature()`` is the determinism anchor: two executions
of the same schedule under the same fault plan must produce equal
signatures even though wall times differ — and the span trees produced
under faults must still satisfy the nesting invariants.
"""

from __future__ import annotations

import pytest

from repro.circuit import generate_supremacy_circuit
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    ResilientExecutor,
    RetryPolicy,
    swap_op_indices,
)
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.telemetry import Telemetry, verify_nesting


@pytest.fixture(scope="module")
def schedule():
    circ = generate_supremacy_circuit(12, 16, seed=0)
    sched = schedule_circuit(
        circ, SchedulerConfig(local_qubits=10, kmax=4, seed=1)
    )
    assert sched.num_swaps >= 1
    return sched


def run(schedule, workdir, *, plan=None, telemetry=None):
    return ResilientExecutor(
        schedule,
        workdir,
        plan=plan,
        policy=RetryPolicy(max_retries=3, max_restarts=2),
        sleep=lambda _s: None,
        telemetry=telemetry,
    ).run()


def transient_plan(schedule):
    swaps = swap_op_indices(schedule)
    return FaultPlan(
        seed=3, faults=(FaultSpec(op_index=swaps[0], kind="transient"),)
    )


def crash_plan(schedule):
    swaps = swap_op_indices(schedule)
    return FaultPlan(
        seed=5,
        faults=(FaultSpec(op_index=swaps[-1], kind="crash", phase="mid"),),
    )


class TestSignatureStability:
    def test_fault_free_reruns_agree(self, schedule, tmp_path):
        a = run(schedule, tmp_path / "a")
        b = run(schedule, tmp_path / "b")
        assert a.trace.signature() == b.trace.signature()

    def test_retry_interleaving_is_deterministic(self, schedule, tmp_path):
        plan = transient_plan(schedule)
        a = run(schedule, tmp_path / "a", plan=plan)
        b = run(schedule, tmp_path / "b", plan=plan)
        assert a.report.transient_retries >= 1
        assert a.trace.signature() == b.trace.signature()

    def test_restart_interleaving_is_deterministic(self, schedule, tmp_path):
        plan = crash_plan(schedule)
        a = run(schedule, tmp_path / "a", plan=plan)
        b = run(schedule, tmp_path / "b", plan=plan)
        assert a.report.restarts == 1
        assert a.trace.signature() == b.trace.signature()

    def test_faults_are_part_of_the_signature(self, schedule, tmp_path):
        clean = run(schedule, tmp_path / "clean")
        faulty = run(schedule, tmp_path / "faulty", plan=transient_plan(schedule))
        assert clean.trace.signature() != faulty.trace.signature()

    def test_retries_only_add_fault_events(self, schedule, tmp_path):
        """Dropping fault events from a retried run recovers the clean run."""
        clean = run(schedule, tmp_path / "clean")
        faulty = run(schedule, tmp_path / "faulty", plan=transient_plan(schedule))
        clean_sig = clean.trace.signature()
        faulty_ops = [s for s in faulty.trace.signature() if s[0] != "fault"]
        assert faulty_ops == clean_sig

    def test_caller_tracer_reuse_does_not_pollute(self, schedule, tmp_path):
        """A shared telemetry bundle across runs still yields per-run traces."""
        telemetry = Telemetry.enabled(per_rank=False)
        a = run(schedule, tmp_path / "a", telemetry=telemetry)
        b = run(schedule, tmp_path / "b", telemetry=telemetry)
        assert a.trace.signature() == b.trace.signature()
        assert len(a.trace.events) == len(b.trace.events)


class TestSpanNesting:
    def test_fault_free_span_tree_well_formed(self, schedule, tmp_path):
        result = run(schedule, tmp_path)
        assert result.spans
        assert verify_nesting(result.spans, tolerance=1e-9) == []

    def test_retry_span_tree_well_formed(self, schedule, tmp_path):
        result = run(schedule, tmp_path, plan=transient_plan(schedule))
        assert verify_nesting(result.spans, tolerance=1e-9) == []

    def test_restart_span_tree_well_formed(self, schedule, tmp_path):
        result = run(schedule, tmp_path, plan=crash_plan(schedule))
        assert result.report.restarts == 1
        assert verify_nesting(result.spans, tolerance=1e-9) == []

    def test_full_telemetry_under_faults_joins_bytes(self, schedule, tmp_path):
        """Metrics streamed across retries equal the merged CommStats."""
        telemetry = Telemetry.enabled(per_rank=False)
        result = run(schedule, tmp_path, plan=crash_plan(schedule),
                     telemetry=telemetry)
        snap = telemetry.metrics.snapshot()
        assert snap["comm.bytes_on_network"] >= result.comm.bytes_on_network
        assert snap["resilience.restarts"] == 1
