"""Exporter tests: Chrome-trace JSON, JSONL stream, flamegraph text."""

from __future__ import annotations

import json

from repro.telemetry import (
    Tracer,
    chrome_trace,
    format_flamegraph,
    span_records,
    write_chrome_trace,
    write_jsonl,
)


def traced_run():
    """A small deterministic span tree with per-rank lane copies."""
    clock = {"t": 0.0}

    def tick():
        clock["t"] += 1.0
        return clock["t"]

    tracer = Tracer(clock=lambda: clock["t"])
    with tracer.span("run", kind="run"):
        with tracer.span("kernel.apply", kind="kernel", k=2):
            tick()
        start = tracer.now()
        with tracer.span("comm.alltoall", kind="comm", bytes=4096):
            tick()
        for rank in range(4):
            tracer.add_span(
                "comm.alltoall", kind="comm", start=start,
                end=tracer.now(), rank=rank, bytes=1024,
            )
    return tracer


class TestChromeTrace:
    def test_valid_json_with_complete_events(self, tmp_path):
        tracer = traced_run()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, tracer.spans)
        data = json.loads(path.read_text())
        assert len(data["traceEvents"]) == count
        xs = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(tracer.spans)
        for e in xs:
            assert e["ts"] >= 0 and e["dur"] >= 0

    def test_one_lane_per_rank(self):
        data = chrome_trace(traced_run().spans)
        names = {
            e["tid"]: e["args"]["name"]
            for e in data["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[0] == "driver"
        assert {names[r + 1] for r in range(4)} == {f"rank {r}" for r in range(4)}
        lane_of = {
            e["args"]["span_id"]: e["tid"]
            for e in data["traceEvents"]
            if e["ph"] == "X"
        }
        for span in traced_run().spans:
            expected = 0 if span.rank is None else span.rank + 1
            assert lane_of[span.span_id] == expected

    def test_unfinished_spans_are_skipped(self):
        tracer = Tracer()
        tracer.span("open").__enter__()
        data = chrome_trace(tracer.spans)
        assert not [e for e in data["traceEvents"] if e["ph"] == "X"]

    def test_attrs_are_json_safe(self):
        tracer = Tracer()
        with tracer.span("op", qubits=frozenset({3, 1}), pair=(0, 2)):
            pass
        data = chrome_trace(tracer.spans)
        (x,) = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert x["args"]["qubits"] == [1, 3]
        assert x["args"]["pair"] == [0, 2]
        json.dumps(data)


class TestJsonl:
    def test_one_record_per_span(self, tmp_path):
        tracer = traced_run()
        path = tmp_path / "spans.jsonl"
        count = write_jsonl(path, tracer.spans)
        lines = path.read_text().splitlines()
        assert len(lines) == count == len(tracer.spans)
        first = json.loads(lines[0])
        assert first["name"] == "run" and first["parent_id"] is None

    def test_records_carry_all_fields(self):
        (record,) = span_records(traced_run().spans[:1])
        assert set(record) == {
            "span_id", "parent_id", "name", "kind", "start", "end",
            "seconds", "rank", "attrs",
        }


class TestFlamegraph:
    def test_merges_same_named_siblings(self):
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("run"):
            for _ in range(3):
                tracer.add_span("kernel.apply", kind="kernel", start=0.0, end=0.0)
        text = format_flamegraph(tracer.spans)
        assert text.count("kernel.apply") == 1
        assert "x3" in text

    def test_rank_lane_copies_excluded(self):
        text = format_flamegraph(traced_run().spans)
        # one driver comm span, four lane copies: only the driver row shows
        assert "x4" not in text
        assert "comm.alltoall" in text

    def test_empty_input(self):
        assert format_flamegraph([]) == "(no spans)"
