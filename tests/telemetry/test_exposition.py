"""Prometheus text-format exposition: escaping, ordering, edge cases."""
# lint: skip-file=metric-name -- throwaway instrument names in fixtures

from __future__ import annotations

from repro.telemetry.exposition import (
    CONTENT_TYPE,
    escape_label_value,
    parse_metric_key,
    prometheus_exposition,
    prometheus_name,
    render_prometheus,
)
from repro.telemetry.metrics import MetricsRegistry


class TestKeyParsing:
    def test_bare_name(self):
        assert parse_metric_key("comm.bytes_on_network") == (
            "comm.bytes_on_network",
            {},
        )

    def test_labels_round_trip(self):
        name, labels = parse_metric_key("op.seconds{k=4,kind=swap}")
        assert name == "op.seconds"
        assert labels == {"k": "4", "kind": "swap"}

    def test_empty_label_value_survives(self):
        # locktrack renders TrackedLock names that can be empty strings.
        name, labels = parse_metric_key("lock.acquire.count{name=}")
        assert name == "lock.acquire.count"
        assert labels == {"name": ""}


class TestNameMangling:
    def test_dots_become_underscores(self):
        assert prometheus_name("service.queue.depth") == "service_queue_depth"

    def test_leading_digit_prefixed(self):
        assert prometheus_name("0weird") == "_0weird"

    def test_already_valid_untouched(self):
        assert prometheus_name("plain_name:sub") == "plain_name:sub"


class TestLabelEscaping:
    def test_backslash_quote_newline(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_escaped_values_render_on_one_line(self):
        reg = MetricsRegistry()
        reg.counter("svc.hits", path='a"b\\c\nd').inc()
        page = prometheus_exposition(reg)
        assert page.count("\n") == page.rstrip("\n").count("\n") + 1
        assert 'path="a\\"b\\\\c\\nd"' in page


class TestRendering:
    def test_empty_registry_renders_empty(self):
        assert prometheus_exposition(MetricsRegistry()) == ""
        assert render_prometheus({}) == ""

    def test_content_type_is_version_0_0_4(self):
        assert "version=0.0.4" in CONTENT_TYPE

    def test_counter_gauge_types_from_instruments(self):
        reg = MetricsRegistry()
        reg.counter("svc.requests").inc(3)
        reg.gauge("svc.inflight").set(2)
        page = prometheus_exposition(reg)
        assert "# TYPE svc_requests counter" in page
        assert "# TYPE svc_inflight gauge" in page
        assert "svc_requests 3" in page
        assert "svc_inflight 2" in page

    def test_histogram_renders_as_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("svc.wait_seconds", tenant="alpha")
        for v in (0.1, 0.2, 0.4):
            h.observe(v)
        page = prometheus_exposition(reg)
        assert "# TYPE svc_wait_seconds summary" in page
        for q in ("0.5", "0.95", "0.99"):
            assert f'svc_wait_seconds{{tenant="alpha",quantile="{q}"}}' in page
        assert 'svc_wait_seconds_sum{tenant="alpha"}' in page
        assert 'svc_wait_seconds_count{tenant="alpha"} 3' in page

    def test_empty_label_value_renders(self):
        reg = MetricsRegistry()
        reg.counter("lock.acquire.count", name="").inc()
        assert 'lock_acquire_count{name=""} 1' in prometheus_exposition(reg)

    def test_two_scrapes_of_idle_registry_are_identical(self):
        reg = MetricsRegistry()
        reg.counter("svc.requests", tenant="b").inc()
        reg.counter("svc.requests", tenant="a").inc(2)
        reg.histogram("svc.wait_seconds").observe(1.0)
        reg.gauge("svc.depth").set(4)
        assert prometheus_exposition(reg) == prometheus_exposition(reg)

    def test_snapshot_vs_exposition_round_trip(self):
        # Rendering a snapshot dict directly equals rendering the live
        # registry, modulo instrument-derived TYPE lines.
        reg = MetricsRegistry()
        reg.counter("svc.requests").inc(7)
        reg.histogram("svc.wait_seconds").observe(0.5)
        from_snapshot = render_prometheus(reg.snapshot())
        live = prometheus_exposition(reg)
        strip = lambda page: [  # noqa: E731
            line for line in page.splitlines()
            if not line.startswith("# TYPE")
        ]
        assert strip(from_snapshot) == strip(live)

    def test_label_sets_ordered_deterministically(self):
        reg = MetricsRegistry()
        # Registration order deliberately scrambled vs label order.
        reg.counter("svc.requests", tenant="c").inc()
        reg.counter("svc.requests", tenant="a").inc()
        reg.counter("svc.requests", tenant="b").inc()
        lines = prometheus_exposition(reg).splitlines()
        tenants = [ln.split('"')[1] for ln in lines if 'tenant="' in ln]
        assert tenants == ["a", "b", "c"]

    def test_base_names_do_not_interleave(self):
        # 'op.seconds2' must not split the 'op.seconds' family even
        # though '{' sorts after alphanumerics in raw key order.
        reg = MetricsRegistry()
        reg.counter("op.seconds", kind="x").inc()
        reg.counter("op.seconds2").inc()
        reg.counter("op.seconds", kind="y").inc()
        lines = prometheus_exposition(reg).splitlines()
        type_lines = [ln for ln in lines if ln.startswith("# TYPE")]
        assert type_lines == [
            "# TYPE op_seconds counter",
            "# TYPE op_seconds2 counter",
        ]

    def test_special_float_values(self):
        page = render_prometheus(
            {"m.inf": float("inf"), "m.nan": float("nan")}
        )
        assert "m_inf +Inf" in page
        assert "m_nan NaN" in page

    def test_mixed_types_under_one_name_render_untyped(self):
        reg = MetricsRegistry()
        reg.counter("svc.thing", a="1").inc()
        reg.gauge("svc.thing", a="2").set(5)
        assert "# TYPE svc_thing untyped" in prometheus_exposition(reg)
