"""MetricsRegistry unit tests: instruments, labels, snapshots."""
# lint: skip-file=metric-name -- throwaway one-letter instrument names

from __future__ import annotations

import json

import pytest

from repro.telemetry import NULL_METRICS, MetricsRegistry
from repro.telemetry.metrics import _render_key


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("comm.bytes_on_network").inc(100)
        reg.counter("comm.bytes_on_network").inc(28)
        assert reg.counter("comm.bytes_on_network").value == 128

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_keeps_last_value(self):
        reg = MetricsRegistry()
        g = reg.gauge("schedule.stages")
        g.set(3)
        g.set(7)
        assert g.value == 7

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("kernel.apply.seconds", k=4)
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3 and h.mean == 2.0
        summary = h.summary()
        assert {
            k: summary[k] for k in ("count", "sum", "min", "max", "mean")
        } == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0}
        # Quantile estimates are clamped into the observed range and
        # ordered; the top percentile lands on the max.
        assert 1.0 <= summary["p50"] <= summary["p95"] <= summary["p99"]
        assert summary["p99"] == 3.0

    def test_summary_key_order_is_deterministic(self):
        h = MetricsRegistry().histogram("h")
        h.observe(1.0)
        assert list(h.summary()) == [
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
        ]

    def test_empty_histogram_summary(self):
        h = MetricsRegistry().histogram("h")
        summary = h.summary()
        assert summary["count"] == 0 and h.mean == 0.0
        assert summary["min"] is None and summary["max"] is None
        assert summary["p50"] == summary["p99"] == 0.0

    def test_quantiles_track_a_known_distribution(self):
        h = MetricsRegistry().histogram("h")
        for i in range(1, 101):
            h.observe(float(i))
        # Log-bucketed estimates carry ~9% relative error at base 2^0.25.
        assert h.quantile(0.5) == pytest.approx(50.0, rel=0.15)
        assert h.quantile(0.95) == pytest.approx(95.0, rel=0.15)
        assert h.quantile(0.0) == 1.0 or h.quantile(0.0) <= h.quantile(0.5)
        assert h.quantile(1.0) == 100.0

    def test_quantile_is_order_independent(self):
        a = MetricsRegistry().histogram("a")
        b = MetricsRegistry().histogram("b")
        values = [0.01, 5.0, 0.3, 2.5, 0.07, 9.0, 1.1]
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        for q in (0.5, 0.95, 0.99):
            assert a.quantile(q) == b.quantile(q)

    def test_nonpositive_observations_share_underflow_bucket(self):
        h = MetricsRegistry().histogram("h")
        for v in (0.0, -1.0, 0.0, 4.0):
            h.observe(v)
        assert h.count == 4 and h.nonpositive == 3
        assert h.quantile(0.5) == -1.0  # min is the best estimate
        assert h.quantile(1.0) == 4.0

    def test_quantile_rejects_out_of_range(self):
        h = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestRegistry:
    def test_labels_create_distinct_instruments(self):
        reg = MetricsRegistry()
        reg.histogram("kernel.apply.seconds", k=2).observe(1.0)
        reg.histogram("kernel.apply.seconds", k=4).observe(2.0)
        assert len(reg) == 2
        assert reg.histogram("kernel.apply.seconds", k=2).count == 1

    def test_label_key_rendering_is_sorted(self):
        assert _render_key("m", {}) == "m"
        assert _render_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("comm.alltoall_steps").inc(3)
        reg.gauge("schedule.swaps").set(5)
        reg.histogram("op.seconds", kind="swap").observe(0.25)
        snap = reg.snapshot()
        assert snap["comm.alltoall_steps"] == 3
        assert snap["op.seconds{kind=swap}"]["count"] == 1
        json.dumps(snap)  # must serialize
        assert list(snap) == sorted(snap)

    def test_format_lists_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("b").observe(2.0)
        text = reg.format()
        assert "a: 1" in text
        assert "b: count=1 sum=2 mean=2" in text

    def test_disabled_registry_is_inert(self):
        assert NULL_METRICS.enabled is False
        c = NULL_METRICS.counter("anything")
        c.inc(10**9)
        NULL_METRICS.gauge("g").set(5)
        NULL_METRICS.histogram("h").observe(1.0)
        assert c.value == 0
        assert NULL_METRICS.snapshot() == {}
        assert len(NULL_METRICS) == 0
