"""MetricsRegistry unit tests: instruments, labels, snapshots."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import NULL_METRICS, MetricsRegistry
from repro.telemetry.metrics import _render_key


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("comm.bytes_on_network").inc(100)
        reg.counter("comm.bytes_on_network").inc(28)
        assert reg.counter("comm.bytes_on_network").value == 128

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_keeps_last_value(self):
        reg = MetricsRegistry()
        g = reg.gauge("schedule.stages")
        g.set(3)
        g.set(7)
        assert g.value == 7

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("kernel.apply.seconds", k=4)
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3 and h.mean == 2.0
        assert h.summary() == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_empty_histogram_summary(self):
        h = MetricsRegistry().histogram("h")
        assert h.summary()["count"] == 0 and h.mean == 0.0


class TestRegistry:
    def test_labels_create_distinct_instruments(self):
        reg = MetricsRegistry()
        reg.histogram("kernel.apply.seconds", k=2).observe(1.0)
        reg.histogram("kernel.apply.seconds", k=4).observe(2.0)
        assert len(reg) == 2
        assert reg.histogram("kernel.apply.seconds", k=2).count == 1

    def test_label_key_rendering_is_sorted(self):
        assert _render_key("m", {}) == "m"
        assert _render_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("comm.alltoall_steps").inc(3)
        reg.gauge("schedule.swaps").set(5)
        reg.histogram("op.seconds", kind="swap").observe(0.25)
        snap = reg.snapshot()
        assert snap["comm.alltoall_steps"] == 3
        assert snap["op.seconds{kind=swap}"]["count"] == 1
        json.dumps(snap)  # must serialize
        assert list(snap) == sorted(snap)

    def test_format_lists_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("b").observe(2.0)
        text = reg.format()
        assert "a: 1" in text
        assert "b: count=1 sum=2 mean=2" in text

    def test_disabled_registry_is_inert(self):
        assert NULL_METRICS.enabled is False
        c = NULL_METRICS.counter("anything")
        c.inc(10**9)
        NULL_METRICS.gauge("g").set(5)
        NULL_METRICS.histogram("h").observe(1.0)
        assert c.value == 0
        assert NULL_METRICS.snapshot() == {}
        assert len(NULL_METRICS) == 0
