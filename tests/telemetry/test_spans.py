"""Tracer/Span unit tests: nesting, stack repair, events, verification."""

from __future__ import annotations

from repro.telemetry import NULL_TRACER, Tracer, verify_nesting
from repro.telemetry.spans import NULL_SPAN_CONTEXT


class FakeClock:
    """Deterministic clock; ``tick()`` advances it."""

    def __init__(self) -> None:
        self.t = 100.0  # non-zero epoch: spans must be epoch-relative

    def __call__(self) -> float:
        return self.t

    def tick(self, dt: float = 1.0) -> float:
        self.t += dt
        return self.t


def make_tracer(**kwargs):
    clock = FakeClock()
    return Tracer(clock=clock, **kwargs), clock


class TestTracer:
    def test_nested_spans_form_a_tree(self):
        tracer, clock = make_tracer()
        with tracer.span("outer", kind="run") as outer:
            clock.tick()
            with tracer.span("inner", kind="kernel", k=3) as inner:
                clock.tick()
            clock.tick()
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.attrs == {"k": 3}
        assert outer.seconds == 3.0 and inner.seconds == 1.0
        assert verify_nesting(tracer.spans) == []

    def test_times_are_epoch_relative(self):
        tracer, clock = make_tracer()
        clock.tick(5.0)
        with tracer.span("op"):
            clock.tick()
        (span,) = tracer.spans
        assert span.start == 5.0 and span.end == 6.0
        assert tracer.now() == clock() - tracer.epoch

    def test_current_tracks_the_open_span(self):
        tracer, _ = make_tracer()
        assert tracer.current is None
        with tracer.span("a") as a:
            assert tracer.current is a
            with tracer.span("b") as b:
                assert tracer.current is b
            assert tracer.current is a
        assert tracer.current is None

    def test_forgotten_inner_span_is_repaired(self):
        """Closing an outer span force-closes leaked children."""
        tracer, clock = make_tracer()
        outer_cm = tracer.span("outer")
        outer = outer_cm.__enter__()
        inner_cm = tracer.span("inner")
        inner = inner_cm.__enter__()
        clock.tick()
        outer_cm.__exit__(None, None, None)  # inner never exited
        assert inner.finished and inner.end == outer.end
        assert tracer.current is None
        assert verify_nesting(tracer.spans) == []

    def test_exception_still_closes_span(self):
        tracer, clock = make_tracer()
        try:
            with tracer.span("doomed"):
                clock.tick()
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.spans[0].finished

    def test_event_is_zero_duration_child(self):
        tracer, clock = make_tracer()
        with tracer.span("run") as run:
            clock.tick()
            evt = tracer.event("fault", kind="fault", detail="x")
        assert evt.seconds == 0.0
        assert evt.parent_id == run.span_id
        assert evt.attrs == {"detail": "x"}

    def test_add_span_defaults_parent_to_open_span(self):
        tracer, clock = make_tracer()
        with tracer.span("comm") as comm:
            start = tracer.now()
            clock.tick()
            lane = tracer.add_span(
                "comm.alltoall", kind="comm", start=start,
                end=tracer.now(), rank=2, bytes=1024,
            )
        assert lane.parent_id == comm.span_id
        assert lane.rank == 2 and lane.attrs["bytes"] == 1024
        assert verify_nesting(tracer.spans) == []

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x") is NULL_SPAN_CONTEXT
        with tracer.span("x") as span:
            assert span is None
        assert tracer.event("e") is None
        assert tracer.add_span("a", start=0.0, end=1.0) is None
        assert tracer.spans == []
        assert NULL_TRACER.enabled is False


class TestVerifyNesting:
    def test_flags_unfinished_span(self):
        tracer, _ = make_tracer()
        tracer.span("open").__enter__()
        problems = verify_nesting(tracer.spans)
        assert problems and "never finished" in problems[0]

    def test_flags_child_escaping_parent(self):
        tracer, clock = make_tracer()
        with tracer.span("parent"):
            clock.tick()
        tracer.add_span("bad", start=0.0, end=99.0, parent_id=0)
        problems = verify_nesting(tracer.spans)
        assert any("escapes parent" in p for p in problems)

    def test_flags_same_lane_sibling_overlap(self):
        tracer, _ = make_tracer()
        tracer.add_span("a", start=0.0, end=2.0)
        tracer.add_span("b", start=1.0, end=3.0)
        assert any("overlap" in p for p in verify_nesting(tracer.spans))

    def test_rank_lanes_may_share_wall_time(self):
        """Per-rank lane copies of one collective are not an overlap."""
        tracer, _ = make_tracer()
        for rank in range(4):
            tracer.add_span("comm.alltoall", start=0.0, end=2.0, rank=rank)
        assert verify_nesting(tracer.spans) == []

    def test_flags_unknown_parent(self):
        tracer, _ = make_tracer()
        tracer.add_span("orphan", start=0.0, end=1.0, parent_id=999)
        assert any("unknown parent" in p for p in verify_nesting(tracer.spans))

    def test_tolerance_forgives_clock_jitter(self):
        tracer, clock = make_tracer()
        with tracer.span("parent"):
            clock.tick()
        tracer.add_span("child", start=-1e-9, end=1.0, parent_id=0)
        assert verify_nesting(tracer.spans)  # strict: escapes
        assert verify_nesting(tracer.spans, tolerance=1e-6) == []
