"""Predicted-vs-actual report tests against a real traced run.

The acceptance criterion: the report's comm-byte join between the trace,
the CommStats counters and the timeline model's predictions is *exact* —
the modeled all-to-all arithmetic and the simulated MPI layer implement
the same formula.
"""

from __future__ import annotations

import pytest

from repro.circuit import generate_supremacy_circuit
from repro.distributed import DistributedSimulator
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.telemetry import StageComparison, Telemetry, perf_report, verify_nesting

_N, _DEPTH, _L = 12, 16, 10


@pytest.fixture(scope="module")
def traced_run():
    circ = generate_supremacy_circuit(_N, _DEPTH, seed=0)
    sched = schedule_circuit(
        circ, SchedulerConfig(local_qubits=_L, kmax=4, seed=1)
    )
    assert sched.num_swaps >= 1
    sim = DistributedSimulator(_N, _L, telemetry=Telemetry.enabled())
    result = sim.run_schedule(sched)
    return sched, result, sim.telemetry


class TestByteJoin:
    def test_trace_bytes_match_comm_stats_exactly(self, traced_run):
        sched, result, _ = traced_run
        report = perf_report(sched, result.trace, result.comm)
        assert report.measured_comm_bytes == result.comm.bytes_on_network
        assert all(s.bytes_match for s in report.stages)
        assert not any("bytes" in f for f in report.flags)

    def test_metrics_counter_matches_comm_stats(self, traced_run):
        _, result, telemetry = traced_run
        snap = telemetry.metrics.snapshot()
        assert snap["comm.bytes_on_network"] == result.comm.bytes_on_network
        assert snap["comm.alltoall_steps"] == result.comm.alltoall_steps

    def test_predicted_bytes_match_measured(self, traced_run):
        """The model's byte formula is the comm layer's byte formula."""
        sched, result, _ = traced_run
        report = perf_report(sched, result.trace, result.comm)
        assert report.predicted_comm_bytes == report.measured_comm_bytes

    def test_byte_mismatch_is_flagged(self, traced_run):
        sched, result, _ = traced_run

        class WrongStats:
            bytes_on_network = result.comm.bytes_on_network + 1

        report = perf_report(sched, result.trace, WrongStats())
        assert not report.passed
        assert any("CommStats" in f for f in report.flags)


class TestReportShape:
    def test_one_comparison_per_stage(self, traced_run):
        sched, result, _ = traced_run
        report = perf_report(sched, result.trace, result.comm)
        assert len(report.stages) == len(sched.stages)
        assert [s.stage for s in report.stages] == list(
            range(len(sched.stages))
        )

    def test_format_renders_every_stage(self, traced_run):
        sched, result, _ = traced_run
        report = perf_report(sched, result.trace, result.comm)
        text = report.format()
        assert "predicted vs actual" in text
        assert text.count("\n") >= len(report.stages) + 5
        assert f"{report.scale:.3g}x" in text

    def test_huge_tolerance_passes_time_shape(self, traced_run):
        """With an infinite tolerance only byte mismatches could flag."""
        sched, result, _ = traced_run
        report = perf_report(
            sched, result.trace, result.comm, tolerance=float("inf")
        )
        assert report.passed, report.flags

    def test_stage_comparison_properties(self):
        s = StageComparison(
            stage=0, clusters=2,
            predicted_kernel_seconds=1.0, measured_kernel_seconds=2.0,
            predicted_comm_seconds=0.5, measured_comm_seconds=0.25,
            predicted_comm_bytes=64, measured_comm_bytes=64,
        )
        assert s.bytes_match
        assert s.predicted_seconds == 1.5 and s.measured_seconds == 2.25


class TestTraceIntegrity:
    def test_span_tree_is_well_formed(self, traced_run):
        _, result, telemetry = traced_run
        assert verify_nesting(telemetry.tracer.spans, tolerance=1e-9) == []
        assert result.trace.spans

    def test_trace_signature_stable_for_same_schedule(self, traced_run):
        sched, result, _ = traced_run
        again = DistributedSimulator(
            _N, _L, telemetry=Telemetry.enabled()
        ).run_schedule(sched)
        assert again.trace.signature() == result.trace.signature()
