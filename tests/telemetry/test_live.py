"""ExpositionServer HTTP plane: /metrics, /healthz, /statusz."""
# lint: skip-file=metric-name -- throwaway instrument names in fixtures

from __future__ import annotations

import asyncio
import json

from repro.telemetry.exposition import CONTENT_TYPE, prometheus_exposition
from repro.telemetry.live import ExpositionServer, http_get
from repro.telemetry.metrics import MetricsRegistry


async def _get(port, path):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, http_get, port, path)


def _serve(test_body, **server_kwargs):
    """Run an ExpositionServer on an ephemeral port around test_body."""

    async def runner():
        registry = server_kwargs.pop("registry", None)
        if registry is None:
            registry = MetricsRegistry()
        server = ExpositionServer(registry, **server_kwargs)
        port = await server.start(port=0)
        try:
            await test_body(server, port, registry)
        finally:
            await server.stop()

    asyncio.run(runner())


class TestEndpoints:
    def test_metrics_serves_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("svc.requests", tenant="alpha").inc(3)

        async def body(server, port, reg):
            status, text = await _get(port, "/metrics")
            assert status == 200
            assert text == prometheus_exposition(reg)
            assert 'svc_requests{tenant="alpha"} 3' in text

        _serve(body, registry=registry)

    def test_metrics_content_type(self):
        async def body(server, port, reg):
            status, content_type, text = await asyncio.get_running_loop() \
                .run_in_executor(None, server._respond, "/metrics")
            assert status == 200
            assert content_type == CONTENT_TYPE

        _serve(body)

    def test_healthz_ok_and_unhealthy(self):
        healthy = {"value": (True, "ok")}

        async def body(server, port, reg):
            status, text = await _get(port, "/healthz")
            assert (status, text.strip()) == (200, "ok")
            healthy["value"] = (False, "queue saturated")
            status, text = await _get(port, "/healthz")
            assert status == 503
            assert "queue saturated" in text

        _serve(body, health_provider=lambda: healthy["value"])

    def test_healthz_defaults_to_ok_without_provider(self):
        async def body(server, port, reg):
            status, _ = await _get(port, "/healthz")
            assert status == 200

        _serve(body)

    def test_statusz_serves_json(self):
        async def body(server, port, reg):
            status, text = await _get(port, "/statusz")
            assert status == 200
            assert json.loads(text) == {"tenants": {"alpha": {"queued": 1}}}

        _serve(
            body,
            status_provider=lambda: {"tenants": {"alpha": {"queued": 1}}},
        )

    def test_unknown_path_is_404(self):
        async def body(server, port, reg):
            status, _ = await _get(port, "/nope")
            assert status == 404

        _serve(body)

    def test_on_scrape_hook_runs_before_render(self):
        calls = []
        registry = MetricsRegistry()

        def refresh():
            calls.append(1)
            registry.gauge("svc.depth").set(len(calls))

        async def body(server, port, reg):
            status, text = await _get(port, "/metrics")
            assert status == 200 and "svc_depth 1" in text
            status, text = await _get(port, "/metrics")
            assert "svc_depth 2" in text

        _serve(body, registry=registry, on_scrape=refresh)

    def test_two_idle_scrapes_are_byte_identical(self):
        registry = MetricsRegistry()
        registry.counter("svc.requests", tenant="b").inc()
        registry.histogram("svc.wait_seconds", tenant="a").observe(0.5)

        async def body(server, port, reg):
            first = await _get(port, "/metrics")
            second = await _get(port, "/metrics")
            assert first == second

        _serve(body, registry=registry)

    def test_stop_closes_listener(self):
        async def runner():
            server = ExpositionServer(MetricsRegistry())
            port = await server.start(port=0)
            await server.stop()
            loop = asyncio.get_running_loop()
            try:
                await loop.run_in_executor(None, http_get, port, "/metrics")
            except OSError:
                return
            raise AssertionError("server still accepting after stop()")

        asyncio.run(runner())
