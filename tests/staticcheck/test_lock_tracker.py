"""The runtime lock tracker — and its cross-check against the static graph.

The headline test runs a 12-job concurrent service stress load with
:data:`~repro.util.locktrack.LOCK_TRACKER` armed and asserts that every
``(held, acquired)`` pair the process actually walked is predicted by
the static lock-order graph the lint rule builds over the same modules
— i.e. the static analysis is a sound over-approximation of runtime
nesting on this workload, and their union stays acyclic.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path

import pytest

from repro.circuit import generate_supremacy_circuit
from repro.service import JobSpec, ServiceConfig, SimulationService
from repro.staticcheck.lint.rules.lock_order import build_lock_graph
from repro.telemetry import MetricsRegistry
from repro.util.locktrack import LOCK_TRACKER, LockTracker, TrackedLock

REPO = Path(__file__).resolve().parents[2]


# ----------------------------------------------------------------------
# TrackedLock unit behavior
# ----------------------------------------------------------------------
class TestTrackedLock:
    def test_context_manager_and_reentrancy(self):
        lock = TrackedLock("t.lock", tracker=LockTracker())
        with lock:
            with lock:  # RLock by default
                pass

    def test_plain_lock_override(self):
        lock = TrackedLock(
            "t.plain", lock=threading.Lock(), tracker=LockTracker()
        )
        with lock:
            assert not lock.acquire(blocking=False)
        assert lock.acquire(blocking=False)
        lock.release()

    def test_disabled_tracker_records_nothing(self):
        tracker = LockTracker()
        lock = TrackedLock("t.off", tracker=tracker)
        with lock:
            pass
        assert tracker.stats()["acquire_counts"] == {}

    def test_mutual_exclusion_under_tracking(self):
        tracker = LockTracker()
        tracker.enable()
        lock = TrackedLock("t.guard", tracker=tracker)
        counter = {"v": 0}

        def bump():
            for _ in range(500):
                with lock:
                    counter["v"] += 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["v"] == 2000
        assert tracker.stats()["acquire_counts"]["t.guard"] == 2000


class TestLockTracker:
    def test_nesting_edges_and_counts(self):
        tracker = LockTracker()
        tracker.enable()
        a = TrackedLock("t.a", tracker=tracker)
        b = TrackedLock("t.b", tracker=tracker)
        c = TrackedLock("t.c", tracker=tracker)
        with a:
            with b:
                with c:
                    pass
        # One edge from every held lock to the newly acquired one.
        assert tracker.observed_edges() == {
            ("t.a", "t.b"),
            ("t.a", "t.c"),
            ("t.b", "t.c"),
        }
        stats = tracker.stats()
        assert stats["acquire_counts"] == {"t.a": 1, "t.b": 1, "t.c": 1}
        assert all(w >= 0.0 for w in stats["wait_seconds"].values())

    def test_no_self_edges_from_reentrancy(self):
        tracker = LockTracker()
        tracker.enable()
        a = TrackedLock("t.a", tracker=tracker)
        with a:
            with a:
                pass
        assert tracker.observed_edges() == frozenset()

    def test_reset_clears_observations(self):
        tracker = LockTracker()
        tracker.enable()
        with TrackedLock("t.a", tracker=tracker):
            pass
        tracker.reset()
        assert tracker.stats() == {
            "acquire_counts": {},
            "wait_seconds": {},
            "edges": [],
        }

    def test_metrics_mirroring_keys(self):
        tracker = LockTracker()
        registry = MetricsRegistry(enabled=True)
        tracker.bind_metrics(registry)
        tracker.enable()
        with TrackedLock("repro.demo._lock", tracker=tracker):
            pass
        snapshot = registry.snapshot()
        assert snapshot["lock.acquire.count{name=repro.demo._lock}"] == 1
        wait = snapshot["lock.wait.seconds{name=repro.demo._lock}"]
        assert wait["count"] == 1

    def test_disabled_registry_not_bound(self):
        tracker = LockTracker()
        tracker.bind_metrics(MetricsRegistry(enabled=False))
        tracker.enable()
        with TrackedLock("t.a", tracker=tracker):
            pass
        assert tracker.stats()["acquire_counts"] == {"t.a": 1}


# ----------------------------------------------------------------------
# Static graph vs. observed runtime orderings
# ----------------------------------------------------------------------
def _acyclic(edges) -> bool:
    adjacency: dict[str, set[str]] = {}
    for a, b in edges:
        adjacency.setdefault(a, set()).add(b)
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[str, int] = {}

    def dfs(node: str) -> bool:
        color[node] = GRAY
        for nxt in adjacency.get(node, ()):
            state = color.get(nxt, WHITE)
            if state == GRAY:
                return False
            if state == WHITE and not dfs(nxt):
                return False
        color[node] = BLACK
        return True

    return all(
        dfs(n) for n in list(adjacency) if color.get(n, WHITE) == WHITE
    )


class TestStaticRuntimeCrossCheck:
    """The lock-order rule's graph must cover what the service walks."""

    CONCURRENT_MODULES = [
        REPO / "src" / "repro" / "service",
        REPO / "src" / "repro" / "kernels" / "tables.py",
        REPO / "src" / "repro" / "plan",
    ]

    @pytest.fixture(scope="class")
    def static_graph(self):
        return build_lock_graph(self.CONCURRENT_MODULES)

    def test_static_graph_covers_the_shared_locks(self, static_graph):
        assert {
            "repro.service.cache.PlanCache._lock",
            "repro.service.cache.ResultCache._lock",
            "repro.kernels.tables.GatherTableCache._lock",
            "repro.plan.program._PLAN_FOR_LOCK",
        } <= static_graph.nodes
        # The compile-under-cache-lock nesting is the one cross-module
        # edge the concurrent layer is allowed.
        assert (
            "repro.service.cache.PlanCache._lock",
            "repro.plan.program._PLAN_FOR_LOCK",
        ) in static_graph.edge_set()

    def test_static_graph_is_acyclic(self, static_graph):
        assert static_graph.cycles() == []
        assert _acyclic(static_graph.edge_set())

    def test_stress_run_orderings_match_static_graph(self, static_graph):
        """12 concurrent jobs, 3 tenants, 4 workers — observed lock
        nesting must be a subset of the statically predicted graph."""
        specs = []
        for tenant, qubits, depth in (
            ("alpha", 9, 8),
            ("beta", 10, 8),
            ("gamma", 11, 6),
        ):
            circuit = generate_supremacy_circuit(qubits, depth, seed=qubits)
            for repeat in range(4):
                specs.append(
                    JobSpec(
                        tenant=tenant,
                        circuit=circuit,
                        local_qubits=qubits - 2,
                        shots=16,
                        seed=repeat,
                        use_result_cache=False,
                    )
                )

        async def stress() -> list:
            service = SimulationService(ServiceConfig(max_workers=4))
            await service.start()
            try:
                jobs = [await service.submit(spec) for spec in specs]
                return await asyncio.gather(
                    *(service.wait(job) for job in jobs)
                )
            finally:
                await service.shutdown()

        LOCK_TRACKER.reset()
        LOCK_TRACKER.enable()
        try:
            results = asyncio.run(stress())
        finally:
            LOCK_TRACKER.disable()

        assert len(results) == 12
        assert all(r.status.value == "completed" for r in results)

        observed = LOCK_TRACKER.observed_edges()
        static_edges = static_graph.edge_set()
        unpredicted = observed - static_edges
        assert not unpredicted, (
            f"runtime acquired lock orderings the static graph does not "
            f"predict: {sorted(unpredicted)}"
        )
        # Plan-cache misses compile under the cache lock, so the one
        # cross-module edge must actually be exercised by this load.
        assert (
            "repro.service.cache.PlanCache._lock",
            "repro.plan.program._PLAN_FOR_LOCK",
        ) in observed
        # And the union of prediction and observation stays deadlock-free.
        assert _acyclic(static_edges | observed)
        counts = LOCK_TRACKER.stats()["acquire_counts"]
        assert (
            counts["repro.kernels.tables.GatherTableCache._lock"] > 0
        )
        LOCK_TRACKER.reset()
