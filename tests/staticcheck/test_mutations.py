"""Mutation tests: every corruption is caught *as the right bug*.

The acceptance bar for the static checker: programmatically corrupt a
valid scheduler-produced schedule (or its comm plan) in distinct ways
and assert each mutation yields a finding with the matching diagnostic
category, while the unmutated schedule passes with zero findings.
"""

import copy
import types

import numpy as np

from repro.circuit import generate_supremacy_circuit
from repro.scheduling import (
    ClusterOp,
    GateOp,
    SchedulerConfig,
    schedule_circuit,
)
from repro.gates import Gate
from repro.staticcheck import (
    CollectiveOp,
    check_collectives,
    check_comm_stats,
    check_mapping,
    check_schedule,
    comm_plan_for_schedule,
    verify_schedule,
)


def make_schedule(n=10, depth=10, *, l=7, kmax=4, seed=1, **cfg):
    circ = generate_supremacy_circuit(n, depth, seed=seed)
    return schedule_circuit(
        circ, SchedulerConfig(local_qubits=l, kmax=kmax, seed=seed, **cfg)
    )


def mutate(schedule):
    """A deep copy safe to corrupt (ops are shared but stages are not)."""
    clone = copy.copy(schedule)
    clone.stages = [copy.copy(s) for s in schedule.stages]
    for stage in clone.stages:
        stage.ops = list(stage.ops)
    return clone


def first_cluster(schedule):
    """(stage_index, op_index, op) of the first plain ClusterOp."""
    for i, stage in enumerate(schedule.stages):
        for j, op in enumerate(stage.ops):
            if isinstance(op, ClusterOp):
                return i, j, op
    raise AssertionError("schedule has no ClusterOp")


class TestCleanBaseline:
    def test_scheduler_output_is_clean(self):
        report = verify_schedule(make_schedule())
        assert report.clean, report.format()


class TestScheduleMutations:
    # -- mutation 1: widen a cluster beyond kmax ------------------------
    def test_widened_cluster_caught_as_cluster_width(self):
        sched = make_schedule()
        bad = mutate(sched)
        i, j, op = first_cluster(bad)
        local = sorted(
            set(range(sched.num_qubits))
            - bad.stages[i].global_qubits
            - set(op.qubits)
        )
        extra = tuple(local[: sched.kmax + 1 - op.num_qubits])
        assert extra, "need spare local qubits to widen into"
        bad.stages[i].ops[j] = ClusterOp(op.qubits + extra, op.gates)
        report = check_schedule(bad)
        assert "cluster-width" in report.categories(), report.format()
        assert not report.passed

    # -- mutation 2: cluster touching a stage-global qubit --------------
    def test_global_qubit_in_cluster_caught_as_locality(self):
        sched = make_schedule()
        bad = mutate(sched)
        i, j, op = first_cluster(bad)
        gq = min(bad.stages[i].global_qubits)
        bad.stages[i].ops[j] = ClusterOp(op.qubits + (gq,), op.gates)
        report = check_schedule(bad)
        assert "cluster-locality" in report.categories(), report.format()
        assert not report.passed

    # -- mutation 3: corrupt a swap point (unequal exchange) ------------
    def test_unbalanced_swap_caught_as_swap(self):
        sched = make_schedule()
        assert len(sched.stages) >= 2, "need a swap to corrupt"
        bad = mutate(sched)
        shrunk = frozenset(sorted(bad.stages[1].global_qubits)[:-1])
        bad.stages[1].global_qubits = shrunk
        report = check_schedule(bad)
        assert "swap" in report.categories(), report.format()
        assert not report.passed

    # -- mutation 4: no-op swap (dropped stage merge) -------------------
    def test_noop_swap_caught_as_swap_warning(self):
        sched = make_schedule()
        assert len(sched.stages) >= 2
        bad = mutate(sched)
        bad.stages[1].global_qubits = bad.stages[0].global_qubits
        report = check_schedule(bad)
        swap_findings = [
            f for f in report.findings if f.category == "swap"
        ]
        assert swap_findings, report.format()
        assert any("no-op" in f.message for f in swap_findings)

    # -- mutation 5: misdeclared specialization -------------------------
    def test_dense_gate_as_specialized_caught(self):
        sched = make_schedule()
        bad = mutate(sched)
        i = next(
            idx for idx, s in enumerate(bad.stages) if s.global_qubits
        )
        gq = min(bad.stages[i].global_qubits)
        bad.stages[i].ops.append(GateOp(Gate("h", (gq,))))
        report = check_schedule(bad)
        assert "specialization" in report.categories(), report.format()
        assert not report.passed

    # -- mutation 6: dropped gates (coverage) ---------------------------
    def test_dropped_cluster_caught_as_coverage(self):
        sched = make_schedule()
        bad = mutate(sched)
        i, j, _ = first_cluster(bad)
        del bad.stages[i].ops[j]
        report = check_schedule(bad)
        assert "coverage" in report.categories(), report.format()
        assert any("dropped" in f.message for f in report.errors)

    # -- mutation 7: duplicated gates (coverage) ------------------------
    def test_duplicated_cluster_caught_as_coverage(self):
        sched = make_schedule()
        bad = mutate(sched)
        i, j, op = first_cluster(bad)
        bad.stages[i].ops.insert(j, op)
        report = check_schedule(bad)
        assert "coverage" in report.categories(), report.format()
        assert any("more" in f.message for f in report.errors)

    # -- mutation 8: reordered non-commuting gates ----------------------
    def test_reversed_cluster_gates_caught_as_gate_order(self):
        sched = make_schedule()
        detected = False
        for i, stage in enumerate(sched.stages):
            for j, op in enumerate(stage.ops):
                if not isinstance(op, ClusterOp) or len(op.gates) < 2:
                    continue
                bad = mutate(sched)
                bad.stages[i].ops[j] = ClusterOp(
                    op.qubits, tuple(reversed(op.gates))
                )
                report = check_schedule(bad, check_unitarity=False)
                if "gate-order" in report.categories():
                    detected = True
                    break
            if detected:
                break
        assert detected, "no cluster reversal was caught as gate-order"

    # -- mutation 9: non-bijective mapping ------------------------------
    def test_mapping_collision_caught(self):
        sched = make_schedule()
        from repro.scheduling import cluster_bit_mapping

        clusters = [
            op.qubits
            for stage in sched.stages
            for op in stage.ops
            if isinstance(op, ClusterOp)
        ]
        mapping = cluster_bit_mapping(clusters, sched.num_qubits)
        assert check_mapping(mapping, sched.num_qubits).clean
        mapping[0] = mapping[1]  # two qubits share one bit location
        report = check_mapping(mapping, sched.num_qubits)
        assert "mapping" in report.categories(), report.format()
        assert not report.passed

    # -- mutation 10: non-unitary fused matrix --------------------------
    def test_nonunitary_fused_matrix_caught(self):
        sched = make_schedule()
        bad = mutate(sched)
        i, j, op = first_cluster(bad)
        corrupt = ClusterOp(op.qubits, op.gates)
        # Gate.__init__ enforces unitarity, so plant a stub through the
        # cached_property slot — exactly what in-memory corruption of a
        # fused kernel looks like to the checker.
        corrupt.__dict__["fused"] = types.SimpleNamespace(
            matrix=op.fused.matrix * 1.01
        )
        bad.stages[i].ops[j] = corrupt
        report = check_schedule(bad)
        assert "unitarity" in report.categories(), report.format()
        assert not report.passed

    # -- mutation 11: wrong-size stage global set (structure) -----------
    def test_oversized_global_set_caught_as_structure(self):
        sched = make_schedule()
        bad = mutate(sched)
        stage = bad.stages[0]
        extra = min(
            set(range(sched.num_qubits)) - stage.global_qubits
        )
        bad.stages[0].global_qubits = stage.global_qubits | {extra}
        report = check_schedule(bad)
        assert "structure" in report.categories(), report.format()
        assert not report.passed


class TestCommPlanMutations:
    # -- mutation 12: one rank ships a different byte count -------------
    def test_byte_count_disagreement_caught(self):
        sched = make_schedule()
        programs = comm_plan_for_schedule(sched)
        assert check_collectives(programs).clean
        victim = next(r for r, p in enumerate(programs) if p)
        op = programs[victim][0]
        programs[victim][0] = CollectiveOp(
            op.kind, op.group, op.bytes_sent // 2, op.op_index
        )
        report = check_collectives(programs)
        assert "collective-mismatch" in report.categories(), report.format()
        assert any(f.rank is not None for f in report.errors)

    # -- mutation 13: one rank joins the wrong group --------------------
    def test_group_membership_disagreement_caught(self):
        sched = make_schedule()
        programs = comm_plan_for_schedule(sched)
        victim = next(r for r, p in enumerate(programs) if p)
        op = programs[victim][0]
        wrong = tuple(sorted(set(op.group) ^ {op.group[0], op.group[-1] + 1}))
        programs[victim][0] = CollectiveOp(
            op.kind, wrong, op.bytes_sent, op.op_index
        )
        report = check_collectives(programs)
        assert "collective-mismatch" in report.categories(), report.format()

    # -- mutation 14: a rank that never shows up ------------------------
    def test_missing_collective_caught(self):
        sched = make_schedule()
        programs = comm_plan_for_schedule(sched)
        victim = next(r for r, p in enumerate(programs) if p)
        programs[victim] = []
        report = check_collectives(programs)
        assert "collective-mismatch" in report.categories(), report.format()
        assert any("exhausted" in f.message for f in report.errors)

    # -- mutation 15: stats that double-count bytes ---------------------
    def test_inflated_comm_stats_caught_as_byte_conservation(self):
        sched = make_schedule()
        from repro.distributed import DistributedSimulator

        state = DistributedSimulator(
            sched.num_qubits, sched.local_qubits
        ).run_schedule(sched).state
        assert check_comm_stats(sched, state.stats).clean
        state.stats.bytes_on_network += 4096  # a retry double-counted
        report = check_comm_stats(sched, state.stats)
        assert "byte-conservation" in report.categories(), report.format()
        assert not report.passed


class TestMutationCoverageBar:
    def test_at_least_eight_distinct_mutations(self):
        """Meta-test pinning the acceptance bar: >= 8 distinct corruption
        tests exist across the two mutation suites."""
        mutation_tests = [
            name
            for cls in (TestScheduleMutations, TestCommPlanMutations)
            for name in vars(cls)
            if name.startswith("test_")
        ]
        assert len(mutation_tests) >= 8, mutation_tests
