"""The lint framework itself: registry, severities, outputs, CLI, shim."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.staticcheck.lint import (
    SEVERITIES,
    LintRule,
    default_rules,
    register,
    registered_rules,
    render_json,
    render_sarif,
    render_text,
    run_lint,
)

EXPECTED_RULES = {
    "blocking-in-async": "error",
    "daemon-thread-leak": "warning",
    "engine-direct": "error",
    "float-eq": "warning",
    "lock-order": "error",
    "metric-name": "warning",
    "mutable-default": "error",
    "op-loop": "error",
    "plan-pass-mutation": "error",
    "unguarded-global": "warning",
    "view-return": "error",
}


class TestRegistry:
    def test_all_catalogue_rules_registered(self):
        registry = registered_rules()
        assert {n: c.severity for n, c in registry.items()} == EXPECTED_RULES

    def test_every_rule_has_description_and_valid_severity(self):
        for cls in registered_rules().values():
            assert cls.description
            assert cls.severity in SEVERITIES

    def test_rule_subset_selection(self):
        rules = default_rules(["float-eq", "op-loop"])
        assert sorted(r.name for r in rules) == ["float-eq", "op-loop"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            default_rules(["no-such-rule"])

    def test_register_rejects_bad_severity(self):
        with pytest.raises(ValueError, match="severity"):

            @register
            class Bad(LintRule):
                name = "bad-severity-rule"
                severity = "catastrophic"

    def test_register_rejects_duplicate_name(self):
        with pytest.raises(ValueError, match="already registered"):

            @register
            class Clash(LintRule):
                name = "float-eq"
                severity = "warning"


class TestSeverityModel:
    @pytest.fixture
    def mixed_report(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def f(a=[]):\n    return a == 0.5\n", encoding="utf-8"
        )
        return run_lint([path])

    def test_errors_and_warnings_partitioned(self, mixed_report):
        assert {f.rule for f in mixed_report.errors} == {"mutable-default"}
        assert {f.rule for f in mixed_report.warnings} == {"float-eq"}

    def test_exit_code_gates_on_errors(self, mixed_report):
        assert mixed_report.exit_code() == 1

    def test_strict_gates_on_warnings(self, tmp_path):
        path = tmp_path / "warn.py"
        path.write_text("X = 1.0 == 1.0\n", encoding="utf-8")
        report = run_lint([path])
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_syntax_error_is_error_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n", encoding="utf-8")
        report = run_lint([path])
        assert [f.rule for f in report.findings] == ["syntax"]
        assert report.exit_code() == 1


class TestOutputFormats:
    @pytest.fixture
    def report(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def f(a=[]):\n    return a == 0.5\n", encoding="utf-8"
        )
        return run_lint([path])

    def test_text_lines_and_summary(self, report):
        text = render_text(report)
        assert "[mutable-default]" in text
        assert "[float-eq]" in text
        assert "2 finding(s) (1 error, 1 warning, 0 advisory)" in text

    def test_json_schema(self, report):
        payload = json.loads(render_json(report))
        assert payload["schema"] == "repro.lint/1"
        assert payload["summary"]["error"] == 1
        assert payload["summary"]["warning"] == 1
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"mutable-default", "float-eq"}
        assert all(f["fingerprint"] for f in payload["findings"])

    def test_sarif_structure(self, report):
        log = json.loads(render_sarif(report))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert set(EXPECTED_RULES) <= set(rule_ids)
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels == {"mutable-default": "error", "float-eq": "warning"}
        for result in run["results"]:
            loc = result["locations"][0]["physicalLocation"]
            assert loc["region"]["startLine"] >= 1
            assert result["partialFingerprints"]["reproLint/v1"]


class TestCli:
    def test_lint_clean_tree_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text("X = 1\n", encoding="utf-8")
        rc = cli_main(["lint", str(path), "--no-baseline"])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_lint_error_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("def f(a=[]):\n    return a\n", encoding="utf-8")
        rc = cli_main(["lint", str(path), "--no-baseline"])
        assert rc == 1
        assert "[mutable-default]" in capsys.readouterr().out

    def test_strict_fails_on_warning(self, tmp_path, capsys):
        path = tmp_path / "warn.py"
        path.write_text("X = 1.0 == 1.0\n", encoding="utf-8")
        assert cli_main(["lint", str(path), "--no-baseline"]) == 0
        assert (
            cli_main(["lint", str(path), "--no-baseline", "--strict"]) == 1
        )
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text("X = 1\n", encoding="utf-8")
        rc = cli_main(["lint", str(path), "--no-baseline", "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.lint/1"

    def test_sarif_format(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text("X = 1\n", encoding="utf-8")
        rc = cli_main(
            ["lint", str(path), "--no-baseline", "--format", "sarif"]
        )
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["version"] == "2.1.0"

    def test_update_baseline_then_gate(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("def f(a=[]):\n    return a\n", encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        rc = cli_main(
            ["lint", str(path), "--baseline", str(baseline),
             "--update-baseline"]
        )
        assert rc == 0
        assert baseline.exists()
        rc = cli_main(["lint", str(path), "--baseline", str(baseline)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_rule_selection(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("def f(a=[]):\n    return a == 0.5\n")
        rc = cli_main(
            ["lint", str(path), "--no-baseline", "--rule", "float-eq"]
        )
        assert rc == 0  # float-eq is warning severity; no errors selected
        assert "[float-eq]" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        rc = cli_main(
            ["lint", str(tmp_path), "--no-baseline", "--rule", "nope"]
        )
        assert rc == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_RULES:
            assert name in out


class TestShimCompat:
    def test_shim_reexports_framework(self, tmp_path):
        import importlib
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        sys.path.insert(0, str(repo / "tools"))
        try:
            shim = importlib.import_module("repro_lint")
        finally:
            sys.path.pop(0)
        path = tmp_path / "bad.py"
        path.write_text("def f(a=[]):\n    return a\n", encoding="utf-8")
        findings = shim.lint_file(path)
        assert len(findings) == 1
        # Legacy API surface: .check alias and the old format() shape.
        assert findings[0].check == "mutable-default"
        assert findings[0].format().startswith(f"{path}:1: [mutable-default]")
        assert shim.lint_paths([tmp_path]) == findings
