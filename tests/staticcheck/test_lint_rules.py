"""Good/bad fixture snippets for every rule in the lint catalogue.

Each rule gets at least one snippet that must fire and one that must
stay silent, plus the suppression and baseline machinery tests.  The
snippets are written to tmp files so path-sensitive rules (op-loop,
engine-direct) can be exercised under both exempt and non-exempt paths.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.staticcheck.lint import (
    Baseline,
    default_rules,
    lint_file,
    run_lint,
    write_baseline,
)


def lint_snippet(tmp_path, code, rule, *, name="snippet.py", subdir=""):
    """Findings of one *rule* over a dedented snippet on disk."""
    directory = tmp_path / subdir if subdir else tmp_path
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / name
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    return lint_file(path, rules=default_rules([rule]))


# ----------------------------------------------------------------------
# The five ported rules
# ----------------------------------------------------------------------
class TestMutableDefault:
    def test_flags_literal_and_call_defaults(self, tmp_path):
        code = """
        def f(a, b=[]):
            return b

        def g(x={}, *, y=set()):
            return x, y
        """
        found = lint_snippet(tmp_path, code, "mutable-default")
        assert len(found) == 3
        assert all(f.rule == "mutable-default" for f in found)
        assert all(f.severity == "error" for f in found)

    def test_flags_async_def(self, tmp_path):
        code = """
        async def f(items=[]):
            return items
        """
        assert len(lint_snippet(tmp_path, code, "mutable-default")) == 1

    def test_silent_on_none_and_immutables(self, tmp_path):
        code = """
        def f(a=None, b=(), c="x", d=0):
            return a or []
        """
        assert lint_snippet(tmp_path, code, "mutable-default") == []


class TestFloatEq:
    def test_flags_float_equality(self, tmp_path):
        code = """
        import math

        def f(x):
            return x == 0.5 or x != math.pi
        """
        found = lint_snippet(tmp_path, code, "float-eq")
        assert len(found) == 2
        assert all(f.severity == "warning" for f in found)

    def test_silent_on_tolerant_compare(self, tmp_path):
        code = """
        import math

        def f(x):
            return math.isclose(x, 0.5) or abs(x - 0.5) < 1e-9 or x == 3
        """
        assert lint_snippet(tmp_path, code, "float-eq") == []


class TestViewReturn:
    def test_flags_documented_copy_returning_view(self, tmp_path):
        code = """
        def shard_copy(arr):
            \"\"\"Return a copy of the first half.\"\"\"
            return arr[: len(arr) // 2]
        """
        found = lint_snippet(tmp_path, code, "view-return")
        assert len(found) == 1
        assert found[0].severity == "error"

    def test_flags_async_def_too(self, tmp_path):
        # The pre-framework linter skipped _check_copy_doc for async
        # functions; the port runs sync and async through one visitor.
        code = """
        async def fetch_copy(arr):
            \"\"\"Return a fresh array of the buffer.\"\"\"
            return arr.reshape(-1)
        """
        found = lint_snippet(tmp_path, code, "view-return")
        assert len(found) == 1

    def test_silent_when_copying_or_undocumented(self, tmp_path):
        code = """
        def shard_copy(arr):
            \"\"\"Return a copy of the first half.\"\"\"
            return arr[: len(arr) // 2].copy()

        def shard_view(arr):
            \"\"\"Return a view of the first half.\"\"\"
            return arr[: len(arr) // 2]
        """
        assert lint_snippet(tmp_path, code, "view-return") == []

    def test_nested_function_return_not_attributed(self, tmp_path):
        code = """
        def outer(arr):
            \"\"\"Return a copy of the table.\"\"\"
            def helper():
                return arr.ravel()
            return list(arr)
        """
        assert lint_snippet(tmp_path, code, "view-return") == []


OP_LOOP = """
def run(schedule, state):
    for op in schedule.operations():
        op.execute(state)
"""


class TestOpLoop:
    def test_flags_hand_rolled_executor(self, tmp_path):
        found = lint_snippet(tmp_path, OP_LOOP, "op-loop")
        assert len(found) == 1
        assert found[0].severity == "error"

    def test_exempt_under_repro_runtime(self, tmp_path):
        found = lint_snippet(
            tmp_path, OP_LOOP, "op-loop", subdir="repro/runtime"
        )
        assert found == []

    def test_silent_without_execute(self, tmp_path):
        code = """
        def count(schedule):
            return sum(1 for _ in schedule.operations())
        """
        assert lint_snippet(tmp_path, code, "op-loop") == []


ENGINE_DIRECT = """
def run(schedule):
    from repro.runtime import ExecutionEngine

    return ExecutionEngine(schedule).run()
"""


class TestEngineDirect:
    def test_flags_direct_construction(self, tmp_path):
        found = lint_snippet(tmp_path, ENGINE_DIRECT, "engine-direct")
        assert len(found) == 1

    @pytest.mark.parametrize(
        "subdir",
        ["repro/runtime", "repro/service", "tests/runtime", "tests/service"],
    )
    def test_exempt_paths(self, tmp_path, subdir):
        found = lint_snippet(
            tmp_path, ENGINE_DIRECT, "engine-direct", subdir=subdir
        )
        assert found == []


# ----------------------------------------------------------------------
# The four concurrency rules
# ----------------------------------------------------------------------
class TestBlockingInAsync:
    @pytest.mark.parametrize(
        "stmt",
        [
            "time.sleep(1)",
            "open('x').read()",
            "fut.result()",
            "path.read_text()",
            "subprocess.run(['ls'])",
            "socket.create_connection(('h', 1))",
            "self._executor.shutdown(wait=True)",
            "worker_thread.join()",
        ],
    )
    def test_flags_blocking_calls(self, tmp_path, stmt):
        code = f"""
        import socket
        import subprocess
        import time

        async def handler(self, fut, path, worker_thread):
            {stmt}
        """
        found = lint_snippet(tmp_path, code, "blocking-in-async")
        assert len(found) >= 1
        assert all(f.severity == "error" for f in found)

    def test_silent_in_sync_def(self, tmp_path):
        code = """
        import time

        def warmup():
            time.sleep(0.1)
        """
        assert lint_snippet(tmp_path, code, "blocking-in-async") == []

    def test_silent_in_nested_sync_def(self, tmp_path):
        # A sync helper defined inside an async def runs wherever it is
        # called — flagging its body would be the caller's finding.
        code = """
        import time

        async def handler():
            def worker():
                time.sleep(0.1)
            return worker
        """
        assert lint_snippet(tmp_path, code, "blocking-in-async") == []

    def test_silent_on_async_idioms(self, tmp_path):
        code = """
        import asyncio

        async def handler(loop, executor, spec):
            await asyncio.sleep(0.1)
            plan = await loop.run_in_executor(executor, compile, spec)
            await loop.run_in_executor(None, executor.shutdown)
            return plan
        """
        assert lint_snippet(tmp_path, code, "blocking-in-async") == []


class TestUnguardedGlobal:
    CODE = """
    import threading

    _LOCK = threading.Lock()
    _CACHE = {}

    def put(key, value):
        _CACHE[key] = value

    def put_guarded(key, value):
        with _LOCK:
            _CACHE[key] = value

    def mutate():
        _CACHE.update(a=1)
        _CACHE.pop("a", None)
    """

    def test_flags_unguarded_and_accepts_guarded(self, tmp_path):
        found = lint_snippet(tmp_path, self.CODE, "unguarded-global")
        assert len(found) == 3
        assert all(f.severity == "warning" for f in found)

    def test_silent_without_declared_lock(self, tmp_path):
        code = """
        _CACHE = {}

        def put(key, value):
            _CACHE[key] = value
        """
        assert lint_snippet(tmp_path, code, "unguarded-global") == []

    def test_module_level_init_exempt(self, tmp_path):
        code = """
        import threading

        _LOCK = threading.Lock()
        _CACHE = {}
        _CACHE["seed"] = 1
        """
        assert lint_snippet(tmp_path, code, "unguarded-global") == []

    def test_global_rebind_flagged(self, tmp_path):
        code = """
        import threading

        _LOCK = threading.Lock()
        _TABLE = []

        def reset():
            global _TABLE
            _TABLE = []
        """
        found = lint_snippet(tmp_path, code, "unguarded-global")
        assert len(found) == 1


class TestLockOrder:
    def test_flags_cycle(self, tmp_path):
        code = """
        import threading

        a_lock = threading.Lock()
        b_lock = threading.Lock()

        def forward():
            with a_lock:
                with b_lock:
                    pass

        def backward():
            with b_lock:
                with a_lock:
                    pass
        """
        found = lint_snippet(tmp_path, code, "lock-order")
        assert len(found) == 1
        assert found[0].severity == "error"
        assert "deadlock" in found[0].message

    def test_silent_on_consistent_order(self, tmp_path):
        code = """
        import threading

        a_lock = threading.Lock()
        b_lock = threading.Lock()

        def one():
            with a_lock:
                with b_lock:
                    pass

        def two():
            with a_lock:
                with b_lock:
                    pass
        """
        assert lint_snippet(tmp_path, code, "lock-order") == []

    def test_cycle_through_call_resolution(self, tmp_path):
        code = """
        import threading

        a_lock = threading.Lock()
        b_lock = threading.Lock()

        def leaf_takes_a():
            with a_lock:
                pass

        def cycle_via_call():
            with b_lock:
                leaf_takes_a()

        def direct():
            with a_lock:
                with b_lock:
                    pass
        """
        found = lint_snippet(tmp_path, code, "lock-order")
        assert len(found) == 1


class TestDaemonThreadLeak:
    def test_flags_unjoined_thread(self, tmp_path):
        code = """
        import threading

        def spawn(fn):
            t = threading.Thread(target=fn)
            t.start()
        """
        found = lint_snippet(tmp_path, code, "daemon-thread-leak")
        assert len(found) == 1
        assert found[0].severity == "warning"

    def test_flags_unassigned_start_chain(self, tmp_path):
        code = """
        import threading

        def spawn(fn):
            threading.Thread(target=fn).start()
        """
        assert len(lint_snippet(tmp_path, code, "daemon-thread-leak")) == 1

    def test_silent_when_joined_or_with(self, tmp_path):
        code = """
        import threading
        from concurrent.futures import ThreadPoolExecutor

        def run_all(fns):
            workers = []
            for fn in fns:
                t = threading.Thread(target=fn)
                workers.append(t)
                t.start()
            for t in workers:
                t.join()
            with ThreadPoolExecutor(max_workers=2) as pool:
                pool.map(print, fns)
        """
        assert lint_snippet(tmp_path, code, "daemon-thread-leak") == []

    def test_cross_method_attribute_cleanup(self, tmp_path):
        # Creation in __init__, shutdown via a *local* rebind in another
        # method: the canonical service teardown shape.
        code = """
        from concurrent.futures import ThreadPoolExecutor

        class Service:
            def __init__(self):
                self._executor = ThreadPoolExecutor(max_workers=4)

            async def shutdown(self, loop):
                executor = self._executor
                await loop.run_in_executor(None, executor.shutdown)
        """
        assert lint_snippet(tmp_path, code, "daemon-thread-leak") == []

    def test_comprehension_relaxation(self, tmp_path):
        code = """
        import multiprocessing as mp

        def run(n):
            workers = [mp.Process(target=print) for _ in range(n)]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
        """
        assert lint_snippet(tmp_path, code, "daemon-thread-leak") == []

    def test_registered_executor_by_name_is_clean(self, tmp_path):
        # The pipeline layer's shape: create in one method, hand to the
        # process-wide registry, shut down + unregister in finalize.
        code = """
        from concurrent.futures import ThreadPoolExecutor

        from repro.util.executors import register_executor

        class Layer:
            def on_run_start(self):
                self._executor = ThreadPoolExecutor(max_workers=1)
                register_executor(self._executor)
        """
        assert lint_snippet(tmp_path, code, "daemon-thread-leak") == []

    def test_registered_executor_inline_is_clean(self, tmp_path):
        code = """
        from concurrent.futures import ThreadPoolExecutor

        from repro.util.executors import register_executor

        def make_pool():
            register_executor(ThreadPoolExecutor(max_workers=1))
        """
        assert lint_snippet(tmp_path, code, "daemon-thread-leak") == []

    def test_unregistered_executor_still_flags(self, tmp_path):
        # register_executor in the module must not blanket-suppress:
        # a *different*, unregistered pool is still a leak.
        code = """
        from concurrent.futures import ThreadPoolExecutor

        from repro.util.executors import register_executor

        def make_pools():
            register_executor(ThreadPoolExecutor(max_workers=1))
            stray = ThreadPoolExecutor(max_workers=2)
            stray.submit(print)
        """
        found = lint_snippet(tmp_path, code, "daemon-thread-leak")
        assert len(found) == 1


class TestMetricName:
    def test_flags_off_convention_names(self, tmp_path):
        code = """
        def instrument(registry):
            registry.counter("jobs")
            registry.gauge("QueueDepth.size")
            registry.histogram("service.Wait.Seconds")
        """
        found = lint_snippet(tmp_path, code, "metric-name")
        assert len(found) == 3
        assert all(f.severity == "warning" for f in found)
        assert "jobs" in found[0].message

    def test_silent_on_convention_names(self, tmp_path):
        code = """
        def instrument(registry):
            registry.counter("comm.bytes_on_network")
            registry.gauge("service.queue.depth", tenant="a")
            registry.histogram("kernel.apply.seconds", k=4)
            registry.histogram("service.queue.wait_seconds")
        """
        assert lint_snippet(tmp_path, code, "metric-name") == []

    def test_silent_on_dynamic_names_and_other_calls(self, tmp_path):
        code = """
        def instrument(registry, name):
            registry.counter(name)
            registry.counter(f"service.{name}")
            registry.lookup("not a metric")
            counter("bare call, not a method")
        """
        assert lint_snippet(tmp_path, code, "metric-name") == []

    def test_line_suppression(self, tmp_path):
        code = """
        def instrument(registry):
            registry.counter("tmp")  # lint: allow-metric-name
        """
        assert lint_snippet(tmp_path, code, "metric-name") == []


# ----------------------------------------------------------------------
# Suppression and baseline machinery
# ----------------------------------------------------------------------
class TestSuppression:
    def test_line_suppression_with_reason(self, tmp_path):
        code = """
        def f(x):
            return x == 0.0  # lint: allow-float-eq -- exact sentinel
        """
        assert lint_snippet(tmp_path, code, "float-eq") == []

    def test_file_level_skip_all(self, tmp_path):
        code = """
        # lint: skip-file
        def f(a=[]):
            return a == 0.5
        """
        path = tmp_path / "skipped.py"
        path.write_text(textwrap.dedent(code), encoding="utf-8")
        assert lint_file(path) == []

    def test_file_level_skip_named_rule(self, tmp_path):
        code = """
        # lint: skip-file=float-eq
        def f(a=[]):
            return a == 0.5
        """
        path = tmp_path / "partial.py"
        path.write_text(textwrap.dedent(code), encoding="utf-8")
        rules = {f.rule for f in lint_file(path)}
        assert rules == {"mutable-default"}


class TestBaseline:
    def test_baseline_grandfathers_and_new_findings_gate(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("def f(a=[]):\n    return a\n", encoding="utf-8")
        report = run_lint([path])
        assert len(report.errors) == 1

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)
        baseline = Baseline.load(baseline_path)
        assert len(baseline) == 1

        report2 = run_lint([path], baseline=baseline)
        assert report2.errors == []
        assert len(report2.baselined) == 1
        assert report2.exit_code() == 0

        # A new finding is not in the baseline and gates immediately.
        path.write_text(
            "def f(a=[]):\n    return a\n\ndef g(b={}):\n    return b\n",
            encoding="utf-8",
        )
        report3 = run_lint([path], baseline=baseline)
        assert len(report3.baselined) == 1
        assert len(report3.errors) == 1
        assert report3.exit_code() == 1

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("def f(a=[]):\n    return a\n", encoding="utf-8")
        report = run_lint([path])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)

        # Unrelated code above shifts the finding's line number.
        path.write_text(
            "X = 1\nY = 2\n\n\ndef f(a=[]):\n    return a\n",
            encoding="utf-8",
        )
        report2 = run_lint([path], baseline=Baseline.load(baseline_path))
        assert report2.errors == []
        assert len(report2.baselined) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert len(baseline) == 0

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/9", "findings": []}')
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestRepoIsClean:
    def test_src_tree_clean_under_all_rules(self):
        # Acceptance criterion: the shipped tree has no active findings
        # under the full nine-rule catalogue (the committed baseline is
        # empty, so this also means no grandfathered debt).
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        report = run_lint([repo / "src"])
        assert [f.format() for f in report.findings] == []
