"""CLI surface: ``repro check`` and ``simulate --sanitize/--strict``."""

from repro.cli import main
from repro.circuit import generate_supremacy_circuit
from repro.io import save_schedule_json
from repro.scheduling import SchedulerConfig, schedule_circuit


class TestCheckCommand:
    def test_generated_circuit_checks_clean(self, capsys):
        rc = main(
            ["check", "--qubits", "9", "--depth", "8",
             "--local-qubits", "6", "--kmax", "4"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "CLEAN" in out

    def test_schedule_file_checks_clean(self, tmp_path, capsys):
        circ = generate_supremacy_circuit(9, 8, seed=1)
        sched = schedule_circuit(
            circ, SchedulerConfig(local_qubits=6, kmax=4, seed=1)
        )
        path = tmp_path / "sched.json"
        save_schedule_json(sched, path)
        rc = main(["check", "--schedule", str(path)])
        assert rc == 0
        assert "CLEAN" in capsys.readouterr().out

    def test_corrupted_schedule_file_fails(self, tmp_path, capsys):
        import json

        circ = generate_supremacy_circuit(9, 8, seed=1)
        sched = schedule_circuit(
            circ, SchedulerConfig(local_qubits=6, kmax=4, seed=1)
        )
        path = tmp_path / "sched.json"
        save_schedule_json(sched, path)
        blob = json.loads(path.read_text())
        # Drop the first stage's first cluster: a coverage violation.
        for stage in blob["stages"]:
            if stage["ops"]:
                del stage["ops"][0]
                break
        path.write_text(json.dumps(blob))
        rc = main(["check", "--schedule", str(path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out
        assert "coverage" in out

    def test_missing_inputs_is_usage_error(self, capsys):
        assert main(["check"]) == 2
        assert "provide --schedule" in capsys.readouterr().err

    def test_unreadable_schedule_file(self, tmp_path, capsys):
        path = tmp_path / "nope.json"
        assert main(["check", "--schedule", str(path)]) == 2

    def test_no_comm_and_no_unitarity_flags(self, capsys):
        rc = main(
            ["check", "--qubits", "9", "--local-qubits", "6",
             "--kmax", "4", "--no-comm", "--no-unitarity"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "collectives" not in out
        assert "unitarity" not in out


class TestSimulateSanitize:
    def test_sanitized_simulate_passes(self, capsys):
        rc = main(
            ["simulate", "--qubits", "9", "--depth", "8",
             "--local-qubits", "6", "--sanitize"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "sanitizer:" in out
        assert "0 finding(s)" in out

    def test_strict_simulate_passes_clean_schedule(self, capsys):
        rc = main(
            ["simulate", "--qubits", "9", "--depth", "8",
             "--local-qubits", "6", "--strict"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "static check: PASS" in out

    def test_sanitize_requires_distributed(self, capsys):
        rc = main(["simulate", "--qubits", "9", "--sanitize"])
        assert rc == 2
        assert "--local-qubits" in capsys.readouterr().err
