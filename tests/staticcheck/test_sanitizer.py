"""Runtime sanitizer: op_index-pinned NaN / norm / checksum detection."""

import numpy as np
import pytest

from repro.circuit import generate_supremacy_circuit
from repro.distributed import DistributedSimulator
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.staticcheck import (
    SanitizerConfig,
    ShardSanitizer,
    run_sanitized,
)


def make_schedule(n=9, l=6, *, depth=8, seed=2):
    circ = generate_supremacy_circuit(n, depth, seed=seed)
    return schedule_circuit(
        circ, SchedulerConfig(local_qubits=l, kmax=4, seed=seed)
    )


def poison_nan(rank=0, index=0):
    def corrupt(state):
        shard = state.storage.get(rank)
        shard[index] = np.nan
        state.storage.set(rank, shard)

    return corrupt


def flip_amplitude(rank=0, index=3, delta=0.5):
    def corrupt(state):
        shard = state.storage.get(rank)
        shard[index] += delta
        state.storage.set(rank, shard)

    return corrupt


class TestCleanRuns:
    def test_clean_run_has_no_findings(self):
        sched = make_schedule()
        state, report = run_sanitized(sched)
        assert report.passed, report.format()
        assert report.ops_checked == len(list(sched.operations()))
        assert report.norm_trace and all(
            abs(x - 1.0) < 1e-9 for x in report.norm_trace
        )

    def test_sanitized_state_matches_plain_run(self):
        sched = make_schedule()
        plain = DistributedSimulator(
            sched.num_qubits, sched.local_qubits
        ).run_schedule(sched).state
        sanitized, report = run_sanitized(sched)
        assert report.passed
        assert plain.to_statevector().allclose(
            sanitized.to_statevector(), atol=1e-12
        )


class TestNaNDetection:
    @pytest.mark.parametrize("op_index", [0, 2, 5])
    def test_nan_pinned_to_exact_op_index(self, op_index):
        sched = make_schedule()
        _, report = run_sanitized(
            sched, corrupt_during={op_index: poison_nan()}
        )
        nan_findings = [
            f for f in report.findings if f.category == "nan"
        ]
        assert nan_findings, report.format()
        assert nan_findings[0].op_index == op_index
        assert nan_findings[0].rank == 0

    def test_persistent_nan_does_not_cascade(self):
        """NaN injected once stays in the state for every later op, but
        each rank must be reported only when it *first* turns non-finite
        — one corruption, one finding per poisoned rank, not one per op."""
        sched = make_schedule()
        _, report = run_sanitized(sched, corrupt_during={2: poison_nan()})
        nan_findings = [
            f for f in report.findings if f.category == "nan"
        ]
        per_rank = {}
        for f in nan_findings:
            per_rank.setdefault(f.rank, []).append(f)
        for rank, hits in per_rank.items():
            assert len(hits) == 1, report.format()
        assert per_rank[0][0].op_index == 2
        # The non-finite norm latches too: one norm finding total.
        norm_findings = [
            f for f in report.findings if f.category == "norm"
        ]
        assert len(norm_findings) <= 1, report.format()

    def test_nan_detection_can_be_disabled(self):
        sched = make_schedule()
        _, report = run_sanitized(
            sched,
            config=SanitizerConfig(
                check_nan=False, check_norm=False, check_checksums=False
            ),
            corrupt_during={1: poison_nan()},
        )
        assert report.passed


class TestChecksumDivergence:
    def test_divergence_pinned_to_next_op_index(self):
        """Corruption at rest after op k is caught by the checksum pass
        guarding op k+1 — the op that would consume the bad shard."""
        sched = make_schedule()
        k = 1
        _, report = run_sanitized(
            sched, corrupt_after={k: flip_amplitude(rank=1)}
        )
        checksum_findings = [
            f for f in report.findings if f.category == "checksum"
        ]
        assert checksum_findings, report.format()
        assert checksum_findings[0].op_index == k + 1
        assert checksum_findings[0].rank == 1

    def test_one_corruption_reports_once(self):
        sched = make_schedule()
        _, report = run_sanitized(
            sched, corrupt_after={1: flip_amplitude(rank=0)}
        )
        checksum_findings = [
            f for f in report.findings if f.category == "checksum"
        ]
        assert len(checksum_findings) == 1


class TestNormTracking:
    def test_norm_drift_detected_and_pinned(self):
        sched = make_schedule()
        _, report = run_sanitized(
            sched, corrupt_during={3: flip_amplitude(delta=0.25)}
        )
        norm_findings = [
            f for f in report.findings if f.category == "norm"
        ]
        assert norm_findings, report.format()
        assert norm_findings[0].op_index == 3

    def test_norm_drift_reported_once_not_every_op(self):
        sched = make_schedule()
        _, report = run_sanitized(
            sched, corrupt_during={0: flip_amplitude(delta=0.25)}
        )
        norm_findings = [
            f for f in report.findings if f.category == "norm"
        ]
        assert len(norm_findings) == 1


class TestSupervisorHook:
    def test_resilient_run_drives_sanitizer(self, tmp_path):
        sched = make_schedule()
        sanitizer = ShardSanitizer()
        sim = DistributedSimulator(sched.num_qubits, sched.local_qubits)
        result = sim.run_resilient(
            sched, tmp_path / "ckpt", sanitizer=sanitizer
        )
        assert sanitizer.report.ops_checked == len(
            list(sched.operations())
        )
        assert sanitizer.report.passed, sanitizer.report.format()
        plain = sim.run_schedule(sched).state
        assert plain.to_statevector().allclose(
            result.state.to_statevector(), atol=1e-12
        )

    def test_check_state_one_shot(self):
        sched = make_schedule()
        sim = DistributedSimulator(sched.num_qubits, sched.local_qubits)
        state = sim.new_state(sorted(sched.initial_global_qubits))
        sanitizer = ShardSanitizer()
        sanitizer.attach(state)
        assert sanitizer.check_state(state, 0) == []
        shard = state.storage.get(0)
        shard[0] = np.inf
        state.storage.set(0, shard)
        produced = sanitizer.check_state(state, 1)
        cats = {f.category for f in produced}
        assert "nan" in cats and "checksum" in cats


class TestReportFormatting:
    def test_format_mentions_counts(self):
        sched = make_schedule()
        _, report = run_sanitized(sched)
        text = report.format()
        assert "op(s) checked" in text
        assert "0 finding(s)" in text

    def test_as_check_report_roundtrip(self):
        sched = make_schedule()
        _, report = run_sanitized(
            sched, corrupt_during={1: poison_nan()}
        )
        check = report.as_check_report()
        assert not check.passed
        assert "nan" in check.categories()
