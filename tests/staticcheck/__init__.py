"""Tests for repro.staticcheck."""
