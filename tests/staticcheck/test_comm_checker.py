"""Comm-plan derivation, byte prediction and deadlock detection."""

import pytest

from repro.circuit import generate_supremacy_circuit
from repro.distributed import DistributedSimulator
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.staticcheck import (
    BarrierOp,
    CollectiveOp,
    RecvOp,
    SendOp,
    check_collectives,
    check_comm_stats,
    check_deadlock,
    comm_plan_for_schedule,
    predict_comm_stats,
)


def make_schedule(n=10, l=7, *, depth=10, seed=1, **cfg):
    circ = generate_supremacy_circuit(n, depth, seed=seed)
    return schedule_circuit(
        circ, SchedulerConfig(local_qubits=l, kmax=4, seed=seed, **cfg)
    )


class TestPlanDerivation:
    def test_one_program_per_rank(self):
        sched = make_schedule()
        programs = comm_plan_for_schedule(sched)
        assert len(programs) == 1 << (sched.num_qubits - sched.local_qubits)

    def test_plan_is_self_consistent(self):
        programs = comm_plan_for_schedule(make_schedule())
        assert check_collectives(programs).clean
        assert check_deadlock(programs).clean

    def test_alltoall_count_matches_swaps(self):
        sched = make_schedule()
        programs = comm_plan_for_schedule(sched)
        alltoalls = sum(
            1 for op in programs[0] if op.kind == "alltoall"
        )
        assert alltoalls == predict_comm_stats(sched)["alltoall_steps"]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("absorb", [False, True])
    def test_prediction_matches_real_run(self, seed, absorb):
        """The symbolic byte/step prediction equals what an actual
        distributed execution records — byte conservation, exactly."""
        sched = make_schedule(seed=seed, absorb_diagonals=absorb)
        state = DistributedSimulator(
            sched.num_qubits, sched.local_qubits
        ).run_schedule(sched).state
        report = check_comm_stats(sched, state.stats)
        assert report.clean, report.format()

    def test_single_node_schedule_has_empty_plan(self):
        sched = make_schedule(9, 9)
        programs = comm_plan_for_schedule(sched)
        assert programs == [[]]
        pred = predict_comm_stats(sched)
        assert pred["bytes_on_network"] == 0


class TestDeadlockDetection:
    def test_send_recv_cycle(self):
        # 0 sends to 1 while 1 sends to 0: classic rendezvous deadlock.
        programs = [[SendOp(1, 64, 0)], [SendOp(0, 64, 0)]]
        report = check_deadlock(programs)
        assert "deadlock" in report.categories(), report.format()
        assert any("cycle" in f.message for f in report.errors)

    def test_matched_send_recv_is_clean(self):
        programs = [
            [SendOp(1, 64, 0), RecvOp(1, 64, 1)],
            [RecvOp(0, 64, 0), SendOp(0, 64, 1)],
        ]
        assert check_deadlock(programs).clean

    def test_recv_from_silent_rank(self):
        programs = [[RecvOp(1, 64, 0)], []]
        report = check_deadlock(programs)
        assert "deadlock" in report.categories()
        assert any("terminated" in f.message for f in report.errors)

    def test_barrier_group_disagreement_hangs(self):
        programs = [
            [BarrierOp((0, 1), 0)],
            [BarrierOp((1, 2), 0)],
            [BarrierOp((1, 2), 0)],
        ]
        report = check_deadlock(programs)
        assert "deadlock" in report.categories(), report.format()

    def test_collective_missing_member_hangs(self):
        group = (0, 1)
        programs = [
            [CollectiveOp("alltoall", group, 128, 0)],
            [],  # rank 1 never joins
        ]
        report = check_deadlock(programs)
        assert "deadlock" in report.categories()

    def test_matching_collectives_are_clean(self):
        group = (0, 1)
        programs = [
            [CollectiveOp("alltoall", group, 128, 0)],
            [CollectiveOp("alltoall", group, 128, 0)],
        ]
        assert check_deadlock(programs).clean

    def test_three_rank_send_cycle(self):
        programs = [
            [SendOp(1, 8, 0)],
            [SendOp(2, 8, 0)],
            [SendOp(0, 8, 0)],
        ]
        report = check_deadlock(programs)
        assert any("cycle" in f.message for f in report.errors)


class TestCollectiveMatcher:
    def test_out_of_range_group_member(self):
        programs = [[CollectiveOp("alltoall", (0, 99), 64, 0)]]
        report = check_collectives(programs)
        assert "collective-mismatch" in report.categories()
        assert any("outside the job" in f.message for f in report.errors)

    def test_kind_disagreement(self):
        programs = [
            [CollectiveOp("alltoall", (0, 1), 64, 0)],
            [CollectiveOp("renumber", (0, 1), 64, 0)],
        ]
        report = check_collectives(programs)
        assert "collective-mismatch" in report.categories()

    def test_finding_cap_bounds_cascades(self):
        # Two ranks that disagree on every one of 100 collectives must
        # not produce an unbounded finding list.
        a = [CollectiveOp("alltoall", (0, 1), 64, i) for i in range(100)]
        b = [CollectiveOp("alltoall", (0, 1), 32, i) for i in range(100)]
        report = check_collectives([a, b], max_findings=10)
        assert len(report.findings) <= 10
