"""Property-style guarantee: scheduler output always verifies clean.

The static checker is only useful if it never cries wolf — across many
seeds and every scheduler configuration the pipeline supports, `repro
check` must report zero findings (not even warnings).
"""

import pytest

from repro.circuit import generate_supremacy_circuit
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.staticcheck import verify_schedule

SEEDS = list(range(20))

VARIANTS = {
    "default": {},
    "specialize-off": {"specialize_global_diagonal": False},
    "absorb": {"absorb_diagonals": True},
    "no-h-strip": {"skip_initial_hadamards": False},
    "kmax3": {"kmax": 3},
}


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_scheduler_output_verifies_clean(seed, variant):
    circ = generate_supremacy_circuit(9, 8, seed=seed)
    config = SchedulerConfig(
        **{"local_qubits": 6, "kmax": 4, "seed": seed, **VARIANTS[variant]}
    )
    schedule = schedule_circuit(circ, config)
    report = verify_schedule(schedule)
    assert report.clean, f"seed={seed} variant={variant}\n{report.format()}"


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 7, 13])
def test_larger_circuits_verify_clean(seed):
    circ = generate_supremacy_circuit(16, 16, seed=seed)
    schedule = schedule_circuit(
        circ, SchedulerConfig(local_qubits=11, kmax=4, seed=seed)
    )
    report = verify_schedule(schedule)
    assert report.clean, report.format()
