"""The findings model: vocabulary, ranking, formatting, strict mode."""

import pytest

from repro.staticcheck import (
    CATEGORIES,
    CheckReport,
    Finding,
    Severity,
    StaticCheckError,
)


class TestFinding:
    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Finding(severity="fatal", category="swap", message="x")

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown category"):
            Finding(severity="error", category="misc", message="x")

    def test_every_category_constructs(self):
        for category in CATEGORIES:
            Finding(severity="error", category=category, message="x")

    def test_location_rendering(self):
        f = Finding(
            severity="error", category="swap", message="x",
            stage=2, op_index=17, rank=3,
        )
        assert f.location() == "stage 2 / op 17 / rank 3"
        assert Finding(
            severity="info", category="swap", message="x"
        ).location() == "program"

    def test_format_includes_hint(self):
        f = Finding(
            severity="warning", category="swap", message="m", hint="h"
        )
        assert "hint: h" in f.format()
        assert "WARNING" in f.format()


class TestCheckReport:
    def test_sorted_findings_rank_errors_first(self):
        report = CheckReport()
        report.add(Severity.INFO, "swap", "i")
        report.add(Severity.ERROR, "coverage", "e")
        report.add(Severity.WARNING, "swap", "w")
        severities = [f.severity for f in report.sorted_findings()]
        assert severities == ["error", "warning", "info"]

    def test_passed_vs_clean(self):
        report = CheckReport()
        assert report.passed and report.clean
        report.add(Severity.WARNING, "swap", "w")
        assert report.passed and not report.clean
        report.add(Severity.ERROR, "coverage", "e")
        assert not report.passed

    def test_extend_folds_findings_and_check_names(self):
        a = CheckReport(checks_run=["one"])
        a.add(Severity.ERROR, "swap", "x")
        b = CheckReport(checks_run=["two"])
        b.add(Severity.WARNING, "coverage", "y")
        a.extend(b)
        assert a.checks_run == ["one", "two"]
        assert len(a.findings) == 2

    def test_raise_if_failed(self):
        report = CheckReport()
        report.raise_if_failed()  # no error findings: no raise
        report.add(Severity.ERROR, "deadlock", "stuck")
        with pytest.raises(StaticCheckError) as err:
            report.raise_if_failed()
        assert err.value.report is report
        assert "deadlock" in str(err.value)

    def test_format_verdict_lines(self):
        clean = CheckReport(checks_run=["structure"])
        assert "CLEAN" in clean.format()
        warned = CheckReport()
        warned.add(Severity.WARNING, "swap", "w")
        assert "PASS with 1 warning" in warned.format()
        failed = CheckReport()
        failed.add(Severity.ERROR, "coverage", "e")
        assert "FAIL" in failed.format()
