"""PlanCache / ResultCache sharing, LRU bounds and thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.service import JobResult, JobStatus, PlanCache, ResultCache


class TestPlanCache:
    def test_shares_one_entry_across_equal_specs(self, make_spec):
        cache = PlanCache()
        first = cache.get(make_spec("a"))
        second = cache.get(make_spec("b"))  # different tenant, same circuit
        assert first is second
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_distinct_plan_keys_miss(self, make_spec):
        cache = PlanCache()
        cache.get(make_spec())
        cache.get(make_spec(local_qubits=6))
        cache.get(make_spec(kmax=3))
        assert cache.stats()["misses"] == 3
        assert len(cache) == 3

    def test_entry_carries_schedule_and_plan(self, make_spec):
        entry = PlanCache().get(make_spec())
        assert entry.schedule.num_qubits == 9
        assert entry.program.schedule is entry.schedule

    def test_lru_eviction(self, make_spec):
        cache = PlanCache(capacity=1)
        cache.get(make_spec())
        cache.get(make_spec(local_qubits=6))
        assert len(cache) == 1

    def test_concurrent_gets_compile_once(self, make_spec):
        cache = PlanCache()
        spec = make_spec()
        entries = []
        errors = []

        def hit():
            try:
                entries.append(cache.get(spec))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.stats()["misses"] == 1
        assert all(e is entries[0] for e in entries)


class TestResultCache:
    def test_miss_then_hit_marks_from_cache(self):
        cache = ResultCache()
        key = ("h", 7, 5, 0, 0)
        assert cache.get(key) is None
        cache.put(key, JobResult(status=JobStatus.COMPLETED, fingerprint="f"))
        hit = cache.get(key)
        assert hit.from_cache is True
        assert hit.fingerprint == "f"
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "hit_rate": 0.5,
            "entries": 1,
            "capacity": 256,
        }

    def test_capacity_bounds_entries(self):
        cache = ResultCache(capacity=2)
        for i in range(4):
            cache.put(("k", i), JobResult(status=JobStatus.COMPLETED))
        assert len(cache) == 2
        assert cache.get(("k", 0)) is None
        assert cache.get(("k", 3)) is not None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            ResultCache(capacity=0)

    def test_clear(self):
        cache = ResultCache()
        cache.put(("k",), JobResult(status=JobStatus.COMPLETED))
        cache.get(("k",))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0
