"""FairQueue semantics: priority order, weighted fairness, removal."""

from __future__ import annotations

import pytest

from repro.service import FairQueue, Job, JobSpec
from repro.circuit import Circuit
from repro.gates import Gate


def _job(tenant: str, *, priority: int = 0, job_id: str = "") -> Job:
    circuit = Circuit(2, [Gate("h", (0,))])
    spec = JobSpec(
        tenant=tenant, circuit=circuit, local_qubits=2, priority=priority
    )
    return Job(job_id=job_id or f"{tenant}-p{priority}", spec=spec)


class TestSingleTenantOrdering:
    def test_fifo_among_equal_priorities(self):
        q = FairQueue()
        jobs = [_job("a", job_id=f"j{i}") for i in range(4)]
        for job in jobs:
            q.push(job)
        assert [q.pop() for _ in range(4)] == jobs

    def test_higher_priority_first(self):
        q = FairQueue()
        low = _job("a", priority=0)
        high = _job("a", priority=5)
        mid = _job("a", priority=2)
        for job in (low, high, mid):
            q.push(job)
        assert q.pop() is high
        assert q.pop() is mid
        assert q.pop() is low

    def test_pop_empty_returns_none(self):
        assert FairQueue().pop() is None


class TestWeightedFairness:
    def test_equal_weights_interleave(self):
        q = FairQueue()
        a_jobs = [_job("a", job_id=f"a{i}") for i in range(3)]
        b_jobs = [_job("b", job_id=f"b{i}") for i in range(3)]
        for job in a_jobs + b_jobs:
            q.push(job, cost=1.0)
        order = [q.pop().tenant for _ in range(6)]
        # Strict alternation under equal cost and weight.
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_double_weight_gets_double_share(self):
        q = FairQueue(weights={"heavy": 2.0, "light": 1.0})
        for i in range(8):
            q.push(_job("heavy", job_id=f"h{i}"), cost=1.0)
            q.push(_job("light", job_id=f"l{i}"), cost=1.0)
        first_six = [q.pop().tenant for _ in range(6)]
        assert first_six.count("heavy") == 4
        assert first_six.count("light") == 2

    def test_priority_cannot_starve_other_tenants(self):
        q = FairQueue()
        for i in range(3):
            q.push(_job("a", priority=100, job_id=f"a{i}"), cost=1.0)
        q.push(_job("b", priority=0, job_id="b0"), cost=1.0)
        order = [q.pop().job_id for _ in range(4)]
        # b's only job is served second, not last: fairness is
        # cross-tenant, priority is within-tenant.
        assert order.index("b0") == 1

    def test_costly_jobs_yield_the_floor(self):
        q = FairQueue()
        q.push(_job("slow", job_id="s0"), cost=10.0)
        q.push(_job("slow", job_id="s1"), cost=10.0)
        for i in range(5):
            q.push(_job("fast", job_id=f"f{i}"), cost=1.0)
        order = [q.pop().job_id for _ in range(7)]
        # After slow's first 10-second job, fast's entire backlog clears
        # before slow runs again.
        assert order[0] in ("s0", "f0")
        assert order.index("s1") == 6

    def test_idle_tenant_accrues_no_credit(self):
        q = FairQueue()
        # Tenant a burns virtual time while b is idle.
        for i in range(4):
            q.push(_job("a", job_id=f"a{i}"), cost=1.0)
        for _ in range(4):
            q.pop()
        q.push(_job("a", job_id="a-late"), cost=1.0)
        q.push(_job("b", job_id="b0"), cost=1.0)
        q.push(_job("b", job_id="b1"), cost=1.0)
        order = [q.pop().job_id for _ in range(3)]
        # b activates at the current vclock: it alternates rather than
        # draining its whole backlog first.
        assert order != ["b0", "b1", "a-late"]

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            FairQueue(weights={"a": 0.0})


class TestRemoval:
    def test_remove_queued_job(self):
        q = FairQueue()
        stay = _job("a", job_id="stay")
        go = _job("a", job_id="go")
        q.push(stay)
        q.push(go)
        assert q.remove(go) is True
        assert len(q) == 1
        assert q.pop() is stay

    def test_remove_unqueued_job_is_false(self):
        q = FairQueue()
        assert q.remove(_job("a")) is False

    def test_depth_and_tenants(self):
        q = FairQueue()
        q.push(_job("a"))
        q.push(_job("b"))
        q.push(_job("b"))
        assert q.depth("a") == 1
        assert q.depth("b") == 2
        assert q.tenants() == ["a", "b"]
        assert len(q) == 3
