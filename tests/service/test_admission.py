"""Admission control: pricing and every rejection path."""

from __future__ import annotations

from repro.circuit import generate_supremacy_circuit
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.service import AdmissionController, AdmissionPolicy
from repro.telemetry import MetricsRegistry


def _schedule(qubits=9, local=7, depth=8):
    circuit = generate_supremacy_circuit(qubits, depth, seed=7)
    return schedule_circuit(circuit, SchedulerConfig(local_qubits=local))


class TestPricing:
    def test_price_matches_timeline_model(self):
        from repro.perfmodel import ARIES_DRAGONFLY, CORI_KNL_NODE, TimelineModel

        schedule = _schedule()
        controller = AdmissionController()
        predicted, state_bytes = controller.price(schedule)
        expected = TimelineModel(
            CORI_KNL_NODE, ARIES_DRAGONFLY
        ).predict(schedule)
        assert predicted == expected.total_seconds
        assert state_bytes == 16 << schedule.num_qubits

    def test_decision_carries_the_price(self):
        controller = AdmissionController()
        decision = controller.evaluate(
            _schedule(), queue_depth=0, tenant_active=0
        )
        assert decision.admitted
        assert decision.reason is None
        assert decision.state_bytes == 16 << 9
        assert decision.predicted_seconds > 0


class TestRejections:
    def test_memory_budget(self):
        controller = AdmissionController(
            AdmissionPolicy(max_state_bytes=(16 << 9) - 1)
        )
        decision = controller.evaluate(
            _schedule(), queue_depth=0, tenant_active=0
        )
        assert not decision.admitted
        assert decision.reason == "memory"

    def test_predicted_time_budget(self):
        controller = AdmissionController(
            AdmissionPolicy(max_predicted_seconds=0.0)
        )
        decision = controller.evaluate(
            _schedule(), queue_depth=0, tenant_active=0
        )
        assert not decision.admitted
        assert decision.reason == "predicted_time"

    def test_queue_depth_bound(self):
        controller = AdmissionController(AdmissionPolicy(max_queue_depth=4))
        decision = controller.evaluate(
            _schedule(), queue_depth=4, tenant_active=0
        )
        assert decision.reason == "queue_full"

    def test_tenant_quota(self):
        controller = AdmissionController(AdmissionPolicy(max_tenant_active=2))
        decision = controller.evaluate(
            _schedule(), queue_depth=0, tenant_active=2
        )
        assert decision.reason == "tenant_quota"

    def test_rejections_count_per_reason(self):
        registry = MetricsRegistry(enabled=True)
        controller = AdmissionController(
            AdmissionPolicy(max_queue_depth=1), metrics=registry
        )
        schedule = _schedule()
        controller.evaluate(schedule, queue_depth=1, tenant_active=0)
        controller.evaluate(schedule, queue_depth=1, tenant_active=0)
        snapshot = registry.snapshot()
        assert snapshot["service.jobs.rejected{reason=queue_full}"] == 2
