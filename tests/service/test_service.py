"""SimulationService lifecycle: admission, cancellation, concurrency.

The deterministic lifecycle tests (cancel/timeout/failure/quota) swap
:func:`execute_job` for a controllable fake so they never race the real
engine; the mid-run cancellation test and the concurrency stress test
run the real engine — the latter asserts bit-exact fingerprint and
trace-signature parity between concurrent and serial execution.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.runtime import ExecutionEngine, TracingLayer
from repro.runtime.layers import RuntimeLayer
from repro.service import (
    AdmissionPolicy,
    CancelLayer,
    Job,
    JobCancelled,
    JobResult,
    JobStatus,
    PlanCache,
    ServiceConfig,
    SimulationService,
    execute_job,
)

import repro.service.server as server_module


async def _until(predicate, *, timeout: float = 5.0) -> None:
    """Poll *predicate* on the loop until true (or fail the test)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            pytest.fail("condition not reached within timeout")
        await asyncio.sleep(0.001)


class _FakeExecute:
    """execute_job stand-in: blocks until released or cancelled."""

    def __init__(self, error: Exception | None = None) -> None:
        self.release = threading.Event()
        self.started: list[str] = []
        self.error = error

    def __call__(self, job: Job) -> JobResult:
        self.started.append(job.job_id)
        if self.error is not None:
            raise self.error
        while True:
            if job.cancel_event.is_set():
                raise JobCancelled(job.cancel_reason or "cancelled")
            if self.release.wait(0.002):
                return JobResult(
                    status=JobStatus.COMPLETED,
                    fingerprint=f"fake-{job.job_id}",
                )


class TestLifecycle:
    def test_submit_runs_to_completion(self, run_async, make_spec):
        async def scenario():
            service = SimulationService(ServiceConfig(max_workers=2))
            await service.start()
            try:
                job = await service.submit(make_spec("acme"))
                result = await service.wait(job)
            finally:
                await service.shutdown()
            return service, job, result

        service, job, result = run_async(scenario())
        assert job.status is JobStatus.COMPLETED
        assert result.status is JobStatus.COMPLETED
        assert result.fingerprint
        assert result.signature
        assert result.wall_seconds > 0
        assert not result.from_cache
        snapshot = service.metrics.snapshot()
        assert snapshot["service.jobs.submitted{tenant=acme}"] == 1
        assert snapshot["service.jobs.completed{tenant=acme}"] == 1
        assert (
            snapshot["service.queue.wait_seconds{tenant=acme}"]["count"] == 1
        )

    def test_second_identical_submit_hits_result_cache(
        self, run_async, make_spec
    ):
        async def scenario():
            service = SimulationService(ServiceConfig(max_workers=1))
            await service.start()
            try:
                first = await service.wait(
                    await service.submit(make_spec(shots=32, seed=11))
                )
                second_job = await service.submit(
                    make_spec(shots=32, seed=11)
                )
                second = await service.wait(second_job)
            finally:
                await service.shutdown()
            return service, first, second

        service, first, second = run_async(scenario())
        assert not first.from_cache
        assert second.from_cache
        assert second.fingerprint == first.fingerprint
        assert second.samples == first.samples
        # Only the first submission actually executed.
        snapshot = service.metrics.snapshot()
        assert snapshot["service.exec.seconds{tenant=default}"]["count"] == 1
        assert service.results.stats()["hits"] == 1

    def test_plan_shared_across_result_cache_misses(
        self, run_async, make_spec
    ):
        async def scenario():
            service = SimulationService(ServiceConfig(max_workers=2))
            await service.start()
            try:
                jobs = [
                    await service.submit(make_spec(seed=s, shots=8))
                    for s in (1, 2, 3)
                ]
                await asyncio.gather(*(service.wait(j) for j in jobs))
            finally:
                await service.shutdown()
            return service

        service = run_async(scenario())
        # Distinct seeds miss the result cache but share one plan.
        assert service.plans.stats() == {
            "hits": 2,
            "misses": 1,
            "hit_rate": 2 / 3,
            "entries": 1,
            "capacity": 64,
        }

    def test_submit_before_start_raises(self, run_async, make_spec):
        async def scenario():
            await SimulationService().submit(make_spec())

        with pytest.raises(RuntimeError, match="not started"):
            run_async(scenario())


class TestAdmission:
    def test_rejection_is_a_terminal_status(self, run_async, make_spec):
        async def scenario():
            policy = AdmissionPolicy(max_predicted_seconds=0.0)
            service = SimulationService(
                ServiceConfig(max_workers=1, admission=policy)
            )
            await service.start()
            try:
                job = await service.submit(make_spec())
                result = await service.wait(job)
            finally:
                await service.shutdown()
            return job, result

        job, result = run_async(scenario())
        assert job.status is JobStatus.REJECTED
        assert result.status is JobStatus.REJECTED
        assert result.error == "predicted_time"
        assert job.decision is not None and not job.decision.admitted

    def test_tenant_quota_counts_queued_and_running(
        self, run_async, make_spec, monkeypatch
    ):
        fake = _FakeExecute()
        monkeypatch.setattr(server_module, "execute_job", fake)

        async def scenario():
            policy = AdmissionPolicy(max_tenant_active=1)
            service = SimulationService(
                ServiceConfig(max_workers=1, admission=policy)
            )
            await service.start()
            try:
                first = await service.submit(
                    make_spec("acme", use_result_cache=False)
                )
                await _until(lambda: first.status is JobStatus.RUNNING)
                blocked = await service.submit(
                    make_spec("acme", use_result_cache=False)
                )
                other = await service.submit(
                    make_spec("rival", use_result_cache=False)
                )
                fake.release.set()
                await service.wait(first)
                await service.wait(other)
            finally:
                fake.release.set()
                await service.shutdown()
            return first, blocked, other

        first, blocked, other = run_async(scenario())
        assert first.status is JobStatus.COMPLETED
        # Same tenant is over quota; a different tenant is not.
        assert blocked.status is JobStatus.REJECTED
        assert blocked.result.error == "tenant_quota"
        assert other.status is JobStatus.COMPLETED


class TestCancellation:
    def test_cancel_queued_job_never_runs(
        self, run_async, make_spec, monkeypatch
    ):
        fake = _FakeExecute()
        monkeypatch.setattr(server_module, "execute_job", fake)

        async def scenario():
            service = SimulationService(ServiceConfig(max_workers=1))
            await service.start()
            try:
                running = await service.submit(
                    make_spec(use_result_cache=False)
                )
                await _until(lambda: running.status is JobStatus.RUNNING)
                queued = await service.submit(
                    make_spec(use_result_cache=False, seed=1)
                )
                assert queued.status is JobStatus.QUEUED
                assert service.cancel(queued.job_id, reason="operator")
                result = await service.wait(queued)
                fake.release.set()
                await service.wait(running)
            finally:
                fake.release.set()
                await service.shutdown()
            return service, queued, result

        service, queued, result = run_async(scenario())
        assert queued.status is JobStatus.CANCELLED
        assert result.error == "operator"
        assert fake.started == [
            j.job_id
            for j in service.jobs.values()
            if j.status is JobStatus.COMPLETED
        ]

    def test_cancel_running_job_mid_run(
        self, run_async, make_spec, monkeypatch
    ):
        fake = _FakeExecute()
        monkeypatch.setattr(server_module, "execute_job", fake)

        async def scenario():
            service = SimulationService(ServiceConfig(max_workers=1))
            await service.start()
            try:
                job = await service.submit(make_spec(use_result_cache=False))
                await _until(lambda: job.status is JobStatus.RUNNING)
                assert service.cancel(job.job_id)
                result = await service.wait(job)
            finally:
                fake.release.set()
                await service.shutdown()
            return service, job, result

        service, job, result = run_async(scenario())
        assert job.status is JobStatus.CANCELLED
        assert result.status is JobStatus.CANCELLED
        snapshot = service.metrics.snapshot()
        assert snapshot["service.jobs.cancelled{tenant=default}"] == 1

    def test_cancel_terminal_job_is_false(self, run_async, make_spec):
        async def scenario():
            service = SimulationService(ServiceConfig(max_workers=1))
            await service.start()
            try:
                job = await service.submit(make_spec())
                await service.wait(job)
                return service.cancel(job.job_id), service.cancel("nope")
            finally:
                await service.shutdown()

        done, unknown = run_async(scenario())
        assert done is False
        assert unknown is False

    def test_timeout_maps_to_timeout_status(
        self, run_async, make_spec, monkeypatch
    ):
        fake = _FakeExecute()
        monkeypatch.setattr(server_module, "execute_job", fake)

        async def scenario():
            service = SimulationService(ServiceConfig(max_workers=1))
            await service.start()
            try:
                job = await service.submit(
                    make_spec(use_result_cache=False, timeout_seconds=0.02)
                )
                result = await service.wait(job)
            finally:
                fake.release.set()
                await service.shutdown()
            return job, result

        job, result = run_async(scenario())
        assert job.status is JobStatus.TIMEOUT
        assert result.error == "timeout"

    def test_non_drain_shutdown_cancels_everything(
        self, run_async, make_spec, monkeypatch
    ):
        fake = _FakeExecute()
        monkeypatch.setattr(server_module, "execute_job", fake)

        async def scenario():
            service = SimulationService(ServiceConfig(max_workers=1))
            await service.start()
            running = await service.submit(make_spec(use_result_cache=False))
            await _until(lambda: running.status is JobStatus.RUNNING)
            queued = await service.submit(
                make_spec(use_result_cache=False, seed=1)
            )
            await service.shutdown(drain=False)
            return running, queued

        running, queued = run_async(scenario())
        assert queued.status is JobStatus.CANCELLED
        assert queued.result.error == "shutdown"
        assert running.status is JobStatus.CANCELLED
        assert running.result.error == "shutdown"


class TestFailure:
    def test_job_failure_keeps_the_service_up(
        self, run_async, make_spec, monkeypatch
    ):
        fake = _FakeExecute(error=RuntimeError("kernel exploded"))
        monkeypatch.setattr(server_module, "execute_job", fake)

        async def scenario():
            service = SimulationService(ServiceConfig(max_workers=1))
            await service.start()
            try:
                bad = await service.submit(make_spec(use_result_cache=False))
                await service.wait(bad)
                fake.error = None
                fake.release.set()
                good = await service.submit(
                    make_spec(use_result_cache=False, seed=1)
                )
                await service.wait(good)
            finally:
                await service.shutdown()
            return service, bad, good

        service, bad, good = run_async(scenario())
        assert bad.status is JobStatus.FAILED
        assert "kernel exploded" in bad.result.error
        assert good.status is JobStatus.COMPLETED
        snapshot = service.metrics.snapshot()
        assert snapshot["service.jobs.failed{tenant=default}"] == 1


class _TripAfter(RuntimeLayer):
    """Sets the job's cancel event after *n* completed ops."""

    def __init__(self, job: Job, n: int) -> None:
        self._job = job
        self._n = n
        self._seen = 0

    def after_op(self, ctx, unit) -> None:
        self._seen += 1
        if self._seen >= self._n:
            self._job.request_cancel("tripped")


class TestCancelLayer:
    """Real-engine cancellation at an op boundary (no fakes)."""

    def test_pre_set_event_aborts_before_first_op(self, make_spec):
        plans = PlanCache()
        spec = make_spec(use_result_cache=False)
        job = Job(job_id="j", spec=spec, plan_entry=plans.get(spec))
        job.request_cancel("early")
        with pytest.raises(JobCancelled, match="early"):
            execute_job(job)

    def test_mid_run_trip_aborts_at_op_boundary(self, make_spec):
        plans = PlanCache()
        spec = make_spec(use_result_cache=False)
        job = Job(job_id="j", spec=spec, plan_entry=plans.get(spec))
        engine = ExecutionEngine(
            job.plan_entry.program,
            layers=[
                TracingLayer(),
                _TripAfter(job, 3),
                CancelLayer(job),
            ],
        )  # lint: allow-engine-direct
        with pytest.raises(JobCancelled, match="tripped"):
            engine.run()
        assert job.cancel_reason == "tripped"


class TestConcurrencyParity:
    def test_concurrent_results_are_bit_exact_vs_serial(
        self, run_async, make_spec
    ):
        """12 jobs / 4 workers / 3 tenants vs the same specs run serially.

        The acceptance anchor: concurrent execution over the shared
        plan and gather caches must be bit-for-bit identical — state
        fingerprint, sample counts and full trace signature per job.
        """
        specs = [
            make_spec(
                tenant,
                qubits=qubits,
                depth=depth,
                local_qubits=qubits - 2,
                seed=seed,
                shots=16,
                use_result_cache=False,
            )
            for seed, (tenant, qubits, depth) in enumerate(
                [
                    ("alpha", 9, 8),
                    ("beta", 10, 8),
                    ("gamma", 11, 6),
                ]
                * 4
            )
        ]

        async def scenario():
            service = SimulationService(ServiceConfig(max_workers=4))
            await service.start()
            try:
                jobs = [await service.submit(spec) for spec in specs]
                results = await asyncio.gather(
                    *(service.wait(job) for job in jobs)
                )
            finally:
                await service.shutdown()
            return jobs, results

        jobs, concurrent = run_async(scenario())
        assert all(j.status is JobStatus.COMPLETED for j in jobs)

        plans = PlanCache()
        for spec, result in zip(specs, concurrent):
            job = Job(job_id="serial", spec=spec, plan_entry=plans.get(spec))
            serial = execute_job(job)
            assert result.fingerprint == serial.fingerprint
            assert result.samples == serial.samples
            assert result.signature == serial.signature
            assert result.signature_digest == serial.signature_digest


class TestPipelinedJobs:
    def test_pipelined_job_matches_serial(self, run_async, make_spec):
        """spec.pipeline only changes execution timing, never the result
        — which is why it is excluded from plan_key/result_key."""

        async def scenario():
            service = SimulationService(ServiceConfig(max_workers=1))
            await service.start()
            try:
                serial = await service.submit(
                    make_spec(use_result_cache=False)
                )
                piped = await service.submit(
                    make_spec(use_result_cache=False, pipeline=True)
                )
                results = [
                    await service.wait(serial),
                    await service.wait(piped),
                ]
            finally:
                await service.shutdown()
            return results

        serial, piped = run_async(scenario())
        assert serial.status is JobStatus.COMPLETED
        assert piped.status is JobStatus.COMPLETED
        assert not piped.from_cache
        assert piped.fingerprint == serial.fingerprint
        assert piped.signature == serial.signature
        assert piped.signature_digest == serial.signature_digest

    def test_pipeline_shares_cache_keys(self, make_spec):
        serial = make_spec()
        piped = make_spec(pipeline=True)
        assert piped.plan_key() == serial.plan_key()
        assert piped.result_key() == serial.result_key()

    def test_pipeline_parsed_from_wire(self, make_spec):
        from repro.circuit import circuit_to_text
        from repro.service.server import _spec_from_wire

        wire = {
            "circuit": circuit_to_text(make_spec().circuit),
            "local_qubits": 7,
        }
        assert _spec_from_wire(wire).pipeline is False
        assert _spec_from_wire({**wire, "pipeline": True}).pipeline is True
