"""The live observability plane wired through :class:`SimulationService`.

Covers the acceptance anchors of the live plane: a 12-job concurrent
stress run scraped mid-flight must serve valid Prometheus text (checked
by a test-side parser) with per-tenant quantile histograms while
preserving trace ``signature()`` parity vs serial execution, and a job
killed by timeout must leave a flight-recorder JSONL bundle carrying its
``trace_id``, spans, and state transitions.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading

import pytest

from repro.service import (
    Job,
    JobCancelled,
    JobResult,
    JobStatus,
    PlanCache,
    ServiceConfig,
    SimulationService,
    execute_job,
)
from repro.telemetry.live import http_get

import repro.service.server as server_module


async def _until(predicate, *, timeout: float = 5.0) -> None:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            pytest.fail("condition not reached within timeout")
        await asyncio.sleep(0.001)


# ----------------------------------------------------------------------
# Test-side Prometheus text parser
# ----------------------------------------------------------------------
_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_TYPE_RE = re.compile(rf"^# TYPE ({_NAME}) (counter|gauge|summary|untyped)$")
_SAMPLE_RE = re.compile(rf"^({_NAME})(?:\{{(.*)\}})? (\S+)$")
_LABEL_RE = re.compile(rf'({_NAME})="((?:[^"\\\n]|\\.)*)"(?:,|$)')


def parse_prometheus(text: str):
    """Strictly parse exposition text; fail the test on any bad line.

    Returns ``(samples, types)`` where samples is a list of
    ``(name, labels, value)`` triples.
    """
    samples, types = [], {}
    for line in text.splitlines():
        typed = _TYPE_RE.match(line)
        if typed:
            name, kind = typed.groups()
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
            continue
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable exposition line: {line!r}"
        name, raw_labels, raw_value = match.groups()
        labels = {}
        if raw_labels:
            consumed = 0
            for pair in _LABEL_RE.finditer(raw_labels):
                labels[pair.group(1)] = pair.group(2)
                consumed = pair.end()
            assert consumed == len(raw_labels), (
                f"trailing garbage in label block: {raw_labels!r}"
            )
        try:
            value = float(raw_value.replace("Inf", "inf"))
        except ValueError:
            pytest.fail(f"bad sample value: {raw_value!r}")
        samples.append((name, labels, value))
    return samples, types


class _RecordingBlockingExecute:
    """execute_job stand-in: streams one span, then blocks until cancel."""

    def __call__(self, job: Job) -> JobResult:
        job.recorder.record(
            "span",
            trace_id=job.trace_id,
            label="h 0",
            op_index=0,
            seconds=0.001,
        )
        while True:
            if job.cancel_event.is_set():
                raise JobCancelled(job.cancel_reason or "cancelled")
            threading.Event().wait(0.002)


# ----------------------------------------------------------------------
# Acceptance: concurrent stress + mid-flight scrape + parity
# ----------------------------------------------------------------------
class TestStressScrape:
    def test_midflight_scrape_is_valid_and_parity_holds(
        self, run_async, make_spec
    ):
        specs = [
            make_spec(
                tenant,
                qubits=qubits,
                depth=depth,
                local_qubits=qubits - 2,
                seed=seed,
                shots=16,
                use_result_cache=False,
            )
            for seed, (tenant, qubits, depth) in enumerate(
                [
                    ("alpha", 9, 8),
                    ("beta", 10, 8),
                    ("gamma", 11, 6),
                ]
                * 4
            )
        ]

        async def scenario():
            loop = asyncio.get_running_loop()
            service = SimulationService(ServiceConfig(max_workers=4))
            await service.start()
            exposition = service.exposition_server()
            port = await exposition.start(port=0)
            try:
                jobs = [await service.submit(spec) for spec in specs]
                await _until(lambda: service._running)
                midflight = await loop.run_in_executor(
                    None, http_get, port, "/metrics"
                )
                results = await asyncio.gather(
                    *(service.wait(job) for job in jobs)
                )
                settled = await loop.run_in_executor(
                    None, http_get, port, "/metrics"
                )
            finally:
                await exposition.stop()
                await service.shutdown()
            return jobs, results, midflight, settled

        jobs, concurrent, midflight, settled = run_async(scenario())
        assert all(j.status is JobStatus.COMPLETED for j in jobs)

        # Mid-flight page parses strictly and already carries quantile
        # histograms for at least the tenant whose job is running.
        status, text = midflight
        assert status == 200
        samples, types = parse_prometheus(text)
        assert types["service_queue_wait_seconds"] == "summary"
        wait_quantiles = [
            labels
            for name, labels, _ in samples
            if name == "service_queue_wait_seconds" and "quantile" in labels
        ]
        assert wait_quantiles
        assert all(
            labels["quantile"] in ("0.5", "0.95", "0.99")
            and labels["tenant"] in ("alpha", "beta", "gamma")
            for labels in wait_quantiles
        )
        # Jobs can drain between the running-job poll and the scrape
        # landing (single-core hosts), so assert the pull-model gauges
        # are mirrored rather than pinning a momentary inflight value.
        gauges = {
            name: value for name, labels, value in samples if not labels
        }
        assert gauges["service_inflight"] >= 0
        assert gauges["service_uptime_seconds"] > 0.0
        assert types["service_inflight"] == "gauge"

        # Once settled, every tenant owns a quantile series and the
        # pull-model gauges have wound down.
        samples, types = parse_prometheus(settled[1])
        tenants_with_quantiles = {
            labels["tenant"]
            for name, labels, _ in samples
            if name == "service_queue_wait_seconds" and "quantile" in labels
        }
        assert tenants_with_quantiles == {"alpha", "beta", "gamma"}
        depth_by_tenant = {
            labels["tenant"]: value
            for name, labels, value in samples
            if name == "service_queue_depth"
        }
        assert depth_by_tenant == {"alpha": 0.0, "beta": 0.0, "gamma": 0.0}

        # Unique trace ids were minted per job and echoed on results.
        trace_ids = {job.trace_id for job in jobs}
        assert len(trace_ids) == len(jobs)
        assert {r.trace_id for r in concurrent} == trace_ids

        # Observability riding along must not perturb the computation.
        plans = PlanCache()
        for spec, result in zip(specs, concurrent):
            job = Job(job_id="serial", spec=spec, plan_entry=plans.get(spec))
            serial = execute_job(job)
            assert result.fingerprint == serial.fingerprint
            assert result.samples == serial.samples
            assert result.signature == serial.signature
            assert result.signature_digest == serial.signature_digest


# ----------------------------------------------------------------------
# Acceptance: timeout postmortem bundle
# ----------------------------------------------------------------------
class TestTimeoutPostmortem:
    def test_timeout_killed_job_leaves_jsonl_bundle(
        self, run_async, make_spec, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(
            server_module, "execute_job", _RecordingBlockingExecute()
        )

        async def scenario():
            service = SimulationService(
                ServiceConfig(
                    max_workers=1, postmortem_dir=str(tmp_path / "pm")
                )
            )
            await service.start()
            try:
                job = await service.submit(
                    make_spec("acme", timeout_seconds=0.05)
                )
                result = await service.wait(job)
            finally:
                await service.shutdown()
            return job, result

        job, result = run_async(scenario())
        assert job.status is JobStatus.TIMEOUT
        assert result.trace_id == job.trace_id

        bundle = tmp_path / "pm" / f"{job.job_id}-{job.trace_id}.jsonl"
        assert bundle.exists()
        records = [
            json.loads(line)
            for line in bundle.read_text(encoding="utf-8").splitlines()
        ]
        assert records
        assert all(r["trace_id"] == job.trace_id for r in records)
        statuses = [
            r["status"] for r in records if r["kind"] == "transition"
        ]
        assert statuses == ["pending", "queued", "running", "timeout"]
        spans = [r for r in records if r["kind"] == "span"]
        assert spans and spans[0]["label"] == "h 0"
        final = [r for r in records if r.get("status") == "timeout"]
        assert final and final[0]["error"] == "timeout"

    def test_completed_jobs_leave_no_bundle(self, run_async, make_spec, tmp_path):
        async def scenario():
            service = SimulationService(
                ServiceConfig(max_workers=1, postmortem_dir=str(tmp_path))
            )
            await service.start()
            try:
                job = await service.submit(make_spec("acme"))
                await service.wait(job)
            finally:
                await service.shutdown()
            return job

        job = run_async(scenario())
        assert job.status is JobStatus.COMPLETED
        assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# Real-engine spans in the service ring
# ----------------------------------------------------------------------
class TestRecorderIntegration:
    def test_engine_run_streams_spans_into_the_ring(
        self, run_async, make_spec
    ):
        async def scenario():
            service = SimulationService(ServiceConfig(max_workers=1))
            await service.start()
            try:
                job = await service.submit(make_spec("acme"))
                await service.wait(job)
            finally:
                await service.shutdown()
            return service, job

        service, job = run_async(scenario())
        spans = service.recorder.snapshot(
            trace_id=job.trace_id, kinds=("span",)
        )
        assert spans
        assert all(
            "label" in span and "seconds" in span and "op_index" in span
            for span in spans
        )
        markers = service.recorder.snapshot(
            trace_id=job.trace_id, kinds=("run_start", "run_end")
        )
        assert [m["kind"] for m in markers] == ["run_start", "run_end"]


# ----------------------------------------------------------------------
# Trace-id propagation
# ----------------------------------------------------------------------
class TestTraceIds:
    def test_caller_supplied_trace_id_is_preserved(
        self, run_async, make_spec
    ):
        async def scenario():
            service = SimulationService(ServiceConfig(max_workers=1))
            await service.start()
            try:
                job = await service.submit(
                    make_spec("acme", trace_id="feedbeefcafe0001")
                )
                result = await service.wait(job)
            finally:
                await service.shutdown()
            return job, result

        job, result = run_async(scenario())
        assert job.trace_id == "feedbeefcafe0001"
        assert result.trace_id == "feedbeefcafe0001"
        assert result.payload(9)["trace_id"] == "feedbeefcafe0001"
        assert server_module._job_view(job)["trace_id"] == "feedbeefcafe0001"

    def test_trace_id_minted_when_absent(self, run_async, make_spec):
        async def scenario():
            service = SimulationService(ServiceConfig(max_workers=1))
            await service.start()
            try:
                job = await service.submit(make_spec("acme"))
                await service.wait(job)
            finally:
                await service.shutdown()
            return job

        job = run_async(scenario())
        assert re.fullmatch(r"[0-9a-f]{16}", job.trace_id)

    def test_trace_id_does_not_affect_cache_keys(self, make_spec):
        a = make_spec("acme", trace_id="aaaa")
        b = make_spec("acme", trace_id="bbbb")
        assert a.plan_key() == b.plan_key()
        assert a.result_key() == b.result_key()


# ----------------------------------------------------------------------
# Status / health endpoints over HTTP
# ----------------------------------------------------------------------
class TestStatusEndpoints:
    def test_statusz_and_healthz_reflect_the_service(
        self, run_async, make_spec
    ):
        async def scenario():
            loop = asyncio.get_running_loop()
            service = SimulationService(ServiceConfig(max_workers=2))
            await service.start()
            exposition = service.exposition_server()
            port = await exposition.start(port=0)
            try:
                job = await service.submit(make_spec("acme"))
                await service.wait(job)
                health = await loop.run_in_executor(
                    None, http_get, port, "/healthz"
                )
                status = await loop.run_in_executor(
                    None, http_get, port, "/statusz"
                )
            finally:
                await exposition.stop()
                await service.shutdown()
            down = service.health_view()
            return health, status, down

        health, status, down = run_async(scenario())
        code, body = health
        assert code == 200 and body.startswith("ok workers=2")

        code, body = status
        assert code == 200
        page = json.loads(body)
        assert page["uptime_seconds"] > 0.0
        assert page["queue_depth"] == 0 and page["inflight"] == []
        acme = page["tenants"]["acme"]
        assert acme["done"] == 1 and acme["queued"] == 0
        assert acme["p95_queue_wait_seconds"] >= 0.0
        assert "virtual_clock" in acme
        assert page["flight_recorder"]["capacity"] == 4096
        assert page["plan_cache"]["misses"] >= 1

        healthy, detail = down
        assert not healthy and detail == "no workers running"

    def test_healthz_reports_queue_saturation(
        self, run_async, make_spec, monkeypatch
    ):
        from repro.service import AdmissionPolicy

        monkeypatch.setattr(
            server_module, "execute_job", _RecordingBlockingExecute()
        )

        async def scenario():
            service = SimulationService(
                ServiceConfig(
                    max_workers=1,
                    admission=AdmissionPolicy(max_queue_depth=1),
                )
            )
            await service.start()
            try:
                first = await service.submit(make_spec("acme"))
                await _until(lambda: first.status is JobStatus.RUNNING)
                second = await service.submit(
                    make_spec("acme", circuit_seed=8)
                )
                healthy, detail = service.health_view()
                service.cancel(second.job_id)
                service.cancel(first.job_id)
            finally:
                await service.shutdown()
            return healthy, detail

        healthy, detail = run_async(scenario())
        assert not healthy
        assert detail == "queue saturated (1/1)"
