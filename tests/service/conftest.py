"""Shared fixtures for the service-layer tests."""

from __future__ import annotations

import asyncio

import pytest

from repro.circuit import generate_supremacy_circuit
from repro.service import JobSpec


@pytest.fixture
def run_async():
    """Run a coroutine to completion on a fresh event loop."""

    def run(coro):
        return asyncio.run(coro)

    return run


@pytest.fixture
def make_spec():
    """Build a small-job :class:`JobSpec` with overridable fields."""
    circuits: dict = {}

    def make(
        tenant: str = "default",
        *,
        qubits: int = 9,
        depth: int = 8,
        circuit_seed: int = 7,
        local_qubits: int = 7,
        **overrides,
    ) -> JobSpec:
        key = (qubits, depth, circuit_seed)
        if key not in circuits:
            circuits[key] = generate_supremacy_circuit(
                qubits, depth, seed=circuit_seed
            )
        return JobSpec(
            tenant=tenant,
            circuit=circuits[key],
            local_qubits=local_qubits,
            **overrides,
        )

    return make
