"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import Circuit, generate_supremacy_circuit
from repro.gates import Gate, random_unitary
from repro.util.rng import random_statevector


@pytest.fixture
def rng():
    """A deterministically seeded generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_supremacy_circuit() -> Circuit:
    """A 9-qubit (3x3) depth-8 supremacy circuit — fast to simulate."""
    return generate_supremacy_circuit(9, 8, seed=7)


@pytest.fixture
def medium_supremacy_circuit() -> Circuit:
    """A 16-qubit (4x4) depth-12 supremacy circuit."""
    return generate_supremacy_circuit(16, 12, seed=11)


def random_circuit(
    num_qubits: int,
    num_gates: int,
    seed: int = 0,
    *,
    max_gate_qubits: int = 2,
    include_diagonal: bool = True,
) -> Circuit:
    """A random circuit mixing dense and (optionally) diagonal gates."""
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits)
    names_1q = ["h", "t", "x_1_2", "y_1_2", "x", "z"]
    for _ in range(num_gates):
        choice = rng.random()
        if include_diagonal and choice < 0.3 and num_qubits >= 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.append(Gate("cz", (int(a), int(b))))
        elif choice < 0.6:
            name = names_1q[int(rng.integers(len(names_1q)))]
            circuit.append(Gate(name, (int(rng.integers(num_qubits)),)))
        else:
            k = int(rng.integers(1, max_gate_qubits + 1))
            qubits = tuple(
                int(q) for q in rng.choice(num_qubits, size=k, replace=False)
            )
            circuit.append(Gate("rand", qubits, random_unitary(k, rng)))
    return circuit


@pytest.fixture
def haar_state():
    """Factory for random normalised states."""

    def make(num_qubits: int, seed: int = 0):
        return random_statevector(num_qubits, seed).copy()

    return make
