"""Tests for the op-loop rule in tools/repro_lint.py."""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "tools"))

from repro_lint import lint_file, lint_paths  # noqa: E402

OP_LOOP = """
def run(schedule, state):
    for op in schedule.operations():
        op.execute(state)
"""

NESTED_OP_LOOP = """
def run(schedule, state):
    for index, op in enumerate(schedule.operations()):
        if index > 0:
            op.execute(state)
"""

LAYOUT_REPLAY = """
def replay(schedule, layout):
    for op in schedule.operations():
        update_layout(op, layout)
"""

EXECUTE_ELSEWHERE = """
def run(ops, state):
    for op in ops:
        op.execute(state)
"""


def _lint_source(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(source)
    return lint_file(path)


class TestOpLoopRule:
    def test_flags_hand_rolled_executor(self, tmp_path):
        findings = _lint_source(tmp_path, OP_LOOP)
        assert [f.check for f in findings] == ["op-loop"]

    def test_flags_nested_execute(self, tmp_path):
        findings = _lint_source(tmp_path, NESTED_OP_LOOP)
        assert [f.check for f in findings] == ["op-loop"]

    def test_layout_replay_is_fine(self, tmp_path):
        assert _lint_source(tmp_path, LAYOUT_REPLAY) == []

    def test_execute_over_plain_iterable_is_fine(self, tmp_path):
        # Only loops over schedule.operations() are executor-shaped.
        assert _lint_source(tmp_path, EXECUTE_ELSEWHERE) == []

    def test_runtime_package_is_exempt(self, tmp_path):
        nested = tmp_path / "repro" / "runtime"
        nested.mkdir(parents=True)
        path = nested / "engine.py"
        path.write_text(OP_LOOP)
        assert lint_file(path) == []

    def test_suppressible_inline(self, tmp_path):
        source = OP_LOOP.replace(
            "for op in schedule.operations():",
            "for op in schedule.operations():  # lint: allow-op-loop",
        )
        assert _lint_source(tmp_path, source) == []


class TestTreeIsClean:
    def test_src_has_no_op_loops(self):
        findings = lint_paths([REPO / "src"])
        assert [f for f in findings if f.check == "op-loop"] == []


ENGINE_DIRECT = """
def run(plan):
    return ExecutionEngine(plan).run()
"""

ENGINE_ATTR = """
def run(plan):
    return runtime.ExecutionEngine(plan, layers=[]).run()
"""


class TestEngineDirectRule:
    def test_flags_direct_construction(self, tmp_path):
        findings = _lint_source(tmp_path, ENGINE_DIRECT)
        assert [f.check for f in findings] == ["engine-direct"]

    def test_flags_attribute_construction(self, tmp_path):
        findings = _lint_source(tmp_path, ENGINE_ATTR)
        assert [f.check for f in findings] == ["engine-direct"]

    def test_runtime_and_service_are_exempt(self, tmp_path):
        for pkg in ("repro/runtime", "repro/service"):
            nested = tmp_path / pkg
            nested.mkdir(parents=True)
            path = nested / "mod.py"
            path.write_text(ENGINE_DIRECT)
            assert lint_file(path) == []

    def test_suppressible_inline(self, tmp_path):
        source = ENGINE_DIRECT.replace(
            "ExecutionEngine(plan).run()",
            "ExecutionEngine(plan).run()  # lint: allow-engine-direct",
        )
        assert _lint_source(tmp_path, source) == []

    def test_src_has_no_unsuppressed_construction(self):
        findings = lint_paths([REPO / "src"])
        assert [f for f in findings if f.check == "engine-direct"] == []
