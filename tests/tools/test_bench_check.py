"""Smoke tests for tools/bench_check.py (BENCH_*.json validation)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "bench_check.py"
_spec = importlib.util.spec_from_file_location("bench_check", _TOOL)
bench_check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_check)


def _record(**overrides):
    base = {
        "schema": "repro.bench/1",
        "name": "demo",
        "params": {"qubits": 12},
        "seconds": 1.5,
        "bytes": 4096,
        "metrics": {"swaps": 3},
        "unix_time": 1700000000.0,
    }
    base.update(overrides)
    return base


@pytest.mark.smoke
def test_valid_record_passes():
    assert bench_check.validate_record(_record()) == []


@pytest.mark.smoke
@pytest.mark.parametrize(
    "mutation, fragment",
    [
        ({"schema": "repro.bench/0"}, "schema"),
        ({"seconds": "fast"}, "seconds"),
        ({"seconds": -1.0}, "seconds"),
        ({"seconds": float("nan")}, "finite"),
        ({"bytes": 3.5}, "bytes"),
        ({"params": ["qubits"]}, "params"),
        ({"extra": True}, "unknown"),
    ],
)
def test_invalid_record_rejected(mutation, fragment):
    errors = bench_check.validate_record(_record(**mutation))
    assert errors, f"mutation {mutation} should be rejected"
    assert any(fragment in e for e in errors)


@pytest.mark.smoke
def test_missing_field_rejected():
    record = _record()
    del record["metrics"]
    assert any("metrics" in e for e in bench_check.validate_record(record))


@pytest.mark.smoke
def test_non_dict_rejected():
    assert bench_check.validate_record([1, 2, 3])


@pytest.mark.smoke
def test_diff_flags_regression_and_changes():
    prev = _record()
    cur = _record(seconds=2.5, bytes=8192, params={"qubits": 14})
    errors, notes = bench_check.diff_records(cur, prev)
    assert errors == []  # "demo" is not a guarded bench
    assert any("regressed" in n for n in notes)
    assert any("bytes changed" in n for n in notes)
    assert any("params changed" in n for n in notes)
    # Small jitter below the threshold is not flagged.
    assert bench_check.diff_records(_record(seconds=1.6), prev) == ([], [])


@pytest.mark.smoke
def test_diff_guarded_bench_regression_is_error():
    prev = _record(name="end_to_end")
    cur = _record(name="end_to_end", seconds=2.5)
    errors, _ = bench_check.diff_records(cur, prev)
    assert any("regressed" in e and "guarded" in e for e in errors)


@pytest.mark.smoke
def test_check_results_dir_unguarded_regression_warns_only(tmp_path, capsys):
    """Regressions on unguarded benches warn but never error (exit 0)."""
    (tmp_path / "BENCH_demo.json").write_text(json.dumps(_record(seconds=9.0)))
    (tmp_path / "BENCH_demo.json.prev").write_text(json.dumps(_record()))
    errors, warnings = bench_check.check_results_dir(tmp_path)
    assert errors == 0
    assert warnings >= 1
    assert "regressed" in capsys.readouterr().out
    assert bench_check.main([str(tmp_path)]) == 0


@pytest.mark.smoke
def test_check_results_dir_guarded_regression_fails(tmp_path, capsys):
    """>threshold slowdown on a guarded bench exits non-zero."""
    rec = _record(name="end_to_end")
    (tmp_path / "BENCH_end_to_end.json").write_text(
        json.dumps({**rec, "seconds": 9.0})
    )
    (tmp_path / "BENCH_end_to_end.json.prev").write_text(json.dumps(rec))
    errors, _ = bench_check.check_results_dir(tmp_path)
    assert errors == 1
    assert "guarded" in capsys.readouterr().out
    assert bench_check.main([str(tmp_path)]) == 1


@pytest.mark.smoke
def test_unregistered_bench_name_warns(tmp_path, capsys):
    (tmp_path / "BENCH_demo.json").write_text(json.dumps(_record()))
    errors, warnings = bench_check.check_results_dir(tmp_path)
    assert errors == 0
    assert warnings == 1
    assert "KNOWN_BENCHES" in capsys.readouterr().out


@pytest.mark.smoke
def test_plan_compile_is_registered():
    assert "plan_compile" in bench_check.KNOWN_BENCHES


@pytest.mark.smoke
def test_check_results_dir_schema_error(tmp_path):
    (tmp_path / "BENCH_bad.json").write_text(json.dumps(_record(schema="x")))
    errors, _ = bench_check.check_results_dir(tmp_path)
    assert errors == 1
    assert bench_check.main([str(tmp_path)]) == 1


@pytest.mark.smoke
def test_live_results_validate_if_present():
    """Whatever records the benches last emitted must satisfy the schema."""
    results = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    if not results.is_dir() or not list(results.glob("BENCH_*.json")):
        pytest.skip("no bench records emitted yet")
    errors, _ = bench_check.check_results_dir(results)
    assert errors == 0
