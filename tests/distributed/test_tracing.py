"""Tests for execution tracing."""

import pytest

from repro.circuit import generate_supremacy_circuit
from repro.distributed import DistributedState
from repro.distributed.tracing import trace_schedule_execution
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.statevector import Simulator


@pytest.fixture(scope="module")
def traced_run():
    n, l = 12, 8
    circ = generate_supremacy_circuit(n, 12, seed=17)
    sched = schedule_circuit(circ, SchedulerConfig(local_qubits=l, kmax=4, seed=3))
    state = DistributedState(
        n, l, init=sched.initial_state,
        initial_global_qubits=sched.initial_global_qubits or None,
    )
    trace = trace_schedule_execution(state, sched)
    return circ, sched, state, trace


class TestTracing:
    def test_one_event_per_op(self, traced_run):
        _, sched, _, trace = traced_run
        assert len(trace.events) == len(list(sched.operations()))

    def test_execution_is_correct(self, traced_run):
        circ, _, state, _ = traced_run
        ref = Simulator(circ.num_qubits).run(circ).state
        assert state.to_statevector().allclose(ref, atol=1e-9)

    def test_swap_events_match_schedule(self, traced_run):
        _, sched, _, trace = traced_run
        swaps = [e for e in trace.events if e.kind == "swap"]
        assert len(swaps) == sched.num_swaps

    def test_kind_aggregation(self, traced_run):
        _, _, _, trace = traced_run
        by_kind = trace.seconds_by_kind()
        assert sum(by_kind.values()) == pytest.approx(trace.total_seconds)
        assert "cluster" in by_kind

    def test_comm_fraction_bounded(self, traced_run):
        _, _, _, trace = traced_run
        assert 0.0 <= trace.comm_fraction < 1.0

    def test_swap_events_carry_bytes_moved(self, traced_run):
        _, _, state, trace = traced_run
        swaps = [e for e in trace.events if e.kind == "swap"]
        assert all(e.bytes_moved is not None and e.bytes_moved > 0 for e in swaps)
        # One shared event model: the trace's byte totals are exactly the
        # communication counters'.
        assert trace.bytes_moved == state.stats.bytes_on_network

    def test_non_swap_events_have_no_bytes(self, traced_run):
        _, _, _, trace = traced_run
        others = [e for e in trace.events if e.kind != "swap"]
        assert all(e.bytes_moved is None for e in others)

    def test_op_index_populated(self, traced_run):
        _, sched, _, trace = traced_run
        assert [e.op_index for e in trace.events] == list(
            range(len(list(sched.operations())))
        )

    def test_signature_is_timing_free(self, traced_run):
        _, sched, _, trace = traced_run
        sig = trace.signature()
        assert len(sig) == len(trace.events)
        assert not any(
            isinstance(part, float) for entry in sig for part in entry
        )

    def test_timeline_render(self, traced_run):
        _, sched, _, trace = traced_run
        text = trace.timeline(width=30)
        assert "total" in text
        assert text.count("\n") >= len(trace.events)

    def test_trace_is_frozen_with_cached_aggregates(self, traced_run):
        _, _, _, trace = traced_run
        assert trace.frozen
        assert trace._cache["total_seconds"] == trace.total_seconds
        assert trace._cache["bytes_moved"] == trace.bytes_moved
        with pytest.raises(RuntimeError):
            trace.add(trace.events[0])

    def test_trace_carries_source_spans(self, traced_run):
        _, sched, _, trace = traced_run
        # the run-root span plus one span per op, at minimum
        assert len(trace.spans) > len(list(sched.operations()))
        op_spans = [
            s for s in trace.spans
            if s.kind in {"cluster", "specialized", "swap", "absorbed"}
        ]
        assert len(op_spans) == len(trace.events)

    def test_from_spans_filters_internal_kinds(self):
        from repro.distributed.tracing import ExecutionTrace
        from repro.telemetry import Tracer

        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("execute_schedule", kind="run"):
            with tracer.span("k=2 (3 gates)", kind="cluster", op_index=0):
                with tracer.span("kernel.apply", kind="kernel"):
                    pass
            with tracer.span("swap", kind="swap", op_index=1, bytes=512):
                with tracer.span("comm.alltoall", kind="comm"):
                    pass
        trace = ExecutionTrace.from_spans(tracer.spans)
        assert [e.kind for e in trace.events] == ["cluster", "swap"]
        assert trace.events[1].bytes_moved == 512
        assert [e.op_index for e in trace.events] == [0, 1]
        assert trace.frozen

    def test_absorbed_ops_classified(self):
        n, l = 10, 7
        circ = generate_supremacy_circuit(n, 10, seed=5)
        sched = schedule_circuit(
            circ,
            SchedulerConfig(local_qubits=l, seed=1, absorb_diagonals=True),
        )
        state = DistributedState(
            n, l, init=sched.initial_state,
            initial_global_qubits=sched.initial_global_qubits or None,
        )
        trace = trace_schedule_execution(state, sched)
        if sched.num_absorbed_gates:
            assert any(e.kind == "absorbed" for e in trace.events)
