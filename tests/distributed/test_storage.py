"""Tests for the shard storage backends."""

import numpy as np
import pytest

from repro.distributed import DiskShards, InMemoryShards


@pytest.fixture(params=["memory", "disk"])
def storage_factory(request, tmp_path):
    def make(num_shards=4, shard_size=8):
        if request.param == "memory":
            return InMemoryShards(num_shards, shard_size)
        return DiskShards(num_shards, shard_size, tmp_path)

    return make


class TestShardStorage:
    def test_get_set_roundtrip(self, storage_factory):
        st = storage_factory()
        data = np.arange(8, dtype=np.complex128)
        st.set(2, data)
        assert np.array_equal(np.asarray(st.get(2)), data)

    def test_set_validates_shape(self, storage_factory):
        st = storage_factory()
        with pytest.raises(ValueError):
            st.set(0, np.zeros(5, dtype=np.complex128))

    def test_shard_bytes(self, storage_factory):
        assert storage_factory().shard_bytes == 8 * 16

    def test_non_power_of_two_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            InMemoryShards(3, 8)
        with pytest.raises(ValueError):
            DiskShards(4, 6, tmp_path)

    def test_exchange_blocks_full_swap(self, storage_factory):
        """Fig. 3b semantics: rank s's block b goes to rank b's block s."""
        st = storage_factory(num_shards=4, shard_size=8)
        for r in range(4):
            st.set(r, np.arange(8, dtype=np.complex128) + 100 * r)
        st.exchange_blocks(2)  # groups of 4, block size 2
        for b in range(4):
            shard = np.asarray(st.get(b))
            for s in range(4):
                expected = 100 * s + np.arange(b * 2, b * 2 + 2)
                assert np.array_equal(shard[s * 2 : (s + 1) * 2], expected), (b, s)

    def test_exchange_blocks_group_local(self, storage_factory):
        """q=1 swap with 4 ranks: two independent groups of 2."""
        st = storage_factory(num_shards=4, shard_size=4)
        for r in range(4):
            st.set(r, np.arange(4, dtype=np.complex128) + 10 * r)
        st.exchange_blocks(1)
        # group 0 = ranks {0,1}: rank0 keeps block0, gets rank1's block0.
        assert np.array_equal(np.asarray(st.get(0)), [0, 1, 10, 11])
        assert np.array_equal(np.asarray(st.get(1)), [2, 3, 12, 13])
        # group 1 = ranks {2,3} exchanges internally, never with group 0.
        assert np.array_equal(np.asarray(st.get(2)), [20, 21, 30, 31])
        assert np.array_equal(np.asarray(st.get(3)), [22, 23, 32, 33])

    def test_exchange_is_involution(self, storage_factory):
        st = storage_factory(num_shards=4, shard_size=8)
        rng = np.random.default_rng(0)
        originals = []
        for r in range(4):
            data = rng.standard_normal(8) + 1j * rng.standard_normal(8)
            st.set(r, data)
            originals.append(data)
        st.exchange_blocks(2)
        st.exchange_blocks(2)
        for r in range(4):
            assert np.allclose(np.asarray(st.get(r)), originals[r])

    def test_exchange_too_many_qubits(self, storage_factory):
        with pytest.raises(ValueError):
            storage_factory(num_shards=4).exchange_blocks(3)

    def test_permute_shards(self, storage_factory):
        st = storage_factory(num_shards=4, shard_size=4)
        for r in range(4):
            st.set(r, np.full(4, r, dtype=np.complex128))
        st.permute_shards(np.array([2, 0, 3, 1]))
        assert np.asarray(st.get(0))[0] == 2
        assert np.asarray(st.get(1))[0] == 0
        assert np.asarray(st.get(3))[0] == 1

    def test_permute_validates(self, storage_factory):
        with pytest.raises(ValueError):
            storage_factory().permute_shards(np.array([0, 0, 1, 2]))


class TestDiskSpecific:
    def test_permute_moves_no_data(self, tmp_path):
        """Disk permutation is label indirection — file contents unchanged."""
        st = DiskShards(4, 4, tmp_path)
        for r in range(4):
            st.set(r, np.full(4, r, dtype=np.complex128))
        before = {p.name: p.read_bytes() for p in tmp_path.glob("shard_*.dat")}
        st.permute_shards(np.array([1, 2, 3, 0]))
        after = {p.name: p.read_bytes() for p in tmp_path.glob("shard_*.dat")}
        assert before == after
        assert np.asarray(st.get(0))[0] == 1

    def test_reopen_preserves(self, tmp_path):
        st = DiskShards(2, 4, tmp_path)
        st.set(1, np.arange(4, dtype=np.complex128))
        st2 = DiskShards(2, 4, tmp_path)
        assert np.array_equal(np.asarray(st2.get(1)), np.arange(4))


class TestDiskShardsHandles:
    """Satellite: memmap handle reuse and idempotent close."""

    def test_get_reuses_one_handle(self, tmp_path):
        st = DiskShards(4, 8, tmp_path)
        assert st.get(1) is st.get(1)
        assert len(st._handles) == 1

    def test_close_is_idempotent_and_reopens(self, tmp_path):
        st = DiskShards(4, 8, tmp_path)
        data = np.arange(8, dtype=np.complex128)
        st.set(3, data)
        st.close()
        st.close()  # second close is a no-op, not an error
        assert not st._handles
        # Handles reopen lazily; the data survived the close.
        assert np.array_equal(np.asarray(st.get(3)), data)
        st.close()

    def test_close_after_permute_keeps_labels(self, tmp_path):
        st = DiskShards(2, 4, tmp_path)
        st.set(0, np.full(4, 1.0, dtype=np.complex128))
        st.set(1, np.full(4, 2.0, dtype=np.complex128))
        st.permute_shards(np.array([1, 0]))
        st.close()
        assert np.asarray(st.get(0))[0] == 2.0
        st.close()


class TestDiskShardsPipelined:
    """Armed mode: background fsync/read-ahead, bit-exact exchanges."""

    def test_armed_exchange_matches_serial(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        serial = DiskShards(8, 16, tmp_path / "serial")
        armed = DiskShards(8, 16, tmp_path / "armed")
        rng = np.random.default_rng(5)
        for r in range(8):
            data = rng.normal(size=16) + 1j * rng.normal(size=16)
            serial.set(r, data.astype(np.complex128))
            armed.set(r, data.astype(np.complex128))
        serial.exchange_blocks(2)
        with ThreadPoolExecutor(max_workers=1) as pool:
            armed.arm_pipeline(pool, depth=2)
            armed.exchange_blocks(2)
            armed.disarm_pipeline()
        for r in range(8):
            assert np.array_equal(
                np.asarray(armed.get(r)), np.asarray(serial.get(r))
            ), r
        assert armed.io_stats["exchange_prefetched_pairs"] > 0
        assert serial.io_stats["exchange_prefetched_pairs"] == 0
        serial.close()
        armed.close()

    def test_armed_sync_defers_until_drain(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        st = DiskShards(4, 8, tmp_path)
        with ThreadPoolExecutor(max_workers=1) as pool:
            st.arm_pipeline(pool, depth=1)
            st.set(0, np.arange(8, dtype=np.complex128))
            st.drain()
            st.disarm_pipeline()
        assert st.io_stats["async_syncs"] >= 1
        assert st.io_stats["sync_flushes"] == 0
        # Disarmed again: syncs are synchronous msyncs once more.
        st.set(1, np.arange(8, dtype=np.complex128))
        assert st.io_stats["sync_flushes"] == 1
        st.close()

    def test_prefetch_counts_read_aheads(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        st = DiskShards(4, 8, tmp_path)
        with ThreadPoolExecutor(max_workers=1) as pool:
            st.arm_pipeline(pool, depth=2)
            st.prefetch([1, 2, 99])  # out-of-range ranks are ignored
            st.disarm_pipeline()
        assert st.io_stats["read_aheads"] == 2
        st.close()

    def test_prefetch_without_arming_is_noop(self, tmp_path):
        st = DiskShards(4, 8, tmp_path)
        st.prefetch([0, 1])
        assert st.io_stats["read_aheads"] == 0
        st.close()

    def test_arm_depth_validated(self, tmp_path):
        st = DiskShards(2, 4, tmp_path)
        with pytest.raises(ValueError):
            st.arm_pipeline(object(), depth=0)
        st.close()

    def test_in_memory_hooks_are_noops(self):
        st = InMemoryShards(2, 4)
        st.arm_pipeline(object(), depth=3)
        st.prefetch([0])
        st.drain()
        st.disarm_pipeline()
        st.sync(st.get(0))
