"""Tests for the process-parallel schedule runner."""

import pytest

from repro.circuit import Circuit, generate_supremacy_circuit
from repro.distributed import DistributedSimulator
from repro.distributed.multiproc import MultiprocessRunner
from repro.gates import Gate
from repro.scheduling import GateOp, Schedule, SchedulerConfig, Stage, schedule_circuit
from repro.scheduling.program import ClusterOp
from repro.statevector import Simulator


class TestMultiprocessRunner:
    @pytest.mark.parametrize("n,l,absorb", [(10, 7, False), (11, 8, True)])
    def test_matches_reference(self, n, l, absorb):
        circ = generate_supremacy_circuit(n, 10, seed=3)
        ref = Simulator(n).run(circ).state
        sched = schedule_circuit(
            circ,
            SchedulerConfig(local_qubits=l, kmax=4, seed=1, absorb_diagonals=absorb),
        )
        got = MultiprocessRunner(n, l).run_schedule(sched)
        assert got.allclose(ref, atol=1e-9)

    def test_matches_in_process_distributed(self):
        n, l = 10, 7
        circ = generate_supremacy_circuit(n, 8, seed=5)
        sched = schedule_circuit(circ, SchedulerConfig(local_qubits=l, seed=2))
        in_process = DistributedSimulator(n, l).run_schedule(sched)
        multiproc = MultiprocessRunner(n, l).run_schedule(sched)
        assert multiproc.allclose(in_process.state.to_statevector(), atol=1e-12)

    def test_handcrafted_monomial_gateop(self):
        """Exercise the shard-movement path: an X on a global qubit."""
        n, l = 6, 4
        gates = [Gate("h", (0,)), Gate("x", (5,)), Gate("cz", (0, 5))]
        circ = Circuit(n, gates)
        sched = Schedule(
            circuit=circ,
            local_qubits=l,
            stages=[
                Stage(
                    global_qubits=frozenset({4, 5}),
                    ops=[
                        ClusterOp(qubits=(0,), gates=(gates[0],)),
                        GateOp(gates[1]),
                        GateOp(gates[2]),
                    ],
                )
            ],
        )
        sched.validate()
        ref = Simulator(n).run(circ).state
        got = MultiprocessRunner(n, l).run_schedule(sched)
        assert got.allclose(ref, atol=1e-12)

    def test_plus_init(self):
        n, l = 9, 6
        circ = generate_supremacy_circuit(n, 8, seed=7)
        sched = schedule_circuit(
            circ, SchedulerConfig(local_qubits=l, skip_initial_hadamards=True, seed=0)
        )
        assert sched.initial_state == "plus"
        ref = Simulator(n).run(circ).state
        got = MultiprocessRunner(n, l).run_schedule(sched)
        assert got.allclose(ref, atol=1e-9)

    def test_rank_cap(self):
        with pytest.raises(ValueError, match="worker processes"):
            MultiprocessRunner(20, 10)

    def test_split_mismatch(self):
        circ = generate_supremacy_circuit(9, 6, seed=0)
        sched = schedule_circuit(circ, SchedulerConfig(local_qubits=6, seed=0))
        with pytest.raises(ValueError, match="split"):
            MultiprocessRunner(9, 7).run_schedule(sched)

    def test_invalid_split(self):
        with pytest.raises(ValueError):
            MultiprocessRunner(4, 0)
