"""Tests for checkpoint/restart of distributed runs."""

import pytest

from repro.circuit import generate_supremacy_circuit
from repro.distributed.checkpoint import CheckpointManager
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.statevector import Simulator


@pytest.fixture
def workload():
    n, l = 10, 7
    circ = generate_supremacy_circuit(n, 10, seed=9)
    sched = schedule_circuit(circ, SchedulerConfig(local_qubits=l, kmax=4, seed=2))
    ref = Simulator(n).run(circ).state
    return n, l, sched, ref


class TestCheckpointManager:
    def test_run_without_failure(self, tmp_path, workload):
        n, l, sched, ref = workload
        mgr = CheckpointManager(tmp_path)
        state = mgr.run_with_checkpoints(sched, every=4)
        assert state.to_statevector().allclose(ref, atol=1e-9)
        assert mgr.has_checkpoint()

    def test_failure_then_resume(self, tmp_path, workload):
        """The headline property: kill mid-run, resume, identical result."""
        n, l, sched, ref = workload
        mgr = CheckpointManager(tmp_path)
        with pytest.raises(RuntimeError, match="injected failure"):
            mgr.run_with_checkpoints(sched, every=3, fail_after=5)
        state = mgr.resume(sched, every=3)
        assert state.to_statevector().allclose(ref, atol=1e-9)

    def test_resume_restores_statistics(self, tmp_path, workload):
        n, l, sched, ref = workload
        mgr = CheckpointManager(tmp_path)
        clean = CheckpointManager(tmp_path / "clean").run_with_checkpoints(
            sched, every=0
        )
        with pytest.raises(RuntimeError):
            mgr.run_with_checkpoints(sched, every=2, fail_after=4)
        resumed = mgr.resume(sched)
        assert resumed.stats.alltoall_steps == clean.stats.alltoall_steps
        assert resumed.kernel_cost.total_calls == clean.kernel_cost.total_calls
        assert resumed.kernel_cost.total_flops == clean.kernel_cost.total_flops

    def test_checkpoint_roundtrip_preserves_layout(self, tmp_path, workload):
        n, l, sched, _ = workload
        mgr = CheckpointManager(tmp_path)
        with pytest.raises(RuntimeError):
            # Fail right after the first swap so the layout is non-trivial.
            mgr.run_with_checkpoints(sched, every=1, fail_after=3)
        state, next_op = mgr.load()
        assert sorted(state.bit_of_qubit) == list(range(n))
        assert next_op == 3

    def test_load_without_checkpoint(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CheckpointManager(tmp_path).load()

    def test_resume_from_every_op_index(self, tmp_path, workload):
        """Mid-program coverage: kill before *every* op, resume, and
        demand the final state is bit-exact — not merely close — since
        the replay runs identical kernels on identical checkpointed
        amplitudes."""
        import numpy as np

        n, l, sched, _ = workload
        num_ops = len(list(sched.operations()))
        reference = CheckpointManager(
            tmp_path / "ref"
        ).run_with_checkpoints(sched, every=0)
        ref_data = reference.to_statevector().data
        for stop in range(num_ops):
            mgr = CheckpointManager(tmp_path / f"stop{stop}")
            with pytest.raises(RuntimeError, match="injected failure"):
                mgr.run_with_checkpoints(sched, every=1, fail_after=stop)
            _, next_op = mgr.load()
            assert next_op == stop
            resumed = mgr.resume(sched, every=1)
            assert np.array_equal(
                resumed.to_statevector().data, ref_data
            ), f"resume from op {stop} not bit-exact"

    def test_multiple_failures(self, tmp_path, workload):
        """Crash-loop resilience: fail, resume-and-fail-again, finish."""
        n, l, sched, ref = workload
        mgr = CheckpointManager(tmp_path)
        with pytest.raises(RuntimeError):
            mgr.run_with_checkpoints(sched, every=2, fail_after=2)
        state, first_stop = mgr.load()
        assert first_stop < len(list(sched.operations()))
        # Second crash, two ops further along.
        with pytest.raises(RuntimeError):
            mgr._execute(sched, state, first_stop, every=2, fail_after=2)
        state2, second_stop = mgr.load()
        assert second_stop > first_stop
        final = mgr.resume(sched, every=2)
        assert final.to_statevector().allclose(ref, atol=1e-9)
