"""Tests for the DistributedSimulator."""

import pytest

from repro.circuit import Circuit, generate_supremacy_circuit
from repro.distributed import DiskShards, DistributedSimulator
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.statevector import Simulator


class TestRunCircuit:
    @pytest.mark.parametrize("local_qubits", [5, 6, 8])
    def test_matches_serial(self, local_qubits):
        n = 9
        circ = generate_supremacy_circuit(n, 8, seed=2)
        ref = Simulator(n).run(circ).state
        res = DistributedSimulator(n, local_qubits).run(circ)
        assert res.state.to_statevector().allclose(ref, atol=1e-9)

    def test_qubit_mismatch(self):
        with pytest.raises(ValueError, match="qubits"):
            DistributedSimulator(4, 3).run(Circuit(5))

    def test_comm_and_cost_exposed(self):
        circ = generate_supremacy_circuit(9, 8, seed=2)
        res = DistributedSimulator(9, 6).run(circ)
        assert res.comm.alltoall_steps >= 1
        assert res.kernel_cost.total_calls > 0
        assert res.wall_seconds > 0

    def test_disk_backend(self, tmp_path):
        n, l = 8, 5
        circ = generate_supremacy_circuit(n, 8, seed=4)
        ref = Simulator(n).run(circ).state
        storage = DiskShards(1 << (n - l), 1 << l, tmp_path)
        res = DistributedSimulator(n, l, storage=storage).run(circ)
        assert res.state.to_statevector().allclose(ref, atol=1e-9)


class TestRunSchedule:
    @pytest.mark.parametrize("local_qubits,kmax", [(6, 3), (6, 5), (7, 4)])
    def test_schedule_matches_serial(self, local_qubits, kmax):
        n = 9
        circ = generate_supremacy_circuit(n, 8, seed=3)
        ref = Simulator(n).run(circ).state
        sched = schedule_circuit(
            circ, SchedulerConfig(local_qubits=local_qubits, kmax=kmax, seed=1)
        )
        res = DistributedSimulator(n, local_qubits).run_schedule(sched)
        assert res.state.to_statevector().allclose(ref, atol=1e-9)

    def test_swap_steps_equal_schedule_swaps(self):
        n = 12
        circ = generate_supremacy_circuit(n, 10, seed=5)
        sched = schedule_circuit(circ, SchedulerConfig(local_qubits=8, seed=1))
        res = DistributedSimulator(n, 8).run_schedule(sched)
        assert res.comm.alltoall_steps == sched.num_swaps

    def test_schedule_beats_naive_comm(self):
        """The headline claim: scheduled execution needs far fewer
        communication steps than per-gate auto-swap execution."""
        n = 12
        circ = generate_supremacy_circuit(n, 10, seed=5)
        naive = DistributedSimulator(n, 8).run(circ, auto_swap=True)
        sched = schedule_circuit(circ, SchedulerConfig(local_qubits=8, seed=1))
        scheduled = DistributedSimulator(n, 8).run_schedule(sched)
        assert (
            scheduled.comm.alltoall_steps < naive.comm.alltoall_steps
        ), (scheduled.comm.alltoall_steps, naive.comm.alltoall_steps)
        # and both produce identical states
        assert scheduled.state.to_statevector().allclose(
            naive.state.to_statevector(), atol=1e-9
        )

    def test_plus_init_schedule(self):
        n = 9
        circ = generate_supremacy_circuit(n, 8, seed=6)
        ref = Simulator(n).run(circ).state
        sched = schedule_circuit(
            circ, SchedulerConfig(local_qubits=6, skip_initial_hadamards=True, seed=0)
        )
        assert sched.initial_state == "plus"
        res = DistributedSimulator(n, 6).run_schedule(sched)
        assert res.state.to_statevector().allclose(ref, atol=1e-9)
