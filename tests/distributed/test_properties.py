"""Property-based tests: distributed execution == serial, always."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import DistributedSimulator, DistributedState
from repro.statevector import Simulator, StateVector
from repro.util.rng import random_statevector

from tests.conftest import random_circuit


class TestDistributedEqualsSerial:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.integers(6, 9),
        st.integers(3, 5),
        st.integers(5, 25),
    )
    def test_random_circuits(self, seed, n, l, num_gates):
        l = min(l, n - 1)
        circ = random_circuit(n, num_gates, seed=seed)
        ref = Simulator(n).run(circ).state
        res = DistributedSimulator(n, l).run(circ, auto_swap=True)
        assert res.state.to_statevector().allclose(ref, atol=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 3))
    def test_swap_sequences_preserve_state(self, seed, num_swaps):
        """Any sequence of global-set changes is a no-op on the state."""
        n, l = 8, 5
        sv = StateVector(n, random_statevector(n, seed))
        d = DistributedState.from_statevector(sv, l)
        rng = np.random.default_rng(seed)
        for _ in range(num_swaps):
            new_global = set(
                int(q) for q in rng.choice(n, size=n - l, replace=False)
            )
            d.swap_global_set(new_global)
            assert d.global_qubit_set() == new_global
        assert d.to_statevector().allclose(sv, atol=1e-12)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_layout_independent_results(self, seed):
        """The same circuit through different shard splits agrees."""
        n = 8
        circ = random_circuit(n, 15, seed=seed)
        states = []
        for l in (4, 6, 8):
            res = DistributedSimulator(n, l).run(circ, auto_swap=True)
            states.append(res.state.to_statevector())
        assert states[0].allclose(states[1], atol=1e-9)
        assert states[0].allclose(states[2], atol=1e-9)
