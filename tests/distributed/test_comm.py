"""Tests for communication accounting."""

import pytest

from repro.distributed import CommStats


class TestCommStats:
    def test_alltoall_bytes(self):
        s = CommStats()
        s.record_alltoall(num_groups=1, group_size=4, shard_bytes=1024)
        # each of 4 ranks ships 3/4 of its shard
        assert s.bytes_on_network == 4 * (1024 * 3 // 4)
        assert s.alltoall_steps == 1
        assert s.group_alltoall_calls == 1

    def test_group_local_swap_counts_one_step(self):
        """2**(g-q) group-local all-to-alls proceed in parallel: 1 step."""
        s = CommStats()
        s.record_alltoall(num_groups=4, group_size=2, shard_bytes=512)
        assert s.alltoall_steps == 1
        assert s.group_alltoall_calls == 4
        assert s.bytes_on_network == 4 * 2 * (512 // 2)

    def test_renumbering_free(self):
        s = CommStats()
        s.record_rank_renumbering()
        assert s.bytes_on_network == 0
        assert s.rank_renumberings == 1

    def test_local_swaps(self):
        s = CommStats()
        s.record_local_swap()
        s.record_local_swap()
        assert s.local_swap_kernels == 2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            CommStats().record_alltoall(num_groups=0, group_size=2, shard_bytes=8)

    def test_merge(self):
        a, b = CommStats(), CommStats()
        a.record_alltoall(num_groups=1, group_size=2, shard_bytes=64)
        b.record_alltoall(num_groups=1, group_size=4, shard_bytes=64)
        b.record_rank_renumbering()
        a.merge(b)
        assert a.alltoall_steps == 2
        assert a.rank_renumberings == 1
        assert len(a.events) == 3

    def test_reset(self):
        s = CommStats()
        s.record_alltoall(num_groups=1, group_size=2, shard_bytes=64)
        s.record_rank_renumbering()
        s.record_local_swap()
        s.reset()
        assert s == CommStats()
        assert s.events == []

    def test_reset_then_merge_counts_once(self):
        """The per-attempt pattern: a retried attempt never double-counts."""
        total, attempt = CommStats(), CommStats()
        attempt.record_alltoall(num_groups=1, group_size=2, shard_bytes=64)
        failed_bytes = attempt.bytes_on_network
        attempt.reset()  # attempt failed: discard before the retry
        attempt.record_alltoall(num_groups=1, group_size=2, shard_bytes=64)
        total.merge(attempt)
        assert total.bytes_on_network == failed_bytes
        assert total.alltoall_steps == 1

    def test_events_log(self):
        s = CommStats()
        s.record_alltoall(num_groups=2, group_size=2, shard_bytes=32)
        event = s.events[0]
        assert event.kind == "alltoall"
        assert event.bytes == s.bytes_on_network
        assert event.num_groups == 2 and event.group_size == 2


class TestCommEvent:
    def test_dict_access_shim_warns(self):
        s = CommStats()
        s.record_alltoall(num_groups=2, group_size=2, shard_bytes=32)
        with pytest.warns(DeprecationWarning):
            assert s.events[0]["kind"] == "alltoall"
        with pytest.warns(DeprecationWarning):
            assert s.events[0].get("bytes") == s.bytes_on_network
        with pytest.warns(DeprecationWarning):
            assert s.events[0].get("missing", 42) == 42

    def test_to_dict(self):
        s = CommStats()
        s.record_rank_renumbering()
        d = s.events[0].to_dict()
        assert d["kind"] == "renumber"
        assert isinstance(d, dict)

    def test_bind_metrics_streams_counters(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        s = CommStats().bind_metrics(registry)
        s.record_alltoall(num_groups=1, group_size=4, shard_bytes=1024)
        s.record_local_swap()
        snap = registry.snapshot()
        assert snap["comm.bytes_on_network"] == s.bytes_on_network
        assert snap["comm.alltoall_steps"] == 1
        assert snap["comm.local_swap_kernels"] == 1

    def test_merge_does_not_restream_metrics(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        total = CommStats().bind_metrics(registry)
        attempt = CommStats().bind_metrics(registry)
        attempt.record_alltoall(num_groups=1, group_size=2, shard_bytes=64)
        total.merge(attempt)
        assert registry.snapshot()["comm.bytes_on_network"] == (
            total.bytes_on_network
        )
