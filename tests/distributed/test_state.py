"""Tests for DistributedState: layout, swaps, specialization."""

import numpy as np
import pytest

from repro.distributed import DistributedState, NeedsSwapError
from repro.gates import Gate, random_unitary
from repro.statevector import StateVector
from repro.util.rng import random_statevector


def dist_from_random(n=8, l=5, seed=0) -> tuple[DistributedState, StateVector]:
    sv = StateVector(n, random_statevector(n, seed))
    return DistributedState.from_statevector(sv, l), sv


class TestConstruction:
    def test_zero_init(self):
        d = DistributedState(6, 4)
        sv = d.to_statevector()
        assert sv.probability_of(0) == pytest.approx(1.0)

    def test_plus_init(self):
        d = DistributedState(6, 4, init="plus")
        assert np.allclose(d.to_statevector().data, 2.0 ** (-3))

    def test_scatter_gather_roundtrip(self):
        d, sv = dist_from_random()
        assert d.to_statevector().allclose(sv, atol=1e-12)

    def test_initial_global_qubits_layout(self):
        d = DistributedState(6, 4, initial_global_qubits={1, 3})
        assert d.global_qubit_set() == {1, 3}
        # zero state is layout-invariant
        assert d.to_statevector().probability_of(0) == pytest.approx(1.0)

    def test_initial_global_size_checked(self):
        with pytest.raises(ValueError):
            DistributedState(6, 4, initial_global_qubits={1})

    def test_bad_local_qubits(self):
        with pytest.raises(ValueError):
            DistributedState(4, 0)

    def test_norm(self):
        d, _ = dist_from_random()
        assert d.norm() == pytest.approx(1.0)


class TestLocalGates:
    def test_local_gate_matches_serial(self):
        d, sv = dist_from_random()
        g = Gate("rand", (1, 3), random_unitary(2, 0))
        d.apply_gate(g)
        sv.apply_gate(g)
        assert d.to_statevector().allclose(sv, atol=1e-10)
        assert d.stats.alltoall_steps == 0

    def test_kernel_cost_recorded(self):
        d, _ = dist_from_random()
        d.apply_gate(Gate("h", (0,)))
        assert d.kernel_cost.total_calls == 1


class TestDiagonalSpecialization:
    @pytest.mark.parametrize(
        "gate",
        [
            Gate("t", (7,)),            # 1q diagonal on a global qubit
            Gate("cz", (6, 7)),         # CZ global-global
            Gate("cz", (2, 6)),         # CZ local-global
            Gate("z", (5,)),            # Z on a global qubit
        ],
        ids=lambda g: f"{g.name}{g.qubits}",
    )
    def test_diagonal_global_no_comm(self, gate):
        d, sv = dist_from_random()
        d.apply_gate(gate)
        sv.apply_gate(gate)
        assert d.to_statevector().allclose(sv, atol=1e-12)
        assert d.stats.alltoall_steps == 0
        assert d.stats.rank_renumberings == 0


class TestMonomialSpecialization:
    @pytest.mark.parametrize(
        "gate",
        [
            Gate("x", (7,)),            # X on global: pure renumbering
            Gate("cnot", (6, 7)),       # both global
            Gate("cnot", (7, 2)),       # global control, local target
            Gate("swap", (5, 6)),       # swap two globals
        ],
        ids=lambda g: f"{g.name}{g.qubits}",
    )
    def test_monomial_global_no_comm(self, gate):
        d, sv = dist_from_random()
        d.apply_gate(gate)
        sv.apply_gate(gate)
        assert d.to_statevector().allclose(sv, atol=1e-12)
        assert d.stats.alltoall_steps == 0

    def test_cnot_local_control_global_target_needs_swap(self):
        d, _ = dist_from_random()
        with pytest.raises(NeedsSwapError):
            d.apply_gate(Gate("cnot", (2, 7)))

    def test_dense_global_needs_swap(self):
        d, _ = dist_from_random()
        with pytest.raises(NeedsSwapError):
            d.apply_gate(Gate("h", (6,)))

    def test_auto_swap_resolves(self):
        d, sv = dist_from_random()
        g = Gate("h", (6,))
        d.apply_gate(g, auto_swap=True)
        sv.apply_gate(g)
        assert d.to_statevector().allclose(sv, atol=1e-10)
        assert d.stats.alltoall_steps == 1


class TestSwaps:
    def test_swap_global_set_semantics(self):
        d, sv = dist_from_random(n=8, l=5)
        d.swap_global_set({0, 1, 2})
        assert d.global_qubit_set() == {0, 1, 2}
        assert d.to_statevector().allclose(sv, atol=1e-12)
        assert d.stats.alltoall_steps == 1

    def test_swap_noop_when_already_global(self):
        d, _ = dist_from_random(n=8, l=5)
        d.swap_global_set({5, 6, 7})
        assert d.stats.alltoall_steps == 0

    def test_partial_swap(self):
        d, sv = dist_from_random(n=8, l=5)
        # swap only qubit 7 out, qubit 0 in: q=1 group-local all-to-all
        d.swap_global_set({0, 5, 6})
        assert d.global_qubit_set() == {0, 5, 6}
        assert d.to_statevector().allclose(sv, atol=1e-12)
        assert d.stats.events[-1].group_size == 2

    def test_swap_all_global_to_local(self):
        d, sv = dist_from_random(n=8, l=5)
        d.swap_all_global_to_local()
        assert d.global_qubit_set() == {0, 1, 2}  # lowest-bit victims
        assert d.to_statevector().allclose(sv, atol=1e-12)

    def test_make_local(self):
        d, sv = dist_from_random(n=8, l=5)
        d.make_local({6, 7})
        assert d.is_local(6) and d.is_local(7)
        assert d.to_statevector().allclose(sv, atol=1e-12)

    def test_make_local_noop(self):
        d, _ = dist_from_random(n=8, l=5)
        d.make_local({0, 1})
        assert d.stats.alltoall_steps == 0

    def test_make_local_too_many(self):
        d, _ = dist_from_random(n=8, l=5)
        with pytest.raises(ValueError):
            d.make_local({0, 1, 2, 3, 4, 7})

    def test_swap_wrong_size(self):
        d, _ = dist_from_random(n=8, l=5)
        with pytest.raises(ValueError):
            d.swap_global_set({1, 2})

    def test_single_precision_distributed(self):
        """Sec. 5: single precision halves memory; results stay faithful."""
        import numpy as np

        from repro.circuit import generate_supremacy_circuit
        from repro.distributed import DistributedSimulator
        from repro.statevector import Simulator

        n, l = 9, 6
        circ = generate_supremacy_circuit(n, 8, seed=1)
        double = Simulator(n).run(circ).state
        sim = DistributedSimulator(n, l, single_precision=True)
        res = sim.run(circ, auto_swap=True)
        assert res.state.storage.dtype == np.complex64
        assert res.state.storage.shard_bytes == (1 << l) * 8
        gathered = res.state.to_statevector()
        assert abs(gathered.fidelity(double) - 1.0) < 1e-5

    def test_single_precision_storage_mismatch_rejected(self):
        import pytest as _pytest

        from repro.distributed import InMemoryShards

        storage = InMemoryShards(8, 32)  # complex128
        with _pytest.raises(ValueError, match="single_precision"):
            DistributedState(8, 5, storage=storage, single_precision=True)

    def test_gates_after_swap_use_new_layout(self):
        d, sv = dist_from_random(n=8, l=5)
        d.swap_global_set({0, 1, 2})
        g = Gate("rand", (7, 5), random_unitary(2, 4))  # now local
        d.apply_gate(g)
        sv.apply_gate(g)
        assert d.to_statevector().allclose(sv, atol=1e-10)
        assert d.stats.alltoall_steps == 1  # only the explicit swap
