"""Tests for the circuit text format."""

import pytest

from repro.circuit import (
    Circuit,
    circuit_from_text,
    circuit_to_text,
    generate_supremacy_circuit,
)
from repro.gates import Gate, random_unitary


class TestRoundTrip:
    def test_simple(self):
        c = Circuit(3, [Gate("h", (0,)), Gate("cz", (0, 2)), Gate("t", (1,))])
        assert circuit_from_text(circuit_to_text(c)) == c

    def test_supremacy_roundtrip_with_cycles(self):
        c = generate_supremacy_circuit(9, 10, seed=4)
        back = circuit_from_text(circuit_to_text(c))
        assert back == c
        assert [g.cycle for g in back] == [g.cycle for g in c]

    def test_custom_matrix_rejected(self):
        c = Circuit(2, [Gate("rand", (0,), random_unitary(1, 0))])
        with pytest.raises(ValueError, match="not a named gate"):
            circuit_to_text(c)

    def test_tampered_named_matrix_rejected(self):
        c = Circuit(1, [Gate("h", (0,), random_unitary(1, 3))])
        with pytest.raises(ValueError, match="custom matrix"):
            circuit_to_text(c)


class TestParsing:
    def test_comments_and_blanks(self):
        text = """
        # a comment
        qubits 2

        h 0  # inline comment
        cz 0 1
        """
        c = circuit_from_text(text)
        assert len(c) == 2

    def test_cycle_tag(self):
        c = circuit_from_text("qubits 1\nt 0 @cycle=3\n")
        assert c[0].cycle == 3

    def test_missing_header(self):
        with pytest.raises(ValueError, match="header"):
            circuit_from_text("h 0\n")

    def test_duplicate_header(self):
        with pytest.raises(ValueError, match="duplicate"):
            circuit_from_text("qubits 2\nqubits 2\n")

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            circuit_from_text("# nothing\n")

    def test_gate_without_qubits(self):
        with pytest.raises(ValueError, match="no qubits"):
            circuit_from_text("qubits 2\nh\n")
