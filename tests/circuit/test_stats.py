"""Tests for circuit statistics."""

from repro.circuit import Circuit, circuit_stats, generate_supremacy_circuit
from repro.gates import Gate


class TestCircuitStats:
    def test_counts_by_name_and_size(self):
        c = Circuit(
            3, [Gate("h", (0,)), Gate("h", (1,)), Gate("cz", (0, 1)), Gate("t", (2,))]
        )
        s = circuit_stats(c)
        assert s.total_gates == 4
        assert s.counts_by_name == {"h": 2, "cz": 1, "t": 1}
        assert s.counts_by_size == {1: 3, 2: 1}
        assert s.single_qubit_gates == 3
        assert s.two_qubit_gates == 1

    def test_diagonal_count(self):
        c = Circuit(2, [Gate("cz", (0, 1)), Gate("t", (0,)), Gate("h", (1,))])
        assert circuit_stats(c).diagonal_gates == 2

    def test_empty_circuit(self):
        s = circuit_stats(Circuit(4))
        assert s.total_gates == 0
        assert s.critical_path == 0

    def test_supremacy_composition(self):
        circ = generate_supremacy_circuit(16, 10, seed=0)
        s = circuit_stats(circ)
        assert s.counts_by_name["h"] == 16
        assert s.counts_by_name["cz"] == s.two_qubit_gates
        assert s.total_gates == len(circ)
        # Depth-10 circuit: critical path spans many cycles.
        assert s.critical_path >= 10
