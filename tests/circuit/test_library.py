"""Tests for the extra circuit families."""

import pytest

from repro.circuit import (
    ghz_circuit,
    hardware_efficient_ansatz,
    random_brickwork_circuit,
)
from repro.distributed import DistributedSimulator
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.statevector import Simulator


class TestGhz:
    def test_state(self):
        sv = Simulator(4).run(ghz_circuit(4)).state
        assert sv.probability_of(0b0000) == pytest.approx(0.5)
        assert sv.probability_of(0b1111) == pytest.approx(0.5)

    def test_gate_count(self):
        assert len(ghz_circuit(6)) == 6  # 1 H + 5 CNOT

    def test_distributed_ghz(self):
        """Ascending ladders need swaps (local control, global target);
        distributed execution must still be exact."""
        circ = ghz_circuit(8)
        ref = Simulator(8).run(circ).state
        res = DistributedSimulator(8, 5).run(circ, auto_swap=True)
        assert res.state.to_statevector().allclose(ref, atol=1e-12)
        assert res.comm.alltoall_steps >= 1

    def test_descending_ladder_is_communication_free(self):
        """CNOTs whose control sits on the global side are pure rank
        renumberings: a descending GHZ ladder costs zero bytes."""
        from repro.distributed import DistributedState
        from repro.gates import Gate
        from repro.statevector import StateVector

        n, l = 8, 5
        sv = StateVector(n)
        sv.apply_gate(Gate("h", (n - 1,)))  # superpose the top (global) qubit
        dist = DistributedState.from_statevector(sv, l)
        for q in range(n - 1, 0, -1):
            gate = Gate("cnot", (q, q - 1))
            sv.apply_gate(gate)
            dist.apply_gate(gate)
        assert dist.to_statevector().allclose(sv, atol=1e-12)
        assert dist.stats.alltoall_steps == 0
        assert dist.stats.bytes_on_network == 0
        assert dist.stats.rank_renumberings >= 1


class TestBrickwork:
    def test_normalised_output(self):
        circ = random_brickwork_circuit(8, 6, seed=0)
        assert Simulator(8).run(circ).state.norm() == pytest.approx(1.0)

    def test_layer_structure(self):
        circ = random_brickwork_circuit(6, 2, seed=1)
        layer0 = [g for g in circ if g.cycle == 0]
        # even layer couples (0,1), (2,3), (4,5)
        assert {g.qubits for g in layer0 if g.num_qubits == 2} <= {
            (0, 1), (2, 3), (4, 5),
        }

    def test_fraction_controls_two_qubit_count(self):
        dense = random_brickwork_circuit(8, 8, seed=2, two_qubit_fraction=1.0)
        thin = random_brickwork_circuit(8, 8, seed=2, two_qubit_fraction=0.0)
        assert all(g.num_qubits == 2 for g in dense)
        assert all(g.num_qubits == 1 for g in thin)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            random_brickwork_circuit(4, -1)
        with pytest.raises(ValueError):
            random_brickwork_circuit(4, 2, two_qubit_fraction=1.5)

    def test_schedulable_and_correct(self):
        circ = random_brickwork_circuit(9, 6, seed=3)
        ref = Simulator(9).run(circ).state
        sched = schedule_circuit(
            circ, SchedulerConfig(local_qubits=6, skip_initial_hadamards=False, seed=1)
        )
        res = DistributedSimulator(9, 6).run_schedule(sched)
        assert res.state.to_statevector().allclose(ref, atol=1e-9)


class TestAnsatz:
    def test_runs_and_normalised(self):
        circ = hardware_efficient_ansatz(6, 4, seed=0)
        assert Simulator(6).run(circ).state.norm() == pytest.approx(1.0)

    def test_local_structure_clusters_well(self):
        """The paper's Sec. 4.1.2 point: local-interaction circuits give
        the scheduler more clustering head-room than supremacy circuits."""
        from repro.circuit import generate_supremacy_circuit

        n = 16
        ansatz = hardware_efficient_ansatz(n, 8, seed=1)
        supremacy = generate_supremacy_circuit(n, 8, seed=1)
        cfg = SchedulerConfig(local_qubits=n, kmax=4, seed=2,
                              skip_initial_hadamards=False)
        ansatz_sched = schedule_circuit(ansatz, cfg)
        supremacy_sched = schedule_circuit(supremacy, cfg)
        assert ansatz_sched.gates_per_cluster() > 0
        assert supremacy_sched.gates_per_cluster() > 0
        # Both compress beyond kmax on average is not guaranteed for the
        # ansatz's rotation-heavy layers, but scheduling must be valid.
        ansatz_sched.validate()

    def test_deterministic(self):
        a = hardware_efficient_ansatz(5, 3, seed=7)
        b = hardware_efficient_ansatz(5, 3, seed=7)
        assert a == b
