"""Tests for the Circuit container."""

import numpy as np
import pytest

from repro.circuit import Circuit
from repro.gates import Gate
from repro.gates.matrices import H_MATRIX, T_MATRIX


def tiny_circuit() -> Circuit:
    return Circuit(
        3, [Gate("h", (0,)), Gate("cz", (0, 1)), Gate("t", (1,)), Gate("h", (2,))]
    )


class TestConstruction:
    def test_append_and_len(self):
        c = Circuit(2)
        c.append(Gate("h", (0,))).append(Gate("cz", (0, 1)))
        assert len(c) == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Circuit(2).append(Gate("h", (2,)))

    def test_type_checked(self):
        with pytest.raises(TypeError):
            Circuit(2).append("h")

    def test_bad_num_qubits(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_getitem_and_slice(self):
        c = tiny_circuit()
        assert c[1].name == "cz"
        assert isinstance(c[1:3], Circuit)
        assert len(c[1:3]) == 2

    def test_iteration_order(self):
        assert [g.name for g in tiny_circuit()] == ["h", "cz", "t", "h"]

    def test_equality(self):
        assert tiny_circuit() == tiny_circuit()
        assert tiny_circuit() != Circuit(3)


class TestQueries:
    def test_gate_indices_by_qubit(self):
        per_qubit = tiny_circuit().gate_indices_by_qubit()
        assert per_qubit[0] == [0, 1]
        assert per_qubit[1] == [1, 2]
        assert per_qubit[2] == [3]

    def test_used_qubits(self):
        assert tiny_circuit().used_qubits() == {0, 1, 2}

    def test_max_gate_size(self):
        assert tiny_circuit().max_gate_size() == 2
        assert Circuit(2).max_gate_size() == 0

    def test_order_preserved_true_for_commuting_reorder(self):
        a = Circuit(3, [Gate("h", (0,)), Gate("h", (2,))])
        b = Circuit(3, [Gate("h", (2,)), Gate("h", (0,))])
        assert a.same_qubit_order_preserved(b)

    def test_order_preserved_false_for_same_qubit_swap(self):
        a = Circuit(1, [Gate("h", (0,)), Gate("t", (0,))])
        b = Circuit(1, [Gate("t", (0,)), Gate("h", (0,))])
        assert not a.same_qubit_order_preserved(b)

    def test_order_preserved_false_for_missing_gate(self):
        a = tiny_circuit()
        b = Circuit(3, a.gates[:-1])
        assert not a.same_qubit_order_preserved(b)


class TestTransforms:
    def test_remap_bijection_required(self):
        with pytest.raises(ValueError, match="bijection"):
            tiny_circuit().remap({0: 0, 1: 0, 2: 2})

    def test_remap_changes_qubits(self):
        c = tiny_circuit().remap({0: 2, 1: 1, 2: 0})
        assert c[0].qubits == (2,)
        assert c[1].qubits == (2, 1)

    def test_remap_sequence_form(self):
        c = tiny_circuit().remap([2, 1, 0])
        assert c[3].qubits == (0,)

    def test_dagger_inverts(self):
        c = Circuit(2, [Gate("h", (0,)), Gate("t", (0,)), Gate("cz", (0, 1))])
        combined = c.dagger().unitary() @ c.unitary()
        assert np.allclose(combined, np.eye(4), atol=1e-10)

    def test_unitary_small(self):
        c = Circuit(1, [Gate("h", (0,)), Gate("t", (0,))])
        assert np.allclose(c.unitary(), T_MATRIX @ H_MATRIX)

    def test_unitary_refuses_large(self):
        with pytest.raises(ValueError, match="refusing"):
            Circuit(13).unitary()


class TestContentHash:
    def test_deterministic_across_instances(self):
        assert tiny_circuit().content_hash() == tiny_circuit().content_hash()

    def test_is_a_sha256_hexdigest(self):
        digest = tiny_circuit().content_hash()
        assert len(digest) == 64
        assert int(digest, 16) >= 0

    def test_gate_order_matters(self):
        a = Circuit(2, [Gate("h", (0,)), Gate("t", (1,))])
        b = Circuit(2, [Gate("t", (1,)), Gate("h", (0,))])
        assert a.content_hash() != b.content_hash()

    def test_qubit_count_matters(self):
        a = Circuit(2, [Gate("h", (0,))])
        b = Circuit(3, [Gate("h", (0,))])
        assert a.content_hash() != b.content_hash()

    def test_target_qubits_matter(self):
        a = Circuit(2, [Gate("h", (0,))])
        b = Circuit(2, [Gate("h", (1,))])
        assert a.content_hash() != b.content_hash()

    def test_matrix_content_matters(self):
        h_like = Gate("h", (0,), matrix=T_MATRIX)
        a = Circuit(1, [Gate("h", (0,))])
        b = Circuit(1, [h_like])
        assert a.content_hash() != b.content_hash()

    def test_append_invalidates_the_memo(self):
        c = Circuit(2, [Gate("h", (0,))])
        before = c.content_hash()
        c.append(Gate("cz", (0, 1)))
        after = c.content_hash()
        assert before != after
        reference = Circuit(2, [Gate("h", (0,)), Gate("cz", (0, 1))])
        assert after == reference.content_hash()

    def test_memoized_value_is_stable(self):
        c = tiny_circuit()
        assert c.content_hash() is c.content_hash()
