"""Tests for the supremacy-circuit generator (Fig. 1 rules)."""

import pytest

from repro.circuit import (
    GridSpec,
    circuit_stats,
    cz_layer_pairs,
    generate_supremacy_circuit,
    grid_for_qubits,
)


class TestGridSpec:
    def test_indexing_roundtrip(self):
        g = GridSpec(4, 5)
        for r in range(4):
            for c in range(5):
                assert g.position(g.qubit(r, c)) == (r, c)

    def test_edges_count(self):
        g = GridSpec(3, 3)
        # 3x3 grid: 2*3 horizontal + 3*2 vertical = 12 edges.
        assert len(g.edges()) == 12

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            GridSpec(0, 3)

    def test_paper_grids(self):
        assert grid_for_qubits(30) == GridSpec(6, 5)
        assert grid_for_qubits(36) == GridSpec(6, 6)
        assert grid_for_qubits(42) == GridSpec(7, 6)
        assert grid_for_qubits(45) == GridSpec(9, 5)
        assert grid_for_qubits(49) == GridSpec(7, 7)

    def test_fallback_grid_square(self):
        g = grid_for_qubits(16)
        assert g.num_qubits == 16 and g.rows == g.cols == 4


class TestCzPatterns:
    @pytest.mark.parametrize("rows,cols", [(6, 6), (6, 5), (7, 6), (3, 4)])
    def test_all_edges_once_per_8_cycles(self, rows, cols):
        """The defining Fig. 1 property: every nearest-neighbour pair
        interacts exactly once every 8 cycles."""
        g = GridSpec(rows, cols)
        covered: dict[tuple[int, int], int] = {}
        for layer in range(8):
            for pair in cz_layer_pairs(g, layer):
                key = tuple(sorted(pair))
                covered[key] = covered.get(key, 0) + 1
        assert set(covered) == {tuple(sorted(e)) for e in g.edges()}
        assert all(v == 1 for v in covered.values())

    def test_pattern_period_8(self):
        g = GridSpec(5, 5)
        assert cz_layer_pairs(g, 3) == cz_layer_pairs(g, 11)

    def test_pairs_are_neighbours(self):
        g = GridSpec(6, 6)
        for layer in range(8):
            for a, b in cz_layer_pairs(g, layer):
                (ra, ca), (rb, cb) = g.position(a), g.position(b)
                assert abs(ra - rb) + abs(ca - cb) == 1


class TestGenerator:
    def test_cycle0_hadamards(self):
        circ = generate_supremacy_circuit(9, 4, seed=0)
        head = circ.gates[:9]
        assert all(g.name == "h" and g.cycle == 0 for g in head)
        assert {g.qubits[0] for g in head} == set(range(9))

    def test_skip_hadamards_option(self):
        circ = generate_supremacy_circuit(9, 4, seed=0, include_initial_hadamards=False)
        assert all(g.name != "h" for g in circ)

    def test_gate_counts_match_table1(self):
        """Total gate counts vs Table 1 (369/447/528/569): 30 qubits exact,
        the rest within the +-6 documented in EXPERIMENTS.md."""
        paper = {30: 369, 36: 447, 42: 528, 45: 569}
        for nq, expected in paper.items():
            stats = circuit_stats(generate_supremacy_circuit(nq, 25, seed=0))
            assert abs(stats.total_gates - expected) <= 6
        assert circuit_stats(generate_supremacy_circuit(30, 25, seed=0)).total_gates == 369

    def test_counts_seed_independent(self):
        # Placement is deterministic; only gate identity is random.
        a = circuit_stats(generate_supremacy_circuit(36, 25, seed=1))
        b = circuit_stats(generate_supremacy_circuit(36, 25, seed=99))
        assert a.total_gates == b.total_gates
        assert a.two_qubit_gates == b.two_qubit_gates

    def test_single_qubit_gate_rules(self):
        """Second 1q gate per qubit is T; consecutive 1q gates differ."""
        circ = generate_supremacy_circuit(16, 25, seed=3)
        history: dict[int, list[str]] = {q: [] for q in range(16)}
        for gate in circ:
            if gate.num_qubits == 1 and gate.name != "h":
                history[gate.qubits[0]].append(gate.name)
        for q, names in history.items():
            if names:
                assert names[0] == "t", f"first non-H 1q gate on {q} is {names[0]}"
            for a, b in zip(names, names[1:]):
                assert a != b, f"consecutive identical 1q gates on {q}"

    def test_single_qubit_placement_rule(self):
        """A 1q gate at cycle t implies a CZ at t-1 and none at t."""
        grid = GridSpec(4, 4)
        circ = generate_supremacy_circuit(grid, 16, seed=2)
        cz_qubits: dict[int, set[int]] = {}
        for gate in circ:
            if gate.name == "cz":
                cz_qubits.setdefault(gate.cycle, set()).update(gate.qubits)
        for gate in circ:
            if gate.num_qubits == 1 and gate.name != "h":
                q, t = gate.qubits[0], gate.cycle
                assert q in cz_qubits.get(t - 1, set())
                assert q not in cz_qubits.get(t, set())

    def test_trailing_singles_toggle(self):
        with_t = generate_supremacy_circuit(16, 9, seed=0)
        without = generate_supremacy_circuit(16, 9, seed=0, include_trailing_singles=False)
        assert len(with_t) > len(without)

    def test_deterministic_per_seed(self):
        assert generate_supremacy_circuit(9, 10, seed=5) == generate_supremacy_circuit(
            9, 10, seed=5
        )
        assert generate_supremacy_circuit(9, 10, seed=5) != generate_supremacy_circuit(
            9, 10, seed=6
        )

    def test_depth_zero(self):
        circ = generate_supremacy_circuit(9, 0, seed=0)
        assert len(circ) == 9  # just the Hadamard layer

    def test_negative_depth(self):
        with pytest.raises(ValueError):
            generate_supremacy_circuit(9, -1)
