"""Tests for the circuit dependency DAG."""

import networkx as nx

from repro.circuit import Circuit, circuit_dag, critical_path_length
from repro.circuit.dag import frontier_gates
from repro.gates import Gate


def chain_circuit() -> Circuit:
    return Circuit(
        3,
        [
            Gate("h", (0,)),        # 0
            Gate("cz", (0, 1)),     # 1 depends on 0
            Gate("h", (2,)),        # 2 independent
            Gate("cz", (1, 2)),     # 3 depends on 1 and 2
            Gate("t", (0,)),        # 4 depends on 1
        ],
    )


class TestDag:
    def test_edges(self):
        dag = circuit_dag(chain_circuit())
        assert set(dag.edges()) == {(0, 1), (1, 3), (2, 3), (1, 4)}

    def test_is_dag(self):
        assert nx.is_directed_acyclic_graph(circuit_dag(chain_circuit()))

    def test_node_attributes(self):
        dag = circuit_dag(chain_circuit())
        assert dag.nodes[1]["gate"].name == "cz"

    def test_critical_path(self):
        # 0 -> 1 -> 3 is the longest chain: length 3.
        assert critical_path_length(chain_circuit()) == 3

    def test_critical_path_empty(self):
        assert critical_path_length(Circuit(2)) == 0

    def test_critical_path_parallel_gates(self):
        c = Circuit(4, [Gate("h", (q,)) for q in range(4)])
        assert critical_path_length(c) == 1


class TestFrontier:
    def test_initial_frontier(self):
        dag = circuit_dag(chain_circuit())
        assert frontier_gates(dag, set()) == [0, 2]

    def test_frontier_advances(self):
        dag = circuit_dag(chain_circuit())
        assert frontier_gates(dag, {0}) == [1, 2]
        assert frontier_gates(dag, {0, 1, 2}) == [3, 4]

    def test_frontier_done(self):
        dag = circuit_dag(chain_circuit())
        assert frontier_gates(dag, {0, 1, 2, 3, 4}) == []
