"""Tests for circuit transformations."""

import numpy as np

from repro.circuit import Circuit, generate_supremacy_circuit
from repro.circuit.transforms import (
    drop_final_diagonal_gates,
    merge_single_qubit_runs,
)
from repro.gates import Gate
from repro.statevector import Simulator


class TestDropFinalDiagonals:
    def test_drops_trailing_cz(self):
        """The paper's exact optimization: final CZ gates are skipped."""
        c = Circuit(3, [Gate("h", (0,)), Gate("cz", (0, 1)), Gate("cz", (1, 2))])
        reduced = drop_final_diagonal_gates(c)
        assert [g.name for g in reduced] == ["h"]

    def test_keeps_diagonal_before_dense(self):
        c = Circuit(2, [Gate("cz", (0, 1)), Gate("h", (0,))])
        reduced = drop_final_diagonal_gates(c)
        # CZ has a dense successor on qubit 0: must stay.
        assert len(reduced) == 2

    def test_cascading_removal(self):
        """T before a removable CZ is itself removable."""
        c = Circuit(2, [Gate("h", (0,)), Gate("t", (0,)), Gate("cz", (0, 1))])
        reduced = drop_final_diagonal_gates(c)
        assert [g.name for g in reduced] == ["h"]

    def test_probabilities_exactly_preserved(self):
        circ = generate_supremacy_circuit(10, 12, seed=3)
        reduced = drop_final_diagonal_gates(circ)
        assert len(reduced) < len(circ)
        full = Simulator(10).run(circ).state
        cut = Simulator(10).run(reduced).state
        assert np.allclose(full.probabilities(), cut.probabilities(), atol=1e-12)

    def test_partial_dense_successor_blocks(self):
        # CZ(0,1): dense successor on qubit 1 only — still must stay.
        c = Circuit(2, [Gate("cz", (0, 1)), Gate("h", (1,))])
        assert len(drop_final_diagonal_gates(c)) == 2

    def test_idempotent(self):
        circ = generate_supremacy_circuit(9, 8, seed=1)
        once = drop_final_diagonal_gates(circ)
        twice = drop_final_diagonal_gates(once)
        assert once == twice


class TestMergeSingleQubitRuns:
    def test_merges_adjacent_pair(self):
        c = Circuit(1, [Gate("h", (0,)), Gate("t", (0,))])
        merged = merge_single_qubit_runs(c)
        assert len(merged) == 1
        assert np.allclose(
            merged[0].matrix, Gate("t", (0,)).matrix @ Gate("h", (0,)).matrix
        )

    def test_interruption_by_two_qubit_gate(self):
        c = Circuit(
            2, [Gate("h", (0,)), Gate("cz", (0, 1)), Gate("t", (0,))]
        )
        merged = merge_single_qubit_runs(c)
        assert len(merged) == 3  # CZ breaks the run

    def test_independent_qubits_merge_separately(self):
        c = Circuit(
            2,
            [Gate("h", (0,)), Gate("h", (1,)), Gate("t", (0,)), Gate("t", (1,))],
        )
        merged = merge_single_qubit_runs(c)
        assert len(merged) == 2

    def test_unitary_preserved(self):
        circ = generate_supremacy_circuit(8, 10, seed=2)
        merged = merge_single_qubit_runs(circ)
        assert len(merged) <= len(circ)
        a = Simulator(8).run(circ).state
        b = Simulator(8).run(merged).state
        assert a.allclose(b, atol=1e-9)

    def test_merged_name_chains(self):
        c = Circuit(1, [Gate("h", (0,)), Gate("t", (0,)), Gate("s", (0,))])
        merged = merge_single_qubit_runs(c)
        assert merged[0].name == "merged[h;t;s]"

    def test_reduces_supremacy_gate_count(self):
        """Supremacy circuits have no adjacent 1q runs past the H layer
        (by design), so merging should barely change them — the property
        the paper exploits when calling them 'least suitable'."""
        circ = generate_supremacy_circuit(12, 12, seed=0)
        merged = merge_single_qubit_runs(circ)
        # Only trailing/boundary coincidences merge, if any.
        assert len(circ) - len(merged) <= 12
