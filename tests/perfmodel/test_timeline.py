"""Tests for the end-to-end timeline model (Table 2)."""

import pytest

from repro.circuit import generate_supremacy_circuit
from repro.perfmodel import (
    ARIES_DRAGONFLY,
    BaselineModel,
    CORI_KNL_NODE,
    TimelineModel,
)
from repro.scheduling import SchedulerConfig, schedule_circuit


def schedule_for(nq: int, nodes: int, *, kmax: int = 4, depth: int = 25):
    import math

    l = nq - int(math.log2(nodes))
    circ = generate_supremacy_circuit(
        nq, depth, seed=0, include_trailing_singles=False
    )
    return schedule_circuit(circ, SchedulerConfig(local_qubits=l, kmax=kmax, seed=1)), circ, l


@pytest.fixture(scope="module")
def knl_model():
    return TimelineModel(CORI_KNL_NODE, ARIES_DRAGONFLY)


@pytest.fixture(scope="module")
def knl_baseline():
    return BaselineModel(CORI_KNL_NODE, ARIES_DRAGONFLY)


class TestTimelineReport:
    def test_report_arithmetic(self, knl_model):
        sched, _, _ = schedule_for(20, 16, depth=12)
        r = knl_model.predict(sched)
        assert r.total_seconds == pytest.approx(r.kernel_seconds + r.comm_seconds)
        assert 0.0 <= r.comm_fraction < 1.0
        assert r.total_flops > 0
        assert r.nodes == 16


@pytest.mark.slow
class TestTable2:
    """Paper vs model; the calibrated model must land within 35% on time
    and 12 percentage points on communication fraction."""

    @pytest.mark.parametrize(
        "nq,nodes,paper_seconds,paper_comm_pct",
        [(30, 1, 9.58, 0.0), (36, 64, 28.92, 42.9)],
        ids=["30q-1node", "36q-64nodes"],
    )
    def test_small_rows(self, knl_model, nq, nodes, paper_seconds, paper_comm_pct):
        sched, _, _ = schedule_for(nq, nodes)
        r = knl_model.predict(sched)
        assert abs(r.total_seconds - paper_seconds) / paper_seconds < 0.35
        assert abs(100 * r.comm_fraction - paper_comm_pct) < 12.0

    def test_45q_row(self, knl_model):
        """The record run: 8192 nodes, 552.61 s, 78% comm, 0.428 PFLOPS."""
        sched, _, _ = schedule_for(45, 8192)
        r = knl_model.predict(sched)
        assert abs(r.total_seconds - 552.61) / 552.61 < 0.35
        assert abs(100 * r.comm_fraction - 78.0) < 10.0
        assert 0.25 < r.pflops < 0.9  # paper: 0.428

    def test_speedup_over_baseline_order_of_magnitude(
        self, knl_model, knl_baseline
    ):
        """Table 2: >10x speedup over [5] at every scale (paper: 12.4-14.8)."""
        sched, circ, l = schedule_for(42, 4096)
        ours = knl_model.predict(sched)
        base = knl_baseline.predict(circ, l)
        speedup = base.total_seconds / ours.total_seconds
        assert 8.0 < speedup < 25.0, speedup

    def test_comm_fraction_grows_with_scale(self, knl_model):
        fractions = []
        for nq, nodes in [(36, 64), (42, 4096), (45, 8192)]:
            sched, _, _ = schedule_for(nq, nodes)
            fractions.append(knl_model.predict(sched).comm_fraction)
        assert fractions[0] < fractions[1] < fractions[2]


class TestBaselineModel:
    @pytest.mark.slow
    def test_baseline_slower_than_scheduled(self, knl_model, knl_baseline):
        sched, circ, l = schedule_for(36, 64)
        assert (
            knl_baseline.predict(circ, l).total_seconds
            > knl_model.predict(sched).total_seconds
        )

    def test_baseline_single_node_no_comm(self, knl_baseline):
        circ = generate_supremacy_circuit(30, 25, seed=0)
        r = knl_baseline.predict(circ, 30)
        assert r.comm_seconds == 0.0
        assert r.kernel_seconds > 0
