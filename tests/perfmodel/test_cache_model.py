"""Tests for the cache-associativity penalty model (Figs. 6 and 9)."""

import pytest

from repro.perfmodel import (
    CORI_KNL_NODE,
    EDISON_NODE,
    CacheModel,
    kernel_performance,
)


class TestCacheModel:
    def test_no_penalty_low_order(self):
        model = CacheModel(CORI_KNL_NODE)
        for k in range(1, 6):
            assert model.bandwidth_factor(k, high_order=False) == 1.0

    def test_no_penalty_small_k_high_order(self):
        """Paper: for k <= 3 on 8-way caches the drop is negligible —
        2**k lines map to distinct ways."""
        model = CacheModel(EDISON_NODE)
        for k in (1, 2, 3):
            assert model.bandwidth_factor(k, high_order=True) == 1.0

    def test_penalty_kicks_in_above_associativity(self):
        model = CacheModel(EDISON_NODE)
        f4 = model.bandwidth_factor(4, high_order=True)
        f5 = model.bandwidth_factor(5, high_order=True)
        assert f4 < 1.0
        assert f5 < f4  # much greater drop for k=5 (Sec. 4.2.1)


class TestKernelPerformance:
    def test_fig9_shape_edison(self):
        """Fig. 9: monotone rise with k low-order; high-order drops only
        for k >= 4."""
        low = [kernel_performance(EDISON_NODE, k) for k in range(1, 6)]
        high = [
            kernel_performance(EDISON_NODE, k, high_order=True) for k in range(1, 6)
        ]
        assert all(a < b for a, b in zip(low, low[1:]))
        for k in (1, 2, 3):
            assert high[k - 1] == low[k - 1]
        assert high[3] < low[3]
        assert high[4] < high[3]

    def test_fig6_shape_knl(self):
        low = [kernel_performance(CORI_KNL_NODE, k) for k in range(1, 6)]
        high = [
            kernel_performance(CORI_KNL_NODE, k, high_order=True) for k in range(1, 6)
        ]
        assert low[0] == pytest.approx(0.4375 * 460)
        assert all(a <= b for a, b in zip(low, low[1:]))
        assert high[3] < low[3] and high[4] < low[4]

    def test_knl_magnitudes_match_figure(self):
        """Fig. 6's y-range: low-order peaks around 1000-1100 GFLOPS."""
        peak_low = kernel_performance(CORI_KNL_NODE, 5)
        assert 900 <= peak_low <= 1150

    def test_edison_magnitudes_match_figure(self):
        """Fig. 9's y-range: low-order peaks below ~350 GFLOPS."""
        peak_low = kernel_performance(EDISON_NODE, 5)
        assert 200 <= peak_low <= 350

    def test_large_state_uses_dram_on_knl(self):
        small = kernel_performance(CORI_KNL_NODE, 1, state_bytes=2**30)
        large = kernel_performance(CORI_KNL_NODE, 1, state_bytes=64 * 2**30)
        assert large == pytest.approx(small * 115.2 / 460.0)
