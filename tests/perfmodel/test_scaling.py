"""Tests for the strong-scaling model (Figs. 7 and 10)."""

import pytest

from repro.perfmodel import CORI_KNL_NODE, EDISON_NODE, strong_scaling_speedup
from repro.perfmodel.scaling import kernel_gflops_at_cores


class TestStrongScaling:
    def test_speedup_one_core_is_one(self):
        for k in range(1, 6):
            assert strong_scaling_speedup(EDISON_NODE, k, 1) == pytest.approx(1.0)

    def test_speedup_bounded_by_cores(self):
        for machine, cores in [(EDISON_NODE, 24), (CORI_KNL_NODE, 64)]:
            for k in range(1, 6):
                assert strong_scaling_speedup(machine, k, cores) <= cores + 1e-9

    def test_five_qubit_scales_best(self):
        """Fig. 10: the 5-qubit kernel scales best to the full node."""
        at_full = [strong_scaling_speedup(EDISON_NODE, k, 24) for k in range(1, 6)]
        assert at_full[4] == max(at_full)
        assert at_full[0] == min(at_full)

    def test_monotone_in_k_fig7(self):
        at_64 = [strong_scaling_speedup(CORI_KNL_NODE, k, 64) for k in range(1, 6)]
        assert all(a <= b + 1e-9 for a, b in zip(at_64, at_64[1:]))

    def test_memory_bound_kernel_saturates(self):
        """1-qubit kernels stop scaling once bandwidth saturates."""
        s12 = strong_scaling_speedup(EDISON_NODE, 1, 12)
        s24 = strong_scaling_speedup(EDISON_NODE, 1, 24)
        assert s24 < 24 * 0.7  # far from ideal
        assert s24 <= s12 * 2.0 + 1e-9

    def test_compute_bound_kernel_near_ideal(self):
        s = strong_scaling_speedup(EDISON_NODE, 5, 24)
        assert s > 0.85 * 24

    def test_speedup_monotone_in_cores(self):
        for k in (1, 3, 5):
            speedups = [
                strong_scaling_speedup(CORI_KNL_NODE, k, p) for p in (1, 2, 4, 8, 16, 32, 64)
            ]
            assert all(a <= b + 1e-9 for a, b in zip(speedups, speedups[1:]))

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            kernel_gflops_at_cores(EDISON_NODE, 1, 0)
        with pytest.raises(ValueError):
            kernel_gflops_at_cores(EDISON_NODE, 1, 25)
