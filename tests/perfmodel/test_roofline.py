"""Tests for the roofline model (Fig. 2)."""

import pytest

from repro.perfmodel import (
    CORI_KNL_NODE,
    EDISON_SOCKET,
    attainable_gflops,
    roofline_table,
)
from repro.util.flops import operational_intensity


class TestAttainable:
    def test_memory_bound_region(self):
        # 1-qubit kernel on Edison: 0.4375 * 52 = 22.75 GFLOPS.
        oi = operational_intensity(1)
        assert attainable_gflops(oi, EDISON_SOCKET) == pytest.approx(22.75)

    def test_compute_bound_region(self):
        assert attainable_gflops(1000.0, EDISON_SOCKET) == 230.4

    def test_knl_uses_mcdram(self):
        oi = operational_intensity(1)
        assert attainable_gflops(oi, CORI_KNL_NODE) == pytest.approx(0.4375 * 460)

    def test_custom_bandwidth(self):
        assert attainable_gflops(1.0, CORI_KNL_NODE, bw_gbs=115.2) == pytest.approx(115.2)

    def test_invalid_oi(self):
        with pytest.raises(ValueError):
            attainable_gflops(0.0, EDISON_SOCKET)


class TestRooflineTable:
    def test_knl_matches_paper_annotations(self):
        """Fig. 2b's annotated points: 229.6, 442.7, 878.7 GFLOPS."""
        points = roofline_table(CORI_KNL_NODE)
        annotated = [p.modeled_gflops for p in points if p.paper_gflops is not None]
        assert annotated == [229.6, 442.7, 878.7]

    def test_edison_step3_annotation(self):
        """Fig. 2a's annotated 166.2 GFLOPS for the step-3 4-qubit kernel."""
        points = roofline_table(EDISON_SOCKET)
        step3 = points[-1]
        assert step3.modeled_gflops == 166.2
        assert step3.paper_gflops == 166.2

    def test_modeled_below_roof(self):
        for machine in (EDISON_SOCKET, CORI_KNL_NODE):
            for p in roofline_table(machine):
                assert p.modeled_gflops <= p.roof_gflops + 1e-9

    def test_steps_improve_monotonically(self):
        """Each optimization step increases 4-qubit kernel performance."""
        for machine in (EDISON_SOCKET, CORI_KNL_NODE):
            four_qubit = [
                p.modeled_gflops
                for p in roofline_table(machine)
                if p.kernel_qubits == 4
            ]
            assert all(a < b for a, b in zip(four_qubit, four_qubit[1:]))

    def test_one_qubit_kernel_memory_bound(self):
        for machine in (EDISON_SOCKET, CORI_KNL_NODE):
            p = roofline_table(machine)[0]
            assert p.kernel_qubits == 1
            assert p.oi < 0.5
            assert p.roof_gflops < machine.peak_gflops
