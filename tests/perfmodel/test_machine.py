"""Tests for the machine descriptions."""

import pytest

from repro.perfmodel import CORI_KNL_NODE, EDISON_NODE, EDISON_SOCKET


class TestMachineSpecs:
    def test_paper_constants(self):
        """The published numbers from Sec. 4 / Fig. 2 annotations."""
        assert EDISON_SOCKET.peak_gflops == 230.4
        assert EDISON_SOCKET.dram_bw_gbs == 52.0
        assert EDISON_SOCKET.cores == 12
        assert CORI_KNL_NODE.peak_gflops == 3133.4
        assert CORI_KNL_NODE.fast_mem_bw_gbs == 460.0
        assert CORI_KNL_NODE.dram_bw_gbs == 115.2
        assert CORI_KNL_NODE.cores == 68
        assert CORI_KNL_NODE.fast_mem_gib == 16.0

    def test_effective_associativity_eight(self):
        """Ivy Bridge: 8-way; KNL: 16-way shared between 2 cores -> 8."""
        assert EDISON_SOCKET.effective_associativity == 8
        assert CORI_KNL_NODE.effective_associativity == 8

    def test_per_core_gflops(self):
        assert EDISON_SOCKET.per_core_gflops == pytest.approx(230.4 / 12)

    def test_best_bw_prefers_mcdram(self):
        assert CORI_KNL_NODE.best_bw_gbs == 460.0
        assert EDISON_SOCKET.best_bw_gbs == 52.0

    def test_stream_bw_spills_to_dram(self):
        small = 1 << 30  # 1 GiB fits MCDRAM
        huge = 64 * 2**30
        assert CORI_KNL_NODE.stream_bw_gbs(small) == 460.0
        assert CORI_KNL_NODE.stream_bw_gbs(huge) == 115.2
        # Edison has no fast tier: always DRAM.
        assert EDISON_SOCKET.stream_bw_gbs(huge) == 52.0

    def test_edison_node_doubles_socket(self):
        assert EDISON_NODE.cores == 2 * EDISON_SOCKET.cores
        assert EDISON_NODE.peak_gflops == pytest.approx(2 * EDISON_SOCKET.peak_gflops)
