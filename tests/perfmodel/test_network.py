"""Tests for the dragonfly network model."""

import pytest

from repro.perfmodel import ARIES_DRAGONFLY, NetworkSpec
from repro.perfmodel.network import ARIES_EDISON


class TestEffectiveBandwidth:
    def test_anchor_values_exact(self):
        assert ARIES_DRAGONFLY.effective_bw_gbs(64) == pytest.approx(1.39)
        assert ARIES_DRAGONFLY.effective_bw_gbs(4096) == pytest.approx(0.60)
        assert ARIES_DRAGONFLY.effective_bw_gbs(8192) == pytest.approx(0.32)

    def test_interpolation_monotone_decreasing(self):
        nodes = [16, 64, 256, 1024, 4096, 8192, 16384]
        bws = [ARIES_DRAGONFLY.effective_bw_gbs(n) for n in nodes]
        assert all(a >= b for a, b in zip(bws, bws[1:]))

    def test_single_node_infinite(self):
        assert ARIES_DRAGONFLY.effective_bw_gbs(1) == float("inf")

    def test_single_anchor_extrapolation(self):
        assert ARIES_EDISON.effective_bw_gbs(64) == pytest.approx(0.53)
        assert ARIES_EDISON.effective_bw_gbs(128) < 0.53
        assert ARIES_EDISON.effective_bw_gbs(32) > 0.53

    def test_no_anchors_rejected(self):
        with pytest.raises(ValueError):
            NetworkSpec(name="empty").effective_bw_gbs(4)


class TestTimes:
    def test_alltoall_time(self):
        # 64 nodes, 16 GiB shards: the Table 2 calibration point implies
        # roughly 12 seconds per swap.
        t = ARIES_DRAGONFLY.alltoall_seconds(64, (1 << 30) * 16)
        assert 10.0 < t < 14.0

    def test_alltoall_zero_for_single_node(self):
        assert ARIES_DRAGONFLY.alltoall_seconds(1, 1 << 34) == 0.0

    def test_global_gate_half_swap(self):
        """Fig. 5 caption: a dense global gate costs about half a swap."""
        shard = (1 << 30) * 16
        assert ARIES_DRAGONFLY.global_gate_seconds(
            64, shard
        ) == pytest.approx(0.5 * ARIES_DRAGONFLY.alltoall_seconds(64, shard))

    def test_diagonal_fraction_scales(self):
        # more participants -> larger useful fraction (n-1)/n
        t2 = ARIES_DRAGONFLY.alltoall_seconds(2, 1 << 30)
        t4 = ARIES_DRAGONFLY.alltoall_seconds(4, 1 << 30)
        bw2 = ARIES_DRAGONFLY.effective_bw_gbs(2)
        bw4 = ARIES_DRAGONFLY.effective_bw_gbs(4)
        assert t2 == pytest.approx((1 << 30) * 0.5 / (bw2 * 1e9))
        assert t4 == pytest.approx((1 << 30) * 0.75 / (bw4 * 1e9))
