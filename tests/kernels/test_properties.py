"""Property-based tests for the kernel layer (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates import random_unitary
from repro.kernels import apply_gate_indexed, apply_gate_reference
from repro.util.rng import random_statevector


@st.composite
def gate_applications(draw):
    """Random (n, qubits, seed) triples with 1 <= k <= 3, n <= 8."""
    n = draw(st.integers(2, 8))
    k = draw(st.integers(1, min(3, n)))
    qubits = tuple(draw(st.permutations(range(n)))[:k])
    seed = draw(st.integers(0, 10_000))
    return n, qubits, seed


class TestKernelProperties:
    @settings(max_examples=40, deadline=None)
    @given(gate_applications())
    def test_indexed_matches_reference(self, case):
        n, qubits, seed = case
        u = random_unitary(len(qubits), seed)
        state = random_statevector(n, seed).copy()
        a = state.copy()
        apply_gate_reference(a, u, qubits)
        b = state.copy()
        apply_gate_indexed(b, u, qubits, chunk_size=3)
        assert np.allclose(a, b, atol=1e-10)

    @settings(max_examples=40, deadline=None)
    @given(gate_applications())
    def test_unitarity_preserves_norm(self, case):
        n, qubits, seed = case
        u = random_unitary(len(qubits), seed)
        state = random_statevector(n, seed).copy()
        apply_gate_indexed(state, u, qubits)
        assert np.isclose(np.linalg.norm(state), 1.0, atol=1e-10)

    @settings(max_examples=40, deadline=None)
    @given(gate_applications())
    def test_gate_then_inverse_is_identity(self, case):
        n, qubits, seed = case
        u = random_unitary(len(qubits), seed)
        state = random_statevector(n, seed).copy()
        original = state.copy()
        apply_gate_indexed(state, u, qubits)
        apply_gate_indexed(state, u.conj().T, qubits)
        assert np.allclose(state, original, atol=1e-10)

    @settings(max_examples=30, deadline=None)
    @given(gate_applications(), st.integers(0, 100))
    def test_disjoint_gates_commute(self, case, seed2):
        n, qubits, seed = case
        rest = [q for q in range(n) if q not in qubits]
        if not rest:
            return
        other = (rest[seed2 % len(rest)],)
        u1 = random_unitary(len(qubits), seed)
        u2 = random_unitary(1, seed2)
        state = random_statevector(n, seed).copy()
        a = state.copy()
        apply_gate_indexed(a, u1, qubits)
        apply_gate_indexed(a, u2, other)
        b = state.copy()
        apply_gate_indexed(b, u2, other)
        apply_gate_indexed(b, u1, qubits)
        assert np.allclose(a, b, atol=1e-10)
