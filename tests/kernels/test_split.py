"""Tests for the split real/imaginary kernel (Sec. 3.2's FMA trick)."""

import numpy as np
import pytest

from repro.gates import random_unitary
from repro.gates.matrices import CZ_MATRIX, H_MATRIX, X_MATRIX
from repro.kernels import apply_gate_reference
from repro.kernels.split import SplitGateMatrix, apply_gate_split_real
from repro.util.rng import random_statevector


class TestSplitGateMatrix:
    def test_precompute_parts(self):
        u = random_unitary(2, 0)
        split = SplitGateMatrix(u)
        assert np.allclose(split.real + 1j * split.imag, u)
        assert split.real.flags["C_CONTIGUOUS"]
        assert split.imag.flags["C_CONTIGUOUS"]

    def test_real_gate_detected(self):
        assert SplitGateMatrix(H_MATRIX).imag_is_zero
        assert SplitGateMatrix(CZ_MATRIX).imag_is_zero
        assert not SplitGateMatrix(random_unitary(1, 3)).imag_is_zero

    def test_panel_product_matches_complex(self, rng):
        u = random_unitary(3, rng)
        panel = rng.standard_normal((8, 32)) + 1j * rng.standard_normal((8, 32))
        assert np.allclose(SplitGateMatrix(u).panel_product(panel), u @ panel)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            SplitGateMatrix(np.ones((2, 3)))


class TestApplySplitReal:
    @pytest.mark.parametrize(
        "qubits", [(0,), (7,), (2, 5), (6, 1, 3)], ids=str
    )
    def test_matches_reference(self, qubits, rng):
        n = 8
        u = random_unitary(len(qubits), rng)
        s0 = random_statevector(n, rng).copy()
        a = s0.copy()
        apply_gate_reference(a, u, qubits)
        b = s0.copy()
        apply_gate_split_real(b, u, qubits, chunk_size=7)
        assert np.allclose(a, b, atol=1e-10)

    def test_real_gate_fast_path(self, rng):
        n = 8
        s0 = random_statevector(n, rng).copy()
        a = s0.copy()
        apply_gate_reference(a, X_MATRIX, (4,))
        b = s0.copy()
        apply_gate_split_real(b, SplitGateMatrix(X_MATRIX), (4,))
        assert np.allclose(a, b, atol=1e-12)

    def test_presplit_reuse(self, rng):
        """The paper's point: the split is computed once, reused for all
        panel products (and across repeated applications)."""
        n = 8
        u = random_unitary(2, rng)
        split = SplitGateMatrix(u)
        s0 = random_statevector(n, rng).copy()
        a = s0.copy()
        apply_gate_split_real(a, split, (1, 6))
        apply_gate_split_real(a, split, (1, 6))
        b = s0.copy()
        apply_gate_reference(b, u, (1, 6))
        apply_gate_reference(b, u, (1, 6))
        assert np.allclose(a, b, atol=1e-10)

    def test_dimension_mismatch(self, rng):
        s0 = random_statevector(6, rng).copy()
        with pytest.raises(ValueError, match="inconsistent"):
            apply_gate_split_real(s0, random_unitary(2, rng), (0,))

    def test_norm_preserved(self, rng):
        s0 = random_statevector(9, rng).copy()
        apply_gate_split_real(s0, random_unitary(3, rng), (8, 0, 4))
        assert np.linalg.norm(s0) == pytest.approx(1.0)
