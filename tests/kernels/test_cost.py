"""Tests for kernel cost accounting."""

import pytest

from repro.kernels import KernelCostModel, kernel_cost


class TestKernelCost:
    def test_single_call(self):
        cost = kernel_cost(10, 1)
        assert cost.flops == 14 * 1024
        assert cost.bytes == 32 * 1024

    def test_diagonal_cheaper(self):
        assert kernel_cost(10, 2, diagonal=True).flops < kernel_cost(10, 2).flops


class TestKernelCostModel:
    def test_record_accumulates(self):
        m = KernelCostModel()
        m.record(10, 1)
        m.record(10, 4)
        assert m.total_calls == 2
        assert m.calls_by_k == {1: 1, 4: 1}
        assert m.total_flops == kernel_cost(10, 1).flops + kernel_cost(10, 4).flops

    def test_diagonal_counter(self):
        m = KernelCostModel()
        m.record(8, 2, diagonal=True)
        assert m.diagonal_calls == 1

    def test_intensity(self):
        m = KernelCostModel()
        m.record(10, 1)
        assert m.intensity == pytest.approx(14 / 32)

    def test_intensity_empty(self):
        assert KernelCostModel().intensity == 0.0

    def test_gflops(self):
        m = KernelCostModel()
        m.record(10, 1)
        assert m.gflops(1.0) == pytest.approx(14 * 1024 / 1e9)
        with pytest.raises(ValueError):
            m.gflops(0.0)

    def test_merge(self):
        a, b = KernelCostModel(), KernelCostModel()
        a.record(8, 1)
        b.record(8, 1)
        b.record(8, 3, diagonal=True)
        a.merge(b)
        assert a.total_calls == 3
        assert a.calls_by_k == {1: 2, 3: 1}
        assert a.diagonal_calls == 1
