"""Tests for the gate-application kernels."""

import numpy as np
import pytest

from repro.gates import random_unitary
from repro.gates.matrices import CZ_MATRIX, H_MATRIX, T_MATRIX, X_MATRIX
from repro.kernels import (
    apply_diagonal_gate,
    apply_gate,
    apply_gate_indexed,
    apply_gate_naive,
    apply_gate_reference,
    apply_gate_two_vector,
)
from repro.util.rng import random_statevector


class TestAgainstNaive:
    """Every optimized kernel must equal the explicit-loop oracle."""

    @pytest.mark.parametrize(
        "qubits",
        [(0,), (5,), (7,), (1, 4), (6, 2), (0, 3, 6), (7, 0, 4, 2)],
        ids=str,
    )
    def test_reference_and_indexed(self, qubits, rng):
        n = 8
        u = random_unitary(len(qubits), rng)
        s0 = random_statevector(n, rng).copy()
        oracle = s0.copy()
        apply_gate_naive(oracle, u, qubits)
        for kernel, kwargs in [
            (apply_gate_reference, {}),
            (apply_gate_indexed, {}),
            (apply_gate_indexed, {"chunk_size": 5}),
            (apply_gate_indexed, {"chunk_size": 1}),
        ]:
            out = s0.copy()
            kernel(out, u, qubits, **kwargs)
            assert np.allclose(out, oracle, atol=1e-10), kernel.__name__

    def test_diagonal_kernel(self, rng):
        n = 7
        s0 = random_statevector(n, rng).copy()
        for qubits, matrix in [((3,), T_MATRIX), ((2, 5), CZ_MATRIX), ((6, 0), CZ_MATRIX)]:
            oracle = s0.copy()
            apply_gate_naive(oracle, matrix, qubits)
            out = s0.copy()
            apply_diagonal_gate(out, np.diagonal(matrix), qubits)
            assert np.allclose(out, oracle, atol=1e-12)


class TestSemantics:
    def test_x_flips_bit(self):
        state = np.zeros(4, dtype=complex)
        state[0b00] = 1.0
        apply_gate_reference(state, X_MATRIX, (1,))
        assert state[0b10] == 1.0

    def test_h_creates_superposition(self):
        state = np.zeros(2, dtype=complex)
        state[0] = 1.0
        apply_gate_indexed(state, H_MATRIX, (0,))
        assert np.allclose(state, [2**-0.5, 2**-0.5])

    def test_cz_phases_only_11(self):
        state = np.ones(4, dtype=complex) / 2
        apply_diagonal_gate(state, np.diagonal(CZ_MATRIX), (0, 1))
        assert np.allclose(state, [0.5, 0.5, 0.5, -0.5])

    def test_norm_preserved(self, rng):
        state = random_statevector(10, rng).copy()
        apply_gate_indexed(state, random_unitary(3, rng), (9, 1, 5))
        assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_two_vector_does_not_mutate(self, rng):
        s0 = random_statevector(6, rng).copy()
        before = s0.copy()
        out = apply_gate_two_vector(s0, H_MATRIX, (2,))
        assert np.array_equal(s0, before)
        assert not np.allclose(out, before)

    def test_inplace_kernels_return_state(self, rng):
        s0 = random_statevector(6, rng).copy()
        assert apply_gate_indexed(s0, H_MATRIX, (0,)) is s0


class TestDispatcher:
    def test_auto_uses_diagonal_path(self, rng):
        s0 = random_statevector(6, rng).copy()
        oracle = s0.copy()
        apply_gate_naive(oracle, CZ_MATRIX, (1, 4))
        apply_gate(s0, CZ_MATRIX, (1, 4), strategy="auto")
        assert np.allclose(s0, oracle)

    def test_explicit_strategies_agree(self, rng):
        n = 7
        u = random_unitary(2, rng)
        s0 = random_statevector(n, rng).copy()
        results = []
        for strategy in ("naive", "reference", "indexed"):
            out = s0.copy()
            apply_gate(out, u, (2, 6), strategy=strategy)
            results.append(out)
        assert np.allclose(results[0], results[1])
        assert np.allclose(results[0], results[2])

    def test_unknown_strategy(self, rng):
        s0 = random_statevector(4, rng).copy()
        with pytest.raises(ValueError, match="strategy"):
            apply_gate(s0, H_MATRIX, (0,), strategy="magic")


class TestValidation:
    def test_non_1d_state(self):
        with pytest.raises(ValueError, match="1-D"):
            apply_gate_reference(np.zeros((2, 2), dtype=complex), H_MATRIX, (0,))

    def test_non_power_state(self):
        with pytest.raises(ValueError, match="power of two"):
            apply_gate_reference(np.zeros(6, dtype=complex), H_MATRIX, (0,))

    def test_qubit_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            apply_gate_indexed(np.zeros(8, dtype=complex), H_MATRIX, (3,))
