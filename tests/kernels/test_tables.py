"""Tests for the memoized gather-table / diagonal-factor cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import GatherTableCache, apply_gate_indexed
from repro.kernels.tables import _build_gather_table
from repro.telemetry import MetricsRegistry


class TestGatherTables:
    def test_tables_match_uncached_build(self):
        cache = GatherTableCache()
        (table,) = cache.gather_tables(6, (1, 4), None)
        expected = _build_gather_table(6, (1, 4), 0, 1 << 4)
        assert np.array_equal(table, expected)

    def test_chunking_covers_full_c_range(self):
        cache = GatherTableCache()
        tables = cache.gather_tables(8, (0, 3), 16)
        assert len(tables) == (1 << 6) // 16
        joined = np.concatenate(tables, axis=1)
        assert np.array_equal(joined, _build_gather_table(8, (0, 3), 0, 1 << 6))

    def test_hit_and_miss_counters(self):
        cache = GatherTableCache()
        cache.gather_tables(6, (2,), None)
        assert (cache.hits, cache.misses) == (0, 1)
        cache.gather_tables(6, (2,), None)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        # A different key misses again.
        cache.gather_tables(6, (3,), None)
        assert cache.misses == 2

    def test_returned_tables_are_read_only(self):
        cache = GatherTableCache()
        (table,) = cache.gather_tables(6, (1,), None)
        with pytest.raises(ValueError):
            table[0, 0] = 99

    def test_bytes_accounting(self):
        cache = GatherTableCache()
        (table,) = cache.gather_tables(6, (1,), None)
        assert cache.bytes_cached == table.nbytes
        assert cache.bytes_saved == 0
        cache.gather_tables(6, (1,), None)
        assert cache.bytes_saved == table.nbytes


class TestDiagonalFactor:
    def test_memoized_on_diag_bytes(self):
        cache = GatherTableCache()
        diag = np.exp(1j * np.linspace(0, 1, 4))
        a = cache.diagonal_factor(6, (1, 3), diag)
        b = cache.diagonal_factor(6, (1, 3), diag.copy())
        assert a is b  # same bytes -> same cached tensor
        assert cache.hits == 1
        cache.diagonal_factor(6, (1, 3), diag * np.exp(0.5j))
        assert cache.misses == 2

    def test_factor_is_read_only(self):
        cache = GatherTableCache()
        factor = cache.diagonal_factor(4, (0,), np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            factor[(0,) * factor.ndim] = 0


class TestLRUEviction:
    def test_evicts_least_recently_used(self):
        cache = GatherTableCache(capacity=2)
        cache.gather_tables(6, (0,), None)
        cache.gather_tables(6, (1,), None)
        cache.gather_tables(6, (0,), None)  # refresh (0,)
        cache.gather_tables(6, (2,), None)  # evicts (1,)
        assert len(cache) == 2
        misses = cache.misses
        cache.gather_tables(6, (0,), None)  # still cached
        assert cache.misses == misses
        cache.gather_tables(6, (1,), None)  # was evicted -> rebuild
        assert cache.misses == misses + 1

    def test_bytes_cached_shrinks_on_eviction(self):
        cache = GatherTableCache(capacity=1)
        cache.gather_tables(6, (0,), None)
        (second,) = cache.gather_tables(8, (0, 1), None)
        assert len(cache) == 1
        assert cache.bytes_cached == second.nbytes

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            GatherTableCache(capacity=0)


class TestMetricsMirroring:
    def test_counters_stream_into_registry(self):
        cache = GatherTableCache()
        registry = MetricsRegistry(enabled=True)
        cache.bind_metrics(registry)
        cache.gather_tables(6, (1,), None)
        cache.gather_tables(6, (1,), None)
        snap = registry.snapshot()
        assert snap["plan.cache.misses"] == 1
        assert snap["plan.cache.hits"] == 1
        assert snap["plan.cache.bytes_saved"] > 0

    def test_disabled_registry_is_ignored(self):
        cache = GatherTableCache()
        cache.bind_metrics(MetricsRegistry(enabled=False))
        cache.gather_tables(6, (1,), None)  # must not raise / record
        assert cache._metrics is None

    def test_unbind(self):
        cache = GatherTableCache()
        registry = MetricsRegistry(enabled=True)
        cache.bind_metrics(registry)
        cache.bind_metrics(None)
        cache.gather_tables(6, (1,), None)
        assert "plan.cache.misses" not in registry.snapshot()


class TestClear:
    def test_clear_resets_everything(self):
        cache = GatherTableCache()
        cache.gather_tables(6, (1,), None)
        cache.gather_tables(6, (1,), None)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {
            "hits": 0,
            "misses": 0,
            "hit_rate": 0.0,
            "entries": 0,
            "capacity": cache.capacity,
            "bytes_cached": 0,
            "bytes_saved": 0,
        }


class TestKernelIntegration:
    def test_private_cache_gives_identical_amplitudes(self):
        rng = np.random.default_rng(0)
        state = rng.standard_normal(1 << 8) + 1j * rng.standard_normal(1 << 8)
        u = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        cached = state.copy()
        cache = GatherTableCache()
        apply_gate_indexed(cached, u, (1, 6), chunk_size=8, cache=cache)
        uncached = state.copy()
        apply_gate_indexed(uncached, u, (1, 6), chunk_size=8, cache=None)
        assert np.array_equal(cached, uncached)
        assert cache.misses == 1
        # Re-applying the same shape hits.
        apply_gate_indexed(cached, u, (1, 6), chunk_size=8, cache=cache)
        assert cache.hits >= 1


class TestSetCapacity:
    def test_shrink_evicts_lru_overflow(self):
        cache = GatherTableCache(capacity=4)
        for q in range(4):
            cache.gather_tables(6, (q,), None)
        cache.gather_tables(6, (0,), None)  # refresh (0,)
        cache.set_capacity(2)
        assert len(cache) == 2
        assert cache.stats()["capacity"] == 2
        misses = cache.misses
        cache.gather_tables(6, (0,), None)  # survivor
        cache.gather_tables(6, (3,), None)  # survivor
        assert cache.misses == misses
        cache.gather_tables(6, (1,), None)  # was evicted
        assert cache.misses == misses + 1

    def test_grow_keeps_entries(self):
        cache = GatherTableCache(capacity=1)
        cache.gather_tables(6, (0,), None)
        cache.set_capacity(8)
        assert len(cache) == 1
        assert cache.capacity == 8

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            GatherTableCache().set_capacity(0)


class TestThreadSafety:
    def test_concurrent_lookups_stay_consistent(self):
        import threading

        cache = GatherTableCache(capacity=8)
        errors = []
        barrier = threading.Barrier(8)

        def worker(seed: int) -> None:
            try:
                barrier.wait()
                for i in range(50):
                    q = (seed + i) % 6
                    (table,) = cache.gather_tables(6, (q,), None)
                    expected = _build_gather_table(6, (q,), 0, 32)
                    if not np.array_equal(table, expected):
                        raise AssertionError(f"corrupt table for qubit {q}")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Bookkeeping stayed coherent under contention.
        assert len(cache) <= 8
        assert cache.hits + cache.misses == 8 * 50
        stats = cache.stats()
        assert stats["entries"] == len(cache)
