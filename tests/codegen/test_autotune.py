"""Tests for the autotuner (the benchmarking feedback loop)."""

import numpy as np
import pytest

from repro.codegen import AutoTuner
from repro.gates import random_unitary
from repro.kernels import apply_gate_reference
from repro.util.rng import random_statevector


class TestAutoTuner:
    def test_tune_produces_timings_for_all_candidates(self):
        tuner = AutoTuner(repeats=1)
        result = tuner.tune(10, (2, 6))
        assert result.strategy in result.timings
        assert any(label.startswith("indexed") for label in result.timings)
        assert "generated" in result.timings
        assert "reference" in result.timings
        assert "split-real" in result.timings
        assert result.seconds_per_call == min(result.timings.values())

    def test_winner_is_fastest(self):
        result = AutoTuner(repeats=1).tune(10, (4,))
        assert result.timings[result.strategy] == result.seconds_per_call
        assert result.speedup_over(result.strategy) == pytest.approx(1.0)

    def test_cache(self):
        tuner = AutoTuner(repeats=1)
        r1 = tuner.tune(10, (1, 3))
        r2 = tuner.tune(10, (1, 3))
        assert r1 is r2

    def test_apply_is_correct(self, rng):
        tuner = AutoTuner(repeats=1)
        n = 10
        for qubits in [(0,), (9,), (3, 7), (8, 1, 5)]:
            u = random_unitary(len(qubits), rng)
            s0 = random_statevector(n, rng).copy()
            a = s0.copy()
            apply_gate_reference(a, u, qubits)
            b = s0.copy()
            tuner.apply(b, u, qubits)
            assert np.allclose(a, b, atol=1e-10), qubits

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            AutoTuner(repeats=0)
