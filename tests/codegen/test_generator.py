"""Tests for the kernel code generator."""

import numpy as np
import pytest

from repro.codegen import (
    generate_einsum_kernel,
    generate_single_qubit_kernel,
    generated_kernel,
)
from repro.codegen.generator import clear_kernel_cache
from repro.gates import random_unitary
from repro.kernels import apply_gate_reference
from repro.util.rng import random_statevector


class TestSingleQubitKernel:
    @pytest.mark.parametrize("qubit", [0, 3, 7])
    def test_matches_reference(self, qubit, rng):
        n = 8
        fn, src = generate_single_qubit_kernel(n, qubit)
        u = random_unitary(1, rng)
        s0 = random_statevector(n, rng).copy()
        a = s0.copy()
        apply_gate_reference(a, u, (qubit,))
        b = s0.copy()
        fn(b, u)
        assert np.allclose(a, b, atol=1e-12)

    def test_source_contains_constants(self):
        _, src = generate_single_qubit_kernel(6, 2)
        assert "reshape(8, 2, 4)" in src  # 2^(6-1-2), 2, 2^2
        assert "def kernel_1q_n6_q2" in src

    def test_in_place(self, rng):
        fn, _ = generate_single_qubit_kernel(5, 1)
        s0 = random_statevector(5, rng).copy()
        out = fn(s0, random_unitary(1, rng))
        assert out is s0


class TestEinsumKernel:
    @pytest.mark.parametrize(
        "qubits", [(0, 1), (6, 2), (3, 7, 0), (5, 2, 7, 1)], ids=str
    )
    def test_matches_reference(self, qubits, rng):
        n = 8
        fn, _src = generate_einsum_kernel(n, qubits)
        u = random_unitary(len(qubits), rng)
        s0 = random_statevector(n, rng).copy()
        a = s0.copy()
        apply_gate_reference(a, u, qubits)
        b = s0.copy()
        fn(b, u)
        assert np.allclose(a, b, atol=1e-10)

    def test_source_has_subscripts(self):
        _, src = generate_einsum_kernel(6, (1, 4))
        assert "np.einsum(" in src
        assert "->" in src

    def test_adjacent_bits_collapse_axes(self):
        # qubits (0, 1): layout is (free, 2, 2) — one free axis only.
        _, src = generate_einsum_kernel(8, (0, 1))
        assert "reshape(64, 2, 2)" in src


class TestDispatchAndCache:
    def test_dispatch_k1_uses_slicing(self):
        clear_kernel_cache()
        _, src = generated_kernel(6, (3,))
        assert "kernel_1q" in src

    def test_dispatch_k2_uses_einsum(self):
        _, src = generated_kernel(6, (3, 0))
        assert "einsum" in src

    def test_cache_hit_returns_same_function(self):
        clear_kernel_cache()
        f1, _ = generated_kernel(7, (2, 5))
        f2, _ = generated_kernel(7, (2, 5))
        assert f1 is f2

    def test_cache_distinguishes_qubit_order(self):
        f1, _ = generated_kernel(7, (2, 5))
        f2, _ = generated_kernel(7, (5, 2))
        assert f1 is not f2
