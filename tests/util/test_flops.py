"""Tests for the FLOP/byte accounting (Sec. 3.1 conventions)."""

import pytest

from repro.util.flops import (
    GateCost,
    bytes_touched,
    gate_flops,
    operational_intensity,
)


class TestGateFlops:
    def test_single_qubit_paper_value(self):
        # The paper: 2*(4 mul + 2 add) + 2 add = 14 FLOP per output entry.
        assert gate_flops(1, 1) / 2 == 14

    def test_scales_with_state_size(self):
        assert gate_flops(10, 1) == 14 * 1024

    def test_k_qubit_formula(self):
        # 8 * 2**k - 2 per entry.
        for k in range(1, 6):
            per_entry = gate_flops(k, k) / (1 << k)
            assert per_entry == 8 * (1 << k) - 2

    def test_diagonal_is_one_mul_per_entry(self):
        assert gate_flops(8, 2, diagonal=True) == 6 * 256


class TestOperationalIntensity:
    def test_single_qubit_below_half(self):
        # The paper's memory-bound observation: OI < 1/2 for 1-qubit gates.
        oi = operational_intensity(1)
        assert oi == pytest.approx(14 / 32)
        assert oi < 0.5

    def test_four_qubit_near_four(self):
        assert operational_intensity(4) == pytest.approx(126 / 32)

    def test_monotone_in_k(self):
        ois = [operational_intensity(k) for k in range(1, 7)]
        assert all(a < b for a, b in zip(ois, ois[1:]))


class TestBytesAndCost:
    def test_bytes_touched_double(self):
        # one 16-byte load + one 16-byte store per amplitude
        assert bytes_touched(10) == 32 * 1024

    def test_bytes_touched_single_precision(self):
        assert bytes_touched(10, single_precision=True) == 16 * 1024

    def test_gate_cost_intensity(self):
        cost = GateCost.for_gate(12, 1)
        assert cost.intensity == pytest.approx(14 / 32)

    def test_gate_cost_add(self):
        a = GateCost.for_gate(10, 1)
        b = GateCost.for_gate(10, 2)
        total = a + b
        assert total.flops == a.flops + b.flops
        assert total.bytes == a.bytes + b.bytes
