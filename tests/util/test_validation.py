"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.gates.matrices import H_MATRIX
from repro.util.validation import (
    check_power_of_two,
    check_qubit_indices,
    check_unitary,
)


class TestCheckPowerOfTwo:
    def test_accepts(self):
        assert check_power_of_two(64) == 64

    def test_rejects(self):
        with pytest.raises(ValueError, match="power of two"):
            check_power_of_two(48, "dim")


class TestCheckQubitIndices:
    def test_valid(self):
        assert check_qubit_indices([2, 0], 4) == (2, 0)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            check_qubit_indices([4], 4)

    def test_negative(self):
        with pytest.raises(ValueError, match="out of range"):
            check_qubit_indices([-1], 4)

    def test_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            check_qubit_indices([1, 1], 4)


class TestCheckUnitary:
    def test_accepts_hadamard(self):
        out = check_unitary(H_MATRIX)
        assert out.dtype == np.complex128

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            check_unitary(np.ones((2, 3)))

    def test_rejects_non_power_dim(self):
        with pytest.raises(ValueError, match="power of two"):
            check_unitary(np.eye(3))

    def test_rejects_non_unitary(self):
        with pytest.raises(ValueError, match="not unitary"):
            check_unitary(np.array([[1.0, 1.0], [0.0, 1.0]]))
