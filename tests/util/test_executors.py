"""Tests for the process-wide executor cleanup registry."""

from concurrent.futures import ThreadPoolExecutor

from repro.util import (
    register_executor,
    registered_executors,
    shutdown_registered,
    unregister_executor,
)


class TestExecutorRegistry:
    def test_register_and_unregister(self):
        pool = ThreadPoolExecutor(max_workers=1)
        try:
            register_executor(pool)
            assert pool in registered_executors()
            register_executor(pool)  # idempotent: keyed by identity
            assert registered_executors().count(pool) == 1
        finally:
            unregister_executor(pool)
            pool.shutdown(wait=True)
        assert pool not in registered_executors()

    def test_unregister_unknown_is_noop(self):
        unregister_executor(object())

    def test_shutdown_registered_drains(self):
        pools = [ThreadPoolExecutor(max_workers=1) for _ in range(2)]
        for pool in pools:
            register_executor(pool)
        count = shutdown_registered(wait=True)
        assert count >= 2
        for pool in pools:
            assert pool not in registered_executors()
            assert pool._shutdown
