"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, random_statevector


class TestEnsureRng:
    def test_from_int(self):
        a, b = ensure_rng(42), ensure_rng(42)
        assert a.integers(1000) == b.integers(1000)

    def test_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestRandomStatevector:
    def test_normalised(self):
        vec = random_statevector(8, 0)
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_deterministic(self):
        assert np.array_equal(random_statevector(6, 5), random_statevector(6, 5))

    def test_shape_and_dtype(self):
        vec = random_statevector(5, 1)
        assert vec.shape == (32,)
        assert vec.dtype == np.complex128
