"""Tests for repro.util.bits."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import (
    bit_length_of_power_of_two,
    clear_bits,
    expand_index,
    extract_bits,
    insert_zero_bits,
    is_power_of_two,
    scatter_bits,
    set_bits,
)


class TestIsPowerOfTwo:
    def test_powers(self):
        for e in range(20):
            assert is_power_of_two(1 << e)

    def test_non_powers(self):
        for v in (0, -1, -2, 3, 5, 6, 7, 9, 12, 1000):
            assert not is_power_of_two(v)

    def test_bit_length(self):
        assert bit_length_of_power_of_two(1) == 0
        assert bit_length_of_power_of_two(1024) == 10

    def test_bit_length_rejects_non_power(self):
        with pytest.raises(ValueError):
            bit_length_of_power_of_two(3)


class TestExtractScatter:
    def test_extract_scalar(self):
        # index 0b1101, positions [0, 2, 3] -> bits 1,1,1 = 0b111
        assert extract_bits(0b1101, [0, 2, 3]) == 0b111
        assert extract_bits(0b1101, [1]) == 0

    def test_extract_respects_position_order(self):
        # positions reversed changes which result bit gets which source bit
        assert extract_bits(0b01, [0, 1]) == 0b01
        assert extract_bits(0b01, [1, 0]) == 0b10

    def test_scatter_scalar(self):
        assert scatter_bits(0b11, [1, 3]) == 0b1010
        assert scatter_bits(0b01, [4]) == 0b10000

    def test_vectorised(self):
        idx = np.arange(16)
        compact = extract_bits(idx, [1, 3])
        expected = ((idx >> 1) & 1) | (((idx >> 3) & 1) << 1)
        assert np.array_equal(compact, expected)

    @given(st.integers(0, 2**16 - 1), st.permutations(range(6)))
    def test_scatter_extract_roundtrip(self, value, positions):
        compact = value & 0b111111
        assert extract_bits(scatter_bits(compact, positions), positions) == compact


class TestInsertExpand:
    def test_insert_zero_bits(self):
        # c = 0b11, insert zeros at positions 0 and 2 -> 0b1010
        assert insert_zero_bits(0b11, [0, 2]) == 0b1010

    def test_insert_at_high_position(self):
        assert insert_zero_bits(0b1, [4]) == 0b1  # bit 0 stays, zero at 4

    def test_expand_index_combines(self):
        # positions (2, 0): x bit0 -> position 2, x bit1 -> position 0
        full = expand_index(0b1, 0b01, (2, 0))
        # c=1 fills the non-target bits (positions {1} then upward)
        assert (full >> 2) & 1 == 1
        assert full & 1 == 0

    def test_expand_enumerates_disjoint_indices(self):
        n, positions = 6, (4, 1)
        seen = set()
        for c in range(1 << (n - 2)):
            for x in range(4):
                seen.add(int(expand_index(c, x, positions)))
        assert seen == set(range(1 << n))

    @given(
        st.integers(0, 255),
        st.integers(0, 3),
        st.permutations(range(5)).map(lambda p: tuple(p[:2])),
    )
    def test_expand_extract_consistent(self, c, x, positions):
        full = expand_index(c, x, positions)
        assert extract_bits(full, list(positions)) == x


class TestSetClear:
    def test_set_bits(self):
        assert set_bits(0, [0, 3]) == 0b1001

    def test_clear_bits(self):
        assert clear_bits(0b1111, [1, 2]) == 0b1001

    def test_vectorised_set_clear(self):
        idx = np.arange(8)
        assert np.array_equal(clear_bits(set_bits(idx, [5]), [5]), clear_bits(idx, [5]))
