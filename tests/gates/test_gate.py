"""Tests for the Gate IR node and its structure flags."""

import numpy as np
import pytest

from repro.gates import Gate, random_unitary


class TestConstruction:
    def test_named_lookup(self):
        g = Gate("h", (3,))
        assert g.num_qubits == 1
        assert g.qubits == (3,)

    def test_explicit_matrix(self):
        u = random_unitary(2, 0)
        g = Gate("custom", (1, 4), u)
        assert np.allclose(g.matrix, u)

    def test_matrix_read_only(self):
        g = Gate("h", (0,))
        with pytest.raises(ValueError):
            g.matrix[0, 0] = 5

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="matrix"):
            Gate("h", (0, 1))  # 2x2 matrix on two qubits

    def test_duplicate_qubits(self):
        with pytest.raises(ValueError, match="duplicate"):
            Gate("cz", (2, 2))

    def test_non_unitary_rejected(self):
        with pytest.raises(ValueError, match="unitary"):
            Gate("bad", (0,), np.array([[1, 1], [0, 1]], dtype=complex))

    def test_cycle_metadata(self):
        assert Gate("t", (0,), cycle=7).cycle == 7


class TestStructureFlags:
    @pytest.mark.parametrize("name", ["t", "z", "s", "cz"])
    def test_diagonal_gates(self, name):
        qubits = (0, 1) if name == "cz" else (0,)
        assert Gate(name, qubits).is_diagonal

    @pytest.mark.parametrize("name", ["h", "x_1_2", "y_1_2"])
    def test_dense_gates_not_diagonal(self, name):
        assert not Gate(name, (0,)).is_diagonal

    @pytest.mark.parametrize("name,qubits", [("x", (0,)), ("cnot", (0, 1)), ("swap", (0, 1))])
    def test_monomial_gates(self, name, qubits):
        g = Gate(name, qubits)
        assert g.is_monomial
        assert not g.is_diagonal or name == "z"

    def test_diagonal_is_also_monomial(self):
        # diag phases map basis states to themselves: monomial by def.
        assert Gate("t", (0,)).is_monomial

    def test_hadamard_not_monomial(self):
        assert not Gate("h", (0,)).is_monomial

    def test_basis_permutation_of_cnot(self):
        g = Gate("cnot", (0, 1))
        # control = bit 0: |01> (control 1, target 0) -> |11>
        perm = g.basis_permutation
        assert perm[0b01] == 0b11
        assert perm[0b11] == 0b01
        assert perm[0b00] == 0b00
        assert np.allclose(g.basis_phases, 1.0)

    def test_basis_permutation_none_for_dense(self):
        assert Gate("h", (0,)).basis_permutation is None


class TestTransforms:
    def test_dagger(self):
        g = Gate("t", (2,))
        assert np.allclose(g.dagger().matrix @ g.matrix, np.eye(2))

    def test_remap(self):
        g = Gate("cz", (0, 3))
        mapped = g.remap({0: 5, 3: 1, 1: 0, 2: 2, 4: 3, 5: 4})
        assert mapped.qubits == (5, 1)
        assert np.allclose(mapped.matrix, g.matrix)

    def test_on(self):
        g = Gate("cnot", (0, 1)).on(4, 2)
        assert g.qubits == (4, 2)

    def test_equality_and_hash(self):
        a, b = Gate("h", (1,)), Gate("h", (1,))
        assert a == b and hash(a) == hash(b)
        assert a != Gate("h", (2,))
        assert Gate("x", (0,)) != Gate("y", (0,))

    def test_repr(self):
        assert "cz" in repr(Gate("cz", (0, 1)))


class TestStructureHints:
    """Constructor hints and table fills pre-seed the flag caches."""

    def test_named_gate_flags_preseeded_without_scan(self):
        g = Gate("cz", (0, 1))
        assert g.__dict__.get("is_diagonal") is True
        assert g.__dict__.get("is_monomial") is True

    def test_named_dense_gate_preseeded_false(self):
        g = Gate("h", (0,))
        assert g.__dict__.get("is_diagonal") is False
        assert g.__dict__.get("is_monomial") is False

    def test_explicit_matrix_never_trusts_the_name_table(self):
        # An explicit matrix may contradict its name; flags must come
        # from scanning it, not from GATE_STRUCTURE.
        g = Gate("z", (0,), np.array([[0, 1], [1, 0]], dtype=complex))
        assert "is_diagonal" not in g.__dict__
        assert not g.is_diagonal

    def test_explicit_hint_skips_the_scan(self):
        diag = np.diag(np.exp([0.1j, 0.2j]))
        g = Gate("custom", (0,), diag, diagonal=True)
        assert g.__dict__.get("is_diagonal") is True
        assert g.is_diagonal

    def test_diagonal_hint_implies_monomial(self):
        diag = np.diag(np.exp([0.1j, 0.2j]))
        g = Gate("custom", (0,), diag, diagonal=True)
        assert g.__dict__.get("is_monomial") is True

    def test_unhinted_custom_gate_scans_lazily(self):
        g = Gate("custom", (0,), random_unitary(1, 3))
        assert "is_diagonal" not in g.__dict__
        assert g.is_diagonal in (True, False)  # scan runs on access
        assert "is_diagonal" in g.__dict__

    @pytest.mark.parametrize("derive", [
        lambda g: g.dagger(),
        lambda g: g.remap({0: 2, 1: 0, 2: 1}),
        lambda g: g.on(1),
    ])
    def test_derived_gates_propagate_known_flags(self, derive):
        g = Gate("t", (0,))
        derived = derive(g)
        assert derived.__dict__.get("is_diagonal") is True
        assert derived.__dict__.get("is_monomial") is True
