"""Tests for the gate matrix registry."""

import cmath
import math

import numpy as np
import pytest

from repro.gates.matrices import (
    CNOT_MATRIX,
    CZ_MATRIX,
    H_MATRIX,
    S_MATRIX,
    SQRT_X_MATRIX,
    SQRT_Y_MATRIX,
    SWAP_MATRIX,
    T_MATRIX,
    TOFFOLI_MATRIX,
    X_MATRIX,
    Y_MATRIX,
    Z_MATRIX,
    controlled_phase_matrix,
    gate_matrix,
    phase_matrix,
    random_unitary,
    rotation_matrix,
)

ALL_NAMED = [
    X_MATRIX,
    Y_MATRIX,
    Z_MATRIX,
    H_MATRIX,
    S_MATRIX,
    T_MATRIX,
    SQRT_X_MATRIX,
    SQRT_Y_MATRIX,
    CZ_MATRIX,
    CNOT_MATRIX,
    SWAP_MATRIX,
    TOFFOLI_MATRIX,
]


class TestUnitarity:
    @pytest.mark.parametrize("matrix", ALL_NAMED, ids=lambda m: f"dim{m.shape[0]}")
    def test_all_named_unitary(self, matrix):
        dim = matrix.shape[0]
        assert np.allclose(matrix.conj().T @ matrix, np.eye(dim), atol=1e-12)


class TestAlgebraicIdentities:
    def test_sqrt_x_squares_to_x(self):
        assert np.allclose(SQRT_X_MATRIX @ SQRT_X_MATRIX, X_MATRIX)

    def test_sqrt_y_squares_to_y_up_to_phase(self):
        # The paper's Y^(1/2) squares to Y up to a global phase.
        sq = SQRT_Y_MATRIX @ SQRT_Y_MATRIX
        ratio = sq[np.abs(Y_MATRIX) > 0.5] / Y_MATRIX[np.abs(Y_MATRIX) > 0.5]
        assert np.allclose(ratio, ratio[0])
        assert abs(abs(ratio[0]) - 1.0) < 1e-12

    def test_t_squares_to_s(self):
        assert np.allclose(T_MATRIX @ T_MATRIX, S_MATRIX)

    def test_h_squares_to_identity(self):
        assert np.allclose(H_MATRIX @ H_MATRIX, np.eye(2))

    def test_cz_from_controlled_phase(self):
        assert np.allclose(controlled_phase_matrix(math.pi), CZ_MATRIX)

    def test_t_from_phase(self):
        assert np.allclose(phase_matrix(math.pi / 4), T_MATRIX)

    def test_cz_symmetric(self):
        # CZ is symmetric in control/target (Sec. 2).
        assert np.allclose(CZ_MATRIX, CZ_MATRIX.T)

    def test_paper_sqrt_definitions(self):
        assert np.allclose(
            SQRT_X_MATRIX, 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]])
        )
        assert np.allclose(
            SQRT_Y_MATRIX, 0.5 * np.array([[1 + 1j, -1 - 1j], [1 + 1j, 1 + 1j]])
        )

    def test_t_phase_value(self):
        assert T_MATRIX[1, 1] == pytest.approx(cmath.exp(1j * math.pi / 4))


class TestRotation:
    def test_rz_diagonal(self):
        rz = rotation_matrix("z", 0.7)
        assert np.allclose(rz, np.diag(np.diagonal(rz)))

    def test_rx_pi_is_x_up_to_phase(self):
        rx = rotation_matrix("x", math.pi)
        assert np.allclose(rx, -1j * X_MATRIX)

    def test_bad_axis(self):
        with pytest.raises(ValueError):
            rotation_matrix("w", 1.0)


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert np.allclose(gate_matrix("CZ"), CZ_MATRIX)

    def test_lookup_aliases(self):
        assert np.allclose(gate_matrix("cx"), gate_matrix("cnot"))
        assert np.allclose(gate_matrix("sqrt_x"), gate_matrix("x_1_2"))

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            gate_matrix("nope")

    def test_returns_copy(self):
        m = gate_matrix("x")
        m[0, 0] = 99
        assert gate_matrix("x")[0, 0] == 0


class TestRandomUnitary:
    def test_unitary(self):
        for k in (1, 2, 3):
            u = random_unitary(k, 0)
            assert np.allclose(u.conj().T @ u, np.eye(1 << k), atol=1e-10)

    def test_deterministic(self):
        assert np.allclose(random_unitary(2, 3), random_unitary(2, 3))


class TestGateStructureTable:
    def test_table_agrees_with_matrix_scans(self):
        from repro.gates import Gate, GATE_STRUCTURE, gate_matrix

        for name, structure in GATE_STRUCTURE.items():
            matrix = gate_matrix(name)
            k = matrix.shape[0].bit_length() - 1
            g = Gate("probe", tuple(range(k)), matrix)
            assert g.is_diagonal == structure.diagonal, name
            assert g.is_monomial == structure.permutation, name

    def test_lookup_is_case_insensitive_and_total(self):
        from repro.gates import gate_structure

        assert gate_structure("CZ").diagonal
        assert gate_structure("not-a-gate") is None
