"""Tests for gate lifting and fusion (the clustering substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates import Gate, fuse_gates, lift_gate_matrix, random_unitary
from repro.gates.matrices import H_MATRIX, ID_MATRIX, T_MATRIX
from repro.kernels import apply_gate_reference
from repro.util.rng import random_statevector


class TestLift:
    def test_lift_identity_position(self):
        lifted = lift_gate_matrix(H_MATRIX, [0], 1)
        assert np.allclose(lifted, H_MATRIX)

    def test_lift_to_upper_bit(self):
        lifted = lift_gate_matrix(H_MATRIX, [1], 2)
        assert np.allclose(lifted, np.kron(H_MATRIX, ID_MATRIX))

    def test_lift_to_lower_bit(self):
        lifted = lift_gate_matrix(H_MATRIX, [0], 2)
        assert np.allclose(lifted, np.kron(ID_MATRIX, H_MATRIX))

    def test_lift_preserves_unitarity(self):
        u = random_unitary(2, 0)
        lifted = lift_gate_matrix(u, [2, 0], 3)
        assert np.allclose(lifted.conj().T @ lifted, np.eye(8), atol=1e-10)

    def test_lift_position_order_matters(self):
        u = random_unitary(2, 1)
        a = lift_gate_matrix(u, [0, 1], 2)
        b = lift_gate_matrix(u, [1, 0], 2)
        assert not np.allclose(a, b)

    def test_bad_positions(self):
        with pytest.raises(ValueError):
            lift_gate_matrix(H_MATRIX, [3], 2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            lift_gate_matrix(H_MATRIX, [0, 1], 3)


class TestFuse:
    def test_empty_sequence_is_identity(self):
        fused = fuse_gates([], (0, 1))
        assert np.allclose(fused.matrix, np.eye(4))

    def test_single_gate(self):
        fused = fuse_gates([Gate("t", (3,))], (3,))
        assert np.allclose(fused.matrix, T_MATRIX)

    def test_order_is_left_to_right(self):
        # H then T on the same qubit: fused = T @ H.
        fused = fuse_gates([Gate("h", (0,)), Gate("t", (0,))], (0,))
        assert np.allclose(fused.matrix, T_MATRIX @ H_MATRIX)

    def test_cz_h_fusion_matches_sequential(self, haar_state):
        gates = [Gate("h", (2,)), Gate("cz", (2, 5)), Gate("t", (5,)), Gate("h", (5,))]
        fused = fuse_gates(gates, (5, 2))
        state = haar_state(7)
        a = state.copy()
        for g in gates:
            apply_gate_reference(a, g.matrix, g.qubits)
        b = state.copy()
        apply_gate_reference(b, fused.matrix, fused.qubits)
        assert np.allclose(a, b)

    def test_gate_outside_cluster_rejected(self):
        with pytest.raises(ValueError, match="outside cluster"):
            fuse_gates([Gate("h", (9,))], (0, 1))

    def test_duplicate_cluster_qubits_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            fuse_gates([], (1, 1))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_fused_random_sequences_match_sequential(self, seed):
        rng = np.random.default_rng(seed)
        n = 5
        cluster = tuple(
            int(q) for q in rng.choice(n, size=int(rng.integers(1, 4)), replace=False)
        )
        gates = []
        for _ in range(int(rng.integers(1, 6))):
            k = int(rng.integers(1, len(cluster) + 1))
            qubits = tuple(
                int(q) for q in rng.choice(cluster, size=k, replace=False)
            )
            gates.append(Gate("rand", qubits, random_unitary(k, rng)))
        fused = fuse_gates(gates, cluster)
        state = random_statevector(n, seed).copy()
        a = state.copy()
        for g in gates:
            apply_gate_reference(a, g.matrix, g.qubits)
        b = state.copy()
        apply_gate_reference(b, fused.matrix, fused.qubits)
        assert np.allclose(a, b, atol=1e-9)

    def test_fused_cz_chain_is_diagonal(self):
        gates = [Gate("cz", (0, 1)), Gate("t", (0,)), Gate("cz", (1, 2))]
        fused = fuse_gates(gates, (0, 1, 2))
        assert fused.is_diagonal
