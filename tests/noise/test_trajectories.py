"""Tests for the quantum-trajectory noisy simulator."""

import numpy as np
import pytest

from repro.analysis import shannon_entropy
from repro.circuit import Circuit, generate_supremacy_circuit
from repro.gates import Gate
from repro.noise import NoisySimulator, depolarizing_channel, dephasing_channel
from repro.statevector import Simulator


class TestNoisySimulator:
    def test_zero_noise_equals_ideal(self):
        circ = generate_supremacy_circuit(6, 6, seed=0)
        ideal = Simulator(6).run(circ).state
        result = NoisySimulator(6, depolarizing_channel(0.0), seed=1).run(circ, 3)
        assert result.mean_fidelity_to_ideal == pytest.approx(1.0, abs=1e-10)
        assert np.allclose(result.mean_probabilities, ideal.probabilities())

    def test_fidelity_decreases_with_noise(self):
        circ = generate_supremacy_circuit(6, 6, seed=0)
        fidelities = []
        for p in (0.0, 0.02, 0.1):
            result = NoisySimulator(6, depolarizing_channel(p), seed=2).run(circ, 20)
            fidelities.append(result.mean_fidelity_to_ideal)
        assert fidelities[0] > fidelities[1] > fidelities[2]

    def test_strong_depolarizing_raises_entropy(self):
        """Depolarizing noise pushes the output toward uniform: entropy of
        the averaged distribution exceeds the ideal circuit's."""
        circ = generate_supremacy_circuit(6, 4, seed=1)
        ideal = Simulator(6).run(circ).state
        noisy = NoisySimulator(6, depolarizing_channel(0.25), seed=3).run(circ, 40)
        assert shannon_entropy(noisy.mean_probabilities) > shannon_entropy(
            ideal.probabilities()
        )

    def test_dephasing_preserves_computational_basis(self):
        """Pure dephasing commutes with a classical (X-free) state: the
        |0...0> state stays |0...0> no matter the dephasing strength."""
        circ = Circuit(3, [Gate("z", (0,)), Gate("cz", (0, 1))])
        result = NoisySimulator(3, dephasing_channel(0.8), seed=4).run(circ, 10)
        probs = result.mean_probabilities
        assert probs[0] == pytest.approx(1.0)

    def test_trajectories_normalised(self):
        circ = generate_supremacy_circuit(6, 4, seed=2)
        sim = NoisySimulator(6, depolarizing_channel(0.1), seed=5)
        state = sim.run_trajectory(circ, np.random.default_rng(0))
        assert state.norm() == pytest.approx(1.0)

    def test_reproducible(self):
        circ = generate_supremacy_circuit(5, 4, seed=3)
        a = NoisySimulator(5, depolarizing_channel(0.1), seed=9).run(circ, 5)
        b = NoisySimulator(5, depolarizing_channel(0.1), seed=9).run(circ, 5)
        assert np.allclose(a.mean_probabilities, b.mean_probabilities)
        assert a.mean_fidelity_to_ideal == b.mean_fidelity_to_ideal

    def test_probabilities_sum_to_one(self):
        circ = generate_supremacy_circuit(5, 4, seed=4)
        result = NoisySimulator(5, depolarizing_channel(0.2), seed=6).run(circ, 8)
        assert result.mean_probabilities.sum() == pytest.approx(1.0)

    def test_circuit_size_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            NoisySimulator(4, depolarizing_channel(0.1)).run(Circuit(5), 1)

    def test_multi_qubit_channel_rejected(self):
        from repro.noise import KrausChannel

        four_dim = KrausChannel("id4", (np.eye(4),))
        with pytest.raises(ValueError, match="single-qubit"):
            NoisySimulator(4, four_dim)

    def test_invalid_trajectory_count(self):
        circ = Circuit(2, [Gate("h", (0,))])
        with pytest.raises(ValueError):
            NoisySimulator(2, depolarizing_channel(0.1)).run(circ, 0)
