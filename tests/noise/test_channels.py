"""Tests for Kraus channels."""

import numpy as np
import pytest

from repro.noise import (
    amplitude_damping_channel,
    bit_flip_channel,
    dephasing_channel,
    depolarizing_channel,
    raise_if_not_cptp,
)


class TestChannels:
    @pytest.mark.parametrize(
        "factory",
        [
            depolarizing_channel,
            dephasing_channel,
            bit_flip_channel,
            amplitude_damping_channel,
        ],
    )
    @pytest.mark.parametrize("p", [0.0, 0.1, 0.5, 1.0])
    def test_all_channels_cptp(self, factory, p):
        channel = factory(p)
        total = sum(op.conj().T @ op for op in channel.operators)
        assert np.allclose(total, np.eye(2), atol=1e-12)

    def test_zero_noise_is_identity(self):
        channel = depolarizing_channel(0.0)
        assert np.allclose(channel.operators[0], np.eye(2))
        for op in channel.operators[1:]:
            assert np.allclose(op, 0.0)

    def test_probability_range_checked(self):
        for factory in (depolarizing_channel, amplitude_damping_channel):
            with pytest.raises(ValueError):
                factory(-0.1)
            with pytest.raises(ValueError):
                factory(1.5)

    def test_amplitude_damping_kills_excited_state(self):
        channel = amplitude_damping_channel(1.0)
        excited = np.array([0.0, 1.0])
        # With gamma=1, K1 maps |1> -> |0> and K0 annihilates |1>.
        assert np.allclose(channel.operators[1] @ excited, [1.0, 0.0])
        assert np.allclose(channel.operators[0] @ excited, 0.0)

    def test_validation_rejects_bad_kraus(self):
        with pytest.raises(ValueError, match="K"):
            raise_if_not_cptp((np.eye(2) * 0.5,))

    def test_validation_rejects_empty(self):
        with pytest.raises(ValueError):
            raise_if_not_cptp(())

    def test_validation_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            raise_if_not_cptp((np.eye(2), np.eye(4)))

    def test_repr(self):
        assert "depolarizing" in repr(depolarizing_channel(0.2))
