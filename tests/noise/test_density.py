"""Tests for the exact density-matrix simulator."""

import numpy as np
import pytest

from repro.circuit import Circuit, generate_supremacy_circuit, ghz_circuit
from repro.gates import Gate
from repro.noise import NoisySimulator, depolarizing_channel
from repro.noise.density import DensityMatrix, DensityMatrixSimulator
from repro.statevector import Simulator


class TestDensityMatrix:
    def test_initial_state(self):
        rho = DensityMatrix(2)
        assert rho.trace() == pytest.approx(1.0)
        assert rho.purity() == pytest.approx(1.0)
        assert rho.probabilities()[0] == pytest.approx(1.0)

    def test_unitary_preserves_trace_and_purity(self):
        rho = DensityMatrix(2)
        rho.apply_unitary(Gate("h", (0,)).matrix, (0,))
        rho.apply_unitary(Gate("cnot", (0, 1)).matrix, (0, 1))
        assert rho.trace() == pytest.approx(1.0)
        assert rho.purity() == pytest.approx(1.0)

    def test_channel_decoheres(self):
        rho = DensityMatrix(1)
        rho.apply_unitary(Gate("h", (0,)).matrix, (0,))
        rho.apply_channel(depolarizing_channel(0.5), 0)
        assert rho.trace() == pytest.approx(1.0)
        assert rho.purity() < 1.0

    def test_full_depolarization_is_maximally_mixed(self):
        rho = DensityMatrix(1)
        rho.apply_unitary(Gate("h", (0,)).matrix, (0,))
        for _ in range(60):
            rho.apply_channel(depolarizing_channel(0.5), 0)
        assert rho.purity() == pytest.approx(0.5, abs=1e-6)
        assert np.allclose(rho.probabilities(), [0.5, 0.5], atol=1e-6)

    def test_size_guard(self):
        with pytest.raises(ValueError, match="impractical"):
            DensityMatrix(11)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DensityMatrix(2, np.eye(3))


class TestDensityMatrixSimulator:
    def test_noiseless_matches_statevector(self):
        circ = generate_supremacy_circuit(6, 6, seed=0)
        pure = Simulator(6).run(circ).state
        rho = DensityMatrixSimulator(6).run(circ)
        assert np.allclose(rho.probabilities(), pure.probabilities(), atol=1e-10)
        assert rho.purity() == pytest.approx(1.0)
        assert rho.fidelity_with_pure(pure.data) == pytest.approx(1.0)

    def test_trajectories_converge_to_exact(self):
        """The headline cross-validation: trajectory-averaged statistics
        approach the exact density-matrix evolution as 1/sqrt(T)."""
        p = 0.05
        circ = ghz_circuit(4)
        exact = DensityMatrixSimulator(4, depolarizing_channel(p)).run(circ)
        ensemble = NoisySimulator(4, depolarizing_channel(p), seed=0).run(
            circ, num_trajectories=400
        )
        # Outcome distribution within Monte-Carlo error.
        assert np.allclose(
            ensemble.mean_probabilities, exact.probabilities(), atol=0.05
        )
        # Fidelity to the ideal pure state agrees too.
        ideal = Simulator(4).run(circ).state
        assert ensemble.mean_fidelity_to_ideal == pytest.approx(
            exact.fidelity_with_pure(ideal.data), abs=0.05
        )

    def test_noise_reduces_purity_monotonically(self):
        circ = generate_supremacy_circuit(4, 4, seed=1)
        purities = [
            DensityMatrixSimulator(4, depolarizing_channel(p)).run(circ).purity()
            for p in (0.0, 0.05, 0.2)
        ]
        assert purities[0] == pytest.approx(1.0)
        assert purities[0] > purities[1] > purities[2]

    def test_circuit_size_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            DensityMatrixSimulator(3).run(Circuit(4))

    def test_multi_qubit_channel_rejected(self):
        from repro.noise import KrausChannel

        with pytest.raises(ValueError, match="single-qubit"):
            DensityMatrixSimulator(3, KrausChannel("id4", (np.eye(4),)))
