"""Tests for state-vector persistence."""

import numpy as np
import pytest

from repro.io import load_statevector, save_statevector
from repro.statevector import StateVector
from repro.util.rng import random_statevector


class TestStatePersistence:
    def test_roundtrip(self, tmp_path):
        sv = StateVector(6, random_statevector(6, 0))
        path = save_statevector(sv, tmp_path / "state")
        loaded = load_statevector(path)
        assert loaded.num_qubits == 6
        assert loaded.allclose(sv, atol=0)

    def test_suffix_added(self, tmp_path):
        path = save_statevector(StateVector(3), tmp_path / "psi")
        assert path.suffix == ".npy"
        assert path.exists()

    def test_rejects_bad_shape(self, tmp_path):
        np.save(tmp_path / "bad.npy", np.zeros((2, 2)))
        with pytest.raises(ValueError, match="1-D"):
            load_statevector(tmp_path / "bad.npy")

    def test_rejects_non_power_length(self, tmp_path):
        np.save(tmp_path / "odd.npy", np.zeros(6, dtype=complex))
        with pytest.raises(ValueError, match="power of two"):
            load_statevector(tmp_path / "odd.npy")
