"""End-to-end persistence workflows (CLI + io combined)."""

from repro.cli import main
from repro.distributed import DistributedSimulator
from repro.io import load_schedule_json
from repro.statevector import Simulator


class TestScheduleShipping:
    def test_schedule_once_run_anywhere(self, tmp_path, capsys):
        """The Sec. 3.6.1 reuse story: compute a schedule via the CLI,
        ship the JSON, execute it in a fresh process/backend."""
        circuit_path = tmp_path / "circuit.txt"
        schedule_path = tmp_path / "schedule.json"
        assert main(
            ["generate", "--qubits", "12", "--depth", "10",
             "--seed", "3", "--output", str(circuit_path)]
        ) == 0
        assert main(
            ["schedule", "--circuit", str(circuit_path),
             "--local-qubits", "8", "--kmax", "4", "--save", str(schedule_path)]
        ) == 0
        capsys.readouterr()

        schedule = load_schedule_json(schedule_path)
        from repro.circuit import circuit_from_text

        circuit = circuit_from_text(circuit_path.read_text())
        reference = Simulator(12).run(circuit).state
        run = DistributedSimulator(12, 8).run_schedule(schedule)
        assert run.state.to_statevector().allclose(reference, atol=1e-9)
        assert run.comm.alltoall_steps == schedule.num_swaps
