"""Tests for circuit and schedule JSON serialization."""

import pytest

from repro.circuit import Circuit, generate_supremacy_circuit
from repro.distributed import DistributedSimulator
from repro.gates import Gate, random_unitary
from repro.io import (
    load_circuit_json,
    load_schedule_json,
    save_circuit_json,
    save_schedule_json,
)
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.statevector import Simulator


class TestCircuitJson:
    def test_named_gates_roundtrip(self, tmp_path):
        circ = generate_supremacy_circuit(9, 8, seed=1)
        save_circuit_json(circ, tmp_path / "circ.json")
        assert load_circuit_json(tmp_path / "circ.json") == circ

    def test_custom_matrix_roundtrip(self, tmp_path):
        circ = Circuit(3, [Gate("rand", (0, 2), random_unitary(2, 5))])
        save_circuit_json(circ, tmp_path / "c.json")
        loaded = load_circuit_json(tmp_path / "c.json")
        assert loaded == circ

    def test_cycle_metadata_roundtrip(self, tmp_path):
        circ = Circuit(2, [Gate("h", (0,), cycle=3)])
        save_circuit_json(circ, tmp_path / "c.json")
        assert load_circuit_json(tmp_path / "c.json")[0].cycle == 3


class TestScheduleJson:
    @pytest.mark.parametrize("absorb", [False, True])
    def test_schedule_roundtrip_executes_identically(self, tmp_path, absorb):
        n, l = 12, 8
        circ = generate_supremacy_circuit(n, 10, seed=2)
        sched = schedule_circuit(
            circ, SchedulerConfig(local_qubits=l, seed=1, absorb_diagonals=absorb)
        )
        save_schedule_json(sched, tmp_path / "sched.json")
        loaded = load_schedule_json(tmp_path / "sched.json")

        assert loaded.summary() == sched.summary()
        ref = Simulator(n).run(circ).state
        result = DistributedSimulator(n, l).run_schedule(loaded)
        assert result.state.to_statevector().allclose(ref, atol=1e-9)

    def test_loaded_schedule_is_validated(self, tmp_path):
        circ = generate_supremacy_circuit(9, 6, seed=0)
        sched = schedule_circuit(circ, SchedulerConfig(local_qubits=6, seed=1))
        path = save_schedule_json(sched, tmp_path / "s.json")
        # Corrupt: drop one stage.
        import json

        payload = json.loads(path.read_text())
        payload["stages"] = payload["stages"][:-1]
        path.write_text(json.dumps(payload))
        with pytest.raises(AssertionError):
            load_schedule_json(path)
