"""Tests for the thread-pool kernel executor (OpenMP stand-in)."""

import numpy as np
import pytest

from repro.gates import random_unitary
from repro.kernels import apply_diagonal_gate, apply_gate_reference
from repro.parallel import ChunkedExecutor
from repro.util.rng import random_statevector


class TestChunkedExecutor:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_dense_gate_matches_reference(self, threads, rng):
        n = 10
        with ChunkedExecutor(threads, min_chunk=8) as ex:
            for qubits in [(0,), (9,), (2, 7), (5, 0, 8)]:
                u = random_unitary(len(qubits), rng)
                s0 = random_statevector(n, rng).copy()
                a = s0.copy()
                apply_gate_reference(a, u, qubits)
                b = s0.copy()
                ex.apply_gate(b, u, qubits)
                assert np.allclose(a, b, atol=1e-10), (threads, qubits)

    @pytest.mark.parametrize("threads", [1, 3])
    def test_diagonal_matches_reference(self, threads, rng):
        n = 10
        with ChunkedExecutor(threads, min_chunk=8) as ex:
            for qubits in [(0,), (4, 1), (9, 3)]:
                d = np.exp(1j * rng.standard_normal(1 << len(qubits)))
                s0 = random_statevector(n, rng).copy()
                a = s0.copy()
                apply_diagonal_gate(a, d, qubits)
                b = s0.copy()
                ex.apply_diagonal(b, d, qubits)
                assert np.allclose(a, b, atol=1e-12), (threads, qubits)

    def test_diagonal_on_top_qubits_falls_back(self, rng):
        # When the gate occupies the highest bits there is nothing to slab
        # over; the executor must still be correct (serial fallback).
        n = 6
        with ChunkedExecutor(4, min_chunk=1) as ex:
            d = np.exp(1j * rng.standard_normal(4))
            s0 = random_statevector(n, rng).copy()
            a = s0.copy()
            apply_diagonal_gate(a, d, (5, 4))
            b = s0.copy()
            ex.apply_diagonal(b, d, (5, 4))
            assert np.allclose(a, b, atol=1e-12)

    def test_consistent_across_thread_counts(self, rng):
        # Partitioning changes BLAS panel shapes, so results may differ in
        # the last bits, but never beyond strict floating-point tolerance.
        n = 9
        u = random_unitary(2, rng)
        s0 = random_statevector(n, rng).copy()
        results = []
        for threads in (1, 2, 5):
            with ChunkedExecutor(threads, min_chunk=4) as ex:
                out = s0.copy()
                ex.apply_gate(out, u, (3, 6))
                results.append(out)
        assert np.allclose(results[0], results[1], atol=1e-13, rtol=0)
        assert np.allclose(results[0], results[2], atol=1e-13, rtol=0)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            ChunkedExecutor(0)

    def test_close_idempotent(self):
        ex = ChunkedExecutor(2)
        ex.close()
        ex.close()
