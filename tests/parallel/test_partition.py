"""Tests for work partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel import partition_range, partition_work


class TestPartitionRange:
    def test_even_split(self):
        assert partition_range(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split(self):
        spans = partition_range(10, 3)
        assert spans == [(0, 4), (4, 7), (7, 10)]

    def test_more_parts_than_items(self):
        spans = partition_range(2, 5)
        assert spans == [(0, 1), (1, 2)]

    def test_empty(self):
        assert partition_range(0, 3) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            partition_range(-1, 2)
        with pytest.raises(ValueError):
            partition_range(4, 0)

    @given(st.integers(0, 10_000), st.integers(1, 64))
    def test_covers_exactly(self, total, parts):
        spans = partition_range(total, parts)
        covered = 0
        prev_end = 0
        for start, end in spans:
            assert start == prev_end
            assert end > start
            covered += end - start
            prev_end = end
        assert covered == total
        # balanced within one element
        if spans:
            lengths = [e - s for s, e in spans]
            assert max(lengths) - min(lengths) <= 1


class TestPartitionWork:
    def test_small_work_single_span(self):
        assert partition_work(100, 8, min_chunk=1024) == [(0, 100)]

    def test_single_thread(self):
        assert partition_work(10_000, 1) == [(0, 10_000)]

    def test_respects_min_chunk(self):
        spans = partition_work(4096, 16, min_chunk=1024)
        assert len(spans) <= 4
        assert all(e - s >= 1024 for s, e in spans)

    def test_empty_work(self):
        assert partition_work(0, 4) == []
