"""Shared workloads for the resilience tests."""

import pytest

from repro.circuit import generate_supremacy_circuit
from repro.distributed.checkpoint import CheckpointManager
from repro.runtime import ExecutionEngine
from repro.scheduling import SchedulerConfig, schedule_circuit


@pytest.fixture(scope="package")
def chaos_schedule():
    """A 12-qubit, 4-rank schedule with at least one swap (acceptance size)."""
    circ = generate_supremacy_circuit(12, 16, seed=0)
    sched = schedule_circuit(
        circ, SchedulerConfig(local_qubits=10, kmax=4, seed=1)
    )
    assert sched.num_swaps >= 1
    return sched


@pytest.fixture(scope="package")
def chaos_reference(chaos_schedule):
    """Fault-free final amplitudes of the shared schedule."""
    state = CheckpointManager.initial_state_for(chaos_schedule)
    result = ExecutionEngine(chaos_schedule, use_plan=False).run(state=state)  # lint: allow-engine-direct
    return result.state.to_statevector().data.copy()
