"""Tests for the resilient executor."""

import numpy as np
import pytest

from repro.distributed import DistributedSimulator
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    ResilientExecutor,
    RestartBudgetExceededError,
    RetryPolicy,
    swap_op_indices,
)

def run(schedule, tmp_path, **kwargs):
    kwargs.setdefault("sleep", lambda _s: None)
    return ResilientExecutor(schedule, tmp_path, **kwargs).run()


class TestFaultFree:
    def test_matches_reference_bit_exact(
        self, tmp_path, chaos_schedule, chaos_reference
    ):
        result = run(chaos_schedule, tmp_path)
        assert np.array_equal(
            result.state.to_statevector().data, chaos_reference
        )
        assert result.report.restarts == 0
        assert result.report.transient_retries == 0

    def test_trace_covers_every_op(self, tmp_path, chaos_schedule):
        result = run(chaos_schedule, tmp_path)
        ops = list(chaos_schedule.operations())
        op_events = [e for e in result.trace.events if e.kind != "fault"]
        assert [e.op_index for e in op_events] == list(range(len(ops)))

    def test_swap_events_carry_bytes(self, tmp_path, chaos_schedule):
        result = run(chaos_schedule, tmp_path)
        swaps = [e for e in result.trace.events if e.kind == "swap"]
        assert swaps and all(e.bytes_moved > 0 for e in swaps)
        assert result.trace.bytes_moved == result.comm.bytes_on_network

    def test_comm_stats_not_double_counted(self, tmp_path, chaos_schedule):
        plain = DistributedSimulator(
            chaos_schedule.num_qubits, chaos_schedule.local_qubits
        ).run_schedule(chaos_schedule)
        resilient = run(chaos_schedule, tmp_path)
        assert (
            resilient.comm.bytes_on_network == plain.comm.bytes_on_network
        )
        assert resilient.comm.alltoall_steps == plain.comm.alltoall_steps

    def test_resumes_finished_checkpoint(self, tmp_path, chaos_schedule):
        first = run(chaos_schedule, tmp_path)
        again = run(chaos_schedule, tmp_path)
        assert np.array_equal(
            again.state.to_statevector().data,
            first.state.to_statevector().data,
        )


class TestTransients:
    def test_retry_then_success(
        self, tmp_path, chaos_schedule, chaos_reference
    ):
        swap = swap_op_indices(chaos_schedule)[0]
        plan = FaultPlan(
            seed=1,
            faults=(FaultSpec(op_index=swap, kind="transient", times=2),),
        )
        result = run(chaos_schedule, tmp_path, plan=plan)
        assert np.array_equal(
            result.state.to_statevector().data, chaos_reference
        )
        assert result.report.transient_retries == 2
        assert result.report.restarts == 0
        # Exponential backoff: base + base*factor.
        policy = RetryPolicy()
        expected = policy.backoff(0) + policy.backoff(1)
        assert result.report.backoff_seconds == pytest.approx(expected)

    def test_exhausted_retries_escalate_to_restart(
        self, tmp_path, chaos_schedule, chaos_reference
    ):
        swap = swap_op_indices(chaos_schedule)[0]
        policy = RetryPolicy(max_retries=1, max_restarts=2)
        # 3 firings: attempt+retry on pass 1 exhaust the retry budget
        # (restart), third firing is retried successfully on pass 2.
        plan = FaultPlan(
            seed=1,
            faults=(FaultSpec(op_index=swap, kind="transient", times=3),),
        )
        result = run(chaos_schedule, tmp_path, plan=plan, policy=policy)
        assert np.array_equal(
            result.state.to_statevector().data, chaos_reference
        )
        assert result.report.restarts == 1
        assert result.report.transient_retries == 3


class TestFatalFaults:
    @pytest.mark.parametrize("phase", ["before", "mid"])
    def test_crash_recovers_bit_exact(
        self, tmp_path, chaos_schedule, chaos_reference, phase
    ):
        swap = swap_op_indices(chaos_schedule)[-1]
        plan = FaultPlan(
            seed=2,
            faults=(FaultSpec(op_index=swap, kind="crash", phase=phase),),
        )
        result = run(chaos_schedule, tmp_path, plan=plan)
        assert np.array_equal(
            result.state.to_statevector().data, chaos_reference
        )
        assert result.report.restarts == 1
        assert any(e.kind == "fault" for e in result.trace.events)

    def test_mid_crash_charges_redundant_bytes(
        self, tmp_path, chaos_schedule
    ):
        swap = swap_op_indices(chaos_schedule)[-1]
        plan = FaultPlan(
            seed=2,
            faults=(FaultSpec(op_index=swap, kind="crash", phase="mid"),),
        )
        result = run(chaos_schedule, tmp_path, plan=plan)
        assert result.report.redundant_bytes > 0

    def test_corruption_detected_and_recovered(
        self, tmp_path, chaos_schedule, chaos_reference
    ):
        plan = FaultPlan(
            seed=3, faults=(FaultSpec(op_index=4, kind="corrupt"),)
        )
        result = run(chaos_schedule, tmp_path, plan=plan, verify="every")
        assert np.array_equal(
            result.state.to_statevector().data, chaos_reference
        )
        assert result.report.corruption_detections == 1
        assert result.report.restarts == 1

    def test_undetected_corruption_with_verify_never(
        self, tmp_path, chaos_schedule, chaos_reference
    ):
        """verify="never" is the paper's fault-free assumption: a silent
        bit flip sails through and the result is wrong — the negative
        control proving the checksums earn their keep."""
        plan = FaultPlan(
            seed=3, faults=(FaultSpec(op_index=4, kind="corrupt"),)
        )
        result = run(chaos_schedule, tmp_path, plan=plan, verify="never")
        assert not np.array_equal(
            result.state.to_statevector().data, chaos_reference
        )
        assert result.report.corruption_detections == 0

    def test_restart_budget_exhausted_raises(self, tmp_path, chaos_schedule):
        swap = swap_op_indices(chaos_schedule)[0]
        policy = RetryPolicy(max_restarts=1)
        plan = FaultPlan(
            seed=4,
            faults=(
                FaultSpec(op_index=swap, kind="crash", times=3),
            ),
        )
        with pytest.raises(RestartBudgetExceededError):
            run(chaos_schedule, tmp_path, plan=plan, policy=policy)

    def test_crash_before_any_checkpoint_restarts_from_scratch(
        self, tmp_path, chaos_schedule, chaos_reference
    ):
        plan = FaultPlan(
            seed=5, faults=(FaultSpec(op_index=0, kind="crash"),)
        )
        result = run(
            chaos_schedule, tmp_path, plan=plan, checkpoint_every=0
        )
        assert np.array_equal(
            result.state.to_statevector().data, chaos_reference
        )
        assert result.report.restarts == 1
        assert result.report.checkpoints_written == 1  # the final one


class TestReportAndPolicy:
    def test_stall_accounted_not_slept(self, tmp_path, chaos_schedule):
        slept = []
        plan = FaultPlan(
            seed=6,
            faults=(
                FaultSpec(op_index=1, kind="stall", stall_seconds=30.0),
            ),
        )
        result = ResilientExecutor(
            chaos_schedule,
            tmp_path,
            plan=plan,
            sleep=slept.append,
        ).run()
        assert result.report.stall_seconds == 30.0
        assert slept == [30.0]

    def test_deterministic_dict_excludes_wall_time(self):
        from repro.resilience import RecoveryReport

        report = RecoveryReport(wall_overhead_seconds=1.23)
        assert "wall_overhead_seconds" in report.to_dict()
        assert "wall_overhead_seconds" not in report.to_dict(
            deterministic=True
        )

    def test_invalid_verify_mode(self, tmp_path, chaos_schedule):
        with pytest.raises(ValueError, match="verify"):
            ResilientExecutor(chaos_schedule, tmp_path, verify="sometimes")

    def test_backoff_shape(self):
        policy = RetryPolicy(backoff_base_seconds=0.5, backoff_factor=3.0)
        assert policy.backoff(0) == 0.5
        assert policy.backoff(2) == 4.5
