"""The acceptance chaos sweep: every scenario, bit-exact recovery."""

import pytest

from repro.resilience import (
    default_scenarios,
    format_chaos_suite,
    format_recovery_report,
    run_chaos_suite,
)


@pytest.fixture(scope="module")
def suite(tmp_path_factory, chaos_schedule):
    return run_chaos_suite(
        chaos_schedule, tmp_path_factory.mktemp("chaos"), checkpoint_every=2
    )


class TestChaosSuite:
    def test_schedule_meets_acceptance_floor(self, chaos_schedule):
        assert chaos_schedule.num_qubits >= 12
        ranks = 1 << (chaos_schedule.num_qubits - chaos_schedule.local_qubits)
        assert ranks >= 4

    def test_covers_required_scenarios(self):
        names = {s.name for s in default_scenarios()}
        assert {
            "fault-free-control",
            "crash-before-swap",
            "crash-mid-swap",
            "corrupt-one-shard",
            "transient-then-success",
            "restart-budget-exhausted",
        } <= names
        assert len(names) >= 6

    def test_every_scenario_passes(self, suite):
        failures = [r.name for r in suite.results if not r.passed]
        assert suite.passed, f"failing scenarios: {failures}"

    def test_recovery_scenarios_are_bit_exact(self, suite):
        recovered = [r for r in suite.results if r.bit_exact is not None]
        assert recovered and all(r.bit_exact for r in recovered)

    def test_budget_exhaustion_is_typed(self, suite):
        budget = next(
            r for r in suite.results if r.name == "restart-budget-exhausted"
        )
        assert budget.passed
        assert "RestartBudgetExceededError" in budget.error

    def test_faults_actually_fired(self, suite):
        for r in suite.results:
            if r.name in ("fault-free-control", "restart-budget-exhausted"):
                continue
            assert r.report.faults_injected, r.name

    def test_report_renders(self, suite):
        text = format_chaos_suite(suite)
        assert "scenarios passed" in text
        for r in suite.results:
            assert r.name in text
        one = next(r.report for r in suite.results if r.report is not None)
        assert "redundant bytes" in format_recovery_report(one)


class TestDeterminism:
    def test_same_plan_same_trace_and_report(
        self, tmp_path_factory, chaos_schedule, suite
    ):
        """Acceptance: the same plan twice yields identical traces and
        identical recovery reports (modulo measured wall seconds)."""
        rerun = run_chaos_suite(
            chaos_schedule,
            tmp_path_factory.mktemp("chaos-rerun"),
            checkpoint_every=2,
        )
        assert [r.name for r in rerun.results] == [
            r.name for r in suite.results
        ]
        for a, b in zip(suite.results, rerun.results):
            assert a.passed == b.passed
            assert a.trace_signature == b.trace_signature
            if a.report is None:
                assert b.report is None
                continue
            assert a.report.to_dict(deterministic=True) == b.report.to_dict(
                deterministic=True
            )
