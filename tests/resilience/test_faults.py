"""Tests for the deterministic fault plan / injector."""

import pytest

from repro.distributed import DistributedState
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RankCrashError,
    TransientCommError,
)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(op_index=0, kind="meteor")

    def test_rejects_bad_crash_phase(self):
        with pytest.raises(ValueError, match="phase"):
            FaultSpec(op_index=0, kind="crash", phase="after")

    def test_rejects_negative_index_and_times(self):
        with pytest.raises(ValueError):
            FaultSpec(op_index=-1, kind="crash")
        with pytest.raises(ValueError):
            FaultSpec(op_index=0, kind="crash", times=0)


class TestFaultPlanJson:
    def test_roundtrip(self):
        plan = FaultPlan(
            seed=42,
            faults=(
                FaultSpec(op_index=3, kind="crash", phase="mid", rank=1),
                FaultSpec(op_index=5, kind="transient", times=2),
                FaultSpec(op_index=7, kind="stall", stall_seconds=0.5),
                FaultSpec(op_index=9, kind="corrupt"),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_file(self, tmp_path):
        plan = FaultPlan(seed=1, faults=(FaultSpec(op_index=0, kind="corrupt"),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.from_file(path) == plan

    def test_faults_at(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(op_index=2, kind="crash"),
                FaultSpec(op_index=2, kind="stall"),
                FaultSpec(op_index=4, kind="corrupt"),
            )
        )
        assert len(plan.faults_at(2)) == 2
        assert plan.faults_at(3) == ()


class TestFaultInjector:
    def test_crash_before_fires_once(self):
        plan = FaultPlan(faults=(FaultSpec(op_index=1, kind="crash"),))
        injector = FaultInjector(plan)
        state = DistributedState(4, 3)
        with pytest.raises(RankCrashError):
            injector.on_op_start(1, state)
        # Consumed: the replay sails through.
        injector.on_op_start(1, state)
        assert len(injector.log) == 1

    def test_reset_rearms(self):
        plan = FaultPlan(faults=(FaultSpec(op_index=0, kind="crash"),))
        injector = FaultInjector(plan)
        state = DistributedState(4, 3)
        with pytest.raises(RankCrashError):
            injector.on_op_start(0, state)
        injector.reset()
        assert injector.log == []
        with pytest.raises(RankCrashError):
            injector.on_op_start(0, state)

    def test_corruption_is_deterministic(self):
        plan = FaultPlan(seed=5, faults=(FaultSpec(op_index=0, kind="corrupt"),))

        def corrupted_state():
            state = DistributedState(6, 4, init="plus")
            FaultInjector(plan).on_op_start(0, state)
            return state

        a, b = corrupted_state(), corrupted_state()
        assert a.shard_checksums() == b.shard_checksums()
        # And it really changed exactly one shard vs a clean state.
        clean = DistributedState(6, 4, init="plus")
        diffs = [
            r
            for r in range(clean.num_ranks)
            if a.shard_checksum(r) != clean.shard_checksum(r)
        ]
        assert len(diffs) == 1

    def test_corrupt_targets_requested_rank(self):
        plan = FaultPlan(
            seed=5, faults=(FaultSpec(op_index=0, kind="corrupt", rank=2),)
        )
        state = DistributedState(6, 4, init="plus")
        clean = DistributedState(6, 4, init="plus")
        FaultInjector(plan).on_op_start(0, state)
        for r in range(state.num_ranks):
            same = state.shard_checksum(r) == clean.shard_checksum(r)
            assert same == (r != 2)

    def test_stall_returns_seconds(self):
        plan = FaultPlan(
            faults=(FaultSpec(op_index=0, kind="stall", stall_seconds=1.5),)
        )
        state = DistributedState(4, 3)
        assert FaultInjector(plan).on_op_start(0, state) == 1.5

    def test_transient_fires_inside_exchange_only(self):
        plan = FaultPlan(faults=(FaultSpec(op_index=0, kind="transient"),))
        injector = FaultInjector(plan)
        state = DistributedState(6, 4, init="plus")
        # The boundary hook never raises transients...
        assert injector.on_op_start(0, state) == 0.0
        # ...the patched exchange does, before moving any bytes.
        with injector.exchange_guard(0, state):
            with pytest.raises(TransientCommError):
                state.storage.exchange_blocks(1)
        assert state.stats.bytes_on_network == 0

    def test_exchange_guard_restores_storage(self):
        plan = FaultPlan(faults=(FaultSpec(op_index=0, kind="transient"),))
        injector = FaultInjector(plan)
        state = DistributedState(6, 4, init="plus")
        with pytest.raises(TransientCommError):
            with injector.exchange_guard(0, state):
                assert "exchange_blocks" in state.storage.__dict__
                state.storage.exchange_blocks(1)
        # The instance-level patch is gone; the class method is back.
        assert "exchange_blocks" not in state.storage.__dict__

    def test_mid_crash_records_wasted_bytes(self):
        plan = FaultPlan(
            faults=(FaultSpec(op_index=0, kind="crash", phase="mid"),)
        )
        injector = FaultInjector(plan)
        state = DistributedState(6, 4, init="plus")
        with injector.exchange_guard(0, state):
            with pytest.raises(RankCrashError):
                state.storage.exchange_blocks(1)
        assert state.stats.bytes_on_network > 0
