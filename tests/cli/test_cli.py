"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--qubits", "9", "--depth", "8"]
        )
        assert args.command == "generate"
        assert args.qubits == 9


class TestGenerate:
    def test_stdout(self, capsys):
        assert main(["generate", "--qubits", "9", "--depth", "4"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("qubits 9")
        assert "cz" in out

    def test_file_output_parses_back(self, tmp_path, capsys):
        path = tmp_path / "circ.txt"
        assert main(
            ["generate", "--qubits", "9", "--depth", "4", "--output", str(path)]
        ) == 0
        from repro.circuit import circuit_from_text

        circ = circuit_from_text(path.read_text())
        assert circ.num_qubits == 9


class TestSchedule:
    def test_summary_printed(self, capsys):
        code = main(
            ["schedule", "--qubits", "12", "--depth", "8", "--local-qubits", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "num_swaps" in out
        assert "num_clusters" in out

    def test_save_json(self, tmp_path, capsys):
        path = tmp_path / "sched.json"
        code = main(
            [
                "schedule", "--qubits", "9", "--depth", "6",
                "--local-qubits", "6", "--save", str(path),
            ]
        )
        assert code == 0
        from repro.io import load_schedule_json

        assert load_schedule_json(path).num_qubits == 9

    def test_from_circuit_file(self, tmp_path, capsys):
        circ_path = tmp_path / "c.txt"
        main(["generate", "--qubits", "9", "--depth", "6", "--output", str(circ_path)])
        capsys.readouterr()
        code = main(
            ["schedule", "--circuit", str(circ_path), "--local-qubits", "6"]
        )
        assert code == 0

    def test_missing_input(self, capsys):
        assert main(["schedule", "--local-qubits", "6"]) == 2


class TestSimulate:
    def test_single_node(self, capsys):
        code = main(["simulate", "--qubits", "8", "--depth", "8"])
        assert code == 0
        assert "entropy" in capsys.readouterr().out

    def test_distributed_with_shots(self, capsys):
        code = main(
            [
                "simulate", "--qubits", "10", "--depth", "8",
                "--local-qubits", "7", "--shots", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all-to-all" in out
        assert "top outcomes" in out

    def test_size_guard(self, capsys):
        assert main(["simulate", "--qubits", "30"]) == 2

    def test_checkpointed_run_then_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "ckpt")
        argv = [
            "simulate", "--qubits", "10", "--depth", "8",
            "--local-qubits", "7", "--checkpoint-dir", ckpt,
            "--checkpoint-every", "4",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "checkpointed every 4 ops" in first
        # A second invocation finds the completed checkpoint and resumes.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "resumed checkpoint" in second
        # Both report the same entropy line (same final state).
        assert first.splitlines()[-1] == second.splitlines()[-1]

    def test_pipeline_matches_serial(self, tmp_path, capsys):
        base = [
            "simulate", "--qubits", "10", "--depth", "8",
            "--local-qubits", "7",
        ]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--pipeline", "--pipeline-depth", "3"]) == 0
        piped = capsys.readouterr().out
        assert piped == serial  # same entropy, same counters
        storage_dir = str(tmp_path / "shards")
        assert main(base + ["--pipeline", "--storage-dir", storage_dir]) == 0
        out_of_core = capsys.readouterr().out
        assert out_of_core.splitlines()[-1] == serial.splitlines()[-1]

    def test_pipeline_composes_with_sanitize_and_checkpoint(
        self, tmp_path, capsys
    ):
        base = [
            "simulate", "--qubits", "10", "--depth", "8",
            "--local-qubits", "7", "--pipeline",
        ]
        assert main(base + ["--sanitize"]) == 0
        assert "sanitized" in capsys.readouterr().out
        ckpt = str(tmp_path / "ckpt")
        assert main(base + ["--checkpoint-dir", ckpt]) == 0
        assert "checkpointed" in capsys.readouterr().out

    def test_pipeline_requires_distributed_run(self, capsys):
        assert main(["simulate", "--qubits", "8", "--pipeline"]) == 2
        assert "--local-qubits" in capsys.readouterr().err
        assert main(["simulate", "--qubits", "8", "--storage-dir", "x"]) == 2

    def test_pipeline_depth_validated(self, capsys):
        code = main(
            [
                "simulate", "--qubits", "10", "--local-qubits", "7",
                "--pipeline", "--pipeline-depth", "0",
            ]
        )
        assert code == 2
        assert "pipeline-depth" in capsys.readouterr().err


class TestExperiments:
    @pytest.mark.slow
    def test_fig8_series(self, capsys):
        assert main(["experiments", "fig8", "--qubits", "36"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert out.count("\n") >= 4

    def test_unknown_name_rejected(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            main(["experiments", "fig99"])


class TestChaos:
    def test_default_sweep_passes(self, tmp_path, capsys):
        code = main(
            [
                "chaos", "--qubits", "12", "--local-qubits", "10",
                "--depth", "16", "--workdir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "scenarios passed" in out
        assert "crash-mid-swap" in out
        assert "FAIL" not in out

    def test_custom_plan_file(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"seed": 3, "faults": [{"op_index": 2, "kind": "corrupt"}]}'
        )
        code = main(
            [
                "chaos", "--qubits", "12", "--local-qubits", "10",
                "--depth", "16", "--plan", str(plan),
                "--workdir", str(tmp_path / "work"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "custom-plan" in out
        assert "1 corruption(s) detected" in out

    def test_rejects_single_rank(self, capsys):
        code = main(
            ["chaos", "--qubits", "10", "--local-qubits", "10"]
        )
        assert code == 2

    def test_rejects_bad_plan_file(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text('{"seed": 1, "faults": [{"op_index": 0, "kind": "meteor"}]}')
        code = main(
            ["chaos", "--qubits", "12", "--local-qubits", "10", "--plan", str(plan)]
        )
        assert code == 2
        assert "bad fault plan" in capsys.readouterr().err


class TestProject:
    @pytest.mark.slow
    def test_table2_row(self, capsys):
        code = main(["project", "--qubits", "36", "--nodes", "64", "--depth", "25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup vs [5]" in out
        assert "PFLOPS" in out

    def test_rejects_non_power_nodes(self, capsys):
        assert main(["project", "--qubits", "36", "--nodes", "63"]) == 2


class TestTrace:
    def test_writes_valid_chrome_trace_and_report(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        code = main(
            [
                "trace", str(out_path), "--qubits", "12",
                "--local-qubits", "10", "--depth", "10",
                "--tolerance", "1e9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rank lanes" in out
        assert "predicted vs actual" in out
        assert "no deviations beyond tolerance" in out
        data = json.loads(out_path.read_text())
        lanes = {
            e["args"]["name"]
            for e in data["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        # driver + one lane per virtual rank
        assert lanes == {"driver"} | {f"rank {r}" for r in range(4)}
        assert any(e["ph"] == "X" for e in data["traceEvents"])

    def test_jsonl_and_flamegraph(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "spans.jsonl"
        code = main(
            [
                "trace", str(out_path), "--qubits", "10",
                "--local-qubits", "8", "--depth", "8",
                "--jsonl", str(jsonl_path), "--flamegraph",
            ]
        )
        assert code == 0
        assert "span tree" in capsys.readouterr().out
        lines = jsonl_path.read_text().splitlines()
        assert lines and all(json.loads(line)["name"] for line in lines)

    def test_rejects_local_exceeding_total(self, capsys):
        code = main(
            ["trace", "out.json", "--qubits", "8", "--local-qubits", "10"]
        )
        assert code == 2
        assert "exceeds" in capsys.readouterr().err


class TestSimulateTelemetry:
    def test_trace_flag_writes_spans(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "sim_trace.json"
        code = main(
            [
                "simulate", "--qubits", "10", "--local-qubits", "8",
                "--depth", "8", "--trace", str(out_path),
            ]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert json.loads(out_path.read_text())["traceEvents"]

    def test_metrics_flag_prints_registry(self, capsys):
        code = main(
            [
                "simulate", "--qubits", "10", "--local-qubits", "8",
                "--depth", "8", "--metrics",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "comm.bytes_on_network" in out
        assert "kernel.apply.seconds" in out

    def test_requires_distributed_run(self, capsys):
        assert main(["simulate", "--qubits", "10", "--metrics"]) == 2
        assert "--local-qubits" in capsys.readouterr().err

    def test_incompatible_with_sanitize(self, capsys):
        code = main(
            [
                "simulate", "--qubits", "10", "--local-qubits", "8",
                "--metrics", "--sanitize",
            ]
        )
        assert code == 2
        assert "repro trace" in capsys.readouterr().err
