"""Tests for the Porter-Thomas analysis."""

import numpy as np
import pytest

from repro.analysis import (
    porter_thomas_entropy_nats,
    porter_thomas_kl_divergence,
    porter_thomas_pdf,
    shannon_entropy,
)
from repro.circuit import generate_supremacy_circuit
from repro.statevector import Simulator, StateVector


class TestPdf:
    def test_normalised(self):
        n = 10
        p = np.linspace(0, 50 / (1 << n), 20_000)
        density = porter_thomas_pdf(p, n)
        integral = np.trapezoid(density, p)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            porter_thomas_pdf(np.array([-0.1]), 4)


class TestEntropy:
    def test_formula(self):
        # ln(2^n) - 1 + gamma
        assert porter_thomas_entropy_nats(10) == pytest.approx(
            10 * np.log(2) - 1 + 0.5772156649, abs=1e-9
        )

    def test_supremacy_circuit_converges_to_pt_entropy(self):
        """The headline physics check: deep supremacy circuits produce
        Porter-Thomas-entropy output."""
        n = 12
        circ = generate_supremacy_circuit(n, 20, seed=0)
        sv = Simulator(n).run(circ).state
        h = shannon_entropy(sv.probabilities())
        assert h == pytest.approx(porter_thomas_entropy_nats(n), abs=0.05)

    def test_shallow_circuit_below_pt_entropy(self):
        n = 12
        circ = generate_supremacy_circuit(n, 2, seed=0)
        sv = Simulator(n).run(circ).state
        h = shannon_entropy(sv.probabilities())
        # Shallow circuits have not scrambled yet.
        assert abs(h - porter_thomas_entropy_nats(n)) > 0.15


class TestKl:
    def test_deep_circuit_small_kl(self):
        n = 12
        circ = generate_supremacy_circuit(n, 20, seed=1)
        probs = Simulator(n).run(circ).state.probabilities()
        assert porter_thomas_kl_divergence(probs, n) < 0.02

    def test_uniform_state_large_kl(self):
        n = 10
        probs = StateVector(n, init="plus").probabilities()
        assert porter_thomas_kl_divergence(probs, n) > 0.5

    def test_basis_state_large_kl(self):
        probs = StateVector.basis_state(10, 7).probabilities()
        assert porter_thomas_kl_divergence(probs, 10) > 0.5
