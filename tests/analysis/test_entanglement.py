"""Tests for entanglement measures."""

import numpy as np
import pytest

from repro.analysis.entanglement import (
    entanglement_entropy,
    max_entanglement_entropy,
    reduced_density_matrix,
    schmidt_coefficients,
)
from repro.circuit import generate_supremacy_circuit, ghz_circuit
from repro.gates import Gate
from repro.statevector import Simulator, StateVector
from repro.util.rng import random_statevector


class TestReducedDensityMatrix:
    def test_product_state_is_pure(self):
        sv = StateVector(3)
        sv.apply_gate(Gate("h", (0,)))
        rho = reduced_density_matrix(sv, (0,))
        assert np.allclose(rho, 0.5 * np.ones((2, 2)))
        assert np.trace(rho) == pytest.approx(1.0)

    def test_bell_pair_reduces_to_mixed(self):
        bell = StateVector(2)
        bell.apply_gate(Gate("h", (0,))).apply_gate(Gate("cnot", (0, 1)))
        rho = reduced_density_matrix(bell, (0,))
        assert np.allclose(rho, 0.5 * np.eye(2))

    def test_trace_one(self):
        sv = StateVector(6, random_statevector(6, 0))
        rho = reduced_density_matrix(sv, (1, 4, 5))
        assert np.trace(rho).real == pytest.approx(1.0)

    def test_improper_subset_rejected(self):
        sv = StateVector(3)
        with pytest.raises(ValueError):
            reduced_density_matrix(sv, ())
        with pytest.raises(ValueError):
            reduced_density_matrix(sv, (0, 1, 2))


class TestEntanglementEntropy:
    def test_product_state_zero(self):
        sv = StateVector(4)
        for q in range(4):
            sv.apply_gate(Gate("h", (q,)))
        assert entanglement_entropy(sv, (0, 1)) == pytest.approx(0.0, abs=1e-10)

    def test_bell_pair_one_bit(self):
        bell = StateVector(2)
        bell.apply_gate(Gate("h", (0,))).apply_gate(Gate("cnot", (0, 1)))
        assert entanglement_entropy(bell, (0,), base=2) == pytest.approx(1.0)

    def test_ghz_any_cut_one_bit(self):
        sv = Simulator(6).run(ghz_circuit(6)).state
        for cut in [(0,), (0, 1, 2), (5, 2)]:
            assert entanglement_entropy(sv, cut, base=2) == pytest.approx(1.0)

    def test_supremacy_circuit_near_page_entropy(self):
        """The paper's 'highly entangled' claim: deep supremacy circuits
        approach maximal entanglement across the half cut.  (Growth is
        limited by the number of CZs crossing the cut — the 2D geometry —
        so 'near' means within ~1.2 bits at depth 30 on a 4x3 grid.)"""
        n = 12
        sv = Simulator(n).run(generate_supremacy_circuit(n, 30, seed=0)).state
        half = tuple(range(n // 2))
        h = entanglement_entropy(sv, half, base=2)
        h_max = max_entanglement_entropy(n, n // 2) / np.log(2)
        assert h > h_max - 1.2
        assert h <= h_max + 1e-9

    def test_entropy_grows_with_depth(self):
        n = 10
        half = tuple(range(n // 2))
        entropies = []
        for depth in (1, 8, 24):
            sv = Simulator(n).run(
                generate_supremacy_circuit(n, depth, seed=1)
            ).state
            entropies.append(entanglement_entropy(sv, half))
        assert entropies[0] <= entropies[1] <= entropies[2]
        assert entropies[2] > entropies[0] + 1.0  # substantial growth

    def test_symmetric_under_complement(self):
        sv = StateVector(6, random_statevector(6, 2))
        a = entanglement_entropy(sv, (0, 2))
        b = entanglement_entropy(sv, (1, 3, 4, 5))
        assert a == pytest.approx(b)


class TestSchmidt:
    def test_product_state_rank_one(self):
        sv = StateVector(4)
        coefficients = schmidt_coefficients(sv, (0, 1))
        assert coefficients[0] == pytest.approx(1.0)
        assert np.all(coefficients[1:] < 1e-12)

    def test_normalisation(self):
        sv = StateVector(6, random_statevector(6, 3))
        coefficients = schmidt_coefficients(sv, (0, 3, 5))
        assert (coefficients**2).sum() == pytest.approx(1.0)

    def test_max_entropy_formula(self):
        assert max_entanglement_entropy(10, 5) == pytest.approx(5 * np.log(2))
        assert max_entanglement_entropy(10, 8) == pytest.approx(2 * np.log(2))
        with pytest.raises(ValueError):
            max_entanglement_entropy(4, 4)
