"""Tests for cross-entropy benchmarking fidelities."""

import numpy as np
import pytest

from repro.analysis import linear_xeb_fidelity, log_xeb_fidelity
from repro.circuit import generate_supremacy_circuit
from repro.statevector import Simulator
from repro.statevector.measure import sample_bitstrings


@pytest.fixture(scope="module")
def supremacy_output():
    n = 12
    circ = generate_supremacy_circuit(n, 20, seed=0)
    state = Simulator(n).run(circ).state
    return state, state.probabilities()


class TestXeb:
    def test_ideal_sampler_near_one(self, supremacy_output):
        state, probs = supremacy_output
        samples = sample_bitstrings(state, 6000, seed=1)
        assert linear_xeb_fidelity(samples, probs) == pytest.approx(1.0, abs=0.15)
        assert log_xeb_fidelity(samples, probs) == pytest.approx(1.0, abs=0.15)

    def test_uniform_sampler_near_zero(self, supremacy_output):
        _, probs = supremacy_output
        uniform = np.random.default_rng(2).integers(0, len(probs), 6000)
        assert abs(linear_xeb_fidelity(uniform, probs)) < 0.15
        assert abs(log_xeb_fidelity(uniform, probs)) < 0.15

    def test_mixture_interpolates(self, supremacy_output):
        """A depolarised sampler with fidelity f scores ~f."""
        state, probs = supremacy_output
        rng = np.random.default_rng(3)
        ideal = sample_bitstrings(state, 6000, seed=4)
        uniform = rng.integers(0, len(probs), 6000)
        mask = rng.random(6000) < 0.5
        mixed = np.where(mask, ideal, uniform)
        assert linear_xeb_fidelity(mixed, probs) == pytest.approx(0.5, abs=0.15)

    def test_out_of_range_sample(self, supremacy_output):
        _, probs = supremacy_output
        with pytest.raises(ValueError, match="out of range"):
            linear_xeb_fidelity(np.array([len(probs)]), probs)

    def test_non_1d_samples(self, supremacy_output):
        _, probs = supremacy_output
        with pytest.raises(ValueError, match="1-D"):
            linear_xeb_fidelity(np.zeros((2, 2), dtype=int), probs)
