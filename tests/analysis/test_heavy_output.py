"""Tests for heavy-output generation analysis."""

import numpy as np
import pytest

from repro.analysis.heavy_output import (
    PORTER_THOMAS_HOG_SCORE,
    heavy_output_probability,
    heavy_output_score,
    heavy_outputs,
)
from repro.circuit import generate_supremacy_circuit
from repro.statevector import Simulator, StateVector
from repro.statevector.measure import sample_bitstrings


@pytest.fixture(scope="module")
def supremacy_probs():
    circ = generate_supremacy_circuit(12, 20, seed=0)
    state = Simulator(12).run(circ).state
    return state, state.probabilities()


class TestHeavyOutputs:
    def test_heavy_set_is_above_median(self):
        probs = np.array([0.1, 0.2, 0.3, 0.4])
        heavy = heavy_outputs(probs)
        assert set(heavy) == {2, 3}

    def test_uniform_has_empty_heavy_set(self):
        probs = np.full(16, 1 / 16)
        assert heavy_outputs(probs).size == 0
        assert heavy_output_probability(probs) == 0.0

    def test_porter_thomas_mass(self, supremacy_probs):
        """Supremacy output: heavy mass ~ (1 + ln2)/2 ~ 0.8466."""
        _, probs = supremacy_probs
        assert heavy_output_probability(probs) == pytest.approx(
            PORTER_THOMAS_HOG_SCORE, abs=0.02
        )

    def test_ideal_sampler_score(self, supremacy_probs):
        state, probs = supremacy_probs
        samples = sample_bitstrings(state, 8000, seed=1)
        assert heavy_output_score(samples, probs) == pytest.approx(
            PORTER_THOMAS_HOG_SCORE, abs=0.03
        )

    def test_uniform_sampler_scores_half(self, supremacy_probs):
        _, probs = supremacy_probs
        uniform = np.random.default_rng(2).integers(0, len(probs), 8000)
        assert heavy_output_score(uniform, probs) == pytest.approx(0.5, abs=0.03)

    def test_quantum_volume_threshold(self, supremacy_probs):
        """The QV pass line: ideal sampler > 2/3, uniform sampler < 2/3."""
        state, probs = supremacy_probs
        ideal = sample_bitstrings(state, 4000, seed=3)
        uniform = np.random.default_rng(4).integers(0, len(probs), 4000)
        assert heavy_output_score(ideal, probs) > 2 / 3
        assert heavy_output_score(uniform, probs) < 2 / 3

    def test_structured_state_below_pt(self):
        """The uniform superposition has no heavy outputs at all."""
        probs = StateVector(8, init="plus").probabilities()
        assert heavy_output_probability(probs) == pytest.approx(0.0)

    def test_validation(self, supremacy_probs):
        _, probs = supremacy_probs
        with pytest.raises(ValueError, match="1-D"):
            heavy_output_score(np.zeros((2, 2), dtype=int), probs)
        with pytest.raises(ValueError, match="range"):
            heavy_output_score(np.array([len(probs)]), probs)
