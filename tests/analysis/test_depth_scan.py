"""Tests for the entropy-vs-depth convergence scan."""

import pytest

from repro.analysis.depth_scan import (
    DepthPoint,
    convergence_depth,
    entropy_depth_scan,
)
from repro.circuit import GridSpec


class TestEntropyDepthScan:
    @pytest.fixture(scope="class")
    def scan(self):
        return entropy_depth_scan(GridSpec(3, 4), range(2, 21, 3), seed=0)

    def test_entropy_gap_shrinks_with_depth(self, scan):
        # Shallow circuits start at the *uniform* entropy (n ln 2, above
        # Porter-Thomas) and converge down to it; the |gap| shrinks.
        assert abs(scan[-1].entropy_gap) < abs(scan[0].entropy_gap)
        assert abs(scan[-1].entropy_gap) < 0.05

    def test_kl_decreases_with_depth(self, scan):
        assert scan[-1].kl_to_porter_thomas < scan[0].kl_to_porter_thomas

    def test_deep_circuit_converged(self, scan):
        assert scan[-1].kl_to_porter_thomas < 0.03
        assert abs(scan[-1].entropy_gap) < 0.2

    def test_convergence_depth(self, scan):
        depth = convergence_depth(scan, kl_threshold=0.05)
        assert depth is not None
        assert 5 <= depth <= 20

    def test_convergence_none_for_shallow(self):
        points = [
            DepthPoint(depth=2, entropy_nats=1.0, entropy_gap=5.0,
                       kl_to_porter_thomas=1.0)
        ]
        assert convergence_depth(points) is None

    def test_size_guard(self):
        with pytest.raises(ValueError, match="too large"):
            entropy_depth_scan(GridSpec(5, 5), [4])

    def test_accepts_qubit_count(self):
        points = entropy_depth_scan(9, [4], seed=1)
        assert len(points) == 1 and points[0].depth == 4
