"""Tests for entropy computation."""

import numpy as np
import pytest

from repro.analysis import distributed_entropy, shannon_entropy
from repro.distributed import DistributedState
from repro.statevector import StateVector
from repro.util.rng import random_statevector


class TestShannonEntropy:
    def test_uniform_distribution(self):
        probs = np.full(16, 1 / 16)
        assert shannon_entropy(probs) == pytest.approx(np.log(16))
        assert shannon_entropy(probs, base=2) == pytest.approx(4.0)

    def test_deterministic_distribution(self):
        probs = np.zeros(8)
        probs[3] = 1.0
        assert shannon_entropy(probs) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            shannon_entropy(np.array([1.5, -0.5]))

    def test_rejects_unnormalised(self):
        with pytest.raises(ValueError, match="sum to 1"):
            shannon_entropy(np.array([0.3, 0.3]))

    def test_invariant_under_permutation(self):
        rng = np.random.default_rng(0)
        probs = rng.dirichlet(np.ones(32))
        assert shannon_entropy(probs) == pytest.approx(
            shannon_entropy(probs[rng.permutation(32)])
        )


class TestDistributedEntropy:
    def test_matches_serial(self):
        sv = StateVector(8, random_statevector(8, 1))
        serial = shannon_entropy(sv.probabilities())
        d = DistributedState.from_statevector(sv, 5)
        assert distributed_entropy(d) == pytest.approx(serial)

    def test_base_option(self):
        sv = StateVector(6, random_statevector(6, 2))
        d = DistributedState.from_statevector(sv, 4)
        assert distributed_entropy(d, base=2) == pytest.approx(
            distributed_entropy(d) / np.log(2)
        )

    def test_entropy_layout_invariant(self):
        """Swapping global/local qubits must not change the entropy."""
        sv = StateVector(8, random_statevector(8, 3))
        d = DistributedState.from_statevector(sv, 5)
        before = distributed_entropy(d)
        d.swap_global_set({0, 1, 2})
        assert distributed_entropy(d) == pytest.approx(before)

    def test_unnormalised_rejected(self):
        d = DistributedState(6, 4)
        d.storage.get(0)[0] = 2.0
        with pytest.raises(ValueError, match="normalis"):
            distributed_entropy(d)
