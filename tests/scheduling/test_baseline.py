"""Tests for the per-gate communication baseline of [5]."""

from repro.circuit import Circuit, generate_supremacy_circuit
from repro.gates import Gate
from repro.scheduling import baseline_global_gates


class TestBaseline:
    def test_simple_counting(self):
        c = Circuit(
            4,
            [
                Gate("h", (0,)),      # local
                Gate("h", (3,)),      # global dense
                Gate("cz", (0, 3)),   # global diagonal -> specialized
                Gate("t", (3,)),      # global diagonal (median: free)
            ],
        )
        r = baseline_global_gates(c, 2, worst_case=False)
        assert r.global_gates == 1
        assert r.specialized_global_gates == 2
        assert r.local_gates == 1
        assert r.communication_steps == 1

    def test_worst_case_counts_t_as_dense(self):
        c = Circuit(4, [Gate("t", (3,)), Gate("cz", (1, 3))])
        median = baseline_global_gates(c, 2, worst_case=False)
        worst = baseline_global_gates(c, 2, worst_case=True)
        assert median.global_gates == 0
        assert worst.global_gates == 1  # T now dense; CZ still free

    def test_no_specialization(self):
        c = Circuit(4, [Gate("cz", (1, 3))])
        r = baseline_global_gates(c, 2, specialize=False)
        assert r.global_gates == 1

    def test_all_local_when_l_covers(self):
        circ = generate_supremacy_circuit(9, 8, seed=0)
        r = baseline_global_gates(circ, 9)
        assert r.global_gates == 0
        assert r.local_gates == len(circ)

    def test_paper_42q_about_50_global_gates(self):
        """Sec. 4.1.2: '[5]'s scheme requires about 50 global gates' for a
        depth-25 42-qubit circuit (median instances)."""
        circ = generate_supremacy_circuit(
            42, 25, seed=0, include_initial_hadamards=False
        )
        r = baseline_global_gates(circ, 29, worst_case=False)
        assert 40 <= r.global_gates <= 60, r.global_gates

    def test_monotone_in_global_count(self):
        circ = generate_supremacy_circuit(20, 15, seed=1)
        counts = [
            baseline_global_gates(circ, l).global_gates for l in (19, 16, 13, 10)
        ]
        assert all(a <= b for a, b in zip(counts, counts[1:]))

    def test_worst_case_at_least_median(self):
        circ = generate_supremacy_circuit(20, 15, seed=1)
        for l in (16, 12):
            worst = baseline_global_gates(circ, l, worst_case=True).global_gates
            median = baseline_global_gates(circ, l, worst_case=False).global_gates
            assert worst >= median
