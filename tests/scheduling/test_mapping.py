"""Tests for the qubit -> bit-location mapping heuristic (Sec. 3.6.2)."""

from repro.circuit import generate_supremacy_circuit
from repro.scheduling import SchedulerConfig, cluster_bit_mapping, schedule_circuit
from repro.scheduling.mapping import mapping_cost


def schedule_clusters(n=16, depth=12, l=16, kmax=4, seed=0):
    circ = generate_supremacy_circuit(n, depth, seed=seed)
    sched = schedule_circuit(circ, SchedulerConfig(local_qubits=l, kmax=kmax, seed=1))
    return [
        op.qubits
        for stage in sched.stages
        for op in stage.cluster_ops
    ]


class TestClusterBitMapping:
    def test_is_bijection(self):
        clusters = schedule_clusters()
        mapping = cluster_bit_mapping(clusters, 16)
        assert sorted(mapping.keys()) == list(range(16))
        assert sorted(mapping.values()) == list(range(16))

    def test_most_active_qubit_gets_bit0(self):
        clusters = [(0, 1), (0, 2), (0, 3), (4, 5)]
        mapping = cluster_bit_mapping(clusters, 6)
        assert mapping[0] == 0

    def test_empty_clusters(self):
        mapping = cluster_bit_mapping([], 4)
        assert sorted(mapping.values()) == list(range(4))

    def test_reduces_high_order_cluster_count(self):
        """The point of the heuristic: fewer clusters touch high-order
        bit locations than under the identity mapping."""
        clusters = schedule_clusters()
        n = 16
        identity = {q: q for q in range(n)}
        mapped = cluster_bit_mapping(clusters, n)
        threshold = 8  # cache-penalty region
        cost_identity = mapping_cost(clusters, identity, high_order_threshold=threshold)
        cost_mapped = mapping_cost(clusters, mapped, high_order_threshold=threshold)
        assert cost_mapped <= cost_identity

    def test_mapping_cost_counts(self):
        clusters = [(0, 1), (2, 9), (3,)]
        identity = {q: q for q in range(10)}
        assert mapping_cost(clusters, identity, high_order_threshold=8) == 1
        assert mapping_cost(clusters, identity, high_order_threshold=2) == 2

    def test_unused_qubits_get_high_bits(self):
        clusters = [(0, 1)] * 5
        mapping = cluster_bit_mapping(clusters, 4)
        assert mapping[0] in (0, 1) and mapping[1] in (0, 1)
        assert {mapping[2], mapping[3]} == {2, 3}
