"""Tests for schedule visualization."""

from repro.circuit import generate_supremacy_circuit
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.scheduling.visualize import render_schedule, schedule_table


def make_schedule(absorb=False):
    circ = generate_supremacy_circuit(12, 10, seed=4)
    return schedule_circuit(
        circ,
        SchedulerConfig(local_qubits=8, kmax=4, seed=0, absorb_diagonals=absorb),
    )


class TestRenderSchedule:
    def test_contains_all_qubit_lanes(self):
        sched = make_schedule()
        text = render_schedule(sched)
        for q in range(12):
            assert f"q {q:>3} |" in text

    def test_stage_headers(self):
        sched = make_schedule()
        text = render_schedule(sched)
        for i in range(len(sched.stages)):
            assert f"stage{i}" in text

    def test_legend_present(self):
        assert "legend:" in render_schedule(make_schedule())

    def test_cluster_labels_appear(self):
        text = render_schedule(make_schedule())
        assert "[A]" in text

    def test_width_cap(self):
        text = render_schedule(make_schedule(), max_width=40)
        assert all(len(line) <= 40 for line in text.splitlines())

    def test_absorbed_schedule_renders(self):
        # AbsorbedClusterOps are cluster-like and must render as clusters.
        text = render_schedule(make_schedule(absorb=True))
        assert "[A]" in text


class TestScheduleTable:
    def test_rows_per_stage(self):
        sched = make_schedule()
        table = schedule_table(sched)
        assert table.count("\n") >= len(sched.stages)
        assert f"{sched.num_swaps} swaps" in table
        assert f"{sched.num_clusters} clusters" in table
