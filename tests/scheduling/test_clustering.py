"""Tests for gate clustering (Sec. 3.6.1 step 2)."""

import pytest

from repro.circuit import Circuit, generate_supremacy_circuit
from repro.gates import Gate, random_unitary
from repro.scheduling import cluster_stage_gates
from repro.scheduling.program import ClusterOp, GateOp


def flatten_ops(ops) -> list[Gate]:
    out = []
    for op in ops:
        if isinstance(op, ClusterOp):
            out.extend(op.gates)
        else:
            out.append(op.gate)
    return out


class TestClustering:
    def test_covers_every_gate_once(self):
        circ = generate_supremacy_circuit(9, 8, seed=0)
        ops = cluster_stage_gates(list(circ.gates), frozenset(), 4)
        assert len(flatten_ops(ops)) == len(circ)

    def test_respects_kmax(self):
        circ = generate_supremacy_circuit(9, 8, seed=0)
        for kmax in (2, 3, 5):
            ops = cluster_stage_gates(list(circ.gates), frozenset(), kmax)
            for op in ops:
                if isinstance(op, ClusterOp):
                    assert op.num_qubits <= kmax

    def test_preserves_per_qubit_order(self):
        circ = generate_supremacy_circuit(12, 10, seed=1)
        ops = cluster_stage_gates(list(circ.gates), frozenset(), 4)
        reordered = Circuit(12, flatten_ops(ops))
        assert circ.same_qubit_order_preserved(reordered)

    def test_fewer_clusters_with_larger_kmax(self):
        """Table 1's monotone trend."""
        circ = generate_supremacy_circuit(16, 12, seed=2)
        gates = list(circ.gates)
        counts = [
            sum(1 for op in cluster_stage_gates(gates, frozenset(), k) if isinstance(op, ClusterOp))
            for k in (3, 4, 5)
        ]
        assert counts[0] >= counts[1] >= counts[2]

    def test_merges_more_than_kmax_gates(self):
        """The Table 1 observation: clusters absorb more than kmax gates."""
        circ = generate_supremacy_circuit(16, 12, seed=2)
        ops = cluster_stage_gates(list(circ.gates), frozenset(), 5)
        clusters = [op for op in ops if isinstance(op, ClusterOp)]
        avg = sum(c.num_gates for c in clusters) / len(clusters)
        assert avg > 5

    def test_global_diagonal_becomes_gateop(self):
        gates = [Gate("cz", (0, 4)), Gate("h", (0,))]
        ops = cluster_stage_gates(gates, frozenset({4}), 3)
        assert isinstance(ops[0], GateOp)
        assert ops[0].gate.name == "cz"

    def test_global_dense_rejected(self):
        with pytest.raises(ValueError, match="specializable"):
            cluster_stage_gates([Gate("h", (4,))], frozenset({4}), 3)

    def test_oversized_local_gate_rejected(self):
        g = Gate("rand", (0, 1, 2), random_unitary(3, 0))
        with pytest.raises(ValueError, match="larger than kmax"):
            cluster_stage_gates([g], frozenset(), 2)

    def test_gateop_blocks_following_cluster_gates(self):
        """Gates after a specialized CZ on the same qubit must not be
        pulled into a cluster emitted before it."""
        gates = [
            Gate("h", (0,)),
            Gate("cz", (0, 4)),  # global CZ: standalone op
            Gate("h", (0,)),     # must come after the CZ
        ]
        ops = cluster_stage_gates(gates, frozenset({4}), 3)
        flat = flatten_ops(ops)
        names = [(g.name, g.qubits) for g in flat]
        assert names.index(("cz", (0, 4))) < len(names) - 1
        reordered = Circuit(5, flat)
        assert Circuit(5, gates).same_qubit_order_preserved(reordered)

    def test_empty_stage(self):
        assert cluster_stage_gates([], frozenset(), 3) == []

    def test_invalid_kmax(self):
        with pytest.raises(ValueError):
            cluster_stage_gates([], frozenset(), 0)

    def test_deterministic_per_seed(self):
        circ = generate_supremacy_circuit(12, 8, seed=3)
        a = cluster_stage_gates(list(circ.gates), frozenset(), 4, seed=5)
        b = cluster_stage_gates(list(circ.gates), frozenset(), 4, seed=5)
        assert [type(op) for op in a] == [type(op) for op in b]
        assert flatten_ops(a) == flatten_ops(b)
