"""Tests for the stage finder (swap minimization, Sec. 3.6.1 step 1)."""

import numpy as np
import pytest

from repro.circuit import Circuit, generate_supremacy_circuit
from repro.gates import Gate
from repro.scheduling import find_stages
from repro.scheduling.stages import _CircuitView, _mask


class TestCircuitView:
    def test_anywhere_flags_worst_case(self):
        c = Circuit(3, [Gate("t", (0,)), Gate("cz", (0, 1)), Gate("h", (2,))])
        view = _CircuitView(c, specialize=True, worst_case_dense=True)
        # worst case: T treated dense; CZ always specializable; H dense.
        assert view.anywhere == [False, True, False]

    def test_anywhere_flags_median(self):
        c = Circuit(3, [Gate("t", (0,)), Gate("cz", (0, 1)), Gate("h", (2,))])
        view = _CircuitView(c, specialize=True, worst_case_dense=False)
        assert view.anywhere == [True, True, False]

    def test_no_specialization(self):
        c = Circuit(2, [Gate("cz", (0, 1))])
        view = _CircuitView(c, specialize=False, worst_case_dense=True)
        assert view.anywhere == [False]

    def test_max_executable_all_local(self):
        c = Circuit(3, [Gate("h", (0,)), Gate("cz", (0, 1)), Gate("h", (1,))])
        view = _CircuitView(c, specialize=True, worst_case_dense=True)
        executed, fronts = view.max_executable([0, 0, 0], np.zeros(3, dtype=bool))
        assert sorted(executed) == [0, 1, 2]
        assert view.remaining(fronts) == 0

    def test_max_executable_blocks_on_global_dense(self):
        c = Circuit(2, [Gate("h", (0,)), Gate("cz", (0, 1)), Gate("h", (0,))])
        view = _CircuitView(c, specialize=True, worst_case_dense=True)
        executed, _ = view.max_executable([0, 0], _mask(2, {0}))
        # h(0) blocked immediately; cz blocked behind it.
        assert executed == []

    def test_max_executable_cz_passes_through_global(self):
        c = Circuit(2, [Gate("cz", (0, 1)), Gate("h", (1,))])
        view = _CircuitView(c, specialize=True, worst_case_dense=True)
        executed, _ = view.max_executable([0, 0], _mask(2, {0}))
        assert sorted(executed) == [0, 1]

    def test_qubits_needing_local(self):
        c = Circuit(3, [Gate("cz", (0, 1)), Gate("h", (1,)), Gate("t", (2,))])
        view = _CircuitView(c, specialize=True, worst_case_dense=True)
        assert view.qubits_needing_local([0, 0, 0]) == {1, 2}

    def test_first_block_distance(self):
        c = Circuit(2, [Gate("cz", (0, 1)), Gate("cz", (0, 1)), Gate("h", (0,))])
        view = _CircuitView(c, specialize=True, worst_case_dense=True)
        dist = view.first_block_distance([0, 0])
        assert dist[0] == 2.0  # two CZs before the dense H
        assert dist[1] == float("inf")  # qubit 1 never needs locality


class TestFindStages:
    def test_single_node_one_stage(self):
        circ = generate_supremacy_circuit(9, 8, seed=0)
        plan = find_stages(circ, 9)
        assert plan.num_swaps == 0
        assert len(plan.stages[0][1]) == len(circ)

    def test_covers_all_gates_exactly_once(self):
        circ = generate_supremacy_circuit(12, 10, seed=1)
        plan = find_stages(circ, 8, seed=0)
        all_ids = plan.all_gate_ids()
        assert sorted(all_ids) == list(range(len(circ)))

    def test_stage_global_sets_have_size_g(self):
        circ = generate_supremacy_circuit(12, 10, seed=1)
        plan = find_stages(circ, 8, seed=0)
        for global_set, _ in plan.stages:
            assert len(global_set) == 4

    def test_stage_gates_respect_global_set(self):
        circ = generate_supremacy_circuit(12, 10, seed=1)
        plan = find_stages(circ, 8, seed=0)
        for global_set, gate_ids in plan.stages:
            for gid in gate_ids:
                gate = circ[gid]
                if any(q in global_set for q in gate.qubits):
                    assert gate.is_diagonal and gate.num_qubits >= 2

    def test_stage_order_is_topological_per_qubit(self):
        circ = generate_supremacy_circuit(12, 10, seed=2)
        plan = find_stages(circ, 8, seed=0)
        position = {}
        for pos, gid in enumerate(plan.all_gate_ids()):
            position[gid] = pos
        per_qubit = circ.gate_indices_by_qubit()
        for q_gates in per_qubit:
            for a, b in zip(q_gates, q_gates[1:]):
                assert position[a] < position[b]

    def test_paper_swap_counts_42q(self):
        """Fig. 5 / Sec. 3.6.1: depth-25 42-qubit circuits need 2 swaps,
        independent of the local qubit count (29..32)."""
        circ = generate_supremacy_circuit(
            42, 25, seed=0, include_initial_hadamards=False
        )
        for l in (29, 32):
            plan = find_stages(circ, l, seed=1, restarts=3)
            assert plan.num_swaps == 2, f"l={l}: {plan.num_swaps}"

    def test_paper_36q_one_swap_no_trailing(self):
        """Sec. 3.6.1: the search reduces the 36-qubit circuit to 1 swap
        (under the no-trailing-layer instance convention)."""
        circ = generate_supremacy_circuit(
            36, 25, seed=0,
            include_initial_hadamards=False,
            include_trailing_singles=False,
        )
        plan = find_stages(circ, 30, seed=1, restarts=4)
        assert plan.num_swaps == 1

    def test_specialization_ablation_not_worse(self):
        """Disabling CZ specialization can only increase the swap count."""
        circ = generate_supremacy_circuit(
            20, 12, seed=0, include_initial_hadamards=False
        )
        with_spec = find_stages(circ, 15, specialize=True, seed=1)
        without = find_stages(circ, 15, specialize=False, seed=1)
        assert without.num_swaps >= with_spec.num_swaps

    def test_oversized_gate_rejected(self):
        circ = Circuit(5, [Gate("rand", (0, 1, 2), np.eye(8, dtype=complex))])
        # A dense 3-qubit gate cannot run with only 2 local qubits.
        dense = Circuit(5)
        from repro.gates import random_unitary

        dense.append(Gate("rand", (0, 1, 2), random_unitary(3, 0)))
        with pytest.raises(ValueError):
            find_stages(dense, 2)
