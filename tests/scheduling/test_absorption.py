"""Tests for diagonal-gate absorption into cluster matrices (Sec. 3.5)."""

import numpy as np
import pytest

from repro.circuit import generate_supremacy_circuit
from repro.distributed import DistributedSimulator, DistributedState
from repro.gates import Gate
from repro.scheduling import ClusterOp, GateOp, SchedulerConfig, schedule_circuit
from repro.scheduling.absorption import AbsorbedClusterOp, absorb_diagonals
from repro.statevector import Simulator, StateVector
from repro.util.rng import random_statevector


class TestAbsorbDiagonalsPass:
    def test_pure_global_phase_folds_forward(self):
        ops = [
            GateOp(Gate("t", (5,))),  # global diagonal, no local qubits
            ClusterOp(qubits=(0, 1), gates=(Gate("h", (0,)),)),
        ]
        out = absorb_diagonals(ops, frozenset({5}))
        assert len(out) == 1
        assert isinstance(out[0], AbsorbedClusterOp)
        assert out[0].pre_diagonals == (Gate("t", (5,)),)

    def test_mixed_diagonal_folds_into_covering_cluster(self):
        cz = Gate("cz", (0, 5))  # local 0, global 5
        ops = [GateOp(cz), ClusterOp(qubits=(0, 1), gates=(Gate("h", (0,)),))]
        out = absorb_diagonals(ops, frozenset({5}))
        assert len(out) == 1
        assert out[0].pre_diagonals == (cz,)

    def test_uncovered_diagonal_stays_standalone(self):
        cz = Gate("cz", (2, 5))  # local qubit 2 not in the cluster
        ops = [GateOp(cz), ClusterOp(qubits=(0, 1), gates=(Gate("h", (0,)),))]
        out = absorb_diagonals(ops, frozenset({5}))
        kinds = [type(op) for op in out]
        assert GateOp in kinds and ClusterOp in kinds

    def test_trailing_diagonal_folds_backward(self):
        cz = Gate("cz", (0, 5))
        ops = [ClusterOp(qubits=(0, 1), gates=(Gate("h", (0,)),)), GateOp(cz)]
        out = absorb_diagonals(ops, frozenset({5}))
        assert len(out) == 1
        assert out[0].post_diagonals == (cz,)

    def test_monomial_op_blocks_crossing(self):
        """A rank renumbering on the diagonal's global qubit must not be
        crossed; the diagonal resolves (backward or standalone) first."""
        t_gate = Gate("t", (5,))
        ops = [
            GateOp(t_gate),
            GateOp(Gate("x", (5,))),  # renumbers ranks on qubit 5
            ClusterOp(qubits=(0,), gates=(Gate("h", (0,)),)),
        ]
        out = absorb_diagonals(ops, frozenset({5}))
        # t must NOT appear as pre_diagonal of the cluster.
        for op in out:
            if isinstance(op, AbsorbedClusterOp):
                assert t_gate not in op.pre_diagonals
        assert any(isinstance(op, GateOp) and op.gate == t_gate for op in out)

    def test_covers_all_gates(self):
        circ = generate_supremacy_circuit(12, 10, seed=0)
        sched = schedule_circuit(
            circ, SchedulerConfig(local_qubits=8, seed=1, absorb_diagonals=True)
        )
        assert len(sched.scheduled_gates()) == len(sched.circuit)
        sched.validate()


class TestAbsorbedClusterOp:
    def test_matrix_for_rank_applies_phase(self):
        cluster = ClusterOp(qubits=(0,), gates=(Gate("h", (0,)),))
        op = AbsorbedClusterOp(cluster=cluster, pre_diagonals=(Gate("t", (5,)),))
        m0 = op.matrix_for_rank({5: 0})
        m1 = op.matrix_for_rank({5: 1})
        assert np.allclose(m0, Gate("h", (0,)).matrix)
        assert np.allclose(m1, np.exp(1j * np.pi / 4) * Gate("h", (0,)).matrix)

    def test_matrix_for_rank_conditional_z(self):
        """CZ(local, global): rank bit 1 applies Z before the cluster."""
        cluster = ClusterOp(qubits=(0,), gates=(Gate("h", (0,)),))
        op = AbsorbedClusterOp(cluster=cluster, pre_diagonals=(Gate("cz", (0, 5)),))
        h = Gate("h", (0,)).matrix
        z = Gate("z", (0,)).matrix
        assert np.allclose(op.matrix_for_rank({5: 0}), h)
        assert np.allclose(op.matrix_for_rank({5: 1}), h @ z)

    def test_post_diagonal_order(self):
        cluster = ClusterOp(qubits=(0,), gates=(Gate("h", (0,)),))
        op = AbsorbedClusterOp(cluster=cluster, post_diagonals=(Gate("cz", (0, 5)),))
        h = Gate("h", (0,)).matrix
        z = Gate("z", (0,)).matrix
        assert np.allclose(op.matrix_for_rank({5: 1}), z @ h)

    def test_counters(self):
        cluster = ClusterOp(qubits=(0, 1), gates=(Gate("h", (0,)), Gate("h", (1,))))
        op = AbsorbedClusterOp(
            cluster=cluster,
            pre_diagonals=(Gate("t", (5,)),),
            post_diagonals=(Gate("cz", (0, 5)),),
        )
        assert op.num_gates == 4
        assert op.num_qubits == 2
        assert op.global_qubits_used() == {5}


class TestEndToEnd:
    @pytest.mark.parametrize("n,depth,l", [(12, 10, 8), (14, 12, 9)])
    def test_absorbed_schedule_matches_reference(self, n, depth, l):
        circ = generate_supremacy_circuit(n, depth, seed=3)
        ref = Simulator(n).run(circ).state
        sched = schedule_circuit(
            circ, SchedulerConfig(local_qubits=l, kmax=4, seed=2, absorb_diagonals=True)
        )
        res = DistributedSimulator(n, l).run_schedule(sched)
        assert res.state.to_statevector().allclose(ref, atol=1e-9)

    def test_absorption_removes_diagonal_sweeps(self):
        n, depth, l = 14, 12, 9
        circ = generate_supremacy_circuit(n, depth, seed=1)
        plain = schedule_circuit(
            circ, SchedulerConfig(local_qubits=l, kmax=4, seed=2)
        )
        absorbed = schedule_circuit(
            circ, SchedulerConfig(local_qubits=l, kmax=4, seed=2, absorb_diagonals=True)
        )
        res_plain = DistributedSimulator(n, l).run_schedule(plain)
        res_abs = DistributedSimulator(n, l).run_schedule(absorbed)
        assert res_abs.kernel_cost.diagonal_calls < max(
            res_plain.kernel_cost.diagonal_calls, 1
        )
        assert res_abs.kernel_cost.total_calls <= res_plain.kernel_cost.total_calls
        assert res_abs.state.to_statevector().allclose(
            res_plain.state.to_statevector(), atol=1e-9
        )

    def test_rank_conditional_requires_global_layout(self):
        sv = StateVector(8, random_statevector(8, 0))
        d = DistributedState.from_statevector(sv, 5)
        cluster = ClusterOp(qubits=(0,), gates=(Gate("h", (0,)),))
        op = AbsorbedClusterOp(cluster=cluster, pre_diagonals=(Gate("cz", (0, 2)),))
        # qubit 2 is local: the absorbed diagonal's premise is violated.
        with pytest.raises(ValueError, match="global"):
            d.apply_rank_conditional_cluster(op)
