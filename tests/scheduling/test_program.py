"""Tests for the Schedule program representation."""

import numpy as np
import pytest

from repro.circuit import Circuit, generate_supremacy_circuit
from repro.gates import Gate
from repro.kernels import apply_gate_reference
from repro.scheduling import ClusterOp, GateOp, Schedule, Stage, SwapOp
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.util.rng import random_statevector


class TestClusterOp:
    def test_fused_matrix_matches_sequence(self):
        op = ClusterOp(
            qubits=(2, 0),
            gates=(Gate("h", (2,)), Gate("cz", (2, 0)), Gate("t", (0,))),
        )
        state = random_statevector(4, 0).copy()
        a = state.copy()
        for g in op.gates:
            apply_gate_reference(a, g.matrix, g.qubits)
        b = state.copy()
        apply_gate_reference(b, op.fused.matrix, op.fused.qubits)
        assert np.allclose(a, b, atol=1e-10)

    def test_counters(self):
        op = ClusterOp(qubits=(1,), gates=(Gate("h", (1,)), Gate("t", (1,))))
        assert op.num_qubits == 1
        assert op.num_gates == 2


class TestScheduleStructure:
    def make_schedule(self, n=12, l=8, depth=10, kmax=4) -> Schedule:
        circ = generate_supremacy_circuit(n, depth, seed=4)
        return schedule_circuit(circ, SchedulerConfig(local_qubits=l, kmax=kmax, seed=0))

    def test_operations_interleave_swaps(self):
        sched = self.make_schedule()
        ops = list(sched.operations())
        swaps = [op for op in ops if isinstance(op, SwapOp)]
        assert len(swaps) == sched.num_swaps

    def test_summary_keys(self):
        summary = self.make_schedule().summary()
        assert summary["num_swaps"] == summary["num_stages"] - 1
        assert summary["num_clusters"] > 0
        assert summary["gates_per_cluster"] > 0

    def test_cluster_sizes_bounded(self):
        sched = self.make_schedule(kmax=3)
        assert all(1 <= k <= 3 for k in sched.cluster_sizes())

    def test_scheduled_gates_cover_circuit(self):
        sched = self.make_schedule()
        assert len(sched.scheduled_gates()) == len(sched.circuit)

    def test_validate_passes(self):
        self.make_schedule().validate()

    def test_validate_catches_missing_gate(self):
        sched = self.make_schedule()
        # Drop one cluster: coverage check must fire.
        for stage in sched.stages:
            if stage.cluster_ops:
                stage.ops.remove(stage.cluster_ops[-1])
                break
        with pytest.raises(AssertionError, match="covers"):
            sched.validate()

    def test_validate_catches_kmax_violation(self):
        circ = Circuit(3, [Gate("h", (0,))])
        bad = Schedule(
            circuit=circ,
            local_qubits=3,
            stages=[
                Stage(
                    global_qubits=frozenset(),
                    ops=[ClusterOp(qubits=(0, 1, 2), gates=(Gate("h", (0,)),))],
                )
            ],
            kmax=2,
        )
        with pytest.raises(AssertionError, match="kmax"):
            bad.validate()

    def test_validate_catches_global_cluster(self):
        circ = Circuit(3, [Gate("h", (0,))])
        bad = Schedule(
            circuit=circ,
            local_qubits=2,
            stages=[
                Stage(
                    global_qubits=frozenset({0}),
                    ops=[ClusterOp(qubits=(0,), gates=(Gate("h", (0,)),))],
                )
            ],
        )
        with pytest.raises(AssertionError, match="global"):
            bad.validate()

    def test_validate_catches_dense_gateop_on_global(self):
        circ = Circuit(3, [Gate("h", (0,))])
        bad = Schedule(
            circuit=circ,
            local_qubits=2,
            stages=[
                Stage(global_qubits=frozenset({0}), ops=[GateOp(Gate("h", (0,)))])
            ],
        )
        with pytest.raises(AssertionError, match="specializable"):
            bad.validate()

    def test_initial_global_qubits(self):
        sched = self.make_schedule()
        assert sched.initial_global_qubits == sched.stages[0].global_qubits

    def test_empty_schedule(self):
        sched = Schedule(circuit=Circuit(2), local_qubits=2, stages=[])
        assert sched.num_swaps == 0
        assert sched.initial_global_qubits == frozenset()
        assert sched.gates_per_cluster() == 0.0
