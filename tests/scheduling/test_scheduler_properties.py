"""Property-based tests: the scheduler is correct on arbitrary circuits.

The paper notes its optimizations "are general and can be applied to any
quantum circuit".  These tests hold it to that: random brickwork
circuits, random gate soups and local-interaction ansätze must all
schedule into valid programs that execute to the exact reference state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import hardware_efficient_ansatz, random_brickwork_circuit
from repro.distributed import DistributedSimulator
from repro.scheduling import SchedulerConfig, schedule_circuit
from repro.statevector import Simulator

from tests.conftest import random_circuit


class TestSchedulerOnArbitraryCircuits:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.integers(6, 9),
        st.integers(10, 30),
        st.booleans(),
    )
    def test_random_soups(self, seed, n, num_gates, absorb):
        circ = random_circuit(n, num_gates, seed=seed)
        l = max(4, n - 3)  # config rejects kmax=4 > local_qubits
        ref = Simulator(n).run(circ).state
        sched = schedule_circuit(
            circ,
            SchedulerConfig(
                local_qubits=l,
                kmax=4,
                seed=seed,
                skip_initial_hadamards=False,
                absorb_diagonals=absorb,
            ),
        )
        sched.validate()
        run = DistributedSimulator(n, l).run_schedule(sched)
        assert run.state.to_statevector().allclose(ref, atol=1e-9)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 8))
    def test_brickwork(self, seed, depth):
        n, l = 8, 6
        circ = random_brickwork_circuit(n, depth, seed=seed)
        ref = Simulator(n).run(circ).state
        sched = schedule_circuit(
            circ,
            SchedulerConfig(local_qubits=l, seed=seed, skip_initial_hadamards=False),
        )
        sched.validate()
        run = DistributedSimulator(n, l).run_schedule(sched)
        assert run.state.to_statevector().allclose(ref, atol=1e-9)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_ansatz(self, seed):
        n, l = 9, 6
        circ = hardware_efficient_ansatz(n, 4, seed=seed)
        ref = Simulator(n).run(circ).state
        sched = schedule_circuit(
            circ,
            SchedulerConfig(local_qubits=l, seed=seed, skip_initial_hadamards=False),
        )
        run = DistributedSimulator(n, l).run_schedule(sched)
        assert run.state.to_statevector().allclose(ref, atol=1e-9)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10_000), st.integers(3, 5))
    def test_swap_counts_never_exceed_baseline(self, seed, kmax):
        """The scheduler can never need more communication steps than
        per-gate execution (it can always fall back to it)."""
        from repro.scheduling import baseline_global_gates

        n, l = 10, 7
        circ = random_circuit(n, 25, seed=seed)
        sched = schedule_circuit(
            circ,
            SchedulerConfig(
                local_qubits=l, kmax=kmax, seed=seed, skip_initial_hadamards=False
            ),
        )
        base = baseline_global_gates(circ, l, worst_case=True)
        assert sched.num_swaps <= max(base.global_gates, 1)
