"""Tests for the full scheduling pipeline."""

import pytest

from repro.circuit import Circuit, generate_supremacy_circuit
from repro.gates import Gate
from repro.scheduling import SchedulerConfig, schedule_circuit


class TestPipeline:
    def test_basic_schedule_valid(self):
        circ = generate_supremacy_circuit(12, 10, seed=0)
        sched = schedule_circuit(circ, SchedulerConfig(local_qubits=8, seed=1))
        sched.validate()
        assert sched.num_swaps >= 1
        assert sched.kmax == 5

    def test_hadamard_stripping(self):
        circ = generate_supremacy_circuit(9, 6, seed=0)
        sched = schedule_circuit(
            circ, SchedulerConfig(local_qubits=6, skip_initial_hadamards=True)
        )
        assert sched.initial_state == "plus"
        assert len(sched.circuit) == len(circ) - 9

    def test_hadamard_stripping_disabled(self):
        circ = generate_supremacy_circuit(9, 6, seed=0)
        sched = schedule_circuit(
            circ, SchedulerConfig(local_qubits=6, skip_initial_hadamards=False)
        )
        assert sched.initial_state == "zero"
        assert len(sched.circuit) == len(circ)

    def test_no_hadamard_layer_left_untouched(self):
        circ = Circuit(3, [Gate("t", (0,)), Gate("cz", (0, 1))])
        sched = schedule_circuit(circ, SchedulerConfig(local_qubits=3, kmax=3))
        assert sched.initial_state == "zero"
        assert len(sched.circuit) == 2

    def test_partial_h_layer_not_stripped(self):
        circ = Circuit(3, [Gate("h", (0,)), Gate("h", (0,)), Gate("h", (2,))])
        sched = schedule_circuit(circ, SchedulerConfig(local_qubits=3, kmax=3))
        assert sched.initial_state == "zero"

    def test_single_node_schedule(self):
        circ = generate_supremacy_circuit(9, 8, seed=2)
        sched = schedule_circuit(circ, SchedulerConfig(local_qubits=9))
        assert sched.num_swaps == 0
        assert len(sched.stages) == 1

    def test_local_qubits_larger_than_circuit_rejected(self):
        circ = generate_supremacy_circuit(9, 8, seed=2)
        with pytest.raises(ValueError, match="local_qubits=30 exceeds"):
            schedule_circuit(circ, SchedulerConfig(local_qubits=30))

    def test_config_rejects_kmax_over_local_qubits(self):
        with pytest.raises(ValueError, match="kmax=5 exceeds"):
            SchedulerConfig(local_qubits=3)
        with pytest.raises(ValueError, match="kmax=6 exceeds"):
            SchedulerConfig(local_qubits=5, kmax=6)

    def test_config_rejects_nonpositive_knobs(self):
        with pytest.raises(ValueError, match="local_qubits must be >= 1"):
            SchedulerConfig(local_qubits=0)
        with pytest.raises(ValueError, match="kmax must be >= 1"):
            SchedulerConfig(local_qubits=4, kmax=0)

    def test_config_with_validates_too(self):
        cfg = SchedulerConfig(local_qubits=8, kmax=4)
        with pytest.raises(ValueError, match="kmax=9 exceeds"):
            cfg.with_(kmax=9)

    def test_swap_adjustment_not_worse(self):
        circ = generate_supremacy_circuit(16, 12, seed=3)
        base_cfg = SchedulerConfig(local_qubits=11, kmax=4, seed=2, adjust_swaps=False)
        adj_cfg = base_cfg.with_(adjust_swaps=True)
        base = schedule_circuit(circ, base_cfg)
        adjusted = schedule_circuit(circ, adj_cfg)
        assert adjusted.num_swaps == base.num_swaps
        assert adjusted.num_clusters <= base.num_clusters
        adjusted.validate()

    def test_kmax_flows_through(self):
        circ = generate_supremacy_circuit(12, 8, seed=1)
        for kmax in (3, 5):
            sched = schedule_circuit(circ, SchedulerConfig(local_qubits=9, kmax=kmax))
            assert max(sched.cluster_sizes()) <= kmax

    def test_drop_final_diagonals(self):
        import numpy as np

        from repro.distributed import DistributedSimulator
        from repro.statevector import Simulator

        n, l = 10, 7
        circ = generate_supremacy_circuit(n, 10, seed=4)
        full = schedule_circuit(circ, SchedulerConfig(local_qubits=l, seed=1))
        cut = schedule_circuit(
            circ, SchedulerConfig(local_qubits=l, seed=1, drop_final_diagonals=True)
        )
        assert len(cut.circuit) < len(full.circuit)
        ref = Simulator(n).run(circ).state
        run = DistributedSimulator(n, l).run_schedule(cut)
        # Amplitudes differ (phases dropped) but probabilities are exact.
        probs = run.state.to_statevector().probabilities()
        assert np.allclose(probs, ref.probabilities(), atol=1e-10)

    def test_config_with(self):
        cfg = SchedulerConfig(local_qubits=10)
        cfg2 = cfg.with_(kmax=3)
        assert cfg2.kmax == 3 and cfg2.local_qubits == 10
        assert cfg.kmax == 5  # frozen original unchanged

    def test_deterministic(self):
        circ = generate_supremacy_circuit(12, 8, seed=5)
        cfg = SchedulerConfig(local_qubits=8, seed=9)
        a = schedule_circuit(circ, cfg)
        b = schedule_circuit(circ, cfg)
        assert a.summary() == b.summary()
        assert a.scheduled_gates() == b.scheduled_gates()


@pytest.mark.slow
class TestPaperNumbers:
    def test_table1_cluster_counts_30q(self):
        """Table 1, 30-qubit row: 82/46/36 clusters for kmax 3/4/5.
        Our search lands within ~15% (exact counts depend on the private
        instances); the monotone trend must hold exactly."""
        circ = generate_supremacy_circuit(30, 25, seed=0)
        paper = {3: 82, 4: 46, 5: 36}
        counts = {}
        for kmax, expected in paper.items():
            sched = schedule_circuit(
                circ, SchedulerConfig(local_qubits=30, kmax=kmax, seed=1)
            )
            counts[kmax] = sched.num_clusters
            assert abs(sched.num_clusters - expected) / expected < 0.25, (
                kmax,
                sched.num_clusters,
            )
        assert counts[3] > counts[4] > counts[5]

    def test_gates_per_cluster_exceeds_kmax(self):
        """Table 1's text claim: more than kmax gates merge per cluster."""
        circ = generate_supremacy_circuit(30, 25, seed=0)
        sched = schedule_circuit(circ, SchedulerConfig(local_qubits=30, kmax=5, seed=1))
        assert sched.gates_per_cluster() > 5
