"""Runtime shard sanitizers (``simulate --sanitize``).

Static checks prove the *plan* is sound; the sanitizer watches the
*execution*: an ASan-style wrapper around schedule execution that, at
every op boundary,

* scans every shard for NaN/Inf amplitudes (a kernel bug or corrupted
  matrix poisons the state long before the final norm reveals it),
* tracks 2-norm conservation (every schedule op is unitary, so the norm
  must stay at its initial value to tolerance),
* records per-shard CRC32 checksums and re-verifies them before the next
  op (amplitudes only legally change through kernels and exchanges, so a
  mismatch between ops means corruption at rest — the same detection the
  resilience supervisor performs, here pinned to the exact op index).

Every violation becomes a :class:`~repro.staticcheck.diagnostics.Finding`
with ``op_index`` set to the operation during (nan/norm) or immediately
before (checksum) which the damage was observed.  The sanitizer is
read-only: it never mutates the state and adds no communication.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.distributed.state import DistributedState
from repro.staticcheck.diagnostics import CheckReport, Finding, Severity

__all__ = [
    "SanitizerConfig",
    "SanitizerReport",
    "ShardSanitizer",
    "run_sanitized",
]

_E = Severity.ERROR


@dataclass(frozen=True)
class SanitizerConfig:
    """Which runtime checks to run and how tight.

    ``norm_tol`` is absolute drift of the 2-norm from its value at
    initialisation; float64 kernels keep it below 1e-10 for thousands of
    ops, so the default catches real damage without false alarms.
    """

    check_nan: bool = True
    check_norm: bool = True
    check_checksums: bool = True
    norm_tol: float = 1e-6


@dataclass
class SanitizerReport:
    """Findings plus per-op traces from one sanitized execution."""

    findings: list[Finding] = field(default_factory=list)
    ops_checked: int = 0
    norm_trace: list[float] = field(default_factory=list)
    overhead_seconds: float = 0.0

    @property
    def passed(self) -> bool:
        """True when no check tripped."""
        return not self.findings

    def findings_at(self, op_index: int) -> list[Finding]:
        """Findings pinned to one op index."""
        return [f for f in self.findings if f.op_index == op_index]

    def as_check_report(self) -> CheckReport:
        """View as a :class:`CheckReport` for uniform formatting."""
        return CheckReport(
            findings=list(self.findings), checks_run=["sanitizer"]
        )

    def format(self) -> str:
        """Human-readable summary."""
        lines = [
            f"sanitizer: {self.ops_checked} op(s) checked, "
            f"{len(self.findings)} finding(s), "
            f"+{self.overhead_seconds:.3f}s overhead"
        ]
        for finding in self.findings:
            lines.append(finding.format())
        return "\n".join(lines)


class ShardSanitizer:
    """Stateful runtime checker driven at op boundaries.

    Call :meth:`before_op` right before executing op *i* and
    :meth:`after_op` right after it; :meth:`run_sanitized` and the
    resilience supervisor do this for you.  The sanitizer keeps the last
    known-good checksums and the initial norm, so it must observe the
    state once (:meth:`attach`) before the first op.
    """

    def __init__(
        self, config: SanitizerConfig | None = None, *, metrics=None
    ) -> None:
        self.config = config or SanitizerConfig()
        self.report = SanitizerReport()
        self.metrics = metrics
        self._checksums: list[int] | None = None
        self._initial_norm: float | None = None
        self._nonfinite_ranks: set[int] = set()
        self._norm_nonfinite = False

    def use_metrics(self, registry) -> None:
        """Stream future findings into *registry*'s ``sanitizer.findings``.

        Each finding increments the counter labelled with its category
        (``sanitizer.findings{category=nan}`` etc.); ``None`` detaches.
        """
        self.metrics = registry

    def _add_finding(self, finding: Finding) -> None:
        self.report.findings.append(finding)
        if self.metrics is not None:
            self.metrics.counter(
                "sanitizer.findings", category=finding.category
            ).inc()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget state between (re)runs; keeps accumulated findings."""
        self._checksums = None
        self._initial_norm = None
        self._nonfinite_ranks = set()
        self._norm_nonfinite = False

    def attach(self, state: DistributedState) -> None:
        """Record the pristine state's norm and checksums."""
        start = time.perf_counter()
        if self.config.check_norm:
            self._initial_norm = state.norm()
        if self.config.check_checksums:
            self._checksums = state.shard_checksums()
        self.report.overhead_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------
    def before_op(self, state: DistributedState, op_index: int) -> None:
        """Verify nothing changed since the previous op finished.

        A checksum mismatch here means out-of-band corruption between op
        ``op_index - 1`` and op ``op_index``; the finding is pinned to
        ``op_index`` (the op that would have consumed the bad data).
        """
        if not self.config.check_checksums:
            return
        start = time.perf_counter()
        if self._checksums is None:
            self._checksums = state.shard_checksums()
        else:
            current = state.shard_checksums()
            bad = [
                r
                for r, crc in enumerate(current)
                if crc != self._checksums[r]
            ]
            for rank in bad:
                self._add_finding(
                    Finding(
                        severity=_E,
                        category="checksum",
                        message=(
                            f"shard checksum diverged at rest before op "
                            f"{op_index}"
                        ),
                        hint="amplitudes changed outside any kernel or "
                        "exchange: memory corruption, torn write, or an "
                        "unaccounted mutation",
                        op_index=op_index,
                        rank=rank,
                    )
                )
            if bad:
                # Accept the new reality so one corruption does not
                # re-report on every subsequent op.
                self._checksums = current
        self.report.overhead_seconds += time.perf_counter() - start

    def after_op(self, state: DistributedState, op_index: int) -> None:
        """Scan the post-op state; pin any damage to *op_index*."""
        start = time.perf_counter()
        cfg = self.config
        if cfg.check_nan:
            for rank in range(state.num_ranks):
                shard = state.storage.get(rank)
                if bool(np.isfinite(shard).all()):
                    self._nonfinite_ranks.discard(rank)
                    continue
                # Report each rank once when it first turns non-finite;
                # NaN persists, so re-scanning would cascade one injected
                # value into a finding per subsequent op.
                if rank in self._nonfinite_ranks:
                    continue
                self._nonfinite_ranks.add(rank)
                self._add_finding(
                    Finding(
                        severity=_E,
                        category="nan",
                        message=(
                            f"non-finite amplitudes after op {op_index}"
                        ),
                        hint="a kernel or gate matrix produced "
                        "NaN/Inf; check the op's fused matrix and "
                        "input state",
                        op_index=op_index,
                        rank=rank,
                    )
                )
        if cfg.check_norm and self._initial_norm is not None:
            norm = state.norm()
            self.report.norm_trace.append(norm)
            drift = abs(norm - self._initial_norm)
            if np.isfinite(norm):
                self._norm_nonfinite = False
            if (not np.isfinite(norm) or drift > cfg.norm_tol) and (
                not self._norm_nonfinite
            ):
                self._add_finding(
                    Finding(
                        severity=_E,
                        category="norm",
                        message=(
                            f"norm drifted to {norm:.12g} after op "
                            f"{op_index} (|drift| = {drift:.3e} > "
                            f"{cfg.norm_tol:.0e})"
                        ),
                        hint="schedule ops are unitary; norm loss means "
                        "a non-unitary matrix or lost amplitudes",
                        op_index=op_index,
                    )
                )
                # Rebase on the new reality so an already-reported drift
                # does not re-report after every subsequent op; a
                # non-finite norm cannot rebase, so latch instead.
                if np.isfinite(norm):
                    self._initial_norm = norm
                else:
                    self._norm_nonfinite = True
        if cfg.check_checksums:
            self._checksums = state.shard_checksums()
        self.report.ops_checked += 1
        self.report.overhead_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------
    def check_state(self, state: DistributedState, op_index: int) -> list[Finding]:
        """One-shot check (supervisor hook): before+after in one call.

        Returns the findings this call produced (the report keeps them
        too).  Used by the resilience supervisor at its op boundaries.
        """
        already = len(self.report.findings)
        self.before_op(state, op_index)
        self.after_op(state, op_index)
        return self.report.findings[already:]


def run_sanitized(
    schedule,
    *,
    state: DistributedState | None = None,
    config: SanitizerConfig | None = None,
    corrupt_during: dict | None = None,
    corrupt_after: dict | None = None,
) -> tuple[DistributedState, SanitizerReport]:
    """Execute *schedule* with the sanitizer armed; returns state+report.

    .. deprecated::
        Thin shim over :class:`repro.runtime.ExecutionEngine` with a
        :class:`~repro.runtime.SanitizerLayer`; build that stack
        directly.

    ``corrupt_during`` maps op_index -> callable(state) invoked right
    after that op executes but before its post-op scan — modelling damage
    *inside* the op (detected by the same index).  ``corrupt_after`` maps
    op_index -> callable(state) invoked after the post-op scan recorded
    checksums — modelling at-rest damage *between* ops (detected by the
    checksum pass before op ``op_index + 1``).  Both exist for fault
    drills and tests; production runs pass neither.
    """
    warnings.warn(
        "run_sanitized is deprecated; run the schedule through "
        "repro.runtime.ExecutionEngine with a SanitizerLayer",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.runtime import ExecutionEngine, SanitizerLayer

    sanitizer = ShardSanitizer(config)
    # Stack order puts the drills on either side of the sanitizer's
    # post-op scan: after_op runs in reverse stack order, so
    # corrupt_during fires before the scan and corrupt_after once the
    # scan has recorded its checksums.
    layers = [
        _corruption_drill(corrupt_after),
        SanitizerLayer(sanitizer),
        _corruption_drill(corrupt_during),
    ]
    engine = ExecutionEngine(schedule, use_plan=False, layers=layers)  # lint: allow-engine-direct
    result = engine.run(state=state)
    return result.state, sanitizer.report


def _corruption_drill(corruptions: dict | None):
    """A layer firing ``corruptions[op_index](state)`` after that op."""
    from repro.runtime import CallbackLayer

    table = corruptions or {}

    def fire(ctx, unit):
        hook = table.get(unit.op_index)
        if hook is not None:
            hook(ctx.state)

    return CallbackLayer(after_op=fire)
