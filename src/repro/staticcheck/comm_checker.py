"""Symbolic verification of the induced communication plan.

A schedule's communication behaviour is fully determined before any
amplitude exists: replaying the op stream over abstract per-rank layout
bookkeeping (the same replicated evolution
:class:`repro.distributed.multiproc._WorkerLayout` performs) yields, for
every virtual rank, the exact sequence of collectives it will join —
group membership, element counts, direction.  qHiPSTER-class simulators
die precisely here: one rank enters an all-to-all with a different group
or count than its peers and the job corrupts data or hangs.

Three verifiers:

* :func:`check_collectives` — lockstep-match the per-rank abstract comm
  programs; ranks disagreeing on a collective's kind, group or byte
  count are ``collective-mismatch`` errors, as is a rank arriving at a
  collective its group peers never post.
* :func:`check_comm_stats` — compare a run's (or a model's)
  :class:`~repro.distributed.comm.CommStats` against the plan's
  byte/step prediction (``byte-conservation``).
* :func:`check_deadlock` — simulate blocking point-to-point/collective
  semantics over abstract programs and report wait-for-graph cycles and
  stranded ranks (``deadlock``).

:func:`comm_plan_for_schedule` derives the per-rank programs from a
:class:`~repro.scheduling.Schedule`; tests corrupt those programs to
prove the detectors detect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scheduling.program import GateOp, Schedule, SwapOp
from repro.staticcheck.diagnostics import CheckReport, Severity

__all__ = [
    "BarrierOp",
    "CollectiveOp",
    "RecvOp",
    "SendOp",
    "check_collectives",
    "check_comm_stats",
    "check_deadlock",
    "comm_plan_for_schedule",
    "predict_comm_stats",
]

_E = Severity.ERROR
_W = Severity.WARNING


# ----------------------------------------------------------------------
# Abstract communication ops
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CollectiveOp:
    """One rank's participation in a collective.

    ``group`` is the sorted tuple of participating ranks; ``bytes_sent``
    is what this rank ships (an all-to-all over ``s`` ranks of a
    ``B``-byte shard ships ``B * (s-1) / s``).  ``op_index`` points back
    at the schedule op that generated the collective.
    """

    kind: str  # "alltoall" | "renumber"
    group: tuple[int, ...]
    bytes_sent: int
    op_index: int | None = None


@dataclass(frozen=True)
class SendOp:
    """Blocking point-to-point send (rendezvous semantics)."""

    dst: int
    nbytes: int
    op_index: int | None = None


@dataclass(frozen=True)
class RecvOp:
    """Blocking point-to-point receive."""

    src: int
    nbytes: int
    op_index: int | None = None


@dataclass(frozen=True)
class BarrierOp:
    """Barrier over a rank group."""

    group: tuple[int, ...]
    op_index: int | None = None


# ----------------------------------------------------------------------
# Plan derivation (mirrors the executors' layout evolution)
# ----------------------------------------------------------------------
class _Layout:
    """Replicated layout bookkeeping, one logical instance per rank."""

    def __init__(self, num_qubits: int, local_qubits: int, initial_global):
        self.n = num_qubits
        self.l = local_qubits
        self.g = num_qubits - local_qubits
        self.bit_of_qubit = list(range(num_qubits))
        if initial_global:
            global_sorted = sorted(initial_global)
            local_sorted = [
                q for q in range(num_qubits) if q not in set(global_sorted)
            ]
            for bit, q in enumerate(local_sorted + global_sorted):
                self.bit_of_qubit[q] = bit

    def global_set(self) -> set[int]:
        return {
            q for q in range(self.n) if self.bit_of_qubit[q] >= self.l
        }

    def apply_swap(self, new_global: set[int]) -> int:
        """Evolve through a swap; returns q (0 when the swap is a no-op)."""
        cur_global = self.global_set()
        incoming = sorted(cur_global - new_global)
        outgoing = sorted(new_global - cur_global)
        q = len(incoming)
        if q == 0:
            return 0
        l = self.l
        staying = sorted(
            cur_global & new_global, key=lambda qq: self.bit_of_qubit[qq]
        )
        new_positions = {qq: l + i for i, qq in enumerate(incoming)}
        new_positions.update(
            {qq: l + q + i for i, qq in enumerate(staying)}
        )
        for qq, new_bit in new_positions.items():
            self.bit_of_qubit[qq] = new_bit
        # Local staging swaps only permute local bits; the q-qubit block
        # exchange then swaps the two bit ranges.
        for i, qq in enumerate(outgoing):
            target = l - q + i
            current = self.bit_of_qubit[qq]
            if current != target:
                holder = self.bit_of_qubit.index(target)
                self.bit_of_qubit[holder] = current
                self.bit_of_qubit[qq] = target
        for qubit in range(self.n):
            bit = self.bit_of_qubit[qubit]
            if l - q <= bit < l:
                self.bit_of_qubit[qubit] = bit + q
            elif l <= bit < l + q:
                self.bit_of_qubit[qubit] = bit - q
        return q


def comm_plan_for_schedule(
    schedule: Schedule, *, shard_bytes: int | None = None
) -> list[list[CollectiveOp]]:
    """Per-rank abstract comm programs induced by *schedule*.

    Every rank's program is derived independently from its own replica of
    the layout bookkeeping — exactly how the multiprocess executor works —
    so a scheduler bug that makes replicas diverge shows up as program
    disagreement, which :func:`check_collectives` flags.
    """
    n, l = schedule.num_qubits, schedule.local_qubits
    g = n - l
    num_ranks = 1 << g
    if shard_bytes is None:
        shard_bytes = (1 << l) * 16  # complex128 amplitudes
    programs: list[list[CollectiveOp]] = [[] for _ in range(num_ranks)]
    initial_global = sorted(schedule.initial_global_qubits)
    layout = _Layout(n, l, initial_global)
    for op_index, op in enumerate(schedule.operations()):
        if isinstance(op, SwapOp):
            q = layout.apply_swap(set(op.new_global_qubits))
            if q == 0:
                continue
            group_size = 1 << q
            moved = shard_bytes * (group_size - 1) // group_size
            for rank in range(num_ranks):
                base = (rank // group_size) * group_size
                group = tuple(range(base, base + group_size))
                programs[rank].append(
                    CollectiveOp(
                        kind="alltoall",
                        group=group,
                        bytes_sent=moved,
                        op_index=op_index,
                    )
                )
        elif isinstance(op, GateOp):
            gate = op.gate
            bits = [layout.bit_of_qubit[q] for q in gate.qubits]
            if (
                not gate.is_diagonal
                and gate.is_monomial
                and any(b >= l for b in bits)
            ):
                # Rank renumbering: free on the wire, but every rank must
                # agree it happens (it relabels who owns which shard).
                group = tuple(range(num_ranks))
                for rank in range(num_ranks):
                    programs[rank].append(
                        CollectiveOp(
                            kind="renumber",
                            group=group,
                            bytes_sent=0,
                            op_index=op_index,
                        )
                    )
    return programs


def predict_comm_stats(
    schedule: Schedule, *, shard_bytes: int | None = None
) -> dict:
    """The comm counters a clean run of *schedule* must produce.

    Matches :class:`~repro.distributed.comm.CommStats` arithmetic
    exactly: one all-to-all step per effective swap, ``2**(g-q)`` group
    calls each, and ``shard_bytes * (2**q - 1) / 2**q`` bytes shipped per
    rank.
    """
    n, l = schedule.num_qubits, schedule.local_qubits
    g = n - l
    if shard_bytes is None:
        shard_bytes = (1 << l) * 16
    steps = 0
    calls = 0
    total_bytes = 0
    layout = _Layout(n, l, sorted(schedule.initial_global_qubits))
    for op in schedule.operations():
        if not isinstance(op, SwapOp):
            continue
        q = layout.apply_swap(set(op.new_global_qubits))
        if q == 0:
            continue
        group_size = 1 << q
        num_groups = 1 << (g - q)
        moved_per_rank = shard_bytes * (group_size - 1) // group_size
        steps += 1
        calls += num_groups
        total_bytes += moved_per_rank * group_size * num_groups
    return {
        "alltoall_steps": steps,
        "group_alltoall_calls": calls,
        "bytes_on_network": total_bytes,
    }


# ----------------------------------------------------------------------
# Verifiers
# ----------------------------------------------------------------------
def check_collectives(
    programs: list[list], *, max_findings: int = 20
) -> CheckReport:
    """Lockstep-match per-rank comm programs; flag every disagreement.

    Processes collectives in rank-program order: repeatedly take the
    lowest-ranked unfinished rank's next op and require every member of
    its group to post a matching op (same kind, same group, same byte
    count) as *their* next op.  Any deviation is a
    ``collective-mismatch`` error pinned to the offending rank.
    """
    report = CheckReport(checks_run=["collectives"])
    heads = [0] * len(programs)

    def finished(rank: int) -> bool:
        return heads[rank] >= len(programs[rank])

    while len(report.findings) < max_findings:
        leader = next(
            (r for r in range(len(programs)) if not finished(r)), None
        )
        if leader is None:
            break
        op = programs[leader][heads[leader]]
        if not isinstance(op, CollectiveOp):
            report.add(
                _E, "collective-mismatch",
                f"non-collective op {type(op).__name__} in a collective-"
                "only program",
                rank=leader, op_index=op.op_index,
            )
            heads[leader] += 1
            continue
        ok = True
        for member in op.group:
            if member >= len(programs) or member < 0:
                report.add(
                    _E, "collective-mismatch",
                    f"collective group references rank {member} outside "
                    f"the job (0..{len(programs) - 1})",
                    rank=leader, op_index=op.op_index,
                )
                ok = False
                continue
            if finished(member):
                report.add(
                    _E, "collective-mismatch",
                    f"rank {member} posts no collective for "
                    f"{op.kind} over group {op.group} (program exhausted)",
                    rank=member, op_index=op.op_index,
                    hint="the rank would never enter the collective: "
                    "peers hang waiting for it",
                )
                ok = False
                continue
            peer = programs[member][heads[member]]
            if not isinstance(peer, CollectiveOp) or peer.kind != op.kind:
                report.add(
                    _E, "collective-mismatch",
                    f"rank {member} posts "
                    f"{getattr(peer, 'kind', type(peer).__name__)!r} while "
                    f"rank {leader} posts {op.kind!r}",
                    rank=member, op_index=op.op_index,
                )
                ok = False
            elif peer.group != op.group:
                report.add(
                    _E, "collective-mismatch",
                    f"rank {member} disagrees on group membership: "
                    f"{peer.group} vs {op.group}",
                    rank=member, op_index=op.op_index,
                    hint="mismatched groups interleave two collectives; "
                    "on real MPI this corrupts buffers or deadlocks",
                )
                ok = False
            elif peer.bytes_sent != op.bytes_sent:
                report.add(
                    _E, "collective-mismatch",
                    f"rank {member} ships {peer.bytes_sent} bytes while "
                    f"rank {leader} ships {op.bytes_sent}",
                    rank=member, op_index=op.op_index,
                    hint="unequal element counts truncate or overrun "
                    "receive buffers",
                )
                ok = False
        # Advance every member that posted a matching head so one bad
        # rank does not cascade into phantom findings downstream.
        for member in set(op.group) | {leader}:
            if 0 <= member < len(programs) and not finished(member):
                peer = programs[member][heads[member]]
                if (
                    isinstance(peer, CollectiveOp)
                    and peer.kind == op.kind
                    and peer.group == op.group
                    and peer.bytes_sent == op.bytes_sent
                ):
                    heads[member] += 1
        if not ok and all(
            finished(r) or r in op.group for r in range(len(programs))
        ):
            break  # nothing left to make progress on
    return report


def check_comm_stats(
    schedule: Schedule,
    stats,
    *,
    shard_bytes: int | None = None,
) -> CheckReport:
    """Compare measured/modelled :class:`CommStats` against the plan.

    Byte conservation: every byte the plan says must cross the network
    does so exactly once — a retried exchange double-counts, a skipped
    one under-counts, and both are bugs this check pins.
    """
    report = CheckReport(checks_run=["comm-stats"])
    predicted = predict_comm_stats(schedule, shard_bytes=shard_bytes)
    for key in ("alltoall_steps", "group_alltoall_calls", "bytes_on_network"):
        actual = getattr(stats, key)
        if actual != predicted[key]:
            report.add(
                _E, "byte-conservation",
                f"{key}: plan predicts {predicted[key]}, "
                f"stats report {actual}",
                hint="bytes/steps must match the schedule-induced plan "
                "exactly; retries must not double-count and swaps must "
                "not be skipped",
            )
    return report


def check_deadlock(programs: list[list]) -> CheckReport:
    """Simulate blocking semantics; report cycles and stranded ranks.

    Supports :class:`SendOp`/:class:`RecvOp` (rendezvous),
    :class:`BarrierOp` and :class:`CollectiveOp` (all members must
    arrive).  Progress loop: match everything matchable until quiescence;
    anything still pending is a deadlock, reported as a wait-for cycle
    when one exists, otherwise as a stranded-rank diagnosis.
    """
    report = CheckReport(checks_run=["deadlock"])
    num_ranks = len(programs)
    heads = [0] * num_ranks

    def head(rank: int):
        if heads[rank] < len(programs[rank]):
            return programs[rank][heads[rank]]
        return None

    progress = True
    while progress:
        progress = False
        # Collectives/barriers: fire when every member is parked on a
        # matching op.
        for rank in range(num_ranks):
            op = head(rank)
            if not isinstance(op, (CollectiveOp, BarrierOp)):
                continue
            group = op.group
            if any(not 0 <= m < num_ranks for m in group):
                continue  # unmatchable; left pending for diagnosis
            peers = [head(m) for m in group]
            if all(
                isinstance(p, type(op)) and p.group == group for p in peers
            ):
                for m in group:
                    heads[m] += 1
                progress = True
                break
        if progress:
            continue
        # Rendezvous send/recv pairs.
        for rank in range(num_ranks):
            op = head(rank)
            if isinstance(op, SendOp) and 0 <= op.dst < num_ranks:
                peer = head(op.dst)
                if isinstance(peer, RecvOp) and peer.src == rank:
                    heads[rank] += 1
                    heads[op.dst] += 1
                    progress = True
                    break

    pending = [r for r in range(num_ranks) if head(r) is not None]
    if not pending:
        return report

    # Wait-for graph: rank -> ranks it is blocked on.
    waits: dict[int, list[int]] = {}
    for rank in pending:
        op = head(rank)
        if isinstance(op, SendOp):
            waits[rank] = [op.dst] if 0 <= op.dst < num_ranks else []
        elif isinstance(op, RecvOp):
            waits[rank] = [op.src] if 0 <= op.src < num_ranks else []
        elif isinstance(op, (CollectiveOp, BarrierOp)):
            waits[rank] = [
                m
                for m in op.group
                if 0 <= m < num_ranks
                and (head(m) is None or not _same_collective(head(m), op))
            ]
        else:
            waits[rank] = []

    cycle = _find_cycle(waits)
    if cycle:
        chain = " -> ".join(str(r) for r in cycle + [cycle[0]])
        report.add(
            _E, "deadlock",
            f"wait-for cycle among ranks: {chain}",
            rank=cycle[0],
            op_index=getattr(head(cycle[0]), "op_index", None),
            hint="each rank in the cycle blocks on the next; reorder the "
            "sends/recvs or use nonblocking ops",
        )
    for rank in pending:
        op = head(rank)
        blockers = waits.get(rank, [])
        terminated = [b for b in blockers if head(b) is None]
        if terminated:
            report.add(
                _E, "deadlock",
                f"rank {rank} blocks on terminated rank(s) {terminated} "
                f"in {type(op).__name__}",
                rank=rank, op_index=getattr(op, "op_index", None),
                hint="a peer finished its program without posting the "
                "matching operation",
            )
        elif not blockers and not cycle:
            report.add(
                _E, "deadlock",
                f"rank {rank} blocks forever in {type(op).__name__} "
                "with no matching peer",
                rank=rank, op_index=getattr(op, "op_index", None),
            )
    if not report.findings:
        # Pending ranks but neither a cycle nor a stranded diagnosis:
        # still a hang (e.g. mutual collectives with different groups).
        report.add(
            _E, "deadlock",
            f"ranks {pending} cannot make progress",
            rank=pending[0],
            op_index=getattr(head(pending[0]), "op_index", None),
        )
    return report


def _same_collective(a, b) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, CollectiveOp):
        return a.kind == b.kind and a.group == b.group
    return a.group == b.group


def _find_cycle(waits: dict[int, list[int]]) -> list[int] | None:
    """First cycle in the wait-for graph (iterative DFS), or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {r: WHITE for r in waits}
    parent: dict[int, int] = {}
    for root in waits:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(waits.get(root, ())))]
        color[root] = GREY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in color:
                    continue
                if color[nxt] == WHITE:
                    color[nxt] = GREY
                    parent[nxt] = node
                    stack.append((nxt, iter(waits.get(nxt, ()))))
                    advanced = True
                    break
                if color[nxt] == GREY:
                    cycle = [node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
        # continue to next root
    return None
