"""Diagnostics model of the static checker.

Every verifier in :mod:`repro.staticcheck` reports through the same
vocabulary: a :class:`Finding` pins one violated invariant to a location
(stage / op index / rank) with a severity, a stable category slug and a
fix hint; a :class:`CheckReport` collects findings, ranks them and
formats them for humans.  ``repro check`` prints reports; ``simulate
--strict`` refuses to run a schedule whose report has errors.

Categories are closed vocabulary (see :data:`CATEGORIES`) so tests can
assert that a given corruption is caught *as the right kind of bug*, not
merely caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CATEGORIES",
    "CheckReport",
    "Finding",
    "Severity",
    "StaticCheckError",
]


class Severity:
    """Severity levels, most severe first (used as sort keys)."""

    ERROR = "error"  # the schedule/plan will compute wrong answers or hang
    WARNING = "warning"  # legal but wasteful or suspicious
    INFO = "info"  # observations (counters, predictions)

    ORDER = {ERROR: 0, WARNING: 1, INFO: 2}


#: The closed category vocabulary.  Mutation tests assert categories, so
#: renaming one is an API break.
CATEGORIES = (
    "structure",  # stage/global-set shape violations
    "cluster-width",  # cluster exceeds kmax
    "cluster-locality",  # cluster touches a stage-global qubit
    "swap",  # malformed / impossible / redundant swap point
    "specialization",  # specialized gate not diagonal/monomial-separable
    "coverage",  # circuit gates dropped or duplicated
    "gate-order",  # per-qubit gate order violated
    "mapping",  # qubit->bit mapping not a bijection
    "unitarity",  # fused cluster matrix not unitary
    "collective-mismatch",  # ranks disagree on a collective's shape
    "byte-conservation",  # plan bytes disagree with CommStats prediction
    "deadlock",  # wait-for cycle / stranded rank
    "nan",  # NaN/Inf amplitudes (sanitizer)
    "norm",  # norm drift beyond tolerance (sanitizer)
    "checksum",  # shard checksum divergence (sanitizer)
)


@dataclass(frozen=True)
class Finding:
    """One violated invariant, pinned to where it was observed."""

    severity: str
    category: str
    message: str
    hint: str | None = None
    stage: int | None = None
    op_index: int | None = None
    rank: int | None = None

    def __post_init__(self) -> None:
        if self.severity not in Severity.ORDER:
            raise ValueError(f"unknown severity {self.severity!r}")
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown category {self.category!r}")

    def location(self) -> str:
        """Compact location string, e.g. ``stage 2 / op 17 / rank 3``."""
        parts = []
        if self.stage is not None:
            parts.append(f"stage {self.stage}")
        if self.op_index is not None:
            parts.append(f"op {self.op_index}")
        if self.rank is not None:
            parts.append(f"rank {self.rank}")
        return " / ".join(parts) if parts else "program"

    def format(self) -> str:
        """One- or two-line human-readable rendering."""
        line = (
            f"[{self.severity.upper():>7}] {self.category}: "
            f"{self.message} ({self.location()})"
        )
        if self.hint:
            line += f"\n          hint: {self.hint}"
        return line


class StaticCheckError(RuntimeError):
    """Raised by strict mode when a report contains errors."""

    def __init__(self, report: "CheckReport") -> None:
        errors = report.errors
        super().__init__(
            f"{len(errors)} static-check error(s); first: "
            f"{errors[0].format() if errors else '<none>'}"
        )
        self.report = report


@dataclass
class CheckReport:
    """A collection of findings from one or more verifier passes."""

    findings: list[Finding] = field(default_factory=list)
    checks_run: list[str] = field(default_factory=list)

    def add(
        self,
        severity: str,
        category: str,
        message: str,
        *,
        hint: str | None = None,
        stage: int | None = None,
        op_index: int | None = None,
        rank: int | None = None,
    ) -> Finding:
        """Append one finding and return it."""
        finding = Finding(
            severity=severity,
            category=category,
            message=message,
            hint=hint,
            stage=stage,
            op_index=op_index,
            rank=rank,
        )
        self.findings.append(finding)
        return finding

    def extend(self, other: "CheckReport") -> "CheckReport":
        """Fold another report's findings and check names into this one."""
        self.findings.extend(other.findings)
        self.checks_run.extend(other.checks_run)
        return self

    # ------------------------------------------------------------------
    @property
    def errors(self) -> list[Finding]:
        """Findings with severity ``error``."""
        return [f for f in self.findings if f.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        """Findings with severity ``warning``."""
        return [f for f in self.findings if f.severity == Severity.WARNING]

    @property
    def passed(self) -> bool:
        """True when no finding is an error."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True when there are no findings at all (info included)."""
        return not self.findings

    def categories(self) -> set[str]:
        """The distinct categories present in the findings."""
        return {f.category for f in self.findings}

    def sorted_findings(self) -> list[Finding]:
        """Findings ranked most-severe first (stable within severity)."""
        return sorted(
            self.findings, key=lambda f: Severity.ORDER[f.severity]
        )

    def raise_if_failed(self) -> None:
        """Raise :class:`StaticCheckError` when the report has errors."""
        if not self.passed:
            raise StaticCheckError(self)

    def format(self) -> str:
        """Multi-line rendering: header, ranked findings, verdict."""
        lines = [
            f"static check: {len(self.checks_run)} pass(es) "
            f"({', '.join(self.checks_run) or 'none'})"
        ]
        for finding in self.sorted_findings():
            lines.append(finding.format())
        n_err, n_warn = len(self.errors), len(self.warnings)
        if self.clean:
            lines.append("verdict: CLEAN (no findings)")
        elif self.passed:
            lines.append(f"verdict: PASS with {n_warn} warning(s)")
        else:
            lines.append(
                f"verdict: FAIL — {n_err} error(s), {n_warn} warning(s)"
            )
        return "\n".join(lines)
