"""The lint framework core: findings, rules, registry, engine.

Everything the ``repro lint`` CLI, the :mod:`tools.repro_lint` shim and
the rule modules share lives here:

* :class:`LintFinding` — one finding, pinned to ``path:line`` with a
  rule name, a severity (:data:`SEVERITIES`: error / warning /
  advisory), a message and an optional fix hint.  The ``check``
  property aliases ``rule`` for compatibility with the pre-framework
  ``tools/repro_lint.py`` API.
* :class:`ModuleContext` — one parsed file handed to rules: source,
  split lines, AST, normalized path and a best-effort dotted module
  name (used by the lock-order rule to build stable lock identities).
* :class:`LintRule` — the rule protocol.  Per-module rules implement
  :meth:`~LintRule.check_module`; whole-program rules (``program_wide =
  True``) implement :meth:`~LintRule.check_program` over every parsed
  module at once (the lock-order rule needs the cross-module
  acquisition graph).
* :func:`register` / :func:`default_rules` — the registry.  Rule
  modules self-register at import; :func:`default_rules` imports
  :mod:`repro.staticcheck.lint.rules` lazily so the registry is always
  populated.
* :func:`run_lint` — the engine: parse, run rules, apply per-line
  (``# lint: allow-<rule>``) and per-file (``# lint: skip-file`` /
  ``# lint: skip-file=<rule>,...``) suppressions, fingerprint every
  finding and mark the ones grandfathered by a
  :class:`~repro.staticcheck.lint.baseline.Baseline`.

Fingerprints hash the rule name, the normalized path and the *stripped
source line text* (plus an occurrence index for duplicates), so a
baseline survives unrelated edits that shift line numbers.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field, replace
from pathlib import Path

__all__ = [
    "SEVERITIES",
    "LintFinding",
    "LintReport",
    "LintRule",
    "ModuleContext",
    "default_rules",
    "lint_file",
    "lint_paths",
    "parse_module",
    "register",
    "registered_rules",
    "run_lint",
]

#: Severity vocabulary, most severe first.  ``error`` findings gate CI
#: (non-zero exit unless baselined); ``warning`` gates only under
#: ``--strict``; ``advisory`` never gates.
SEVERITIES = ("error", "warning", "advisory")


@dataclass(frozen=True)
class LintFinding:
    """One lint hit, pinned to where it was observed."""

    path: str
    line: int
    rule: str
    severity: str
    message: str
    hint: str | None = None
    #: Stable identity for baseline matching (set by the engine).
    fingerprint: str = ""
    #: True when a loaded baseline grandfathers this finding.
    baselined: bool = False

    @property
    def check(self) -> str:
        """Legacy alias for :attr:`rule` (pre-framework shim API)."""
        return self.rule

    def format(self) -> str:
        """One-line human-readable rendering (legacy-compatible)."""
        line = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.baselined:
            line += "  (baselined)"
        return line

    def to_dict(self) -> dict:
        """JSON-ready representation (the ``--format json`` payload)."""
        out = {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "baselined": self.baselined,
        }
        if self.hint:
            out["hint"] = self.hint
        return out


@dataclass
class ModuleContext:
    """One parsed source file as the rules see it."""

    path: str
    norm_path: str
    module_name: str
    source: str
    lines: list[str]
    tree: ast.Module

    def source_line(self, line: int) -> str:
        """The 1-indexed source line text ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


def _module_name_for(norm_path: str) -> str:
    """Best-effort dotted module name for *norm_path*.

    Paths under a ``src/`` directory resolve to their real import path
    (``src/repro/plan/program.py`` -> ``repro.plan.program``); anything
    else falls back to the file stem so synthetic test files still get
    stable, readable names.
    """
    stem = norm_path[:-3] if norm_path.endswith(".py") else norm_path
    parts = [p for p in stem.split("/") if p not in ("", ".")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or stem


class LintRule:
    """Base class of every lint rule.

    Subclasses set :attr:`name` (the stable slug used in suppressions,
    baselines and output), :attr:`severity` (default for the rule's
    findings) and :attr:`description`, then implement
    :meth:`check_module` — or set ``program_wide = True`` and implement
    :meth:`check_program`.  Rules *yield findings*; suppression,
    fingerprinting and baseline matching are the engine's job.
    """

    name: str = ""
    severity: str = "warning"
    description: str = ""
    program_wide: bool = False

    def check_module(self, module: ModuleContext):
        """Yield findings for one module (per-module rules)."""
        return ()

    def check_program(self, modules: list[ModuleContext]):
        """Yield findings over every module at once (program rules)."""
        return ()

    # ------------------------------------------------------------------
    def finding(
        self,
        module: ModuleContext | str,
        line: int,
        message: str,
        *,
        severity: str | None = None,
        hint: str | None = None,
    ) -> LintFinding:
        """Build a finding attributed to this rule."""
        path = module if isinstance(module, str) else module.path
        return LintFinding(
            path=path,
            line=line,
            rule=self.name,
            severity=severity or self.severity,
            message=message,
            hint=hint,
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[LintRule]] = {}


def register(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator: add a rule to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no rule name")
    if cls.severity not in SEVERITIES:
        raise ValueError(
            f"{cls.__name__} severity {cls.severity!r} not in {SEVERITIES}"
        )
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"rule name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_rules_loaded() -> None:
    from repro.staticcheck.lint import rules  # noqa: F401  (self-registers)


def registered_rules() -> dict[str, type[LintRule]]:
    """Name -> rule class for every registered rule."""
    _ensure_rules_loaded()
    return dict(_REGISTRY)


def default_rules(names: list[str] | None = None) -> list[LintRule]:
    """Instances of every registered rule (or the named subset)."""
    registry = registered_rules()
    if names is None:
        return [registry[name]() for name in sorted(registry)]
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise ValueError(
            f"unknown rule(s) {unknown}; available: {sorted(registry)}"
        )
    return [registry[name]() for name in sorted(set(names))]


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
def parse_module(
    path: Path | str, source: str | None = None
) -> ModuleContext | LintFinding:
    """Parse one file into a :class:`ModuleContext`.

    Returns a ``syntax`` error finding instead when the file does not
    parse — unparseable code is itself a finding, not a crash.
    """
    path_str = str(path)
    if source is None:
        source = Path(path).read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=path_str)
    except SyntaxError as exc:
        return LintFinding(
            path=path_str,
            line=exc.lineno or 0,
            rule="syntax",
            severity="error",
            message=f"cannot parse: {exc}",
        )
    norm = path_str.replace("\\", "/")
    return ModuleContext(
        path=path_str,
        norm_path=norm,
        module_name=_module_name_for(norm),
        source=source,
        lines=source.splitlines(),
        tree=tree,
    )


def _collect_files(paths) -> list[Path]:
    files: list[Path] = []
    for root in paths:
        root = Path(root)
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.py")))
    return files


def _file_suppressions(module: ModuleContext) -> set[str] | None:
    """Rules suppressed for the whole file.

    ``# lint: skip-file`` suppresses every rule; ``# lint:
    skip-file=<rule>[,<rule>...]`` suppresses the named ones.  Returns
    ``None`` for "all rules".
    """
    suppressed: set[str] = set()
    for line in module.lines:
        if "lint: skip-file" not in line:
            continue
        marker = line.split("lint: skip-file", 1)[1]
        if marker.startswith("="):
            names = marker[1:].split("--", 1)[0]
            suppressed.update(
                n.strip() for n in names.split(",") if n.strip()
            )
        else:
            return None  # bare skip-file: everything
    return suppressed


def _line_suppressed(module: ModuleContext, finding: LintFinding) -> bool:
    return f"lint: allow-{finding.rule}" in module.source_line(finding.line)


def _apply_suppressions(
    module: ModuleContext, findings: list[LintFinding]
) -> list[LintFinding]:
    file_rules = _file_suppressions(module)
    if file_rules is None:
        return []
    return [
        f
        for f in findings
        if f.rule not in file_rules and not _line_suppressed(module, f)
    ]


def _fingerprint(finding: LintFinding, source_line: str, occurrence: int) -> str:
    norm = finding.path.replace("\\", "/")
    blob = f"{finding.rule}|{norm}|{source_line.strip()}|{occurrence}"
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list[LintFinding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def active(self) -> list[LintFinding]:
        """Findings not grandfathered by the baseline."""
        return [f for f in self.findings if not f.baselined]

    @property
    def baselined(self) -> list[LintFinding]:
        """Findings matched (and silenced) by the baseline."""
        return [f for f in self.findings if f.baselined]

    @property
    def errors(self) -> list[LintFinding]:
        """Active error-severity findings (the CI gate)."""
        return [f for f in self.active if f.severity == "error"]

    @property
    def warnings(self) -> list[LintFinding]:
        """Active warning-severity findings (gate under ``--strict``)."""
        return [f for f in self.active if f.severity == "warning"]

    def counts(self) -> dict:
        """Summary counters (shared by every output format)."""
        by_severity = {s: 0 for s in SEVERITIES}
        for f in self.active:
            by_severity[f.severity] += 1
        return {
            "files": self.files_checked,
            "rules": len(self.rules_run),
            "findings": len(self.active),
            "baselined": len(self.baselined),
            **by_severity,
        }

    def exit_code(self, *, strict: bool = False) -> int:
        """1 when active errors exist (or warnings, under *strict*)."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0


def run_lint(
    paths,
    *,
    rules: list[LintRule] | None = None,
    baseline=None,
) -> LintReport:
    """Lint every ``*.py`` under *paths* and return a :class:`LintReport`.

    *rules* defaults to every registered rule; *baseline* (a
    :class:`~repro.staticcheck.lint.baseline.Baseline`) marks matching
    findings ``baselined`` instead of dropping them, so every output
    format can still show what is being grandfathered.
    """
    rules = default_rules() if rules is None else rules
    module_rules = [r for r in rules if not r.program_wide]
    program_rules = [r for r in rules if r.program_wide]

    contexts: list[ModuleContext] = []
    findings: list[LintFinding] = []
    files = _collect_files(paths)
    for file in files:
        parsed = parse_module(file)
        if isinstance(parsed, LintFinding):
            findings.append(parsed)
            continue
        contexts.append(parsed)
        module_findings: list[LintFinding] = []
        for rule in module_rules:
            module_findings.extend(rule.check_module(parsed))
        findings.extend(_apply_suppressions(parsed, module_findings))

    by_path = {ctx.path: ctx for ctx in contexts}
    for rule in program_rules:
        for finding in rule.check_program(contexts):
            ctx = by_path.get(finding.path)
            if ctx is None or _apply_suppressions(ctx, [finding]):
                findings.append(finding)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    # Fingerprint (occurrence-indexed so duplicates stay distinct) and
    # match against the baseline.
    seen: dict[str, int] = {}
    final: list[LintFinding] = []
    for finding in findings:
        ctx = by_path.get(finding.path)
        line_text = ctx.source_line(finding.line) if ctx else ""
        key = f"{finding.rule}|{finding.path}|{line_text.strip()}"
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        fp = _fingerprint(finding, line_text, occurrence)
        final.append(
            replace(
                finding,
                fingerprint=fp,
                baselined=baseline is not None and baseline.contains(fp),
            )
        )
    return LintReport(
        findings=final,
        files_checked=len(files),
        rules_run=sorted(r.name for r in rules),
    )


def lint_file(path, *, rules: list[LintRule] | None = None) -> list[LintFinding]:
    """Lint one file; returns suppression-filtered findings.

    The legacy entry point :mod:`tools.repro_lint` re-exports (no
    baseline handling — the shim predates baselines).
    """
    return run_lint([Path(path)], rules=rules).findings


def lint_paths(paths, *, rules: list[LintRule] | None = None) -> list[LintFinding]:
    """Lint every ``*.py`` under the given files/directories."""
    return run_lint([Path(p) for p in paths], rules=rules).findings
