"""Renderers for lint reports: text, JSON and SARIF 2.1.0.

Each renderer takes a :class:`~repro.staticcheck.lint.core.LintReport`
and returns a string; the CLI picks one via ``--format``.  SARIF output
follows the 2.1.0 schema closely enough for code-scanning UIs: one run,
one ``tool.driver`` with a rule table, one result per active finding
(baselined findings are emitted with ``"baselineState": "unchanged"``).
"""

from __future__ import annotations

import json

from repro.staticcheck.lint.core import LintReport, registered_rules

__all__ = ["render_json", "render_sarif", "render_text"]

_SARIF_LEVEL = {"error": "error", "warning": "warning", "advisory": "note"}


def render_text(report: LintReport, *, show_baselined: bool = False) -> str:
    """Human-readable ``path:line: [rule] message`` lines + summary."""
    lines = [f.format() for f in report.active]
    if show_baselined:
        lines.extend(f.format() for f in report.baselined)
    counts = report.counts()
    lines.append(
        "repro lint: {findings} finding(s) "
        "({error} error, {warning} warning, {advisory} advisory), "
        "{baselined} baselined, {files} file(s), {rules} rule(s)".format(
            **counts
        )
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable payload (schema ``repro.lint/1``)."""
    payload = {
        "schema": "repro.lint/1",
        "summary": report.counts(),
        "rules": report.rules_run,
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(payload, indent=2)


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 log with one run and the full rule table."""
    registry = registered_rules()
    rule_ids = sorted(
        set(report.rules_run) | {f.rule for f in report.findings}
    )
    rules = []
    for rule_id in rule_ids:
        cls = registry.get(rule_id)
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {
                    "text": cls.description if cls else rule_id
                },
                "defaultConfiguration": {
                    "level": _SARIF_LEVEL.get(
                        cls.severity if cls else "error", "error"
                    )
                },
            }
        )
    index_of = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = []
    for f in report.findings:
        result = {
            "ruleId": f.rule,
            "ruleIndex": index_of[f.rule],
            "level": _SARIF_LEVEL.get(f.severity, "error"),
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/")
                        },
                        "region": {"startLine": max(f.line, 1)},
                    }
                }
            ],
            "partialFingerprints": {"reproLint/v1": f.fingerprint},
        }
        if f.baselined:
            result["baselineState"] = "unchanged"
        results.append(result)
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/repro/repro"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
