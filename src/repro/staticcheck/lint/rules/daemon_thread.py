"""daemon-thread-leak: threads and executors created but never reaped.

A ``Thread``/``Timer``/``Process``/``ThreadPoolExecutor``/
``ProcessPoolExecutor`` that is started and never joined (or shut down)
either leaks worker threads or — for non-daemon threads — blocks
interpreter exit; in the service layer it also hides work past the
point a test believes the system is quiescent.

A creation is fine when any of these hold:

* it is the context of a ``with`` block (``with ThreadPoolExecutor(...)``),
* it is assigned to a name or attribute for which the module contains a
  matching ``.join(...)`` / ``.shutdown(...)`` / ``.cancel(...)`` call
  (receiver names are compared with leading underscores stripped, so
  ``self._executor`` created in ``__init__`` and a local ``executor``
  shut down in ``shutdown()`` still match),
* it is registered for cleanup via ``atexit.register`` or
  ``weakref.finalize``,
* it is handed to the process-wide executor registry
  (:func:`repro.util.executors.register_executor`), whose atexit hook
  shuts down anything still alive — either by name
  (``register_executor(self._pool)`` marks ``pool`` cleaned) or inline
  (``register_executor(ThreadPoolExecutor(...))``),
* it is created inside a comprehension — per-element tracking is out of
  static reach, so the check relaxes to "does the module join/shutdown
  *anything*".

Everything else — unassigned ``Thread(...).start()`` chains, fire-and-
forget executors — is flagged.  Deliberate daemons suppress with
``# lint: allow-daemon-thread-leak`` plus a reason.
"""

from __future__ import annotations

import ast

from repro.staticcheck.lint.core import LintRule, ModuleContext, register

_FACTORIES = {
    "Thread",
    "Timer",
    "Process",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
}
_CLEANUP_ATTRS = {"join", "shutdown", "cancel"}
#: Functions that take ownership of an executor's shutdown (the
#: repro.util.executors registry backs them with an atexit sweep).
_REGISTRY_FUNCS = {"register_executor"}


def _factory_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name) and func.id in _FACTORIES:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in _FACTORIES:
        return func.attr
    return None


def _receiver_key(node: ast.expr) -> str | None:
    """Canonical name of an assignment target / method receiver.

    ``self._executor`` and a bare ``executor`` both canonicalise to
    ``executor``: creation and cleanup commonly live in different
    methods with different spellings of the same object.
    """
    if isinstance(node, ast.Attribute):
        return node.attr.lstrip("_")
    if isinstance(node, ast.Name):
        return node.id.lstrip("_")
    return None


class _Collector(ast.NodeVisitor):
    def __init__(self) -> None:
        #: (line, factory, assigned key or None, inside comprehension)
        self.creations: list[tuple[int, str, str | None, bool]] = []
        self.cleaned: set[str] = set()
        self.any_cleanup = False
        self.registered_finalizers = False
        self._with_context: set[int] = set()
        self._registered_calls: set[int] = set()
        self._assign_value: list[tuple[ast.expr, str | None]] = []
        self._in_comprehension = 0

    # -- context marking ------------------------------------------------
    def visit_With(self, node) -> None:
        for item in node.items:
            for sub in ast.walk(item.context_expr):
                if isinstance(sub, ast.Call):
                    self._with_context.add(id(sub))
        self.generic_visit(node)

    visit_AsyncWith = visit_With

    def _mark_assign(self, target: ast.expr, value: ast.expr) -> None:
        key = _receiver_key(target)
        for sub in ast.walk(value):
            if isinstance(sub, ast.Call) and _factory_name(sub):
                self._assign_value.append((sub, key))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._mark_assign(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._mark_assign(node.target, node.value)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        self._in_comprehension += 1
        self.generic_visit(node)
        self._in_comprehension -= 1

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    # -- the observations -----------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        # A cleanup method *reference* counts too: the idiomatic async
        # teardown is ``run_in_executor(None, executor.shutdown)``, and
        # ``atexit.register(pool.shutdown)`` defers the same call.
        if node.attr in _CLEANUP_ATTRS:
            self.any_cleanup = True
            key = _receiver_key(node.value)
            if key:
                self.cleaned.add(key)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        func_name = (
            func.id if isinstance(func, ast.Name)
            else getattr(func, "attr", None)
        )
        if func_name in _REGISTRY_FUNCS:
            # register_executor(x): the registry owns x's shutdown.
            for arg in node.args:
                key = _receiver_key(arg)
                if key:
                    self.cleaned.add(key)
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Call) and _factory_name(sub):
                        self._registered_calls.add(id(sub))
            self.any_cleanup = True
        factory = _factory_name(node)
        if (
            factory
            and id(node) not in self._with_context
            and id(node) not in self._registered_calls
        ):
            key = None
            for call, assigned in self._assign_value:
                if call is node:
                    key = assigned
                    break
            self.creations.append(
                (node.lineno, factory, key, self._in_comprehension > 0)
            )
        if isinstance(func, ast.Attribute):
            if func.attr in ("register", "finalize"):
                base = func.value
                if isinstance(base, ast.Name) and base.id in (
                    "atexit",
                    "weakref",
                ):
                    self.registered_finalizers = True
        self.generic_visit(node)


@register
class DaemonThreadRule(LintRule):
    name = "daemon-thread-leak"
    severity = "warning"
    description = (
        "thread/executor created without a matching join/shutdown or "
        "cleanup registration"
    )

    def check_module(self, module: ModuleContext):
        collector = _Collector()
        collector.visit(module.tree)
        if collector.registered_finalizers:
            return
        for line, factory, key, in_comp in collector.creations:
            if in_comp:
                # Comprehension-created workers: per-element tracking is
                # out of static reach, so settle for module-level
                # evidence that *something* is joined/shut down.
                if collector.any_cleanup:
                    continue
            elif key is not None and key in collector.cleaned:
                continue
            # Unassigned creations (Thread(...).start() chains) always
            # flag: there is nothing to join them *by*.
            yield self.finding(
                module,
                line,
                f"{factory} created but never joined/shut down in this "
                "module; leaked workers outlive the owner",
                hint="use a with block, call join()/shutdown(), or "
                "register atexit/weakref cleanup",
            )
