"""op-loop: a hand-rolled schedule executor.

A ``for ... in schedule.operations(...)`` loop whose body calls
``op.execute(...)`` is a private execution loop.  The repo once had six
of them; they are unified in :class:`repro.runtime.ExecutionEngine`,
which owns tracing, layering and cache warm-up.  The canonical loop
itself lives under ``repro/runtime`` (exempt); everything else must go
through the engine so the six-parallel-executors problem cannot
silently regrow.
"""

from __future__ import annotations

import ast

from repro.staticcheck.lint.core import LintRule, ModuleContext, register


def _calls_attr(node: ast.AST, attr: str) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == attr
        ):
            return True
    return False


@register
class OpLoopRule(LintRule):
    name = "op-loop"
    severity = "error"
    description = (
        "hand-rolled op.execute loop over schedule.operations(); use "
        "repro.runtime.ExecutionEngine"
    )

    def check_module(self, module: ModuleContext):
        if "repro/runtime" in module.norm_path:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.For):
                continue
            if _calls_attr(node.iter, "operations") and any(
                _calls_attr(stmt, "execute") for stmt in node.body
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    "hand-rolled schedule executor (op.execute loop over "
                    "schedule.operations()); run it through "
                    "repro.runtime.ExecutionEngine instead",
                    hint="use engine.run_schedule / ExecutionEngine",
                )
