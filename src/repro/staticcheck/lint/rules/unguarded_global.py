"""unguarded-global: shared module state mutated without its lock.

Active only in modules that *declare* a module-level lock (an
assignment of ``threading.Lock()``/``RLock()``/``TrackedLock(...)``, or
any module-level name ending in ``_lock``): such a module has announced
that its globals are shared across threads, so every in-function
mutation of a module-level mutable container (or ``global`` rebind)
should happen under a ``with <lock>:`` block.  Modules without a
declared lock are exempt — plenty of module state is single-threaded by
design, and flagging it all would be noise.

Flagged mutations: subscript assignment/deletion, ``AugAssign``,
mutator method calls (``append``/``add``/``update``/``pop``/...), and
rebinding through a ``global`` statement.  Module-level statements
(import-time initialization, which runs under the import lock) are
exempt.  Deliberate lock-free fast paths (e.g. double-checked reads)
suppress with ``# lint: allow-unguarded-global`` plus a reason.
"""

from __future__ import annotations

import ast

from repro.staticcheck.lint.core import LintRule, ModuleContext, register

_LOCK_CALLS = {"Lock", "RLock", "TrackedLock"}
_MUTATORS = {
    "append",
    "add",
    "update",
    "pop",
    "popitem",
    "clear",
    "setdefault",
    "extend",
    "remove",
    "discard",
    "insert",
    "move_to_end",
    "appendleft",
}
_CONTAINER_CALLS = {
    "list",
    "dict",
    "set",
    "OrderedDict",
    "defaultdict",
    "deque",
    "Counter",
}


def _is_lock_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        return name in _LOCK_CALLS
    return False


def _is_container_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        return name in _CONTAINER_CALLS
    return False


def _module_decls(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(lock names, mutable container names) assigned at module level."""
    locks: set[str] = set()
    containers: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if _is_lock_expr(value) or target.id.lower().endswith("_lock"):
                locks.add(target.id)
            elif _is_container_expr(value):
                containers.add(target.id)
    return locks, containers


def _with_holds_lock(node: ast.With, locks: set[str]) -> bool:
    for item in node.items:
        expr = item.context_expr
        # ``with lock:`` / ``with mod.lock:`` — not a call result.
        dotted: list[str] = []
        probe = expr
        while isinstance(probe, ast.Attribute):
            dotted.append(probe.attr)
            probe = probe.value
        if isinstance(probe, ast.Name):
            dotted.append(probe.id)
            terminal = dotted[0]
            if terminal in locks or "lock" in terminal.lower():
                return True
    return False


class _GuardVisitor(ast.NodeVisitor):
    def __init__(self, locks: set[str], containers: set[str]) -> None:
        self.locks = locks
        self.containers = containers
        self.depth = 0  # function nesting
        self.guard = 0  # with-lock nesting
        self.global_names: list[set[str]] = []
        self.hits: list[tuple[int, str]] = []

    # -- scope tracking -------------------------------------------------
    def _visit_def(self, node) -> None:
        self.depth += 1
        self.global_names.append(set())
        self.generic_visit(node)
        self.global_names.pop()
        self.depth -= 1

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_Global(self, node: ast.Global) -> None:
        if self.global_names:
            self.global_names[-1].update(node.names)

    def visit_With(self, node: ast.With) -> None:
        held = _with_holds_lock(node, self.locks)
        if held:
            self.guard += 1
        self.generic_visit(node)
        if held:
            self.guard -= 1

    visit_AsyncWith = visit_With

    # -- mutation checks ------------------------------------------------
    def _target_global(self, node: ast.expr) -> str | None:
        """The module-level container a mutation target refers to."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Name) and node.id in self.containers:
            return node.id
        return None

    def _flag(self, line: int, name: str, what: str) -> None:
        if self.depth and not self.guard:
            self.hits.append((line, f"{what} of module global {name!r}"))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                name = self._target_global(target)
                if name:
                    self._flag(node.lineno, name, "subscript assignment")
            elif (
                isinstance(target, ast.Name)
                and self.global_names
                and target.id in self.global_names[-1]
                and target.id in self.containers
            ):
                self._flag(node.lineno, target.id, "rebind")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        name = self._target_global(node.target)
        if name:
            self._flag(node.lineno, name, "augmented assignment")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                name = self._target_global(target)
                if name:
                    self._flag(node.lineno, name, "subscript deletion")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            name = self._target_global(func.value)
            if name:
                self._flag(node.lineno, name, f".{func.attr}()")
        self.generic_visit(node)


@register
class UnguardedGlobalRule(LintRule):
    name = "unguarded-global"
    severity = "warning"
    description = (
        "module-level mutable state mutated outside a with-lock block in "
        "a module that declares a lock"
    )

    def check_module(self, module: ModuleContext):
        locks, containers = _module_decls(module.tree)
        if not locks or not containers:
            return
        visitor = _GuardVisitor(locks, containers)
        visitor.visit(module.tree)
        for line, what in visitor.hits:
            yield self.finding(
                module,
                line,
                f"{what} outside a 'with <lock>:' block (module declares "
                f"{sorted(locks)[0]!r})",
                hint="wrap the mutation in the module's lock",
            )
