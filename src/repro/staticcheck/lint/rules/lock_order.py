"""lock-order: the whole-program lock-acquisition graph, checked for cycles.

Two threads that acquire the same locks in different orders can
deadlock; a *consistent global order* is the standard discipline, and a
cycle in the may-acquire-while-holding graph is exactly an order
violation.  This rule builds that graph statically:

1. **Lock identification** — a ``with`` item whose context expression
   is a plain name or ``self.<attr>`` whose terminal identifier
   contains ``lock`` (case-insensitive).  Locks get qualified names
   matching the runtime :class:`~repro.util.locktrack.TrackedLock`
   naming: ``{module}.{Class}.{attr}`` for ``self.<attr>`` inside a
   method, ``{module}.{name}`` for module-level names.  Only sync
   ``with`` counts — ``async with`` guards asyncio primitives, which
   suspend rather than block.
2. **Call resolution** — one level, by simple name, and only when the
   name resolves to exactly one function in the analyzed program and is
   not a common container-method name (``get``/``put``/``append``/...).
   Deliberately conservative: a missed resolution under-approximates
   the graph, a wrong one invents deadlocks.
3. **Transitive closure** — a fixpoint computes ``may_acquire`` per
   function; an edge ``A -> B`` means some thread may acquire ``B``
   (possibly through calls) while holding ``A``.  This matches the
   runtime tracker, which records an edge from *every* held lock, so
   :meth:`LockTracker.observed_edges` must be a subset of this graph on
   any run the analysis covers.

Cycles are reported as error findings at one participating acquisition
site.  :func:`build_lock_graph` exposes the graph for the runtime
cross-check test.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.staticcheck.lint.core import (
    LintRule,
    ModuleContext,
    parse_module,
    register,
)

__all__ = ["LockGraph", "LockOrderRule", "build_lock_graph"]

#: Simple names never resolved to program functions: they are ubiquitous
#: container/concurrency method names, and resolving them would invent
#: call edges (e.g. ``self._entries.get`` -> ``PlanCache.get``).
_COMMON_NAMES = {
    "acquire",
    "add",
    "append",
    "appendleft",
    "clear",
    "close",
    "copy",
    "discard",
    "extend",
    "format",
    "get",
    "inc",
    "insert",
    "items",
    "join",
    "keys",
    "move_to_end",
    "observe",
    "pop",
    "popitem",
    "put",
    "release",
    "remove",
    "reset",
    "result",
    "run",
    "setdefault",
    "split",
    "start",
    "stats",
    "submit",
    "update",
    "values",
}


def _lock_name(expr: ast.expr, module: str, cls: str | None) -> str | None:
    """The qualified lock name of a with-context expression, or None."""
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            if "lock" in expr.attr.lower():
                owner = f"{module}.{cls}" if cls else module
                return f"{owner}.{expr.attr}"
        return None
    if isinstance(expr, ast.Name) and "lock" in expr.id.lower():
        return f"{module}.{expr.id}"
    return None


@dataclass
class _FunctionInfo:
    qualname: str
    path: str
    #: Direct with-acquisitions: (lock, line, held stack at acquisition).
    acquires: list = field(default_factory=list)
    #: Calls: (simple callee name, held stack at call site, line).
    calls: list = field(default_factory=list)


class _FunctionVisitor(ast.NodeVisitor):
    """Collects acquisitions and calls within one function body."""

    def __init__(self, info: _FunctionInfo, module: str, cls: str | None):
        self.info = info
        self.module = module
        self.cls = cls
        self.held: list[str] = []

    def visit_With(self, node: ast.With) -> None:
        entered: list[str] = []
        for item in node.items:
            lock = _lock_name(item.context_expr, self.module, self.cls)
            if lock is not None:
                self.info.acquires.append(
                    (lock, node.lineno, tuple(self.held))
                )
                self.held.append(lock)
                entered.append(lock)
        self.generic_visit(node)
        for _ in entered:
            self.held.pop()

    # async with guards asyncio primitives (suspend, not block): skip.

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name:
            self.info.calls.append((name, tuple(self.held), node.lineno))
        self.generic_visit(node)

    # Nested defs run on their own call stack position; their bodies are
    # analyzed as separate functions by the module walk.
    def visit_FunctionDef(self, node) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node) -> None:
        pass


def _collect_functions(ctx: ModuleContext) -> list[_FunctionInfo]:
    """Every function/method in *ctx*, each with acquisitions and calls."""
    infos: list[_FunctionInfo] = []

    def handle(node, cls: str | None) -> None:
        owner = f"{ctx.module_name}.{cls}" if cls else ctx.module_name
        info = _FunctionInfo(qualname=f"{owner}.{node.name}", path=ctx.path)
        visitor = _FunctionVisitor(info, ctx.module_name, cls)
        for stmt in node.body:
            visitor.visit(stmt)
        infos.append(info)
        # Nested defs become their own entries (same class context).
        for stmt in ast.walk(node):
            if stmt is not node and isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                handle_nested(stmt, cls)

    seen: set[int] = set()

    def handle_nested(node, cls: str | None) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        owner = f"{ctx.module_name}.{cls}" if cls else ctx.module_name
        info = _FunctionInfo(qualname=f"{owner}.{node.name}", path=ctx.path)
        visitor = _FunctionVisitor(info, ctx.module_name, cls)
        for stmt in node.body:
            visitor.visit(stmt)
        infos.append(info)

    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            handle(stmt, None)
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    handle(sub, stmt.name)
    return infos


@dataclass
class LockGraph:
    """The static may-acquire-while-holding graph.

    ``edges`` maps ``(held, acquired)`` to one witnessing source site;
    the runtime tracker's :meth:`observed_edges` must be a subset of
    ``set(edges)`` on runs the analysis covered.
    """

    nodes: set[str] = field(default_factory=set)
    edges: dict = field(default_factory=dict)
    may_acquire: dict = field(default_factory=dict)

    def edge_set(self) -> frozenset:
        return frozenset(self.edges)

    def cycles(self) -> list[list[str]]:
        """Simple cycles in the edge graph (each reported once)."""
        adjacency: dict[str, set[str]] = {}
        for a, b in self.edges:
            adjacency.setdefault(a, set()).add(b)
        cycles: list[list[str]] = []
        seen_keys: set[frozenset] = set()

        def dfs(start: str, node: str, path: list[str]) -> None:
            for nxt in adjacency.get(node, ()):  # pragma: no branch
                if nxt == start:
                    key = frozenset(path)
                    if key not in seen_keys:
                        seen_keys.add(key)
                        cycles.append(path[:])
                elif nxt not in path and nxt > start:
                    # Only explore nodes ordered after start so each
                    # cycle is found from its smallest member exactly once.
                    dfs(start, nxt, path + [nxt])

        for start in sorted(adjacency):
            dfs(start, start, [start])
        return cycles


def _analyze(modules: list[ModuleContext]) -> LockGraph:
    functions: list[_FunctionInfo] = []
    for ctx in modules:
        functions.extend(_collect_functions(ctx))

    # Name-based one-level resolution, unique names only.
    by_name: dict[str, list[_FunctionInfo]] = {}
    for info in functions:
        simple = info.qualname.rsplit(".", 1)[-1]
        by_name.setdefault(simple, []).append(info)
    resolvable = {
        name: infos[0]
        for name, infos in by_name.items()
        if len(infos) == 1 and name not in _COMMON_NAMES
    }

    # Fixpoint: may_acquire[f] = direct acquires + callees' sets.
    may: dict[str, set[str]] = {
        info.qualname: {lock for lock, _, _ in info.acquires}
        for info in functions
    }
    changed = True
    while changed:
        changed = False
        for info in functions:
            acc = may[info.qualname]
            before = len(acc)
            for callee, _, _ in info.calls:
                target = resolvable.get(callee)
                if target is not None:
                    acc |= may[target.qualname]
            if len(acc) != before:
                changed = True

    graph = LockGraph(may_acquire={k: frozenset(v) for k, v in may.items()})
    for info in functions:
        for lock, line, held in info.acquires:
            graph.nodes.add(lock)
            for h in held:
                if h != lock:
                    graph.edges.setdefault((h, lock), (info.path, line))
        for callee, held, line in info.calls:
            if not held:
                continue
            target = resolvable.get(callee)
            if target is None:
                continue
            for lock in may[target.qualname]:
                graph.nodes.add(lock)
                for h in held:
                    if h != lock:
                        graph.edges.setdefault((h, lock), (info.path, line))
    return graph


def build_lock_graph(paths) -> LockGraph:
    """The static lock graph of every ``*.py`` under *paths*."""
    modules: list[ModuleContext] = []
    for root in paths:
        root = Path(root)
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for file in files:
            parsed = parse_module(file)
            if isinstance(parsed, ModuleContext):
                modules.append(parsed)
    return _analyze(modules)


@register
class LockOrderRule(LintRule):
    name = "lock-order"
    severity = "error"
    description = (
        "cyclic lock-acquisition order across the program (potential "
        "deadlock)"
    )
    program_wide = True

    def check_program(self, modules: list[ModuleContext]):
        graph = _analyze(modules)
        for cycle in graph.cycles():
            # Anchor the finding at the witnessing site of the cycle's
            # first edge.
            first = (cycle[0], cycle[1 % len(cycle)])
            path, line = graph.edges.get(first, (modules[0].path, 1))
            ordering = " -> ".join(cycle + [cycle[0]])
            yield self.finding(
                path,
                line,
                f"lock-order cycle: {ordering}; threads taking these "
                "locks in different orders can deadlock",
                hint="impose one global acquisition order",
            )
