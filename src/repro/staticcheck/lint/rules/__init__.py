"""The lint rule catalogue.

Importing this package registers every built-in rule with the framework
registry (each module applies :func:`repro.staticcheck.lint.register`
at import).  Five rules are ports of the pre-framework
``tools/repro_lint.py`` checks; four are concurrency rules aimed at
the service layer's async/thread mix; ``metric-name`` guards the
observability plane's naming convention.

==================== ======== =============================================
rule                 severity what it catches
==================== ======== =============================================
mutable-default      error    mutable literal as a parameter default
float-eq             warning  ``==``/``!=`` against a float
view-return          error    docstring promises a copy, returns a view
op-loop              error    hand-rolled op.execute loop over a schedule
engine-direct        error    ExecutionEngine() outside runtime/service
blocking-in-async    error    blocking call on the event loop
unguarded-global     warning  module global mutated outside its lock
lock-order           error    cyclic lock-acquisition graph (deadlock)
daemon-thread-leak   warning  thread/executor created, never joined
metric-name          warning  instrument name off the dot convention
plan-pass-mutation   error    compiler pass mutates its input op stream
==================== ======== =============================================
"""

from repro.staticcheck.lint.rules import (  # noqa: F401  (self-register)
    blocking_in_async,
    daemon_thread,
    engine_direct,
    float_eq,
    lock_order,
    metric_name,
    mutable_default,
    op_loop,
    pass_mutation,
    unguarded_global,
    view_return,
)
