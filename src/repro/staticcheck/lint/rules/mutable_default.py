"""mutable-default: a parameter defaulting to a mutable literal.

Defaults are evaluated once at ``def`` time and shared across every
call, so ``def f(x=[])`` aliases one list for the function's lifetime —
the classic Python aliasing bug.  Flags literal lists/dicts/sets and
no-argument ``list()``/``dict()``/``set()``/``bytearray()`` calls in
positional and keyword-only defaults (sync and async functions alike).
"""

from __future__ import annotations

import ast

from repro.staticcheck.lint.core import LintRule, ModuleContext, register

MUTABLE_CALLS = {"list", "dict", "set", "bytearray"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_CALLS and not node.args
    return False


@register
class MutableDefaultRule(LintRule):
    name = "mutable-default"
    severity = "error"
    description = (
        "function parameter defaults to a mutable literal; the object is "
        "shared across calls"
    )

    def check_module(self, module: ModuleContext):
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            name = getattr(node, "name", "<lambda>")
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if _is_mutable_default(default):
                    yield self.finding(
                        module,
                        default.lineno,
                        f"function {name!r} has a mutable default "
                        "argument; use None and create inside",
                        hint="default to None and build the container "
                        "in the body",
                    )
