"""view-return: a docstring that promises a copy, a return that aliases.

Functions whose docstring first line mentions a copy ("copy", "copies",
"fresh array", "new array") but whose ``return`` is a numpy
slice/``reshape``/``ravel``/``view``-style expression, all of which may
alias the original buffer — callers who mutate the "copy" corrupt
shared state.

The pre-framework linter only ran this check on sync functions
(``visit_AsyncFunctionDef`` skipped ``_check_copy_doc``); this port
walks sync and async defs through one code path, so async helpers get
the same contract check.  Nested function bodies are excluded — a
closure's return is not the documented function's return.
"""

from __future__ import annotations

import ast

from repro.staticcheck.lint.core import LintRule, ModuleContext, register

#: numpy-array producing expressions that may alias their input.
VIEW_ATTRS = {"view", "ravel", "reshape", "transpose", "swapaxes", "T"}
COPY_WORDS = ("copy", "copies", "fresh array", "new array")


def _returns_view(node: ast.expr) -> bool:
    if isinstance(node, ast.Subscript):
        sub = node.slice
        parts = sub.elts if isinstance(sub, ast.Tuple) else [sub]
        return any(isinstance(p, ast.Slice) for p in parts)
    if isinstance(node, ast.Attribute):
        return node.attr in VIEW_ATTRS
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr in VIEW_ATTRS
    return False


def _own_returns(node):
    """Return statements belonging to *node* itself, not nested defs."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        sub = stack.pop()
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(sub, ast.Return):
            yield sub
        stack.extend(ast.iter_child_nodes(sub))


@register
class ViewReturnRule(LintRule):
    name = "view-return"
    severity = "error"
    description = (
        "docstring documents a copy but the return may be a numpy view"
    )

    def check_module(self, module: ModuleContext):
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            doc = ast.get_docstring(node)
            if not doc:
                continue
            head = doc.splitlines()[0].lower()
            if not any(w in head for w in COPY_WORDS):
                continue
            for ret in _own_returns(node):
                if ret.value is not None and _returns_view(ret.value):
                    yield self.finding(
                        module,
                        ret.lineno,
                        f"{node.name!r} documents a copy but returns a "
                        "possible numpy view; add .copy()",
                        hint="append .copy() to the returned expression",
                    )
