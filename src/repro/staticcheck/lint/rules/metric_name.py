"""metric-name: registry instrument names must follow the dot convention.

Every instrument registered on a :class:`~repro.telemetry.metrics.
MetricsRegistry` is named ``subsystem.quantity[.unit]`` — lowercase
dot-separated segments like ``comm.bytes_on_network``,
``kernel.apply.seconds`` or ``service.queue.depth`` (see
docs/architecture.md "Observability").  A name outside the convention
breaks the exposition page's family grouping and every dashboard query
that assumes the prefix is the subsystem, so this rule flags literal
first arguments of ``.counter(...)`` / ``.gauge(...)`` /
``.histogram(...)`` calls that don't match.

Only string literals are checked (a name built at runtime is the
caller's responsibility), and single-segment throwaway names in tests
suppress with ``# lint: allow-metric-name`` or a baseline entry.
"""

from __future__ import annotations

import ast
import re

from repro.staticcheck.lint.core import LintRule, ModuleContext, register

#: Lowercase dot-path with at least two segments; segments are
#: ``[a-z][a-z0-9_]*`` so units like ``wait_seconds`` are one segment.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

_INSTRUMENT_METHODS = {"counter", "gauge", "histogram"}


@register
class MetricNameRule(LintRule):
    name = "metric-name"
    severity = "warning"
    description = (
        "registry instrument name breaks the subsystem.quantity[.unit] "
        "dot convention"
    )

    def check_module(self, module: ModuleContext):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if (
                not isinstance(func, ast.Attribute)
                or func.attr not in _INSTRUMENT_METHODS
            ):
                continue
            first = node.args[0]
            if not isinstance(first, ast.Constant) or not isinstance(
                first.value, str
            ):
                continue
            metric = first.value
            if _NAME_RE.match(metric):
                continue
            yield self.finding(
                module,
                node.lineno,
                f"metric name {metric!r} breaks the "
                f"subsystem.quantity[.unit] convention "
                f"(lowercase dot-separated, >= 2 segments)",
                hint="rename to subsystem.quantity[.unit], e.g. "
                "service.queue.depth",
            )
