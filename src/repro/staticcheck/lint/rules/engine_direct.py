"""engine-direct: ExecutionEngine constructed outside its home layers.

Direct ``ExecutionEngine(...)`` construction belongs to
``repro/runtime`` (its home) and ``repro/service`` (the job engine that
wraps it); their test packages exercise the constructor directly and
are exempt too.  Everything else should use the ``run_schedule`` family
or submit a service job so engines pick up the shared layer stacks and
caches.  Deliberate wrappers and benches suppress with ``# lint:
allow-engine-direct``.
"""

from __future__ import annotations

import ast

from repro.staticcheck.lint.core import LintRule, ModuleContext, register

_EXEMPT_PARTS = (
    "repro/runtime",
    "repro/service",
    "tests/runtime",
    "tests/service",
)


@register
class EngineDirectRule(LintRule):
    name = "engine-direct"
    severity = "error"
    description = (
        "direct ExecutionEngine construction outside repro/runtime and "
        "repro/service"
    )

    def check_module(self, module: ModuleContext):
        if any(part in module.norm_path for part in _EXEMPT_PARTS):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name == "ExecutionEngine":
                yield self.finding(
                    module,
                    node.lineno,
                    "direct ExecutionEngine construction outside "
                    "repro/runtime and repro/service; use the "
                    "run_schedule family or submit a service job "
                    "(# lint: allow-engine-direct for deliberate "
                    "wrappers)",
                    hint="use run_schedule or the service API",
                )
