"""plan-pass-mutation: a compiler pass mutating its input op stream.

The plan pipeline's contract (see :mod:`repro.plan.passes`) is that
every pass is a pure function from one op stream to the next: it may
build and return a brand-new stream but must never mutate the stream it
was handed, because ``plan_for`` memoizes compiled programs on frozen
configs and a mutated intermediate corrupts every later consumer of the
same objects.

Flags, inside any function named ``*_pass`` in a ``repro.plan`` module,
every statement that mutates the first parameter (the op stream):
mutating method calls (``append``/``extend``/``insert``/``pop``/
``remove``/``sort``/``reverse``/``clear``), subscript assignment or
deletion, and augmented assignment to the parameter or an element of
it.  Rebinding the name (``ops = ...``) is fine — that is how a pass is
supposed to produce its output.
"""

from __future__ import annotations

import ast

from repro.staticcheck.lint.core import LintRule, ModuleContext, register

_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "pop",
    "remove",
    "sort",
    "reverse",
    "clear",
}


def _roots_to(node: ast.expr, name: str) -> bool:
    """Whether *node* is *name* or a subscript/attribute chain off it."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == name


@register
class PassMutationRule(LintRule):
    name = "plan-pass-mutation"
    severity = "error"
    description = (
        "a plan-compiler pass mutates its input op stream; passes must "
        "build and return a new stream"
    )

    def check_module(self, module: ModuleContext):
        if not module.module_name.startswith("repro.plan"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not node.name.endswith("_pass"):
                continue
            params = node.args.posonlyargs + node.args.args
            if not params:
                continue
            stream = params[0].arg
            if stream == "self" and len(params) > 1:
                stream = params[1].arg
            yield from self._check_pass(module, node, stream)

    def _check_pass(self, module, func, stream: str):
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                f = node.func
                if (
                    isinstance(f, ast.Attribute)
                    and f.attr in _MUTATING_METHODS
                    and _roots_to(f.value, stream)
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        f"pass {func.name!r} calls mutating method "
                        f"{f.attr!r} on its input op stream {stream!r}",
                        hint="build a new list/tuple and return it",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                    if isinstance(node, ast.AugAssign)
                    else node.targets
                )
                for target in targets:
                    if isinstance(node, ast.AugAssign) and isinstance(
                        target, ast.Name
                    ):
                        # ops += [...] rebinds for tuples; flag only
                        # subscript/attribute augments, which mutate.
                        continue
                    if isinstance(
                        target, (ast.Subscript, ast.Attribute)
                    ) and _roots_to(target, stream):
                        verb = (
                            "deletes from"
                            if isinstance(node, ast.Delete)
                            else "assigns into"
                        )
                        yield self.finding(
                            module,
                            node.lineno,
                            f"pass {func.name!r} {verb} its input op "
                            f"stream {stream!r}",
                            hint="build a new list/tuple and return it",
                        )
