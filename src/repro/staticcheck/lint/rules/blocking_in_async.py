"""blocking-in-async: synchronous blocking work on the event loop.

Inside an ``async def`` body, any statement runs on the event loop
thread; a blocking call there stalls *every* coroutine — in the service
layer, every connected client.  Flags, when the innermost enclosing
function is async:

* ``time.sleep(...)`` (use ``asyncio.sleep``),
* blocking socket/subprocess/OS calls (``socket.create_connection``,
  ``socket.getaddrinfo``, ``subprocess.run`` and friends,
  ``os.system``),
* synchronous file I/O: ``open(...)`` and
  ``Path.read_text/write_text/read_bytes/write_bytes``,
* ``future.result(...)`` on a concurrent future (await
  ``loop.run_in_executor`` / ``asyncio.wrap_future`` instead),
* ``.shutdown(...)`` on an executor-ish receiver (or with ``wait=True``)
  and ``.join()`` on thread/worker/process-ish receivers.

Statements in *nested sync* defs are fine — they only block if someone
calls them on the loop, which is their caller's problem.  Lambdas are
transparent (a lambda body executes wherever it is invoked, and in this
codebase that is overwhelmingly inline).  Deliberate cases (startup
paths, teardown where the loop is idle) suppress with
``# lint: allow-blocking-in-async`` plus a reason.
"""

from __future__ import annotations

import ast

from repro.staticcheck.lint.core import LintRule, ModuleContext, register

#: ``module.attr`` call paths that always block.
_BLOCKING_DOTTED = {
    ("time", "sleep"),
    ("socket", "create_connection"),
    ("socket", "getaddrinfo"),
    ("subprocess", "run"),
    ("subprocess", "check_output"),
    ("subprocess", "check_call"),
    ("subprocess", "call"),
    ("os", "system"),
}
#: Pathlib-style synchronous file I/O method names.
_FILE_IO_ATTRS = {"read_text", "write_text", "read_bytes", "write_bytes"}


def _dotted(node: ast.expr) -> tuple[str, ...] | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _receiver_text(node: ast.expr) -> str:
    dotted = _dotted(node)
    return ".".join(dotted).lower() if dotted else ""


def _has_kwarg(node: ast.Call, name: str, value: bool) -> bool:
    for kw in node.keywords:
        if (
            kw.arg == name
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is value
        ):
            return True
    return False


def _classify_blocking(node: ast.Call) -> str | None:
    """A message when *node* is a blocking call, else ``None``."""
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "synchronous open() on the event loop"
    dotted = _dotted(func)
    if dotted and len(dotted) >= 2 and dotted[-2:] in _BLOCKING_DOTTED:
        return f"blocking {'.'.join(dotted[-2:])}() on the event loop"
    if isinstance(func, ast.Attribute):
        attr = func.attr
        receiver = _receiver_text(func.value)
        if attr in _FILE_IO_ATTRS:
            return f"synchronous file I/O (.{attr}()) on the event loop"
        if attr == "result":
            return (
                "blocking future.result() on the event loop; await "
                "asyncio.wrap_future / run_in_executor instead"
            )
        if attr == "shutdown" and (
            "executor" in receiver
            or "pool" in receiver
            or _has_kwarg(node, "wait", True)
        ):
            return (
                "executor.shutdown() blocks until workers drain; run it "
                "in an executor"
            )
        if attr == "join" and any(
            word in receiver for word in ("thread", "worker", "proc")
        ):
            return "blocking .join() on the event loop"
    return None


class _AsyncVisitor(ast.NodeVisitor):
    def __init__(self) -> None:
        #: Innermost-def stack: True entries are async frames.
        self.stack: list[bool] = []
        self.hits: list[tuple[int, str]] = []

    def _visit_def(self, node, is_async: bool) -> None:
        self.stack.append(is_async)
        self.generic_visit(node)
        self.stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node, False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_def(node, True)

    # Lambdas are transparent: no stack frame pushed.

    def visit_Call(self, node: ast.Call) -> None:
        if self.stack and self.stack[-1]:
            message = _classify_blocking(node)
            if message is not None:
                self.hits.append((node.lineno, message))
        self.generic_visit(node)


@register
class BlockingInAsyncRule(LintRule):
    name = "blocking-in-async"
    severity = "error"
    description = (
        "blocking call inside an async def stalls the whole event loop"
    )

    def check_module(self, module: ModuleContext):
        visitor = _AsyncVisitor()
        visitor.visit(module.tree)
        for line, message in visitor.hits:
            yield self.finding(
                module,
                line,
                message,
                hint="await asyncio.sleep / loop.run_in_executor(None, ...)",
            )
