"""float-eq: exact ``==`` / ``!=`` against a float-valued expression.

Amplitude code must compare with tolerances (``math.isclose``,
``np.allclose``, ``abs(a-b) < tol``); exact float equality is only ever
right for sentinel checks, which suppress with ``# lint:
allow-float-eq``.  "Obviously float-valued" means a float constant, a
unary op over one, or an attribute named like a float constant
(``math.pi``, ``np.inf``, ...).
"""

from __future__ import annotations

import ast

from repro.staticcheck.lint.core import LintRule, ModuleContext, register

_FLOAT_ATTRS = {"pi", "e", "inf", "nan", "tau"}


def _is_floaty(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand)
    if isinstance(node, ast.Attribute):
        return node.attr in _FLOAT_ATTRS
    return False


@register
class FloatEqRule(LintRule):
    name = "float-eq"
    severity = "warning"
    description = (
        "exact == / != against a float; compare with a tolerance instead"
    )

    def check_module(self, module: ModuleContext):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            if any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            ) and any(_is_floaty(n) for n in operands):
                yield self.finding(
                    module,
                    node.lineno,
                    "== / != against a float; compare with a tolerance "
                    "(math.isclose / np.allclose / abs(a-b) < tol)",
                    hint="use math.isclose or np.allclose",
                )
