"""Pluggable lint framework for the repro codebase.

Subsumes the old monolithic ``tools/repro_lint.py``: every check is now
a :class:`~repro.staticcheck.lint.core.LintRule` module under
:mod:`repro.staticcheck.lint.rules`, registered by name, with a
severity, per-line/per-file suppression and baseline grandfathering.
``repro lint`` is the CLI; ``tools/repro_lint.py`` remains as a thin
shim over :func:`lint_paths` for CI compatibility.

See ``docs/architecture.md`` ("Lint framework") for the rule catalogue
and the baseline workflow.
"""

from repro.staticcheck.lint.baseline import Baseline, write_baseline
from repro.staticcheck.lint.core import (
    SEVERITIES,
    LintFinding,
    LintReport,
    LintRule,
    ModuleContext,
    default_rules,
    lint_file,
    lint_paths,
    register,
    registered_rules,
    run_lint,
)
from repro.staticcheck.lint.output import (
    render_json,
    render_sarif,
    render_text,
)

__all__ = [
    "Baseline",
    "LintFinding",
    "LintReport",
    "LintRule",
    "ModuleContext",
    "SEVERITIES",
    "default_rules",
    "lint_file",
    "lint_paths",
    "register",
    "registered_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "write_baseline",
]
