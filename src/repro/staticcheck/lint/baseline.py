"""Baseline files: grandfathering pre-existing lint findings.

A baseline is a committed JSON file (schema ``repro.lint-baseline/1``)
listing the fingerprints of findings that predate a rule's introduction.
``repro lint`` marks matching findings ``baselined`` — they are shown
(annotated) but do not gate the exit code — so a new rule can land with
strict CI without first fixing every historical hit.

Fingerprints come from :func:`repro.staticcheck.lint.core.run_lint`:
they hash the rule, the normalized path and the stripped source line
text (not the line *number*), so unrelated edits that shift code around
do not invalidate the baseline.  The workflow:

1. ``repro lint --update-baseline`` after enabling a new rule writes
   every current finding's fingerprint.
2. Fix findings over time; stale fingerprints are harmless (they simply
   stop matching) and ``--update-baseline`` prunes them.
3. New findings are never in the baseline, so they gate immediately.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["BASELINE_SCHEMA", "Baseline", "write_baseline"]

BASELINE_SCHEMA = "repro.lint-baseline/1"


@dataclass
class Baseline:
    """An in-memory set of grandfathered finding fingerprints."""

    fingerprints: frozenset[str] = frozenset()
    #: Human-readable context rows kept alongside each fingerprint
    #: (rule/path/message at capture time); informational only.
    entries: list[dict] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        """Read *path*; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("schema") != BASELINE_SCHEMA:
            raise ValueError(
                f"{path}: expected schema {BASELINE_SCHEMA!r}, "
                f"got {data.get('schema')!r}"
            )
        entries = list(data.get("findings", []))
        return cls(
            fingerprints=frozenset(e["fingerprint"] for e in entries),
            entries=entries,
        )

    def contains(self, fingerprint: str) -> bool:
        return fingerprint in self.fingerprints

    def __len__(self) -> int:
        return len(self.fingerprints)


def write_baseline(path: Path | str, findings) -> int:
    """Write *findings* (active + already-baselined) as the new baseline.

    Returns the number of entries written.  Re-running after fixes
    prunes fingerprints that no longer fire.
    """
    rows = [
        {
            "fingerprint": f.fingerprint,
            "rule": f.rule,
            "path": f.path,
            "message": f.message,
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    payload = {"schema": BASELINE_SCHEMA, "findings": rows}
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return len(rows)
