"""Structural invariants of a :class:`~repro.scheduling.Schedule`.

The scheduling pipeline's output is only trustworthy if every stage obeys
the layout contract the distributed executor assumes (Sec. 3.4-3.6 of the
paper): clusters fit in ``kmax`` and touch only stage-local qubits,
specialized gates really specialize under the stage's global set, swap
points are feasible, the original circuit is covered exactly once in a
legal order, the qubit->bit mapping is a bijection, and every fused
cluster matrix is unitary.  :func:`check_schedule` verifies all of that
*without executing anything* and reports violations as
:class:`~repro.staticcheck.diagnostics.Finding`s instead of raising, so a
single run surfaces every problem at once.

This subsumes ``Schedule.validate()`` (which raises on first violation)
— the checker is the diagnostic front end, ``validate()`` the cheap
internal assertion.
"""

from __future__ import annotations

import numpy as np

from repro.scheduling.mapping import cluster_bit_mapping
from repro.scheduling.program import (
    ClusterOp,
    GateOp,
    Schedule,
    gate_specializable_under,
)
from repro.staticcheck.diagnostics import CheckReport, Severity

__all__ = ["check_mapping", "check_schedule"]

_W = Severity.WARNING
_E = Severity.ERROR


def _is_cluster_like(op) -> bool:
    if isinstance(op, ClusterOp):
        return True
    from repro.scheduling.absorption import AbsorbedClusterOp

    return isinstance(op, AbsorbedClusterOp)


def _op_gates(op) -> list:
    if isinstance(op, ClusterOp):
        return list(op.gates)
    if isinstance(op, GateOp):
        return [op.gate]
    if hasattr(op, "gates_in_order"):
        return op.gates_in_order()
    return []


def _gate_key(gate) -> tuple:
    return (gate.name, gate.qubits, gate.matrix.tobytes())


# ----------------------------------------------------------------------
# Individual passes (each appends findings to the shared report)
# ----------------------------------------------------------------------
def _check_structure(schedule: Schedule, report: CheckReport) -> None:
    n, l = schedule.num_qubits, schedule.local_qubits
    if not 0 < l <= n:
        report.add(
            _E, "structure",
            f"local_qubits={l} outside (0, {n}]",
            hint="the qubit split must leave at least one local qubit",
        )
        return
    g = n - l
    for i, stage in enumerate(schedule.stages):
        bad = sorted(q for q in stage.global_qubits if not 0 <= q < n)
        if bad:
            report.add(
                _E, "structure",
                f"stage global set contains out-of-range qubits {bad}",
                stage=i,
                hint=f"qubits must lie in [0, {n})",
            )
        if len(stage.global_qubits) != g:
            report.add(
                _E, "structure",
                f"stage global set has {len(stage.global_qubits)} qubits, "
                f"expected {g}",
                stage=i,
                hint="every stage must keep exactly num_qubits - "
                "local_qubits qubits global",
            )


def _check_swaps(schedule: Schedule, report: CheckReport) -> None:
    l = schedule.local_qubits
    for i in range(1, len(schedule.stages)):
        prev = schedule.stages[i - 1].global_qubits
        cur = schedule.stages[i].global_qubits
        incoming = prev - cur  # become local
        outgoing = cur - prev  # become global
        if not incoming and not outgoing:
            report.add(
                _W, "swap",
                "swap point between identical global sets (no-op swap)",
                stage=i,
                hint="merge the two stages; the swap wastes one "
                "communication step",
            )
            continue
        if len(incoming) != len(outgoing):
            report.add(
                _E, "swap",
                f"swap exchanges {len(incoming)} incoming against "
                f"{len(outgoing)} outgoing qubits",
                stage=i,
                hint="a global-to-local swap must exchange equal-size "
                "qubit sets to preserve the split",
            )
        if len(incoming) > l:
            report.add(
                _E, "swap",
                f"swap brings {len(incoming)} qubits local but only "
                f"{l} local slots exist",
                stage=i,
                hint="split the swap across stages or raise local_qubits",
            )
        # Outgoing qubits were local before the swap by construction of
        # the set difference; an outgoing qubit that does not exist is
        # covered by _check_structure's range check.


def _check_clusters(schedule: Schedule, report: CheckReport) -> None:
    n = schedule.num_qubits
    kmax = schedule.kmax
    for i, stage in enumerate(schedule.stages):
        for j, op in enumerate(stage.ops):
            if isinstance(op, GateOp):
                continue
            if not _is_cluster_like(op):
                report.add(
                    _E, "structure",
                    f"unknown op type {type(op).__name__} in stage op list",
                    stage=i, op_index=j,
                )
                continue
            qubits = op.qubits
            if len(set(qubits)) != len(qubits):
                report.add(
                    _E, "cluster-locality",
                    f"cluster has duplicate qubits {qubits}",
                    stage=i, op_index=j,
                )
            bad = sorted(q for q in qubits if not 0 <= q < n)
            if bad:
                report.add(
                    _E, "cluster-locality",
                    f"cluster qubits {bad} out of range",
                    stage=i, op_index=j,
                )
                continue
            if kmax is not None and op.num_qubits > kmax:
                report.add(
                    _E, "cluster-width",
                    f"cluster of width {op.num_qubits} exceeds kmax={kmax}",
                    stage=i, op_index=j,
                    hint="re-cluster the stage; wider kernels than tuned "
                    "for destroy the cache model and may not fit locally",
                )
            overlap = sorted(set(qubits) & stage.global_qubits)
            if overlap:
                report.add(
                    _E, "cluster-locality",
                    f"cluster touches stage-global qubits {overlap}",
                    stage=i, op_index=j,
                    hint="a fused kernel reads amplitude pairs that span "
                    "ranks when its qubit is global; insert a swap or "
                    "re-run stage finding",
                )


def _check_specialization(schedule: Schedule, report: CheckReport) -> None:
    for i, stage in enumerate(schedule.stages):
        for j, op in enumerate(stage.ops):
            if isinstance(op, GateOp):
                if not gate_specializable_under(op.gate, stage.global_qubits):
                    report.add(
                        _E, "specialization",
                        f"gate {op.gate.name!r} on qubits {op.gate.qubits} "
                        "is declared specialized but is neither diagonal "
                        "nor rank-separable monomial under this global set",
                        stage=i, op_index=j,
                        hint="only diagonal gates and monomial gates whose "
                        "global action is local-independent run without "
                        "communication (Sec. 3.5); schedule a swap or "
                        "cluster the gate locally",
                    )
                continue
            if isinstance(op, ClusterOp) or not _is_cluster_like(op):
                continue
            # AbsorbedClusterOp: folded diagonals must really be diagonal
            # and their non-member qubits stage-global.
            member = set(op.qubits)
            for gate in list(op.pre_diagonals) + list(op.post_diagonals):
                if not gate.is_diagonal:
                    report.add(
                        _E, "specialization",
                        f"absorbed gate {gate.name!r} is not diagonal",
                        stage=i, op_index=j,
                        hint="only diagonal gates may be folded into a "
                        "cluster as rank-conditional factors",
                    )
                outside = set(gate.qubits) - member
                stray = sorted(outside - stage.global_qubits)
                if stray:
                    report.add(
                        _E, "specialization",
                        f"absorbed diagonal {gate.name!r} has local qubits "
                        f"{stray} outside its host cluster",
                        stage=i, op_index=j,
                        hint="an absorbed diagonal's local qubits must all "
                        "be cluster members; its remaining qubits must be "
                        "stage-global (their bits come from the rank id)",
                    )


def _check_coverage(schedule: Schedule, report: CheckReport) -> None:
    from collections import Counter

    original = Counter(_gate_key(g) for g in schedule.circuit)
    scheduled_gates = schedule.scheduled_gates()
    covered = Counter(_gate_key(g) for g in scheduled_gates)
    missing = original - covered
    extra = covered - original
    for key, count in missing.items():
        report.add(
            _E, "coverage",
            f"gate {key[0]!r} on qubits {key[1]} dropped from the "
            f"schedule ({count}x)",
            hint="every circuit gate must appear in exactly one cluster "
            "or specialized op",
        )
    for key, count in extra.items():
        report.add(
            _E, "coverage",
            f"gate {key[0]!r} on qubits {key[1]} appears {count}x more "
            "often than in the circuit",
            hint="a gate was duplicated across clusters; amplitudes "
            "would be multiplied twice",
        )
    if missing or extra:
        return  # order check would only echo the coverage problem
    _check_gate_order(schedule, scheduled_gates, report)


def _check_gate_order(schedule: Schedule, scheduled_gates, report) -> None:
    """Per-qubit order equality up to commuting-diagonal reorderings."""

    def canonical(gates, num_qubits):
        per_qubit: list[list] = [[] for _ in range(num_qubits)]
        for gate in gates:
            key = _gate_key(gate)
            for q in gate.qubits:
                per_qubit[q].append((gate.is_diagonal, key))
        canon = []
        for seq in per_qubit:
            blocks: list = []
            run: list = []
            for is_diag, key in seq:
                if is_diag:
                    run.append(key)
                else:
                    blocks.append(tuple(sorted(run)))
                    blocks.append(key)
                    run = []
            blocks.append(tuple(sorted(run)))
            canon.append(blocks)
        return canon

    n = schedule.num_qubits
    orig = canonical(list(schedule.circuit), n)
    resched = canonical(scheduled_gates, n)
    for q in range(n):
        if orig[q] != resched[q]:
            report.add(
                _E, "gate-order",
                f"per-qubit gate order violated on qubit {q}",
                hint="non-commuting gates on a qubit must execute in "
                "circuit order; only mutually-commuting diagonal gates "
                "may be reordered (absorption does this legally)",
            )


def check_mapping(
    mapping: dict[int, int], num_qubits: int, report: CheckReport | None = None
) -> CheckReport:
    """Verify a qubit->bit-location mapping is a bijection on the range.

    Used standalone on any mapping (e.g. one loaded from disk) and by
    :func:`check_schedule` on the mapping induced by the schedule's
    clusters.
    """
    if report is None:
        report = CheckReport(checks_run=["mapping"])
    domain = sorted(mapping)
    expected = list(range(num_qubits))
    if domain != expected:
        report.add(
            _E, "mapping",
            f"mapping domain {domain} != qubits {expected}",
            hint="every qubit needs exactly one bit location",
        )
        return report
    values = sorted(mapping.values())
    if values != expected:
        seen: set[int] = set()
        dups = sorted({b for b in mapping.values() if b in seen or seen.add(b)})
        report.add(
            _E, "mapping",
            f"mapping is not a bijection: bit locations {values} "
            + (f"(duplicates {dups})" if dups else ""),
            hint="two qubits share a bit location (or one is out of "
            "range); kernels would read the wrong amplitude pairs",
        )
    return report


def _check_schedule_mapping(schedule: Schedule, report: CheckReport) -> None:
    clusters = [
        op.qubits
        for stage in schedule.stages
        for op in stage.ops
        if _is_cluster_like(op)
    ]
    if not clusters:
        return
    # The mapping operates on the local bit-location space; restrict to
    # schedules where cluster qubits fit it (guaranteed when locality
    # holds, which earlier passes verify).
    if any(
        q >= schedule.num_qubits for qubits in clusters for q in qubits
    ):
        return  # out-of-range clusters already reported
    mapping = cluster_bit_mapping(clusters, schedule.num_qubits)
    check_mapping(mapping, schedule.num_qubits, report)


def _check_unitarity(
    schedule: Schedule, report: CheckReport, tol: float
) -> None:
    for i, stage in enumerate(schedule.stages):
        for j, op in enumerate(stage.ops):
            if not _is_cluster_like(op):
                continue
            fused = op.fused if isinstance(op, ClusterOp) else op.cluster.fused
            matrix = np.asarray(fused.matrix)
            dim = 1 << op.num_qubits
            if matrix.shape != (dim, dim):
                report.add(
                    _E, "unitarity",
                    f"fused matrix shape {matrix.shape} does not match "
                    f"cluster width {op.num_qubits}",
                    stage=i, op_index=j,
                )
                continue
            defect = float(
                np.max(np.abs(matrix.conj().T @ matrix - np.eye(dim)))
            )
            if defect > tol:
                report.add(
                    _E, "unitarity",
                    f"fused cluster matrix deviates from unitarity by "
                    f"{defect:.3e} (tol {tol:.0e})",
                    stage=i, op_index=j,
                    hint="a non-unitary kernel silently destroys norm; "
                    "re-fuse the cluster from its source gates",
                )


# ----------------------------------------------------------------------
def check_schedule(
    schedule: Schedule,
    *,
    unitary_tol: float = 1e-9,
    check_unitarity: bool = True,
) -> CheckReport:
    """Run every structural pass over *schedule*; never raises.

    Parameters
    ----------
    schedule:
        The program to verify.
    unitary_tol:
        Max-abs deviation of ``U^dagger U`` from identity tolerated for
        fused cluster matrices.
    check_unitarity:
        The unitarity pass builds every fused matrix (``O(4**k)`` each);
        disable it for very large schedules when only layout invariants
        matter.
    """
    report = CheckReport(
        checks_run=[
            "structure", "swaps", "clusters", "specialization",
            "coverage", "mapping",
        ]
    )
    _check_structure(schedule, report)
    _check_swaps(schedule, report)
    _check_clusters(schedule, report)
    _check_specialization(schedule, report)
    _check_coverage(schedule, report)
    _check_schedule_mapping(schedule, report)
    if check_unitarity:
        report.checks_run.append("unitarity")
        _check_unitarity(schedule, report, unitary_tol)
    return report
