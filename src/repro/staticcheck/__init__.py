"""Static schedule & comm-plan verification plus runtime sanitizers.

Layered like an analyzer stack:

1. :mod:`~repro.staticcheck.schedule_checker` — structural invariants of
   a :class:`~repro.scheduling.Schedule` (cluster width/locality, swap
   shape, specialization legality, gate coverage/order, mapping
   bijection, fused-matrix unitarity).
2. :mod:`~repro.staticcheck.comm_checker` — symbolic replay of the
   induced communication plan (collective lockstep matching, byte
   conservation against :class:`~repro.distributed.comm.CommStats`,
   wait-for-graph deadlock detection).
3. :mod:`~repro.staticcheck.sanitizer` — opt-in runtime mode wrapping
   execution with NaN/Inf, norm-conservation and shard-checksum checks.
4. :mod:`~repro.staticcheck.diagnostics` — the shared findings model.
5. :mod:`~repro.staticcheck.lint` — the pluggable *source* lint
   framework (nine AST rules, severities, suppression, baselines)
   behind ``repro lint``; its lock-order rule pairs with the runtime
   :data:`~repro.util.locktrack.LOCK_TRACKER`.

:func:`verify_schedule` is the one-call entry point the ``repro check``
CLI and ``simulate --strict`` use.
"""

from __future__ import annotations

from repro.staticcheck.comm_checker import (
    BarrierOp,
    CollectiveOp,
    RecvOp,
    SendOp,
    check_collectives,
    check_comm_stats,
    check_deadlock,
    comm_plan_for_schedule,
    predict_comm_stats,
)
from repro.staticcheck.diagnostics import (
    CATEGORIES,
    CheckReport,
    Finding,
    Severity,
    StaticCheckError,
)
from repro.staticcheck.lint import (
    LintFinding,
    LintReport,
    LintRule,
    lint_paths,
    run_lint,
)
from repro.staticcheck.sanitizer import (
    SanitizerConfig,
    SanitizerReport,
    ShardSanitizer,
    run_sanitized,
)
from repro.staticcheck.schedule_checker import check_mapping, check_schedule

__all__ = [
    "CATEGORIES",
    "BarrierOp",
    "CheckReport",
    "CollectiveOp",
    "Finding",
    "LintFinding",
    "LintReport",
    "LintRule",
    "RecvOp",
    "SanitizerConfig",
    "SanitizerReport",
    "SendOp",
    "Severity",
    "ShardSanitizer",
    "StaticCheckError",
    "check_collectives",
    "check_comm_stats",
    "check_deadlock",
    "check_mapping",
    "check_schedule",
    "comm_plan_for_schedule",
    "lint_paths",
    "predict_comm_stats",
    "run_lint",
    "run_sanitized",
    "verify_schedule",
]


def verify_schedule(
    schedule,
    *,
    unitary_tol: float = 1e-9,
    check_unitarity: bool = True,
    check_comm: bool = True,
) -> CheckReport:
    """Run every static pass over *schedule* and fold into one report.

    Structural passes always run; with ``check_comm`` the induced comm
    plan is derived and its collectives lockstep-verified and
    deadlock-checked too (self-consistency: a correct scheduler always
    passes, a corrupted plan does not).
    """
    report = check_schedule(
        schedule, unitary_tol=unitary_tol, check_unitarity=check_unitarity
    )
    if check_comm:
        programs = comm_plan_for_schedule(schedule)
        report.extend(check_collectives(programs))
        report.extend(check_deadlock(programs))
    return report
