"""Memoized kernel lookup tables: gather indices and diagonal tensors.

The paper's single-core wins come from precomputing everything the kernel
needs before touching the state (Sec. 3.2-3.4).  The runtime analogue
here is a small LRU cache of the two table families every kernel
invocation would otherwise rebuild:

* **gather-index tables** — the ``(2**k, block)`` index panels of the
  indexed kernel, keyed on ``(n, qubits, chunk)``.  Supremacy circuits
  repeat the same CZ layers and fused-cluster shapes dozens of times, and
  every virtual rank applies the same op to an identically-shaped shard,
  so one table serves ``2**g`` ranks times every repetition of the layer.
* **diagonal factor tensors** — the broadcastable per-amplitude phase
  tensor of the diagonal fast path, keyed on ``(n, qubits, diag bytes)``.

Cache hits and misses are counted (and optionally mirrored into a
:class:`~repro.telemetry.metrics.MetricsRegistry` as ``plan.cache.hits``
/ ``plan.cache.misses``), along with the bytes of table construction the
hits avoided — the numbers ``repro simulate --plan-stats`` reports.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.util.locktrack import TrackedLock

__all__ = ["GatherTableCache", "GATHER_CACHE"]


def _build_gather_table(
    n: int, qubits: Sequence[int], c_start: int, c_stop: int
) -> np.ndarray:
    """Indices of shape ``(2**k, c_stop-c_start)`` for the indexed kernel.

    Column ``m`` holds the ``2**k`` state indices participating in the
    matrix-vector product for ``c = c_start + m`` (Sec. 3.2); row ``x`` is
    the entry whose target-qubit bits spell ``x``.
    """
    from repro.util.bits import insert_zero_bits, scatter_bits

    k = len(qubits)
    sorted_pos = sorted(qubits)
    c = np.arange(c_start, c_stop, dtype=np.int64)
    base = insert_zero_bits(c, sorted_pos)
    offsets = scatter_bits(np.arange(1 << k, dtype=np.int64), list(qubits))
    return offsets[:, None] + base[None, :]


#: Widest state for which diagonal factors are expanded to a flat dense
#: vector.  Flat factors turn the diagonal fast path into one contiguous
#: SIMD multiply (``state *= factor``) instead of a strided broadcast;
#: above this the ``2**n`` expansion would dwarf the shard itself, so the
#: broadcastable tensor is kept.
_FLAT_DIAG_MAX_QUBITS = 16


def _build_diagonal_factor(
    diag: np.ndarray, qubits: Sequence[int], n: int
) -> np.ndarray:
    """Per-amplitude phase factor for a diagonal gate.

    Returns a flat dense ``2**n`` vector when ``n`` is small enough
    (:data:`_FLAT_DIAG_MAX_QUBITS`) — elementwise identical to the
    broadcast expansion, so switching representations is bit-exact — and
    the broadcastable ``(2,)*n``-compatible tensor otherwise.
    """
    tensor = _build_diagonal_tensor(diag, qubits, n)
    if n <= _FLAT_DIAG_MAX_QUBITS:
        return np.ascontiguousarray(
            np.broadcast_to(tensor, (2,) * n)
        ).reshape(1 << n)
    return tensor


def _build_diagonal_tensor(
    diag: np.ndarray, qubits: Sequence[int], n: int
) -> np.ndarray:
    """Broadcastable tensor of per-amplitude phases for a diagonal gate."""
    k = len(qubits)
    d_t = np.asarray(diag).reshape((2,) * k)
    # d_t axis a corresponds to qubit qubits[k-1-a]; transpose to descending
    # qubit order so it lines up with the state tensor's axis layout.
    qubit_of_axis = [qubits[k - 1 - a] for a in range(k)]
    order = np.argsort(qubit_of_axis)[::-1]
    d_t = np.transpose(d_t, order)
    shape = []
    qs = sorted(qubits, reverse=True)
    qi = 0
    for bit in range(n - 1, -1, -1):
        if qi < k and qs[qi] == bit:
            shape.append(2)
            qi += 1
        else:
            shape.append(1)
    return d_t.reshape(shape)


class GatherTableCache:
    """LRU cache of gather-index tables and diagonal factor tensors.

    ``capacity`` bounds the number of cached entries; least-recently-used
    entries are evicted first.  Returned arrays are marked read-only —
    they are shared across every rank and every repetition of an op.

    All cache operations hold an internal re-entrant lock (a named
    :class:`~repro.util.locktrack.TrackedLock`), so
    one process-wide instance (:data:`GATHER_CACHE`) can be shared by the
    service layer's concurrent worker threads: lookups, LRU reordering,
    insertion/eviction and the counter updates are atomic with respect to
    each other, and a get-or-build runs the build under the lock so a key
    is constructed at most once.
    """

    def __init__(self, *, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = TrackedLock(
            "repro.kernels.tables.GatherTableCache._lock"
        )
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Bytes of tables cached right now (sum over live entries).
        self.bytes_cached = 0
        #: Bytes of table construction avoided by hits so far.
        self.bytes_saved = 0
        #: Entries built by the silent warm-up path (pipeline prefetch).
        #: Not part of :meth:`stats` — warms must leave the ``--plan-stats``
        #: payload bit-identical to a non-pipelined run.
        self.prefetched = 0
        #: Warmed keys whose first *real* lookup has not happened yet;
        #: that lookup records a miss (exactly what a run without the
        #: warm-up would have counted), so pipelined and serial runs
        #: report identical plan.cache.* numbers.
        self._uncounted: set[tuple] = set()
        self._metrics = None

    # ------------------------------------------------------------------
    def bind_metrics(self, registry) -> None:
        """Stream hit/miss counts into *registry* (``None`` detaches).

        Mirrored keys: ``plan.cache.hits``, ``plan.cache.misses`` and the
        ``plan.cache.bytes_saved`` counter.
        """
        with self._lock:
            self._metrics = (
                registry if registry is not None and registry.enabled else None
            )

    def set_capacity(self, capacity: int) -> None:
        """Rebound the cache to *capacity* entries, evicting LRU overflow."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        with self._lock:
            self.capacity = capacity
            while len(self._entries) > self.capacity:
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self.bytes_cached -= evicted_bytes

    def _record(self, *, hit: bool, nbytes: int) -> None:
        if hit:
            self.hits += 1
            self.bytes_saved += nbytes
        else:
            self.misses += 1
        if self._metrics is not None:
            if hit:
                self._metrics.counter("plan.cache.hits").inc()
                self._metrics.counter("plan.cache.bytes_saved").inc(nbytes)
            else:
                self._metrics.counter("plan.cache.misses").inc()

    def _lookup(self, key: tuple):
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            if key in self._uncounted:
                self._uncounted.discard(key)
                self._record(hit=False, nbytes=entry[1])
            else:
                self._record(hit=True, nbytes=entry[1])
        return entry

    def _insert(self, key: tuple, value, nbytes: int) -> None:
        self._record(hit=False, nbytes=nbytes)
        self._store(key, value, nbytes)

    def _insert_silent(self, key: tuple, value, nbytes: int) -> None:
        """Insert without touching hit/miss counters (warm-up path)."""
        self.prefetched += 1
        self._uncounted.add(key)
        self._store(key, value, nbytes)

    def _store(self, key: tuple, value, nbytes: int) -> None:
        self._entries[key] = (value, nbytes)
        self.bytes_cached += nbytes
        while len(self._entries) > self.capacity:
            evicted_key, (_, evicted_bytes) = self._entries.popitem(last=False)
            self._uncounted.discard(evicted_key)
            self.bytes_cached -= evicted_bytes

    # ------------------------------------------------------------------
    def gather_tables(
        self, n: int, qubits: Sequence[int], chunk_size: int | None
    ) -> tuple[np.ndarray, ...]:
        """Per-block gather-index tables covering the whole ``c`` range.

        Memoized on ``(n, qubits, chunk)``: the key the plan layer shares
        across ranks and repeated ops.  ``chunk_size=None`` means one
        block covering all ``2**(n-k)`` substrings.
        """
        key, chunk, total_c = self._gather_key(n, qubits, chunk_size)
        with self._lock:
            entry = self._lookup(key)
            if entry is not None:
                return entry[0]
            value, nbytes = self._build_gather_value(n, key[2], chunk, total_c)
            self._insert(key, value, nbytes)
            return value

    @staticmethod
    def _gather_key(
        n: int, qubits: Sequence[int], chunk_size: int | None
    ) -> tuple[tuple, int, int]:
        qubits = tuple(int(q) for q in qubits)
        total_c = 1 << (n - len(qubits))
        chunk = total_c if chunk_size is None else min(int(chunk_size), total_c)
        return ("gather", n, qubits, chunk), chunk, total_c

    @staticmethod
    def _build_gather_value(
        n: int, qubits: tuple[int, ...], chunk: int, total_c: int
    ) -> tuple[tuple, int]:
        tables = []
        nbytes = 0
        for c_start in range(0, total_c, chunk):
            table = _build_gather_table(
                n, qubits, c_start, min(c_start + chunk, total_c)
            )
            table.setflags(write=False)
            nbytes += table.nbytes
            tables.append(table)
        return tuple(tables), nbytes

    def gather_tables_t(
        self, n: int, qubits: Sequence[int], chunk_size: int | None
    ) -> tuple[np.ndarray, ...]:
        """Column-major twins of :meth:`gather_tables`.

        Shape ``(block, 2**k)`` instead of ``(2**k, block)``: each *row*
        lists the ``2**k`` amplitudes of one ``c`` substring, which sit
        close together in memory, so the batched sweep's ``np.take`` and
        scatter walk the shard nearly sequentially (measured ~10% faster
        per sweep than the row-major orientation).  The matmul flips to
        ``gathered @ matrix.T``, which computes the exact same dot
        products — results are bit-identical.
        """
        key, chunk, total_c = self._gather_key_t(n, qubits, chunk_size)
        with self._lock:
            entry = self._lookup(key)
            if entry is not None:
                return entry[0]
            value, nbytes = self._build_gather_value_t(
                n, key[2], chunk, total_c
            )
            self._insert(key, value, nbytes)
            return value

    @staticmethod
    def _gather_key_t(
        n: int, qubits: Sequence[int], chunk_size: int | None
    ) -> tuple[tuple, int, int]:
        qubits = tuple(int(q) for q in qubits)
        total_c = 1 << (n - len(qubits))
        chunk = total_c if chunk_size is None else min(int(chunk_size), total_c)
        return ("gatherT", n, qubits, chunk), chunk, total_c

    @classmethod
    def _build_gather_value_t(
        cls, n: int, qubits: tuple[int, ...], chunk: int, total_c: int
    ) -> tuple[tuple, int]:
        tables, _ = cls._build_gather_value(n, qubits, chunk, total_c)
        out = []
        nbytes = 0
        for table in tables:
            t = np.ascontiguousarray(table.T)
            t.setflags(write=False)
            nbytes += t.nbytes
            out.append(t)
        return tuple(out), nbytes

    def gather_inverse(
        self, n: int, qubits: Sequence[int], chunk_size: int | None
    ) -> np.ndarray:
        """Inverse permutation of the single-block column-major table.

        When one block covers the whole ``c`` range, the gather table's
        flattened entries visit every state index exactly once, so the
        write-back is a pure permutation: ``state[i] = product.flat[inv[i]]``
        — a sequential-output ``np.take`` instead of a fancy-index
        scatter (measured ~2.5x faster per write-back).  Only defined for
        the single-block case; chunked sweeps must scatter per block.
        """
        key, chunk, total_c = self._gather_inverse_key(n, qubits, chunk_size)
        with self._lock:
            entry = self._lookup(key)
            if entry is not None:
                return entry[0]
            value, nbytes = self._build_gather_inverse(n, key[2], total_c)
            self._insert(key, value, nbytes)
            return value

    @staticmethod
    def _gather_inverse_key(
        n: int, qubits: Sequence[int], chunk_size: int | None
    ) -> tuple[tuple, int, int]:
        qubits = tuple(int(q) for q in qubits)
        total_c = 1 << (n - len(qubits))
        chunk = total_c if chunk_size is None else min(int(chunk_size), total_c)
        if chunk != total_c:
            raise ValueError(
                "gather_inverse is only defined when one block covers the "
                f"whole c range (chunk {chunk} < total {total_c})"
            )
        return ("gatherI", n, qubits, chunk), chunk, total_c

    @classmethod
    def _build_gather_inverse(
        cls, n: int, qubits: tuple[int, ...], total_c: int
    ) -> tuple[np.ndarray, int]:
        (table,), _ = cls._build_gather_value_t(n, qubits, total_c, total_c)
        inv = np.argsort(table.reshape(-1)).astype(np.intp, copy=False)
        inv.setflags(write=False)
        return inv, inv.nbytes

    def diagonal_factor(
        self, n: int, qubits: Sequence[int], diag: np.ndarray
    ) -> np.ndarray:
        """The broadcastable phase tensor for a diagonal gate, memoized.

        Keyed on ``(n, qubits, diag bytes)`` so repeated CZ/T layers (and
        every rank of a sharded state) reuse one tensor.
        """
        qubits = tuple(int(q) for q in qubits)
        diag = np.asarray(diag)
        key = ("diag", n, qubits, diag.dtype.str, diag.tobytes())
        with self._lock:
            entry = self._lookup(key)
            if entry is not None:
                return entry[0]
            factor = _build_diagonal_factor(diag, qubits, n)
            factor.setflags(write=False)
            self._insert(key, factor, factor.nbytes)
            return factor

    def lift_index_table(
        self, union_qubits: int, positions: Sequence[int]
    ) -> np.ndarray:
        """Bit-extraction indices for lifting a diagonal into a union space.

        Entry ``x`` of the returned ``2**union_qubits`` array is the
        compact index formed by the bits of ``x`` at *positions* — i.e.
        ``diag[table]`` is the diagonal lifted onto the fused union.
        Memoized on ``(union size, positions)`` so repeated fusions of
        the same qubit sets (every CZ layer of a supremacy circuit)
        share one table.
        """
        from repro.util.bits import extract_bits

        positions = tuple(int(p) for p in positions)
        key = ("lift", int(union_qubits), positions)
        with self._lock:
            entry = self._lookup(key)
            if entry is not None:
                return entry[0]
            table = extract_bits(
                np.arange(1 << union_qubits, dtype=np.int64), positions
            )
            table.setflags(write=False)
            self._insert(key, table, table.nbytes)
            return table

    def bit_permutation(
        self, n: int, perm_bits: Sequence[int]
    ) -> np.ndarray:
        """Gather indices realizing a local-bit permutation, memoized.

        ``perm_bits[i] = src`` means destination bit ``i`` takes its
        value from source bit ``src``; the returned ``2**n`` index array
        applies the whole permutation as one ``np.take``.  The staging
        swap uses this to collapse a chain of pairwise local swaps into
        a single gather per rank, and supremacy schedules repeat the
        same swap sets every stage, so the table is shared across stages
        and ranks alike.
        """
        perm_bits = tuple(int(b) for b in perm_bits)
        key = ("bitperm", int(n), perm_bits)
        with self._lock:
            entry = self._lookup(key)
            if entry is not None:
                return entry[0]
            ar = np.arange(1 << n, dtype=np.int64)
            perm = np.zeros_like(ar)
            for i, src in enumerate(perm_bits):
                perm |= ((ar >> i) & 1) << src
            perm.setflags(write=False)
            self._insert(key, perm, perm.nbytes)
            return perm

    # ------------------------------------------------------------------
    # Silent warm-up (pipeline lookahead prefetch)
    # ------------------------------------------------------------------
    def warm_gather_tables(
        self, n: int, qubits: Sequence[int], chunk_size: int | None
    ) -> bool:
        """Build-if-absent *without* touching the hit/miss counters.

        The pipeline layer's background prefetch warms the next op's
        tables through this so ``plan.cache.hits`` / ``misses`` (and the
        ``--plan-stats`` payload) stay bit-identical with and without
        pipelining; the later real lookup records the hit.  Returns
        ``True`` when the entry was already cached.  LRU order is left
        untouched on a warm hit — the real lookup refreshes it.
        """
        key, chunk, total_c = self._gather_key(n, qubits, chunk_size)
        with self._lock:
            if key in self._entries:
                return True
            value, nbytes = self._build_gather_value(n, key[2], chunk, total_c)
            self._insert_silent(key, value, nbytes)
            return False

    def warm_gather_tables_t(
        self, n: int, qubits: Sequence[int], chunk_size: int | None
    ) -> bool:
        """Counter-neutral build-if-absent twin of :meth:`gather_tables_t`."""
        key, chunk, total_c = self._gather_key_t(n, qubits, chunk_size)
        with self._lock:
            if key in self._entries:
                return True
            value, nbytes = self._build_gather_value_t(
                n, key[2], chunk, total_c
            )
            self._insert_silent(key, value, nbytes)
            return False

    def warm_gather_inverse(
        self, n: int, qubits: Sequence[int], chunk_size: int | None
    ) -> bool:
        """Counter-neutral build-if-absent twin of :meth:`gather_inverse`.

        Returns ``True`` (nothing to build) for chunked sweeps, where the
        inverse is undefined and the kernel scatters per block.
        """
        try:
            key, chunk, total_c = self._gather_inverse_key(
                n, qubits, chunk_size
            )
        except ValueError:
            return True
        with self._lock:
            if key in self._entries:
                return True
            value, nbytes = self._build_gather_inverse(n, key[2], total_c)
            self._insert_silent(key, value, nbytes)
            return False

    def warm_bit_permutation(
        self, n: int, perm_bits: Sequence[int]
    ) -> bool:
        """Counter-neutral build-if-absent twin of :meth:`bit_permutation`."""
        perm_bits = tuple(int(b) for b in perm_bits)
        key = ("bitperm", int(n), perm_bits)
        with self._lock:
            if key in self._entries:
                return True
            ar = np.arange(1 << n, dtype=np.int64)
            perm = np.zeros_like(ar)
            for i, src in enumerate(perm_bits):
                perm |= ((ar >> i) & 1) << src
            perm.setflags(write=False)
            self._insert_silent(key, perm, perm.nbytes)
            return False

    def warm_diagonal_factor(
        self, n: int, qubits: Sequence[int], diag: np.ndarray
    ) -> bool:
        """Counter-neutral build-if-absent twin of :meth:`diagonal_factor`.

        *diag* must already carry the dtype the kernel will look up with
        (the state dtype) — the key includes the dtype string and raw
        bytes, so a float64 warm would never serve a complex128 lookup.
        """
        qubits = tuple(int(q) for q in qubits)
        diag = np.asarray(diag)
        key = ("diag", n, qubits, diag.dtype.str, diag.tobytes())
        with self._lock:
            if key in self._entries:
                return True
            factor = _build_diagonal_factor(diag, qubits, n)
            factor.setflags(write=False)
            self._insert_silent(key, factor, factor.nbytes)
            return False

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Consistent counters snapshot (the ``--plan-stats`` payload)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
                "entries": len(self._entries),
                "capacity": self.capacity,
                "bytes_cached": self.bytes_cached,
                "bytes_saved": self.bytes_saved,
            }

    def clear(self) -> None:
        """Drop every entry and reset all counters."""
        with self._lock:
            self._entries.clear()
            self._uncounted.clear()
            self.hits = self.misses = 0
            self.bytes_cached = self.bytes_saved = self.prefetched = 0

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide default cache: every rank of every state shares it, which
#: is exactly what makes the tables worth memoizing.
GATHER_CACHE = GatherTableCache()
