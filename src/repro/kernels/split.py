"""Split real/imaginary kernel — the paper's FMA trick, BLAS edition.

Sec. 3.2 rewrites the complex update

    (v~R, v~I) += (vR*mR - vI*mI,  vI*mR + vR*mI)

as two fused multiply-accumulates against the pre-computed factor pairs
``(mR, mR)`` and ``(-mI, mI)``.  The numpy translation: perform the
complex panel product as four *real* GEMMs on the separated real and
imaginary parts,

    outR = mR @ gR - mI @ gI
    outI = mR @ gI + mI @ gR

which dispatches to dgemm instead of zgemm.  Depending on the BLAS
build, real arithmetic can beat the complex path — which is exactly why
the autotuner (not a human guess) picks the winner per shape.  As in the
paper, the split matrices are pre-computed once per gate and reused for
all ``2**(n-k)`` panel products.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.kernels.apply import _gather_indices
from repro.util.bits import bit_length_of_power_of_two
from repro.util.validation import check_qubit_indices

__all__ = ["SplitGateMatrix", "apply_gate_split_real"]


class SplitGateMatrix:
    """A gate matrix pre-split into contiguous real and imaginary parts.

    The pre-computation the paper describes as "essentially free": done
    once per gate, amortised over every panel product.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square, got {matrix.shape}")
        self.dim = matrix.shape[0]
        self.real = np.ascontiguousarray(matrix.real)
        self.imag = np.ascontiguousarray(matrix.imag)
        #: purely-real gates (X, H, CZ, ...) skip half the GEMMs.
        self.imag_is_zero = bool(np.allclose(self.imag, 0.0))

    def panel_product(self, panel: np.ndarray) -> np.ndarray:
        """``matrix @ panel`` via real GEMMs."""
        g_real = np.ascontiguousarray(panel.real)
        g_imag = np.ascontiguousarray(panel.imag)
        if self.imag_is_zero:
            out_real = self.real @ g_real
            out_imag = self.real @ g_imag
        else:
            out_real = self.real @ g_real - self.imag @ g_imag
            out_imag = self.real @ g_imag + self.imag @ g_real
        return out_real + 1j * out_imag


def apply_gate_split_real(
    state: np.ndarray,
    matrix: np.ndarray | SplitGateMatrix,
    qubits: Sequence[int],
    *,
    chunk_size: int | None = 1 << 14,
) -> np.ndarray:
    """In-place k-qubit gate application via split-real panel products.

    Drop-in alternative to :func:`repro.kernels.apply_gate_indexed`; the
    autotuner benchmarks both.
    """
    n = bit_length_of_power_of_two(state.shape[0])
    qubits = check_qubit_indices(qubits, n)
    k = len(qubits)
    split = matrix if isinstance(matrix, SplitGateMatrix) else SplitGateMatrix(matrix)
    if split.dim != 1 << k:
        raise ValueError(
            f"matrix dimension {split.dim} inconsistent with {k} qubits"
        )
    total_c = 1 << (n - k)
    chunk = total_c if chunk_size is None else min(chunk_size, total_c)
    for c_start in range(0, total_c, chunk):
        c_stop = min(c_start + chunk, total_c)
        idx = _gather_indices(n, qubits, c_start, c_stop)
        state[idx] = split.panel_product(state[idx])
    return state
