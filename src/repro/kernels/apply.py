"""Gate-application kernels over numpy state vectors.

Index conventions (little-endian) follow Sec. 2/3.2 of the paper: state
index bit ``q`` is the value of qubit ``q``; a gate bound to qubits
``(q0, .., q_{k-1})`` uses matrix row/column bit ``j`` for qubit ``qj``.

The hot kernels are allocation-free in steady state: gather-index tables
and diagonal phase tensors come from the process-wide
:data:`~repro.kernels.tables.GATHER_CACHE`, and the gather/product panels
are preallocated per-thread buffers reused across calls via
``np.take(..., out=)`` / ``np.matmul(..., out=)``.
"""

from __future__ import annotations

import json
import re
import threading
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.kernels.tables import GATHER_CACHE, GatherTableCache
from repro.util.bits import bit_length_of_power_of_two
from repro.util.validation import check_qubit_indices

__all__ = [
    "apply_gate_naive",
    "apply_gate_reference",
    "apply_gate_indexed",
    "apply_gate_two_vector",
    "apply_diagonal_gate",
    "apply_fused_kernel",
    "apply_gate",
    "matrix_is_diagonal",
]

#: Fallback block size when no autotune record is available.  4096 ``c``
#: substrings keep a k=2 gather panel (32 KiB per complex128 row set)
#: comfortably inside the last-level cache.
_FALLBACK_CHUNK = 1 << 12


def _autotuned_default_chunk() -> int:
    """Read the winning chunk size from the checked-in autotune record.

    ``benchmarks/results/BENCH_kernels_autotune.json`` names its winner
    e.g. ``"indexed[chunk=4096]"``; any failure falls back to
    :data:`_FALLBACK_CHUNK` so the kernels never depend on the benchmark
    tree being present.
    """
    record = (
        Path(__file__).resolve().parents[3]
        / "benchmarks"
        / "results"
        / "BENCH_kernels_autotune.json"
    )
    try:
        winner = json.loads(record.read_text())["metrics"]["winner"]
        match = re.search(r"chunk=(\d+)", str(winner))
        if match:
            return int(match.group(1))
    except (OSError, ValueError, KeyError, TypeError):
        pass
    return _FALLBACK_CHUNK


#: Default number of ``c`` substrings processed per block in the indexed
#: kernel.  Sourced from the autotune benchmark record so the shipped
#: default tracks what actually wins on this host class.
DEFAULT_CHUNK = _autotuned_default_chunk()

#: Sentinel meaning "use the process-wide table cache".
_DEFAULT_CACHE = GATHER_CACHE

_panel_buffers = threading.local()


def _panels_t(
    k: int, block: int, dtype: np.dtype
) -> tuple[np.ndarray, np.ndarray]:
    """Per-thread reusable (gathered, product) panels of shape (block, 2**k).

    Keyed on the exact shape so the buffers stay contiguous (``np.take`` /
    ``np.matmul`` with ``out=`` skip their buffered fallbacks); a chunked
    sweep uses at most two shapes (full block + remainder).
    """
    pool = getattr(_panel_buffers, "pool_t", None)
    if pool is None:
        pool = _panel_buffers.pool_t = {}
    key = (k, block, dtype.str)
    bufs = pool.get(key)
    if bufs is None:
        bufs = (
            np.empty((block, 1 << k), dtype=dtype),
            np.empty((block, 1 << k), dtype=dtype),
        )
        pool[key] = bufs
    return bufs


def _num_qubits_of(state: np.ndarray) -> int:
    if state.ndim != 1:
        raise ValueError(f"state must be 1-D, got shape {state.shape}")
    return bit_length_of_power_of_two(state.shape[0])


def apply_gate_naive(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Correctness oracle: explicit Python loop over every state index.

    O(2**n * 4**k) Python-level work — use only for n ≲ 12.
    """
    n = _num_qubits_of(state)
    qubits = check_qubit_indices(qubits, n)
    k = len(qubits)
    out = np.zeros_like(state)
    for idx in range(state.shape[0]):
        x = 0
        for j, q in enumerate(qubits):
            x |= ((idx >> q) & 1) << j
        base = idx
        for q in qubits:
            base &= ~(1 << q)
        for xp in range(1 << k):
            src = base
            for j, q in enumerate(qubits):
                src |= ((xp >> j) & 1) << q
            out[idx] += matrix[x, xp] * state[src]
    state[:] = out
    return state


def apply_gate_reference(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Tensor-contraction kernel via :func:`numpy.tensordot` (in place).

    Reshapes the state to an n-axis tensor (axis ``i`` = qubit ``n-1-i``)
    and contracts the gate over the target axes.  Fast and allocation-heavy
    (one full temporary) — the "two state vectors" baseline of Sec. 3.1
    expressed in idiomatic numpy.
    """
    n = _num_qubits_of(state)
    qubits = check_qubit_indices(qubits, n)
    k = len(qubits)
    psi = state.reshape((2,) * n)
    gate_tensor = np.asarray(matrix, dtype=state.dtype).reshape((2,) * (2 * k))
    # Column (input) axis for gate bit j sits at 2k-1-j; state axis for
    # qubit q sits at n-1-q.
    col_axes = [2 * k - 1 - j for j in range(k)]
    state_axes = [n - 1 - q for q in qubits]
    out = np.tensordot(gate_tensor, psi, axes=(col_axes, state_axes))
    # Row axes of ``out`` are [bit k-1, ..., bit 0] = qubits reversed.
    out = np.moveaxis(out, range(k), [n - 1 - q for q in reversed(qubits)])
    state[:] = out.reshape(-1)
    return state


def apply_gate_two_vector(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Standard two-vector implementation (Sec. 3.1): returns a NEW array.

    Unlike the in-place kernels this does not mutate *state*; it models the
    pre-optimization baseline that streams an input and an output vector.
    """
    out = state.copy()
    apply_gate_reference(out, matrix, qubits)
    return out


def _gather_indices(
    n: int, qubits: Sequence[int], c_start: int, c_stop: int
) -> np.ndarray:
    """Indices of shape ``(2**k, c_stop-c_start)`` for the indexed kernel.

    Column ``m`` holds the ``2**k`` state indices participating in the
    matrix-vector product for ``c = c_start + m`` (Sec. 3.2); row ``x`` is
    the entry whose target-qubit bits spell ``x``.
    """
    from repro.kernels.tables import _build_gather_table

    return _build_gather_table(n, qubits, c_start, c_stop)


def apply_gate_indexed(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    *,
    chunk_size: int | None = None,
    cache: GatherTableCache | None = _DEFAULT_CACHE,
) -> np.ndarray:
    """The paper's kernel: gather / small matmul / scatter, in place.

    For each block of ``c`` index substrings, gathers a ``(block, 2**k)``
    panel of amplitudes, multiplies by the transposed ``2**k x 2**k`` gate
    matrix (one BLAS call covering ``block`` matrix-vector products at
    once), and scatters the result back.  ``chunk_size`` is the number of
    ``c`` values per block — the numpy analogue of the paper's
    register/MCDRAM blocking.  The column-major orientation keeps the
    gather/scatter walking the state nearly sequentially, and is shared
    bit-for-bit with the batched multi-rank sweep
    (:func:`apply_fused_kernel`), so traced per-rank and batched
    executions of the same op agree exactly.

    Gather-index tables come from *cache* (default: the process-wide
    :data:`~repro.kernels.tables.GATHER_CACHE`; pass ``None`` to rebuild
    per call), and the gather/product panels are per-thread buffers reused
    across calls, so the steady-state loop allocates nothing.
    """
    n = _num_qubits_of(state)
    qubits = check_qubit_indices(qubits, n)
    k = len(qubits)
    matrix_t = np.ascontiguousarray(
        np.asarray(matrix, dtype=state.dtype).T
    )
    total_c = 1 << (n - k)
    chunk = total_c if chunk_size is None else min(chunk_size, total_c)
    if cache is not None:
        tables = cache.gather_tables_t(n, qubits, chunk)
    else:
        tables = tuple(
            np.ascontiguousarray(
                _gather_indices(
                    n, qubits, c_start, min(c_start + chunk, total_c)
                ).T
            )
            for c_start in range(0, total_c, chunk)
        )
    inverse = _gather_inverse_of(tables, n, qubits, chunk, cache)
    real_w = (
        _real_gemm_operand(matrix_t) if k <= _REAL_GEMM_MAX_QUBITS else None
    )
    for idx in tables:
        gathered, product = _panels_t(k, idx.shape[0], state.dtype)
        np.take(state, idx, out=gathered, mode="clip")
        if real_w is not None:
            np.matmul(
                gathered.view(np.float64), real_w,
                out=product.view(np.float64),
            )
        else:
            np.matmul(gathered, matrix_t, out=product)
        if inverse is not None:
            np.take(product.reshape(-1), inverse, out=state, mode="clip")
        else:
            state[idx] = product
    return state


def _diagonal_factor_tensor(
    diag: np.ndarray, qubits: Sequence[int], n: int
) -> np.ndarray:
    """Broadcastable tensor of per-amplitude phases for a diagonal gate."""
    from repro.kernels.tables import _build_diagonal_factor

    return _build_diagonal_factor(diag, qubits, n)


def apply_diagonal_gate(
    state: np.ndarray,
    diag: np.ndarray,
    qubits: Sequence[int],
    *,
    cache: GatherTableCache | None = _DEFAULT_CACHE,
) -> np.ndarray:
    """Apply a diagonal gate given its diagonal (length ``2**k``), in place.

    One complex multiply per amplitude — no index gather, no temporary of
    state size.  This is the specialization that makes CZ and T gates
    (Sec. 3.5) cheap even locally.  The memoized phase factor (from
    *cache*; pass ``None`` to rebuild per call) is either a flat ``2**n``
    vector — one contiguous SIMD multiply — or, for states too large to
    expand, a broadcastable tensor over the ``(2,)*n`` view.
    """
    n = _num_qubits_of(state)
    qubits = check_qubit_indices(qubits, n)
    diag = np.asarray(diag, dtype=state.dtype)
    if cache is not None:
        factor = cache.diagonal_factor(n, qubits, diag)
    else:
        factor = _diagonal_factor_tensor(diag, qubits, n)
    if factor.ndim == 1:
        state *= factor
    else:
        psi = state.reshape((2,) * n)
        psi *= factor
    return state


#: Widest gate for which the real-block GEMM beats complex GEMM on the
#: reference host (small inner dimensions leave zgemm overhead-bound;
#: from k=4 up the two are within noise of each other).
_REAL_GEMM_MAX_QUBITS = 3


def _real_gemm_operand(matrix_t: np.ndarray) -> np.ndarray | None:
    """Real block matrix ``W`` with ``(g.view(f8) @ W).view(c16) == g @ matrix_t``.

    Interleaved re/im columns: for ``y = x @ M`` with ``M = A + iB``,
    ``Re y_i = sum_j (Re x_j * A_ji - Im x_j * B_ji)`` and
    ``Im y_i = sum_j (Re x_j * B_ji + Im x_j * A_ji)`` — each complex
    product contributes two adjacent real terms, so one dgemm over the
    float64 view computes the whole panel.  Only used for small gates
    (see :data:`_REAL_GEMM_MAX_QUBITS`); returns ``None`` for dtypes
    other than complex128.
    """
    if matrix_t.dtype != np.complex128:
        return None
    d = matrix_t.shape[0]
    w = np.empty((2 * d, 2 * d), dtype=np.float64)
    w[0::2, 0::2] = matrix_t.real
    w[1::2, 0::2] = -matrix_t.imag
    w[0::2, 1::2] = matrix_t.imag
    w[1::2, 1::2] = matrix_t.real
    return w


def _gather_inverse_of(tables, n, qubits, chunk, cache):
    """Inverse write-back permutation, or ``None`` for chunked sweeps.

    When one block covers the whole ``c`` range the flattened gather
    table visits every state index exactly once, so the write-back
    ``state[idx] = product`` is a pure permutation — expressible as a
    sequential-output ``np.take`` of the product panel, which is
    measurably faster than the fancy-index scatter.  The values written
    are identical either way, so bit-exactness is unaffected.
    """
    if len(tables) != 1:
        return None
    if cache is not None:
        return cache.gather_inverse(n, qubits, chunk)
    return np.argsort(tables[0].reshape(-1)).astype(np.intp, copy=False)


def apply_fused_kernel(
    storage,
    num_ranks: int,
    matrix: np.ndarray,
    qubits: Sequence[int],
    n: int,
    *,
    chunk_size: int | None = None,
    cache: GatherTableCache | None = _DEFAULT_CACHE,
    sync=None,
) -> None:
    """Batched apply path: one dense op swept over every rank's shard.

    The per-call work of :func:`apply_gate_indexed` — gather-table
    lookup, matrix dtype/contiguity fixup, panel-buffer resolution — is
    hoisted out of the rank loop, so applying one (possibly fused
    multi-op) ``2**k`` unitary to ``2**g`` shards pays it once instead
    of ``2**g`` times.  *storage* provides ``get(rank) -> shard`` (each
    a ``2**n`` vector); *sync* (optional) is called with each shard
    after its sweep, mirroring ``DistributedState._sync``.

    This is the executor path for ``exec_kind="fused_kernel"`` plan ops
    and for pre-resolved indexed kernels on multi-rank states.
    """
    qubits = check_qubit_indices(qubits, n)
    k = len(qubits)
    total_c = 1 << (n - k)
    chunk = total_c if chunk_size is None else min(chunk_size, total_c)
    first = storage.get(0)
    # Column-major sweep: tables of shape (block, 2**k) list each c
    # substring's amplitudes contiguously, so take/scatter walk the
    # shard nearly sequentially; gathered @ matrix.T computes the same
    # dot products bit-for-bit as matrix @ gathered row-major.
    matrix_t = np.ascontiguousarray(
        np.asarray(matrix, dtype=first.dtype).T
    )
    if cache is not None:
        tables = cache.gather_tables_t(n, qubits, chunk)
    else:
        tables = tuple(
            np.ascontiguousarray(
                _gather_indices(
                    n, qubits, c_start, min(c_start + chunk, total_c)
                ).T
            )
            for c_start in range(0, total_c, chunk)
        )
    panels = [
        (idx, *_panels_t(k, idx.shape[0], first.dtype)) for idx in tables
    ]
    inverse = _gather_inverse_of(tables, n, qubits, chunk, cache)
    real_w = (
        _real_gemm_operand(matrix_t) if k <= _REAL_GEMM_MAX_QUBITS else None
    )

    def _panel_matmul(gathered, product):
        if real_w is not None:
            np.matmul(
                gathered.view(np.float64), real_w,
                out=product.view(np.float64),
            )
        else:
            np.matmul(gathered, matrix_t, out=product)

    for rank in range(num_ranks):
        shard = first if rank == 0 else storage.get(rank)
        if inverse is not None:
            idx, gathered, product = panels[0]
            np.take(shard, idx, out=gathered, mode="clip")
            _panel_matmul(gathered, product)
            np.take(product.reshape(-1), inverse, out=shard, mode="clip")
        else:
            for idx, gathered, product in panels:
                np.take(shard, idx, out=gathered, mode="clip")
                _panel_matmul(gathered, product)
                shard[idx] = product
        if sync is not None:
            sync(shard)


def matrix_is_diagonal(matrix: np.ndarray, *, atol: float = 1e-12) -> bool:
    """True when every off-diagonal entry of *matrix* is ~0."""
    matrix = np.asarray(matrix)
    off_diag = matrix[~np.eye(matrix.shape[0], dtype=bool)]
    return bool(np.allclose(off_diag, 0.0, atol=atol))


def apply_gate(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    *,
    strategy: str = "auto",
    chunk_size: int | None = None,
    diagonal: bool | None = None,
    cache: GatherTableCache | None = _DEFAULT_CACHE,
) -> np.ndarray:
    """Apply a gate matrix choosing a kernel strategy.

    ``strategy`` is one of ``"auto"``, ``"naive"``, ``"reference"``,
    ``"indexed"``, ``"diagonal"``.  ``"auto"`` picks the diagonal fast path
    when the matrix is diagonal, the indexed kernel for k ≤ 6, and the
    tensordot kernel otherwise.

    ``diagonal`` is an optional structure hint (e.g. from
    :class:`~repro.gates.Gate` metadata): when given, ``"auto"`` trusts it
    instead of scanning the matrix with ``np.allclose`` per call.
    """
    matrix = np.asarray(matrix)
    if strategy == "auto":
        if diagonal is None:
            diagonal = matrix_is_diagonal(matrix)
        if diagonal:
            return apply_diagonal_gate(
                state, np.diagonal(matrix), qubits, cache=cache
            )
        if len(qubits) <= 6:
            return apply_gate_indexed(
                state, matrix, qubits,
                chunk_size=chunk_size or DEFAULT_CHUNK, cache=cache,
            )
        return apply_gate_reference(state, matrix, qubits)
    if strategy == "naive":
        return apply_gate_naive(state, matrix, qubits)
    if strategy == "reference":
        return apply_gate_reference(state, matrix, qubits)
    if strategy in ("indexed", "fused"):
        # "fused" marks a batched multi-op kernel in compiled plans; on a
        # single shard it reduces to the indexed gather/matmul/scatter.
        return apply_gate_indexed(
            state, matrix, qubits, chunk_size=chunk_size, cache=cache
        )
    if strategy == "diagonal":
        return apply_diagonal_gate(state, np.diagonal(matrix), qubits, cache=cache)
    raise ValueError(f"unknown kernel strategy {strategy!r}")
