"""Gate-application kernels over numpy state vectors.

Index conventions (little-endian) follow Sec. 2/3.2 of the paper: state
index bit ``q`` is the value of qubit ``q``; a gate bound to qubits
``(q0, .., q_{k-1})`` uses matrix row/column bit ``j`` for qubit ``qj``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.bits import (
    bit_length_of_power_of_two,
    insert_zero_bits,
    scatter_bits,
)
from repro.util.validation import check_qubit_indices

__all__ = [
    "apply_gate_naive",
    "apply_gate_reference",
    "apply_gate_indexed",
    "apply_gate_two_vector",
    "apply_diagonal_gate",
    "apply_gate",
]

#: Default number of ``c`` substrings processed per block in the indexed
#: kernel.  Chosen so a block's gather buffer stays comfortably inside the
#: last-level cache; overridable (and autotuned by :mod:`repro.codegen`).
DEFAULT_CHUNK = 1 << 16


def _num_qubits_of(state: np.ndarray) -> int:
    if state.ndim != 1:
        raise ValueError(f"state must be 1-D, got shape {state.shape}")
    return bit_length_of_power_of_two(state.shape[0])


def apply_gate_naive(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Correctness oracle: explicit Python loop over every state index.

    O(2**n * 4**k) Python-level work — use only for n ≲ 12.
    """
    n = _num_qubits_of(state)
    qubits = check_qubit_indices(qubits, n)
    k = len(qubits)
    out = np.zeros_like(state)
    for idx in range(state.shape[0]):
        x = 0
        for j, q in enumerate(qubits):
            x |= ((idx >> q) & 1) << j
        base = idx
        for q in qubits:
            base &= ~(1 << q)
        for xp in range(1 << k):
            src = base
            for j, q in enumerate(qubits):
                src |= ((xp >> j) & 1) << q
            out[idx] += matrix[x, xp] * state[src]
    state[:] = out
    return state


def apply_gate_reference(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Tensor-contraction kernel via :func:`numpy.tensordot` (in place).

    Reshapes the state to an n-axis tensor (axis ``i`` = qubit ``n-1-i``)
    and contracts the gate over the target axes.  Fast and allocation-heavy
    (one full temporary) — the "two state vectors" baseline of Sec. 3.1
    expressed in idiomatic numpy.
    """
    n = _num_qubits_of(state)
    qubits = check_qubit_indices(qubits, n)
    k = len(qubits)
    psi = state.reshape((2,) * n)
    gate_tensor = np.asarray(matrix, dtype=state.dtype).reshape((2,) * (2 * k))
    # Column (input) axis for gate bit j sits at 2k-1-j; state axis for
    # qubit q sits at n-1-q.
    col_axes = [2 * k - 1 - j for j in range(k)]
    state_axes = [n - 1 - q for q in qubits]
    out = np.tensordot(gate_tensor, psi, axes=(col_axes, state_axes))
    # Row axes of ``out`` are [bit k-1, ..., bit 0] = qubits reversed.
    out = np.moveaxis(out, range(k), [n - 1 - q for q in reversed(qubits)])
    state[:] = out.reshape(-1)
    return state


def apply_gate_two_vector(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Standard two-vector implementation (Sec. 3.1): returns a NEW array.

    Unlike the in-place kernels this does not mutate *state*; it models the
    pre-optimization baseline that streams an input and an output vector.
    """
    out = state.copy()
    apply_gate_reference(out, matrix, qubits)
    return out


def _gather_indices(
    n: int, qubits: Sequence[int], c_start: int, c_stop: int
) -> np.ndarray:
    """Indices of shape ``(2**k, c_stop-c_start)`` for the indexed kernel.

    Column ``m`` holds the ``2**k`` state indices participating in the
    matrix-vector product for ``c = c_start + m`` (Sec. 3.2); row ``x`` is
    the entry whose target-qubit bits spell ``x``.
    """
    k = len(qubits)
    sorted_pos = sorted(qubits)
    c = np.arange(c_start, c_stop, dtype=np.int64)
    base = insert_zero_bits(c, sorted_pos)
    offsets = scatter_bits(np.arange(1 << k, dtype=np.int64), list(qubits))
    return offsets[:, None] + base[None, :]


def apply_gate_indexed(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    *,
    chunk_size: int | None = None,
) -> np.ndarray:
    """The paper's kernel: gather / small matmul / scatter, in place.

    For each block of ``c`` index substrings, gathers a ``(2**k, block)``
    panel of amplitudes, multiplies by the ``2**k x 2**k`` gate matrix
    (one BLAS call covering ``block`` matrix-vector products at once), and
    scatters the result back.  ``chunk_size`` is the number of ``c`` values
    per block — the numpy analogue of the paper's register/MCDRAM blocking.
    """
    n = _num_qubits_of(state)
    qubits = check_qubit_indices(qubits, n)
    k = len(qubits)
    matrix = np.ascontiguousarray(matrix, dtype=state.dtype)
    total_c = 1 << (n - k)
    chunk = total_c if chunk_size is None else min(chunk_size, total_c)
    for c_start in range(0, total_c, chunk):
        c_stop = min(c_start + chunk, total_c)
        idx = _gather_indices(n, qubits, c_start, c_stop)
        gathered = state[idx]
        state[idx] = matrix @ gathered
    return state


def _diagonal_factor_tensor(
    diag: np.ndarray, qubits: Sequence[int], n: int
) -> np.ndarray:
    """Broadcastable tensor of per-amplitude phases for a diagonal gate."""
    k = len(qubits)
    d_t = np.asarray(diag).reshape((2,) * k)
    # d_t axis a corresponds to qubit qubits[k-1-a]; transpose to descending
    # qubit order so it lines up with the state tensor's axis layout.
    qubit_of_axis = [qubits[k - 1 - a] for a in range(k)]
    order = np.argsort(qubit_of_axis)[::-1]
    d_t = np.transpose(d_t, order)
    shape = []
    qs = sorted(qubits, reverse=True)
    qi = 0
    for bit in range(n - 1, -1, -1):
        if qi < k and qs[qi] == bit:
            shape.append(2)
            qi += 1
        else:
            shape.append(1)
    return d_t.reshape(shape)


def apply_diagonal_gate(
    state: np.ndarray, diag: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Apply a diagonal gate given its diagonal (length ``2**k``), in place.

    One complex multiply per amplitude via broadcasting — no index gather,
    no temporary of state size.  This is the specialization that makes CZ
    and T gates (Sec. 3.5) cheap even locally.
    """
    n = _num_qubits_of(state)
    qubits = check_qubit_indices(qubits, n)
    factor = _diagonal_factor_tensor(np.asarray(diag, dtype=state.dtype), qubits, n)
    psi = state.reshape((2,) * n)
    psi *= factor
    return state


def apply_gate(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    *,
    strategy: str = "auto",
    chunk_size: int | None = None,
) -> np.ndarray:
    """Apply a gate matrix choosing a kernel strategy.

    ``strategy`` is one of ``"auto"``, ``"naive"``, ``"reference"``,
    ``"indexed"``, ``"diagonal"``.  ``"auto"`` picks the diagonal fast path
    when the matrix is diagonal, the indexed kernel for k ≤ 6, and the
    tensordot kernel otherwise.
    """
    matrix = np.asarray(matrix)
    if strategy == "auto":
        off_diag = matrix - np.diag(np.diagonal(matrix))
        if np.allclose(off_diag, 0.0, atol=1e-12):
            return apply_diagonal_gate(state, np.diagonal(matrix), qubits)
        if len(qubits) <= 6:
            return apply_gate_indexed(
                state, matrix, qubits, chunk_size=chunk_size or DEFAULT_CHUNK
            )
        return apply_gate_reference(state, matrix, qubits)
    if strategy == "naive":
        return apply_gate_naive(state, matrix, qubits)
    if strategy == "reference":
        return apply_gate_reference(state, matrix, qubits)
    if strategy == "indexed":
        return apply_gate_indexed(state, matrix, qubits, chunk_size=chunk_size)
    if strategy == "diagonal":
        return apply_diagonal_gate(state, np.diagonal(matrix), qubits)
    raise ValueError(f"unknown kernel strategy {strategy!r}")
