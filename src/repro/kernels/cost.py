"""Cost accounting for kernel invocations.

Tracks FLOPs, bytes and call counts so simulators can report achieved
GFLOPS and operational intensity the same way the paper's Sec. 4 does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.flops import GateCost

__all__ = ["kernel_cost", "KernelCostModel"]


def kernel_cost(num_qubits: int, gate_qubits: int, *, diagonal: bool = False) -> GateCost:
    """Cost of one kernel call on a ``2**num_qubits`` state vector."""
    return GateCost.for_gate(num_qubits, gate_qubits, diagonal=diagonal)


@dataclass
class KernelCostModel:
    """Accumulates the cost of a sequence of kernel calls.

    Attach one to a simulator to obtain, after a run, total FLOPs, total
    memory traffic, per-kernel-size call counts, and the achieved GFLOPS
    for a measured wall time.
    """

    total_flops: int = 0
    total_bytes: int = 0
    calls_by_k: dict[int, int] = field(default_factory=dict)
    diagonal_calls: int = 0

    def record(self, num_qubits: int, gate_qubits: int, *, diagonal: bool = False) -> None:
        """Record one kernel call."""
        cost = kernel_cost(num_qubits, gate_qubits, diagonal=diagonal)
        self.total_flops += cost.flops
        self.total_bytes += cost.bytes
        self.calls_by_k[gate_qubits] = self.calls_by_k.get(gate_qubits, 0) + 1
        if diagonal:
            self.diagonal_calls += 1

    @property
    def total_calls(self) -> int:
        """Number of kernel invocations recorded."""
        return sum(self.calls_by_k.values())

    @property
    def intensity(self) -> float:
        """Aggregate operational intensity (FLOP/byte) of the run."""
        return self.total_flops / self.total_bytes if self.total_bytes else 0.0

    def gflops(self, seconds: float) -> float:
        """Achieved GFLOPS for a measured wall-clock duration."""
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        return self.total_flops / seconds / 1e9

    def merge(self, other: "KernelCostModel") -> None:
        """Fold another accumulator into this one (e.g. across ranks)."""
        self.total_flops += other.total_flops
        self.total_bytes += other.total_bytes
        self.diagonal_calls += other.diagonal_calls
        for k, count in other.calls_by_k.items():
            self.calls_by_k[k] = self.calls_by_k.get(k, 0) + count
