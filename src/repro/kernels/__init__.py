"""k-qubit gate application kernels (Secs. 3.1-3.2 of the paper).

Several strategies are provided, mirroring the paper's optimization steps:

* :func:`apply_gate_naive` — textbook per-index Python loop (two-vector).
  Only useful as a correctness oracle for tiny states.
* :func:`apply_gate_reference` — ``tensordot``-based application; numpy's
  analogue of the compiler's auto-vectorised baseline.
* :func:`apply_gate_indexed` — the paper's kernel: split every state index
  into the ``c`` substring and the ``x`` substring, gather the ``2**k``
  amplitudes of each matrix-vector product, multiply, scatter back
  in place.  Supports blocking over ``c`` (register/MCDRAM blocking
  stand-in) via ``chunk_size``.
* :func:`apply_diagonal_gate` — fast path for diagonal gates
  (CZ, T, Z, S): one complex multiply per amplitude, no gather.
* :func:`apply_fused_kernel` — batched multi-op path: one (possibly
  fused) unitary swept over every rank's shard with tables, matrix
  fixup and panel buffers resolved once for all ranks.
* :func:`apply_gate` — dispatcher choosing a strategy per gate structure.

All in-place kernels mutate ``state`` and also return it, so call sites can
chain or ignore the return value.
"""

from repro.kernels.apply import (
    DEFAULT_CHUNK,
    apply_diagonal_gate,
    apply_fused_kernel,
    apply_gate,
    apply_gate_indexed,
    apply_gate_naive,
    apply_gate_reference,
    apply_gate_two_vector,
    matrix_is_diagonal,
)
from repro.kernels.cost import KernelCostModel, kernel_cost
from repro.kernels.tables import GATHER_CACHE, GatherTableCache

__all__ = [
    "DEFAULT_CHUNK",
    "GATHER_CACHE",
    "GatherTableCache",
    "KernelCostModel",
    "apply_diagonal_gate",
    "apply_fused_kernel",
    "apply_gate",
    "apply_gate_indexed",
    "apply_gate_naive",
    "apply_gate_reference",
    "apply_gate_two_vector",
    "kernel_cost",
    "matrix_is_diagonal",
]
