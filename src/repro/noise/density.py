"""Exact density-matrix simulation (small systems).

The quantum-trajectory method scales; this does not (``4**n`` memory) —
but for small n it is *exact*, which makes it the ground truth the
trajectory ensemble must converge to.  ``DensityMatrixSimulator``
evolves ``rho`` through unitaries (``U rho U^dag``) and Kraus channels
(``sum_i K_i rho K_i^dag``) with the same gate-then-noise placement the
trajectory simulator uses, so the two are directly comparable.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import Circuit
from repro.gates.fusion import lift_gate_matrix
from repro.noise.channels import KrausChannel

__all__ = ["DensityMatrixSimulator", "DensityMatrix"]


class DensityMatrix:
    """A ``2**n x 2**n`` density operator."""

    def __init__(self, num_qubits: int, data: np.ndarray | None = None) -> None:
        if num_qubits > 10:
            raise ValueError(
                f"density matrices above 10 qubits are impractical "
                f"({num_qubits} requested)"
            )
        self.num_qubits = num_qubits
        dim = 1 << num_qubits
        if data is None:
            self.data = np.zeros((dim, dim), dtype=np.complex128)
            self.data[0, 0] = 1.0
        else:
            data = np.asarray(data, dtype=np.complex128)
            if data.shape != (dim, dim):
                raise ValueError(f"density matrix must be {dim}x{dim}")
            self.data = data.copy()

    # ------------------------------------------------------------------
    def trace(self) -> float:
        """``Tr(rho)`` (1.0 for a valid state)."""
        return float(np.trace(self.data).real)

    def purity(self) -> float:
        """``Tr(rho^2)``: 1 for pure states, ``1/2**n`` for fully mixed."""
        return float(np.trace(self.data @ self.data).real)

    def probabilities(self) -> np.ndarray:
        """The diagonal: computational-basis outcome probabilities."""
        return np.real(np.diagonal(self.data)).copy()

    def fidelity_with_pure(self, amplitudes: np.ndarray) -> float:
        """``<psi| rho |psi>`` against a pure state."""
        psi = np.asarray(amplitudes, dtype=np.complex128)
        return float(np.real(np.vdot(psi, self.data @ psi)))

    # ------------------------------------------------------------------
    def apply_unitary(self, matrix: np.ndarray, qubits) -> None:
        """``rho <- U rho U^dag`` with U lifted to the full space."""
        full = lift_gate_matrix(
            np.asarray(matrix, dtype=np.complex128),
            list(qubits),
            self.num_qubits,
        )
        self.data = full @ self.data @ full.conj().T

    def apply_channel(self, channel: KrausChannel, qubit: int) -> None:
        """``rho <- sum_i K_i rho K_i^dag`` on one qubit."""
        accumulated = np.zeros_like(self.data)
        for op in channel.operators:
            full = lift_gate_matrix(
                np.asarray(op, dtype=np.complex128), [qubit], self.num_qubits
            )
            accumulated += full @ self.data @ full.conj().T
        self.data = accumulated


class DensityMatrixSimulator:
    """Exact open-system evolution with per-gate single-qubit noise."""

    def __init__(self, num_qubits: int, channel: KrausChannel | None = None) -> None:
        if channel is not None and channel.dim != 2:
            raise ValueError("only single-qubit channels are supported")
        self.num_qubits = num_qubits
        self.channel = channel

    def run(self, circuit: Circuit) -> DensityMatrix:
        """Evolve ``|0...0><0...0|`` through *circuit* (+ noise)."""
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit size mismatch")
        rho = DensityMatrix(self.num_qubits)
        for gate in circuit:
            rho.apply_unitary(gate.matrix, gate.qubits)
            if self.channel is not None:
                for qubit in gate.qubits:
                    rho.apply_channel(self.channel, qubit)
        return rho
