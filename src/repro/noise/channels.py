"""Single-qubit Kraus channels."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.gates.matrices import ID_MATRIX, X_MATRIX, Y_MATRIX, Z_MATRIX

__all__ = [
    "KrausChannel",
    "depolarizing_channel",
    "dephasing_channel",
    "bit_flip_channel",
    "amplitude_damping_channel",
    "raise_if_not_cptp",
]


@dataclass(frozen=True)
class KrausChannel:
    """A CPTP map given by Kraus operators ``{K_i}``.

    Completeness ``sum_i K_i^dag K_i = I`` is validated at construction.
    """

    name: str
    operators: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        raise_if_not_cptp(self.operators)

    @property
    def dim(self) -> int:
        """Hilbert-space dimension the channel acts on."""
        return self.operators[0].shape[0]

    def __repr__(self) -> str:
        return f"KrausChannel({self.name!r}, {len(self.operators)} operators)"


def raise_if_not_cptp(operators, *, atol: float = 1e-10) -> None:
    """Validate the Kraus completeness relation; raises ValueError."""
    if not operators:
        raise ValueError("a channel needs at least one Kraus operator")
    dim = operators[0].shape[0]
    total = np.zeros((dim, dim), dtype=np.complex128)
    for op in operators:
        op = np.asarray(op)
        if op.shape != (dim, dim):
            raise ValueError("all Kraus operators must share one square shape")
        total += op.conj().T @ op
    if not np.allclose(total, np.eye(dim), atol=atol):
        raise ValueError("Kraus operators do not satisfy sum K^dag K = I")


def depolarizing_channel(p: float) -> KrausChannel:
    """Single-qubit depolarizing noise with error probability *p*.

    With probability ``p`` the qubit is hit by a uniformly random Pauli.
    """
    _check_probability(p)
    return KrausChannel(
        name=f"depolarizing({p})",
        operators=(
            math.sqrt(1 - p) * ID_MATRIX,
            math.sqrt(p / 3) * X_MATRIX,
            math.sqrt(p / 3) * Y_MATRIX,
            math.sqrt(p / 3) * Z_MATRIX,
        ),
    )


def dephasing_channel(p: float) -> KrausChannel:
    """Phase-flip (dephasing) noise: Z with probability *p*."""
    _check_probability(p)
    return KrausChannel(
        name=f"dephasing({p})",
        operators=(math.sqrt(1 - p) * ID_MATRIX, math.sqrt(p) * Z_MATRIX),
    )


def bit_flip_channel(p: float) -> KrausChannel:
    """Bit-flip noise: X with probability *p*."""
    _check_probability(p)
    return KrausChannel(
        name=f"bit_flip({p})",
        operators=(math.sqrt(1 - p) * ID_MATRIX, math.sqrt(p) * X_MATRIX),
    )


def amplitude_damping_channel(gamma: float) -> KrausChannel:
    """Amplitude damping (T1 decay) with decay probability *gamma*."""
    _check_probability(gamma)
    k0 = np.array([[1.0, 0.0], [0.0, math.sqrt(1 - gamma)]], dtype=np.complex128)
    k1 = np.array([[0.0, math.sqrt(gamma)], [0.0, 0.0]], dtype=np.complex128)
    return KrausChannel(name=f"amplitude_damping({gamma})", operators=(k0, k1))


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")
