"""Quantum-trajectory (Monte Carlo wave function) noisy simulation.

One trajectory applies, after every gate, a stochastically chosen Kraus
operator on each touched qubit: operator ``K_i`` is selected with the
Born probability ``||K_i |psi>||^2`` and the state renormalised.
Averaging outcome statistics over trajectories converges (as 1/sqrt(T))
to the exact open-system evolution, at pure-state memory cost — which is
why trajectories are the noise method of choice for simulators at the
paper's scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.circuit import Circuit
from repro.noise.channels import KrausChannel
from repro.statevector.state import StateVector
from repro.util.rng import ensure_rng

__all__ = ["NoisySimulator", "TrajectoryResult"]


@dataclass
class TrajectoryResult:
    """Aggregated output of a trajectory ensemble."""

    num_trajectories: int
    mean_probabilities: np.ndarray
    mean_fidelity_to_ideal: float

    @property
    def effective_dim(self) -> int:
        """Dimension of the sampled Hilbert space."""
        return self.mean_probabilities.shape[0]


class NoisySimulator:
    """Applies circuits with per-gate single-qubit noise channels.

    Parameters
    ----------
    num_qubits:
        State size.
    channel:
        The :class:`KrausChannel` applied to every qubit a gate touches,
        immediately after the gate (a standard gate-error model).
    seed:
        Ensemble seed; trajectory ``t`` uses a child generator, so
        results are reproducible and trajectories independent.
    """

    def __init__(
        self, num_qubits: int, channel: KrausChannel, *, seed: int | None = 0
    ) -> None:
        if channel.dim != 2:
            raise ValueError("only single-qubit channels are supported")
        self.num_qubits = num_qubits
        self.channel = channel
        self._seed_seq = np.random.SeedSequence(seed)

    # ------------------------------------------------------------------
    def _apply_channel(
        self, state: np.ndarray, qubit: int, rng: np.random.Generator
    ) -> None:
        """Stochastically apply one Kraus operator to *qubit* in place."""
        # Born weights: ||K_i psi||^2; Kraus operators need not be
        # unitary, so they are applied directly (not via gate kernels).
        candidates = []
        weights = []
        for op in self.channel.operators:
            trial = state.copy()
            _apply_matrix(trial, op, qubit)
            norm_sq = float(np.vdot(trial, trial).real)
            candidates.append(trial)
            weights.append(norm_sq)
        weights = np.asarray(weights)
        weights = weights / weights.sum()
        choice = int(rng.choice(len(candidates), p=weights))
        chosen = candidates[choice]
        chosen /= np.linalg.norm(chosen)
        state[:] = chosen

    def run_trajectory(self, circuit: Circuit, seed) -> StateVector:
        """One noisy trajectory; returns the final (normalised) state."""
        rng = ensure_rng(seed)
        state = StateVector(self.num_qubits)
        for gate in circuit:
            state.apply_gate(gate)
            for qubit in gate.qubits:
                self._apply_channel(state.data, qubit, rng)
        return state

    def run(self, circuit: Circuit, num_trajectories: int) -> TrajectoryResult:
        """Run an ensemble; returns averaged statistics.

        ``mean_probabilities`` is the trajectory-averaged output
        distribution (the diagonal of the exact density matrix, up to
        Monte-Carlo error); ``mean_fidelity_to_ideal`` averages
        ``|<psi_ideal|psi_traj>|^2``.
        """
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit size mismatch")
        if num_trajectories < 1:
            raise ValueError("need at least one trajectory")
        ideal = StateVector(self.num_qubits)
        ideal.apply_circuit(circuit)
        probs = np.zeros(1 << self.num_qubits)
        fidelity = 0.0
        for child in self._seed_seq.spawn(num_trajectories):
            state = self.run_trajectory(circuit, np.random.default_rng(child))
            probs += state.probabilities()
            fidelity += state.fidelity(ideal)
        return TrajectoryResult(
            num_trajectories=num_trajectories,
            mean_probabilities=probs / num_trajectories,
            mean_fidelity_to_ideal=fidelity / num_trajectories,
        )


def _apply_matrix(state: np.ndarray, matrix: np.ndarray, qubit: int) -> None:
    """Apply a (possibly non-unitary) 2x2 matrix to *qubit* in place."""
    n = int(np.log2(state.shape[0]))
    view = state.reshape(1 << (n - 1 - qubit), 2, 1 << qubit)
    branch0 = view[:, 0, :].copy()
    branch1 = view[:, 1, :]
    m = matrix
    view[:, 0, :] = m[0, 0] * branch0 + m[0, 1] * branch1
    view[:, 1, :] = m[1, 0] * branch0 + m[1, 1] * branch1
