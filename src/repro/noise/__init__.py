"""Noise channels and trajectory-based noisy simulation.

The paper's introduction motivates large simulations with "carrying out
studies of their behavior under noise" for near-term devices.  This
subpackage provides the standard single-qubit channels (depolarizing,
dephasing, amplitude damping) as Kraus families and a Monte-Carlo
*quantum trajectories* simulator: each trajectory stochastically applies
one Kraus operator per channel invocation (selected with the correct
Born weights), so averaging trajectories converges to the exact
density-matrix evolution while never storing more than one pure state —
the only noise method that fits the state-vector memory budget at scale.
"""

from repro.noise.channels import (
    KrausChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    raise_if_not_cptp,
    dephasing_channel,
    depolarizing_channel,
)
from repro.noise.trajectories import NoisySimulator, TrajectoryResult

__all__ = [
    "KrausChannel",
    "NoisySimulator",
    "TrajectoryResult",
    "amplitude_damping_channel",
    "bit_flip_channel",
    "dephasing_channel",
    "depolarizing_channel",
    "raise_if_not_cptp",
]
