"""The composable execution engine.

One canonical op loop (:class:`ExecutionEngine`) replays compiled plans
or raw schedules; every cross-cutting concern — tracing, shard
sanitizing, fault injection, integrity verification, checkpointing — is
a :class:`RuntimeLayer` composed onto that loop, and a
:class:`RetryPolicy` turns the same loop into the fault-tolerant
executor.  The legacy per-feature entry points
(``trace_schedule_execution``, ``run_sanitized``,
``run_with_checkpoints``, ``ResilientExecutor``) are deprecation shims
over engine + layer stacks built here.
"""

from repro.runtime.engine import (
    EngineResult,
    ExecUnit,
    ExecutionContext,
    ExecutionEngine,
)
from repro.runtime.layers import (
    CallbackLayer,
    CheckpointLayer,
    FaultLayer,
    FlightRecorderLayer,
    IntegrityLayer,
    RuntimeLayer,
    SanitizerLayer,
    TracingLayer,
)
from repro.runtime.pipeline import PipelineLayer
from repro.runtime.policy import RecoveryReport, RetryPolicy

__all__ = [
    "CallbackLayer",
    "CheckpointLayer",
    "EngineResult",
    "ExecUnit",
    "ExecutionContext",
    "ExecutionEngine",
    "FaultLayer",
    "FlightRecorderLayer",
    "IntegrityLayer",
    "PipelineLayer",
    "RecoveryReport",
    "RetryPolicy",
    "RuntimeLayer",
    "SanitizerLayer",
    "TracingLayer",
]
