"""The one canonical execution loop.

Every way this codebase runs a schedule — plain, plan-compiled, traced,
sanitized, fault-injected, checkpointed, resilient — used to be its own
executor with its own copy of the op loop.  :class:`ExecutionEngine`
replaces them all: it replays a :class:`~repro.plan.CompiledProgram` (or
the raw :class:`~repro.scheduling.Schedule` op stream with
``use_plan=False``) through a single loop, and every cross-cutting
concern is a :class:`~repro.runtime.layers.RuntimeLayer` composed onto
that loop.  The legacy entry points (``run_schedule``,
``trace_schedule_execution``, ``run_sanitized``,
``run_with_checkpoints``, ``ResilientExecutor``) are thin shims that
build an engine plus the matching layer stack.

Hook order is onion-style: ``before_op`` runs in stack order,
``after_op`` / ``on_run_end`` in reverse stack order, so the first layer
in the stack is the outermost wrapper.  With a :class:`RetryPolicy` the
engine owns the retry/restart machinery — per-attempt communication
counters (so retried swaps never double-count bytes), exponential
backoff, and a restart loop that re-acquires state from a
checkpoint-providing layer or the state factory.
"""

from __future__ import annotations

import time
from contextlib import ExitStack
from dataclasses import dataclass
from functools import partial

from repro.distributed.comm import CommStats
from repro.distributed.state import DistributedState
from repro.distributed.tracing import ExecutionTrace, _classify
from repro.runtime.policy import RecoveryReport, RetryPolicy
from repro.telemetry.runtime import NULL_TELEMETRY, Telemetry

__all__ = [
    "EngineResult",
    "ExecUnit",
    "ExecutionContext",
    "ExecutionEngine",
]


class ExecUnit:
    """One step of the canonical loop.

    Wraps either a raw schedule op (one source, ``run`` is the op's
    bound ``execute``) or a plan op (possibly covering several fused
    source ops).  ``op_index`` is the first covered position in the
    schedule's op stream; ``kind``/``label``/``stage`` match what the
    tracing layer records for it.
    """

    __slots__ = (
        "index",
        "op_index",
        "kind",
        "label",
        "stage",
        "sources",
        "num_sources",
        "is_swap",
        "run",
        "plan_op",
    )

    def __init__(
        self,
        *,
        index,
        op_index,
        kind,
        label,
        stage,
        sources,
        num_sources,
        is_swap,
        run,
        plan_op=None,
    ):
        self.index = index
        self.op_index = op_index
        self.kind = kind
        self.label = label
        self.stage = stage
        self.sources = sources
        self.num_sources = num_sources
        self.is_swap = is_swap
        self.run = run
        # The pre-resolved PlanOp this unit replays (None for raw
        # schedule / circuit units) — what the pipeline layer's lookahead
        # prefetch reads its kernel shapes from.
        self.plan_op = plan_op

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"ExecUnit(op_index={self.op_index}, kind={self.kind!r}, "
            f"label={self.label!r})"
        )


class ExecutionContext:
    """Mutable per-run state shared between the engine and its layers."""

    __slots__ = (
        "engine",
        "schedule",
        "units",
        "policy",
        "telemetry",
        "report",
        "state",
        "restarts",
        "pass_index",
        "ops_this_pass",
        "bytes_at_ckpt",
        "seconds_since_ckpt",
        "productive_seconds",
        "total_source_ops",
        "from_plan",
        "span_base",
    )

    def __init__(self, engine, schedule, units, policy, telemetry, report):
        self.engine = engine
        self.schedule = schedule
        self.units = units
        self.policy = policy
        self.telemetry = telemetry
        self.report = report
        self.state = None
        self.restarts = 0
        self.pass_index = 0
        self.ops_this_pass = 0
        self.bytes_at_ckpt = 0
        self.seconds_since_ckpt = 0.0
        self.productive_seconds = 0.0
        self.total_source_ops = engine.total_source_ops
        self.from_plan = engine.from_plan
        self.span_base = 0

    @property
    def tracer(self):
        """The run's span tracer (possibly the shared no-op one)."""
        return self.telemetry.tracer

    @property
    def metrics(self):
        """The run's metrics registry (possibly the shared no-op one)."""
        return self.telemetry.metrics


@dataclass
class EngineResult:
    """Output of one :meth:`ExecutionEngine.run` call."""

    state: DistributedState
    wall_seconds: float
    trace: ExecutionTrace | None
    report: RecoveryReport


def _units_from_schedule(schedule) -> list[ExecUnit]:
    units: list[ExecUnit] = []
    stage = 0
    for index, op in enumerate(schedule.operations()):
        kind, label = _classify(op)
        if kind == "swap":
            stage += 1
        units.append(
            ExecUnit(
                index=len(units),
                op_index=index,
                kind=kind,
                label=label,
                stage=stage,
                sources=None,
                num_sources=1,
                is_swap=kind == "swap",
                run=op.execute,
            )
        )
    return units


def _units_from_plan(plan) -> list[ExecUnit]:
    from repro.plan.executor import _run_op

    units: list[ExecUnit] = []
    for plan_op in plan.ops:
        first = plan_op.sources[0]
        units.append(
            ExecUnit(
                index=len(units),
                op_index=first.op_index,
                kind=first.kind,
                label=first.label,
                stage=plan_op.stage,
                sources=plan_op.sources,
                num_sources=plan_op.num_sources,
                is_swap=first.kind == "swap",
                run=partial(_run_op, plan_op),
                plan_op=plan_op,
            )
        )
    return units


class ExecutionEngine:
    """Replays a compiled program (or raw schedule) through one loop.

    Parameters
    ----------
    program:
        A :class:`~repro.scheduling.Schedule` or a
        :class:`~repro.plan.CompiledProgram`.  Schedules are lowered to
        their memoized plan unless ``use_plan=False`` keeps the raw
        op-by-op stream (bit-exact with the pre-plan interpreter).
    layers:
        The :class:`~repro.runtime.layers.RuntimeLayer` stack, outermost
        first.  ``before_op`` runs in stack order, ``after_op`` /
        ``on_run_end`` in reverse.
    policy:
        Optional :class:`RetryPolicy`.  When set, transient
        communication errors are retried with backoff and fatal faults
        (crashes, detected corruption, exhausted retries) restart the
        run from the freshest state a layer can provide.
    state_factory:
        Builds the fresh initial state for a run or a from-scratch
        restart; defaults to the schedule's canonical initial state.
        This is how custom :class:`~repro.distributed.ShardStorage`
        backends survive a restart.
    telemetry:
        Telemetry bundle for the run; when a ``TracingLayer`` is in the
        stack its (resolved) bundle takes precedence and is attached to
        the state for the duration of the run.
    root_span / root_attrs:
        Name and attributes of the run's root span (``execute_schedule``
        by default, ``resilient_run`` under the resilient shim).
    """

    def __init__(
        self,
        program=None,
        *,
        use_plan: bool = True,
        plan_config=None,
        layers=(),
        policy: RetryPolicy | None = None,
        state_factory=None,
        telemetry: Telemetry | None = None,
        sleep=time.sleep,
        root_span: str = "execute_schedule",
        root_attrs: dict | None = None,
    ) -> None:
        self._layers = tuple(layers)
        self._policy = policy
        self._sleep = sleep
        self._root_span = root_span
        self._root_attrs = dict(root_attrs or {})
        self._state_factory = state_factory

        if program is None:
            self._schedule = None
            self._units = []
            self.from_plan = False
        elif hasattr(program, "operations"):  # a Schedule
            self._schedule = program
            if use_plan:
                from repro.plan import plan_for

                self._units = _units_from_plan(
                    plan_for(program, plan_config)
                )
                self.from_plan = True
            else:
                self._units = _units_from_schedule(program)
                self.from_plan = False
        elif hasattr(program, "ops"):  # a CompiledProgram
            self._schedule = program.schedule
            self._units = _units_from_plan(program)
            self.from_plan = True
        else:
            raise TypeError(
                f"program must be a Schedule or CompiledProgram, got "
                f"{type(program).__name__}"
            )
        self.total_source_ops = sum(u.num_sources for u in self._units)
        self._unit_of_source = {u.op_index: u.index for u in self._units}

        # A TracingLayer owns the run's effective telemetry bundle.
        self._tracing = next(
            (la for la in self._layers if hasattr(la, "trace_scope")), None
        )
        if self._tracing is not None:
            self._telemetry = self._tracing.telemetry
        else:
            self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    # ------------------------------------------------------------------
    @classmethod
    def for_circuit(
        cls, circuit, *, auto_swap: bool = True, telemetry=None
    ) -> "ExecutionEngine":
        """An engine replaying a raw circuit gate by gate (naive mode)."""
        engine = cls(
            None,
            telemetry=telemetry,
            root_span="run_circuit",
            root_attrs={"gates": len(circuit)},
        )
        units = []
        for index, gate in enumerate(circuit):
            units.append(
                ExecUnit(
                    index=index,
                    op_index=index,
                    kind="gate",
                    label=f"{gate.name}{gate.qubits}",
                    stage=0,
                    sources=None,
                    num_sources=1,
                    is_swap=False,
                    run=partial(
                        _apply_circuit_gate, gate=gate, auto_swap=auto_swap
                    ),
                )
            )
        engine._units = units
        engine.total_source_ops = len(units)
        engine._unit_of_source = {u.op_index: u.index for u in units}
        return engine

    @property
    def units(self) -> list[ExecUnit]:
        """The canonical op stream this engine replays."""
        return self._units

    @property
    def layers(self):
        """The composed layer stack, outermost first."""
        return self._layers

    # ------------------------------------------------------------------
    def _unit_index_for(self, source_index: int) -> int:
        """Map a schedule-op index to the unit that starts there."""
        if source_index <= 0:
            return 0
        if source_index >= self.total_source_ops:
            if source_index == self.total_source_ops:
                return len(self._units)
            raise ValueError(
                f"op index {source_index} is past the end of the program "
                f"({self.total_source_ops} ops)"
            )
        unit_index = self._unit_of_source.get(source_index)
        if unit_index is None:
            raise ValueError(
                f"op index {source_index} falls inside a fused plan op; "
                f"resume the raw schedule (use_plan=False) or checkpoint "
                f"at plan-unit boundaries"
            )
        return unit_index

    def _default_state(self) -> DistributedState:
        if self._state_factory is not None:
            return self._state_factory()
        schedule = self._schedule
        if schedule is None:
            raise RuntimeError(
                "engine has no schedule and no state_factory; pass "
                "run(state=...)"
            )
        return DistributedState(
            schedule.num_qubits,
            schedule.local_qubits,
            init=getattr(schedule, "initial_state", "zero"),
            initial_global_qubits=schedule.initial_global_qubits or None,
        )

    def _acquire_state(self, ctx, explicit_state, start_index):
        """State + starting unit for this pass (checkpoint > explicit > fresh)."""
        if ctx.pass_index == 0 and explicit_state is not None:
            # An explicitly passed state wins on the first pass only;
            # after a fatal fault it may be torn, so restarts re-acquire.
            for layer in self._layers:
                provided = layer.provide_state(ctx)
                if provided is not None:
                    return provided[0], self._unit_index_for(provided[1])
            return explicit_state, self._unit_index_for(start_index)
        for layer in self._layers:
            provided = layer.provide_state(ctx)
            if provided is not None:
                return provided[0], self._unit_index_for(provided[1])
        first = ctx.pass_index == 0
        return self._default_state(), self._unit_index_for(
            start_index if first else 0
        )

    # ------------------------------------------------------------------
    def _run_guarded(self, ctx, unit) -> None:
        guards = []
        for layer in self._layers:
            cm = layer.attempt_context(ctx, unit)
            if cm is not None:
                guards.append(cm)
        if not guards:
            unit.run(ctx.state)
            return
        with ExitStack() as stack:
            for cm in guards:
                stack.enter_context(cm)
            unit.run(ctx.state)

    def _dispatch(self, ctx, unit):
        """Run one unit (with retries under a policy); returns (s, bytes)."""
        layers = self._layers
        state = ctx.state
        if self._policy is None:
            bytes_before = state.stats.bytes_on_network
            for layer in layers:
                layer.on_attempt_start(ctx, unit, 0)
            start = time.perf_counter()
            try:
                self._run_guarded(ctx, unit)
            except BaseException as exc:
                seconds = time.perf_counter() - start
                for layer in reversed(layers):
                    layer.on_attempt_end(ctx, unit, 0, seconds, 0, exc, False)
                raise
            seconds = time.perf_counter() - start
            moved = state.stats.bytes_on_network - bytes_before
            for layer in reversed(layers):
                layer.on_attempt_end(ctx, unit, 0, seconds, moved, None, False)
            return seconds, moved

        policy = self._policy
        report = ctx.report
        metrics = self._telemetry.metrics
        transient_error = self._transient_error
        for attempt in range(policy.max_retries + 1):
            # Fresh per-attempt counters, streaming into the same
            # registry the run counters are bound to (so comm.* metrics
            # stay equal to the cumulative stats).
            run_stats = state.stats
            state.stats = CommStats().bind_metrics(run_stats.metrics)
            for layer in layers:
                layer.on_attempt_start(ctx, unit, attempt)
            start = time.perf_counter()
            try:
                self._run_guarded(ctx, unit)
            except BaseException as exc:
                seconds = time.perf_counter() - start
                # Always restore the run counters — a fatal fault
                # escaping here must leave ``state.stats`` cumulative so
                # the restart path can compute bytes-since-checkpoint.
                attempt_stats, state.stats = state.stats, run_stats
                run_stats.merge(attempt_stats)
                transient = isinstance(exc, transient_error)
                if transient:
                    # Nothing moved (transients strike before the
                    # transfer), but any staging work the op performed
                    # stays counted exactly once: the swap path is
                    # resumable, so the retry skips what is already done.
                    report.redundant_bytes += attempt_stats.bytes_on_network
                    report.transient_retries += 1
                    metrics.counter("resilience.transient_retries").inc()
                for layer in reversed(layers):
                    layer.on_attempt_end(
                        ctx, unit, attempt, seconds, 0, exc, transient
                    )
                if not transient:
                    raise
                if attempt >= policy.max_retries:
                    raise self._retry_budget_error(
                        f"op {unit.op_index}: {policy.max_retries} retries "
                        f"exhausted"
                    )
                delay = policy.backoff(attempt)
                report.backoff_seconds += delay
                self._sleep(delay)
                continue
            seconds = time.perf_counter() - start
            attempt_stats, state.stats = state.stats, run_stats
            run_stats.merge(attempt_stats)
            moved = attempt_stats.bytes_on_network
            for layer in reversed(layers):
                layer.on_attempt_end(
                    ctx, unit, attempt, seconds, moved, None, False
                )
            return seconds, moved
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    def run(self, *, state=None, start_index: int = 0) -> EngineResult:
        """Execute to completion; raises a typed error past the budget."""
        units = self._units
        policy = self._policy
        if policy is not None:
            # Fault taxonomy lives a layer up; import late so plain runs
            # never touch it (and to keep the import graph acyclic).
            from repro.resilience.faults import (
                FATAL_FAULTS,
                RestartBudgetExceededError,
                RetryBudgetExceededError,
                TransientCommError,
            )

            self._transient_error = TransientCommError
            self._retry_budget_error = RetryBudgetExceededError
            fatal_faults = FATAL_FAULTS
        else:
            fatal_faults = ()

        report = RecoveryReport()
        ctx = ExecutionContext(
            self, self._schedule, units, policy, self._telemetry, report
        )
        layers = self._layers
        tracer = self._telemetry.tracer
        metrics = self._telemetry.metrics
        ctx.span_base = len(tracer.spans)
        attach = self._tracing is not None
        explicit_state = state
        wall_start = time.perf_counter()
        try:
            with tracer.span(
                self._root_span, kind="run", **self._root_attrs
            ) as run_span:
                if not layers and policy is None:
                    # Fast path: the bare loop, nothing per-op but the call.
                    state, start_unit = self._acquire_state(
                        ctx, explicit_state, start_index
                    )
                    ctx.state = state
                    for unit in units[start_unit:]:
                        unit.run(state)
                    return EngineResult(
                        state,
                        time.perf_counter() - wall_start,
                        None,
                        report,
                    )
                while True:
                    state, start_unit = self._acquire_state(
                        ctx, explicit_state, start_index
                    )
                    ctx.state = state
                    previous_bundle = state.telemetry
                    if attach:
                        state.use_telemetry(self._telemetry)
                    restore = attach and state is explicit_state
                    done = False
                    try:
                        for layer in layers:
                            layer.on_run_start(ctx)
                        ctx.bytes_at_ckpt = state.stats.bytes_on_network
                        ctx.seconds_since_ckpt = 0.0
                        try:
                            for ui in range(start_unit, len(units)):
                                unit = units[ui]
                                ctx.ops_this_pass = ui - start_unit
                                for layer in layers:
                                    layer.before_op(ctx, unit)
                                seconds, moved = self._dispatch(ctx, unit)
                                ctx.productive_seconds += seconds
                                ctx.seconds_since_ckpt += seconds
                                for layer in reversed(layers):
                                    layer.after_op(ctx, unit)
                                if unit.is_swap:
                                    for layer in layers:
                                        layer.on_swap(ctx, unit, moved)
                            for layer in reversed(layers):
                                layer.on_run_end(ctx)
                            done = True
                        except BaseException as exc:
                            if policy is None or not isinstance(
                                exc, fatal_faults
                            ):
                                raise
                            # Bytes moved since the last checkpoint will
                            # be re-moved by the replay: pure recovery
                            # overhead.  Un-checkpointed op time is
                            # re-spent too.
                            report.redundant_bytes += (
                                state.stats.bytes_on_network
                                - ctx.bytes_at_ckpt
                            )
                            ctx.productive_seconds -= ctx.seconds_since_ckpt
                            for layer in layers:
                                layer.on_failure(ctx, exc)
                            ctx.restarts += 1
                            if ctx.restarts > policy.max_restarts:
                                if run_span is not None:
                                    run_span.attrs["outcome"] = (
                                        "budget_exhausted"
                                    )
                                raise RestartBudgetExceededError(
                                    f"{ctx.restarts} restarts exceed budget "
                                    f"of {policy.max_restarts} "
                                    f"(last fault: {exc})"
                                ) from exc
                            report.restarts += 1
                            metrics.counter("resilience.restarts").inc()
                    finally:
                        if restore:
                            state.use_telemetry(previous_bundle)
                    if done:
                        break
                    ctx.pass_index += 1

            report.wall_overhead_seconds = max(
                0.0,
                (time.perf_counter() - wall_start) - ctx.productive_seconds,
            )
            trace = None
            if self._tracing is not None:
                spans = tracer.spans
                if self._tracing.trace_scope == "run":
                    spans = spans[ctx.span_base:]
                trace = ExecutionTrace.from_spans(spans)
            return EngineResult(
                state, time.perf_counter() - wall_start, trace, report
            )
        finally:
            for layer in reversed(layers):
                layer.finalize(ctx)


def _apply_circuit_gate(state, *, gate, auto_swap):
    state.apply_gate(gate, auto_swap=auto_swap)
