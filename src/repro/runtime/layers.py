"""Composable cross-cutting concerns for the execution engine.

Each layer implements (a subset of) the :class:`RuntimeLayer` protocol —
``on_run_start / before_op / after_op / on_swap / on_run_end /
on_failure`` — and the engine threads every unit of the canonical loop
through the stack.  ``before_op`` runs in stack order, ``after_op`` and
``on_run_end`` in reverse, so the resilient stack

    [TracingLayer, CheckpointLayer, FaultLayer, IntegrityLayer,
     SanitizerLayer]

reproduces the legacy supervisor's exact per-op order: inject faults →
verify checksums → sanitizer pre-scan → *attempt the op* → sanitizer
post-scan → refresh checksum table → periodic checkpoint.

Layers that need attempt granularity (one telemetry span per retry, a
fault guard around the communication call) additionally implement the
``on_attempt_start / on_attempt_end / attempt_context`` extension hooks;
``provide_state`` lets a layer supply the state a (re)start resumes
from, and ``finalize`` is the engine's guaranteed cleanup hook.
"""

from __future__ import annotations

import time

from repro.distributed.checkpoint import CheckpointManager
from repro.kernels.tables import GATHER_CACHE
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.runtime import Telemetry

__all__ = [
    "CallbackLayer",
    "CheckpointLayer",
    "FaultLayer",
    "FlightRecorderLayer",
    "IntegrityLayer",
    "RuntimeLayer",
    "SanitizerLayer",
    "TracingLayer",
]


class RuntimeLayer:
    """Base layer: every hook is a no-op; override what you need.

    The six core hooks receive the shared
    :class:`~repro.runtime.engine.ExecutionContext` (``ctx``) and, where
    applicable, the current :class:`~repro.runtime.engine.ExecUnit`.
    """

    # -- core protocol -------------------------------------------------
    def on_run_start(self, ctx) -> None:
        """A (re)start pass begins; ``ctx.state`` is acquired."""

    def before_op(self, ctx, unit) -> None:
        """Before a unit is attempted (outside the retry loop)."""

    def after_op(self, ctx, unit) -> None:
        """After a unit completed successfully (reverse stack order)."""

    def on_swap(self, ctx, unit, bytes_moved: int) -> None:
        """After a completed global-to-local swap moved *bytes_moved*."""

    def on_run_end(self, ctx) -> None:
        """All units completed (reverse stack order, still restartable)."""

    def on_failure(self, ctx, exc: BaseException) -> None:
        """A fatal fault ends this pass; a restart may follow."""

    # -- extension hooks -----------------------------------------------
    def on_attempt_start(self, ctx, unit, attempt: int) -> None:
        """One execution attempt of *unit* begins (retries re-enter)."""

    def on_attempt_end(
        self, ctx, unit, attempt, seconds, bytes_moved, error, will_retry
    ) -> None:
        """The attempt finished; *error* is None on success."""

    def attempt_context(self, ctx, unit):
        """Optional context manager armed around each attempt."""
        return None

    def provide_state(self, ctx):
        """Return ``(state, next_op_index)`` to resume from, or None."""
        return None

    def finalize(self, ctx) -> None:
        """Guaranteed cleanup after the run (success or error)."""


class TracingLayer(RuntimeLayer):
    """Op-level span recording; subsumes ``trace_schedule_execution``.

    One span per op *attempt*: a successful attempt keeps the op's
    kind/label; under a retry policy a transient failure mutates into a
    ``fault`` span and a fatally aborted attempt into ``aborted`` (both
    excluded from the op-event view — the run-level ``fatal:`` event
    records the latter).  Fused plan ops additionally emit zero-length
    spans for their folded sources so traces keep exactly one event per
    original schedule op, and the trace ``signature()`` is bit-for-bit
    identical between planned, raw and resilient executions.

    ``mode="schedule"`` mirrors the legacy tracer: ``stage`` span
    attributes and ``op.seconds`` histograms.  ``mode="resilient"``
    mirrors the legacy supervisor spans (neither).  ``trace_scope``
    selects the spans the result trace is built from: ``"all"`` (the
    tracer's full history, legacy ``trace_schedule_execution``) or
    ``"run"`` (this run only, legacy ``ResilientExecutor``).
    """

    def __init__(
        self,
        telemetry: Telemetry | None = None,
        *,
        mode: str = "schedule",
        trace_scope: str = "all",
    ) -> None:
        if mode not in ("schedule", "resilient"):
            raise ValueError(f"mode must be schedule|resilient, got {mode!r}")
        if trace_scope not in ("all", "run"):
            raise ValueError(
                f"trace_scope must be all|run, got {trace_scope!r}"
            )
        if telemetry is None or not telemetry.active:
            telemetry = Telemetry.spans_only(per_rank=False)
        self.telemetry = telemetry
        self.trace_scope = trace_scope
        self._full = mode == "schedule"
        self._cache_bound = False
        self._span = None
        self._span_cm = None

    def on_run_start(self, ctx) -> None:
        if ctx.from_plan and not self._cache_bound:
            # Mirror the shared gather-table cache counters into the
            # bundle's metrics for the duration of the run.
            GATHER_CACHE.bind_metrics(self.telemetry.metrics)
            self._cache_bound = True

    def on_attempt_start(self, ctx, unit, attempt: int) -> None:
        kwargs = {"op_index": unit.op_index}
        if self._full:
            kwargs["stage"] = unit.stage
        self._span_cm = self.telemetry.tracer.span(
            unit.label, kind=unit.kind, **kwargs
        )
        self._span = self._span_cm.__enter__()

    def on_attempt_end(
        self, ctx, unit, attempt, seconds, bytes_moved, error, will_retry
    ) -> None:
        span, cm = self._span, self._span_cm
        self._span = self._span_cm = None
        if error is not None:
            if span is not None:
                if will_retry:
                    span.name = (
                        f"transient at op {unit.op_index} (attempt {attempt})"
                    )
                    span.kind = "fault"
                elif ctx.policy is not None:
                    span.kind = "aborted"
            cm.__exit__(None, None, None)
            return
        if span is not None and unit.is_swap:
            span.attrs["bytes"] = bytes_moved
        cm.__exit__(None, None, None)
        metrics = self.telemetry.metrics
        if self._full:
            metrics.histogram("op.seconds", kind=unit.kind).observe(seconds)
        if unit.num_sources > 1:
            # Ops folded into this one still get their (zero-length)
            # events, keeping one event per original schedule op.
            tracer = self.telemetry.tracer
            mark = tracer.now()
            for source in unit.sources[1:]:
                tracer.add_span(
                    source.label,
                    kind=source.kind,
                    start=mark,
                    end=mark,
                    op_index=source.op_index,
                    stage=unit.stage,
                    fused_into=unit.op_index,
                )
                if self._full:
                    metrics.histogram(
                        "op.seconds", kind=source.kind
                    ).observe(0.0)

    def on_failure(self, ctx, exc: BaseException) -> None:
        self.telemetry.tracer.event(
            f"fatal: {type(exc).__name__}: {exc}", kind="fault"
        )

    def finalize(self, ctx) -> None:
        if self._cache_bound:
            GATHER_CACHE.bind_metrics(None)
            self._cache_bound = False


class FlightRecorderLayer(RuntimeLayer):
    """Feeds engine lifecycle events into a :class:`FlightRecorder` ring.

    One ``kind="span"`` record per completed op attempt (label, kind,
    op_index, attempt, seconds, error if any), plus run-start / run-end /
    failure markers — the engine-side half of the postmortem story.  All
    records carry the layer's ``trace_id`` so one job's history can be
    filtered out of the service's shared ring after the fact.

    The ring append is a dict build plus a deque push under a leaf lock,
    so the layer is cheap enough to leave on in the serving path (the
    exposition-overhead bench holds it to <=1.05x).
    """

    def __init__(
        self, recorder: FlightRecorder, *, trace_id: str | None = None
    ) -> None:
        self.recorder = recorder
        self.trace_id = trace_id

    def _record(self, kind: str, **fields) -> None:
        if self.trace_id is not None:
            fields["trace_id"] = self.trace_id
        self.recorder.record(kind, **fields)

    def on_run_start(self, ctx) -> None:
        self._record("run_start", total_ops=ctx.total_source_ops)

    def on_attempt_end(
        self, ctx, unit, attempt, seconds, bytes_moved, error, will_retry
    ) -> None:
        fields = {
            "label": unit.label,
            "op_kind": unit.kind,
            "op_index": unit.op_index,
            "attempt": attempt,
            "seconds": seconds,
        }
        if unit.is_swap:
            fields["bytes_moved"] = bytes_moved
        if error is not None:
            fields["error"] = f"{type(error).__name__}: {error}"
            fields["will_retry"] = will_retry
        self._record("span", **fields)

    def on_run_end(self, ctx) -> None:
        self._record("run_end", ops=ctx.total_source_ops)

    def on_failure(self, ctx, exc: BaseException) -> None:
        self._record("failure", error=f"{type(exc).__name__}: {exc}")


class SanitizerLayer(RuntimeLayer):
    """Drives a :class:`repro.staticcheck.ShardSanitizer` at op bounds.

    Subsumes ``run_sanitized``: the sanitizer is attached to the pass's
    state on run start (reset first, so latches clear across restarts
    while findings accumulate) and scanned before/after every op.
    """

    def __init__(self, sanitizer) -> None:
        self.sanitizer = sanitizer

    def on_run_start(self, ctx) -> None:
        self.sanitizer.use_metrics(ctx.metrics)
        self.sanitizer.reset()
        self.sanitizer.attach(ctx.state)

    def before_op(self, ctx, unit) -> None:
        self.sanitizer.before_op(ctx.state, unit.op_index)

    def after_op(self, ctx, unit) -> None:
        self.sanitizer.after_op(ctx.state, unit.op_index)

    @property
    def report(self):
        """The sanitizer's accumulated findings report."""
        return self.sanitizer.report


class FaultLayer(RuntimeLayer):
    """Arms a :class:`repro.resilience.FaultInjector` around each op.

    ``before_op`` fires stall / corrupt-at-rest / crash-before faults;
    ``attempt_context`` arms the exchange guard (transient and crash-mid
    faults) around every individual attempt, so retries re-arm it.  The
    injector is *not* reset across restarts — remaining firings persist,
    which is what lets a ``times=1`` crash pass on replay.
    """

    def __init__(self, injector, *, sleep=time.sleep) -> None:
        if not hasattr(injector, "on_op_start"):  # a FaultPlan
            from repro.resilience.faults import FaultInjector

            injector = FaultInjector(injector)
        self.injector = injector
        self._sleep = sleep

    def before_op(self, ctx, unit) -> None:
        stall = self.injector.on_op_start(unit.op_index, ctx.state)
        if stall:
            ctx.report.stall_seconds += stall
            self._sleep(stall)

    def attempt_context(self, ctx, unit):
        return self.injector.exchange_guard(unit.op_index, ctx.state)

    def on_run_end(self, ctx) -> None:
        ctx.report.faults_injected = list(self.injector.log)


class IntegrityLayer(RuntimeLayer):
    """CRC32 shard-checksum verification against silent corruption.

    ``verify="swap"`` (default) checks at swap boundaries and at run
    end; ``"every"`` before every op; ``"never"`` disables.  The
    checksum table refreshes after every completed op, so a detected
    mismatch pins corruption to the window since the last op.
    """

    def __init__(self, verify: str = "swap") -> None:
        if verify not in ("swap", "every", "never"):
            raise ValueError(
                f"verify must be swap|every|never, got {verify!r}"
            )
        self.verify = verify
        self._table: list[int] = []

    def on_run_start(self, ctx) -> None:
        self._table = (
            ctx.state.shard_checksums() if self.verify != "never" else []
        )

    def before_op(self, ctx, unit) -> None:
        if self.verify == "every" or (self.verify == "swap" and unit.is_swap):
            self._check(ctx)

    def after_op(self, ctx, unit) -> None:
        if self.verify != "never":
            self._table = ctx.state.shard_checksums()

    def on_run_end(self, ctx) -> None:
        if self.verify != "never":
            self._check(ctx)

    def _check(self, ctx) -> None:
        ctx.report.integrity_checks += 1
        bad = [
            r
            for r, crc in enumerate(ctx.state.shard_checksums())
            if crc != self._table[r]
        ]
        if bad:
            ctx.report.corruption_detections += 1
            from repro.resilience.faults import ShardCorruptionError

            raise ShardCorruptionError(bad)


class CheckpointLayer(RuntimeLayer):
    """Periodic checkpointing; subsumes ``run_with_checkpoints``.

    Saves whenever the count of completed source ops crosses an
    ``every`` boundary (for single-source units that is exactly the
    legacy ``(index + 1) % every == 0``; fused plan units checkpoint at
    the unit boundary that crosses it).  ``resume=True`` makes the layer
    provide the checkpointed state on (re)starts; ``state_factory``
    rebuilds the state the checkpoint loads into, which is how custom
    storage backends survive a restart.  ``fail_after`` injects the
    legacy test failure: checkpoint-then-raise after that many ops of
    the current pass.
    """

    def __init__(
        self,
        manager,
        *,
        every: int = 8,
        resume: bool = False,
        state_factory=None,
        skip_last: bool = False,
        final_save: bool = True,
        fail_after: int | None = None,
    ) -> None:
        if not hasattr(manager, "save"):  # a directory path
            manager = CheckpointManager(manager)
        self.manager = manager
        self.every = every
        self.resume = resume
        self.state_factory = state_factory
        self.skip_last = skip_last
        self.final_save = final_save
        self.fail_after = fail_after

    def provide_state(self, ctx):
        if not self.resume or not self.manager.has_checkpoint():
            return None
        return self.manager.load(state_factory=self.state_factory)

    def before_op(self, ctx, unit) -> None:
        if self.fail_after is not None and ctx.ops_this_pass >= self.fail_after:
            self.manager.save(ctx.state, unit.op_index)
            raise RuntimeError(
                f"injected failure before op {unit.op_index} "
                f"(checkpoint saved)"
            )

    def after_op(self, ctx, unit) -> None:
        if not self.every:
            return
        done = unit.op_index + unit.num_sources
        if (done // self.every) <= (done - unit.num_sources) // self.every:
            return
        if self.skip_last and done >= ctx.total_source_ops:
            return
        self._save(ctx, done)

    def on_run_end(self, ctx) -> None:
        if self.final_save:
            self._save(ctx, ctx.total_source_ops)

    def _save(self, ctx, next_op: int) -> None:
        ctx.report.checkpoint_bytes += self.manager.save(ctx.state, next_op)
        ctx.report.checkpoints_written += 1
        ctx.bytes_at_ckpt = ctx.state.stats.bytes_on_network
        ctx.seconds_since_ckpt = 0.0


class CallbackLayer(RuntimeLayer):
    """Ad-hoc layer from plain callables (fault drills, tests, probes)."""

    def __init__(
        self,
        *,
        on_run_start=None,
        before_op=None,
        after_op=None,
        on_swap=None,
        on_run_end=None,
        on_failure=None,
    ) -> None:
        self._on_run_start = on_run_start
        self._before_op = before_op
        self._after_op = after_op
        self._on_swap = on_swap
        self._on_run_end = on_run_end
        self._on_failure = on_failure

    def on_run_start(self, ctx) -> None:
        if self._on_run_start is not None:
            self._on_run_start(ctx)

    def before_op(self, ctx, unit) -> None:
        if self._before_op is not None:
            self._before_op(ctx, unit)

    def after_op(self, ctx, unit) -> None:
        if self._after_op is not None:
            self._after_op(ctx, unit)

    def on_swap(self, ctx, unit, bytes_moved: int) -> None:
        if self._on_swap is not None:
            self._on_swap(ctx, unit, bytes_moved)

    def on_run_end(self, ctx) -> None:
        if self._on_run_end is not None:
            self._on_run_end(ctx)

    def on_failure(self, ctx, exc: BaseException) -> None:
        if self._on_failure is not None:
            self._on_failure(ctx, exc)
