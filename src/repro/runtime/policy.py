"""Recovery budgets and accounting for engine-driven execution.

:class:`RetryPolicy` shapes the engine's transient-retry and
checkpoint-restart budgets; :class:`RecoveryReport` accounts everything a
run spent on surviving faults.  Both classes are deliberately dependency
free (``repro.resilience`` re-exports them for backwards compatibility,
and the engine consumes them without importing the fault machinery).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RecoveryReport", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery budgets and backoff shape.

    ``backoff(attempt)`` returns ``base * factor**attempt`` seconds; the
    engine always *accounts* the delay deterministically and only
    actually sleeps through the injected ``sleep`` callable (tests pass a
    no-op).
    """

    max_retries: int = 3
    max_restarts: int = 2
    backoff_base_seconds: float = 0.01
    backoff_factor: float = 2.0

    def backoff(self, attempt: int) -> float:
        """Deterministic delay before retry number ``attempt`` (0-based)."""
        return self.backoff_base_seconds * self.backoff_factor**attempt


@dataclass
class RecoveryReport:
    """Everything the run spent on surviving faults.

    All fields except ``wall_overhead_seconds`` are deterministic given
    (schedule, plan, policy); :meth:`to_dict` with
    ``deterministic=True`` drops the measured field so two runs of the
    same plan compare equal.
    """

    faults_injected: list[dict] = field(default_factory=list)
    transient_retries: int = 0
    restarts: int = 0
    redundant_bytes: int = 0
    backoff_seconds: float = 0.0
    stall_seconds: float = 0.0
    integrity_checks: int = 0
    corruption_detections: int = 0
    checkpoints_written: int = 0
    checkpoint_bytes: int = 0
    wall_overhead_seconds: float = 0.0

    def to_dict(self, *, deterministic: bool = False) -> dict:
        """Dict form; ``deterministic=True`` excludes measured wall time."""
        out = {
            "faults_injected": list(self.faults_injected),
            "transient_retries": self.transient_retries,
            "restarts": self.restarts,
            "redundant_bytes": self.redundant_bytes,
            "backoff_seconds": round(self.backoff_seconds, 9),
            "stall_seconds": round(self.stall_seconds, 9),
            "integrity_checks": self.integrity_checks,
            "corruption_detections": self.corruption_detections,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_bytes": self.checkpoint_bytes,
        }
        if not deterministic:
            out["wall_overhead_seconds"] = self.wall_overhead_seconds
        return out
