"""Pipelined compute/comm/I-O overlap as a composable runtime layer.

qHiPSTER's canonical trick (PAPERS.md, arXiv:1601.07195) is to overlap
communication with computation via double buffering.  The engine-side
half lives here: while the main thread runs the current unit's kernel,
:class:`PipelineLayer` looks *ahead* over the engine's ``ExecUnit``
stream and uses one background worker to

* warm the next ops' gather-index tables and diagonal factor tensors
  into :data:`~repro.kernels.tables.GATHER_CACHE` (through the cache's
  counter-neutral ``warm_*`` twins, so ``plan.cache.*`` metrics stay
  bit-identical with and without pipelining);
* arm the state's :class:`~repro.distributed.ShardStorage` so shard
  syncs become scheduled background fsyncs, upcoming shards are read
  ahead, and block exchanges double-buffer (the storage-side half — see
  ``repro.distributed.storage``).

Lookahead stops at the first swap unit: a swap rewrites the
qubit-to-bit layout, so table keys beyond it are unknowable until it
runs.  Everything the layer does is pure warm-up — no byte of state, no
span, no trace event changes — which is why
``ExecutionTrace.signature()`` parity with a serial run is exact.

Exposed metrics: ``pipeline.depth`` (gauge), ``pipeline.prefetch.hits``
/ ``pipeline.prefetch.misses`` / ``pipeline.prefetch.errors``
(counters), ``pipeline.stall.seconds`` (histogram: time spent waiting
for a prefetch that was issued but had not finished).  With a
:class:`~repro.telemetry.recorder.FlightRecorder` attached, every
issued/hit/stall becomes a ``kind="pipeline"`` ring event so ``repro
top`` postmortems show where overlap broke down.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.kernels.tables import GATHER_CACHE
from repro.runtime.layers import RuntimeLayer
from repro.util.executors import register_executor, unregister_executor

__all__ = ["PipelineLayer"]


class PipelineLayer(RuntimeLayer):
    """Lookahead prefetch + storage pipelining for the canonical loop.

    Parameters
    ----------
    depth:
        How many units past the current one to prefetch (and how many
        shards the storage reads ahead).  Depth 1 is classic double
        buffering.
    recorder / trace_id:
        Optional :class:`~repro.telemetry.recorder.FlightRecorder` ring
        (plus trace id) receiving ``kind="pipeline"`` events.

    The layer owns a single-worker executor, created on run start,
    registered with :func:`repro.util.executors.register_executor` and
    shut down in :meth:`finalize` — it never outlives the run.
    """

    def __init__(
        self,
        depth: int = 2,
        *,
        recorder=None,
        trace_id: str | None = None,
    ) -> None:
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = int(depth)
        self.recorder = recorder
        self.trace_id = trace_id
        self._executor: ThreadPoolExecutor | None = None
        self._storage = None
        #: unit index -> in-flight warm future.
        self._inflight: dict[int, object] = {}
        #: unit indexes a warm was ever issued for (this pass).
        self._issued: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.stalls = 0
        self.errors = 0
        self.issued = 0
        self.stall_seconds = 0.0

    # ------------------------------------------------------------------
    def _record(self, event: str, **fields) -> None:
        if self.recorder is None:
            return
        if self.trace_id is not None:
            fields["trace_id"] = self.trace_id
        self.recorder.record("pipeline", event=event, **fields)

    def stats(self) -> dict:
        """Counter snapshot (the pipeline bench's overlap evidence)."""
        return {
            "depth": self.depth,
            "issued": self.issued,
            "hits": self.hits,
            "misses": self.misses,
            "stalls": self.stalls,
            "errors": self.errors,
            "stall_seconds": self.stall_seconds,
        }

    # ------------------------------------------------------------------
    def on_run_start(self, ctx) -> None:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-pipeline"
            )
            register_executor(self._executor)
        self._inflight.clear()
        self._issued.clear()
        storage = getattr(ctx.state, "storage", None)
        if storage is not self._storage and self._storage is not None:
            self._storage.disarm_pipeline()
        if storage is not None:
            storage.arm_pipeline(self._executor, depth=self.depth)
            storage.prefetch(range(min(self.depth, storage.num_shards)))
        self._storage = storage
        ctx.metrics.gauge("pipeline.depth").set(self.depth)
        self._record("armed", depth=self.depth)

    def before_op(self, ctx, unit) -> None:
        self._resolve(ctx, unit)
        self._issue_lookahead(ctx, unit)

    def _resolve(self, ctx, unit) -> None:
        """Account for this unit's own prefetch before it runs."""
        future = self._inflight.pop(unit.index, None)
        if future is None:
            if unit.index in self._issued:
                # Issued and already drained in a previous resolve —
                # cannot happen with pop(), kept for symmetry.
                return
            if not unit.is_swap and self._warm_task(ctx.state, unit) is not None:
                self.misses += 1
                ctx.metrics.counter("pipeline.prefetch.misses").inc()
            return
        if not future.done():
            start = time.perf_counter()
            waited = self._await(future)
            stall = time.perf_counter() - start
            self.stalls += 1
            self.stall_seconds += stall
            ctx.metrics.histogram("pipeline.stall.seconds").observe(stall)
            self._record(
                "stall", op_index=unit.op_index, seconds=stall, ok=waited
            )
            return
        if self._await(future):
            self.hits += 1
            ctx.metrics.counter("pipeline.prefetch.hits").inc()
            self._record("hit", op_index=unit.op_index)

    def _await(self, future) -> bool:
        """Wait a future out; prefetch failures never fail the run."""
        try:
            future.result()
            return True
        except Exception:
            self.errors += 1
            return False

    def _issue_lookahead(self, ctx, unit) -> None:
        units = ctx.units
        horizon = min(unit.index + 1 + self.depth, len(units))
        for j in range(unit.index + 1, horizon):
            ahead = units[j]
            if ahead.is_swap:
                # The swap rewrites the qubit-to-bit layout: any table
                # key computed past it would be speculative.
                break
            if ahead.index in self._issued:
                continue
            task = self._warm_task(ctx.state, ahead)
            if task is None:
                continue
            self._issued.add(ahead.index)
            self._inflight[ahead.index] = self._executor.submit(task)
            self.issued += 1
            self._record("issued", op_index=ahead.op_index, ahead=j - unit.index)

    # ------------------------------------------------------------------
    def _warm_task(self, state, unit):
        """A zero-argument warm-up callable for *unit*, or ``None``.

        Table keys are computed *here*, on the main thread, from the
        current layout — the background task only builds.
        """
        bit_of_qubit = getattr(state, "bit_of_qubit", None)
        if bit_of_qubit is None:
            return None
        plan_op = unit.plan_op
        if plan_op is not None:
            return self._warm_task_plan(state, plan_op, bit_of_qubit)
        return self._warm_task_raw(state, unit, bit_of_qubit)

    def _warm_task_plan(self, state, plan_op, bit_of_qubit):
        kind = plan_op.exec_kind
        if kind in ("kernel", "fused_kernel"):
            if plan_op.strategy in ("indexed", "fused"):
                # A fused group's batched kernel gathers through the same
                # table family as a plain indexed kernel over the union.
                bits = [bit_of_qubit[q] for q in plan_op.qubits]
                if any(b >= state.local_qubits for b in bits):
                    return None
                n, chunk = state.local_qubits, plan_op.chunk_size

                def warm_kernel():
                    GATHER_CACHE.warm_gather_tables_t(n, bits, chunk)
                    GATHER_CACHE.warm_gather_inverse(n, bits, chunk)

                return warm_kernel
            if plan_op.strategy == "diagonal":
                return self._diag_warm(state, plan_op.qubits, plan_op.diag,
                                       bit_of_qubit)
            return None
        if kind in ("diagonal", "fused_diagonal"):
            return self._diag_warm(state, plan_op.qubits, plan_op.diag,
                                   bit_of_qubit)
        return None  # swap / passthrough: delegated verbatim, no tables

    def _warm_task_raw(self, state, unit, bit_of_qubit):
        op = getattr(unit.run, "__self__", None)
        gate = getattr(op, "gate", None)  # GateOp
        if gate is None:
            gates = getattr(op, "gates", None)  # ClusterOp
            if gates is None:
                return None
            qubits = op.qubits
            bits = [bit_of_qubit[q] for q in qubits]
            if any(b >= state.local_qubits for b in bits):
                return None
            if len(bits) > 6:
                return None  # reference strategy: no gather tables
            n, chunk = state.local_qubits, state.chunk_size

            def warm_cluster():
                fused = op.fused  # builds (and memoizes) the unitary
                if fused.is_diagonal:
                    diag = np.asarray(
                        np.diagonal(fused.matrix), dtype=state.storage.dtype
                    )
                    GATHER_CACHE.warm_diagonal_factor(n, bits, diag)
                else:
                    GATHER_CACHE.warm_gather_tables_t(n, bits, chunk)
                    GATHER_CACHE.warm_gather_inverse(n, bits, chunk)

            return warm_cluster
        if gate.is_diagonal:
            return self._diag_warm(
                state, gate.qubits, np.diagonal(gate.matrix), bit_of_qubit
            )
        return None  # monomial specialization: no tables

    @staticmethod
    def _diag_warm(state, qubits, diag, bit_of_qubit):
        bits = [bit_of_qubit[q] for q in qubits]
        if any(b >= state.local_qubits for b in bits):
            return None  # global diagonal: rank-conditional sub-diagonals
        # Mirror the kernel's cast: the cache key includes dtype + bytes.
        diag = np.asarray(diag, dtype=state.storage.dtype)
        n = state.local_qubits
        return lambda: GATHER_CACHE.warm_diagonal_factor(n, bits, diag)

    # ------------------------------------------------------------------
    def on_failure(self, ctx, exc: BaseException) -> None:
        # A restart pass re-resolves everything; drop stale futures.
        for future in self._inflight.values():
            future.cancel()
        self._inflight.clear()
        self._issued.clear()

    def on_run_end(self, ctx) -> None:
        if self._storage is not None:
            # Run-boundary durability: everything the serial path would
            # have msync'ed is on disk before the result is visible.
            self._storage.drain()

    def finalize(self, ctx) -> None:
        for future in self._inflight.values():
            future.cancel()
        self._inflight.clear()
        self._issued.clear()
        if self._storage is not None:
            self._storage.disarm_pipeline()
            self._storage = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            unregister_executor(self._executor)
            self._executor = None
        self._record("finalized", **self.stats())
