"""Emulation: classical shortcuts for known quantum operations.

The paper's related-work section contrasts circuit *simulation* with
*emulation* [7]: "the quantum Fourier transform ... can be emulated by
applying a fast Fourier transform to the state vector.  However, such
emulation techniques are not applicable to quantum supremacy circuits."

This subpackage implements that example: a gate-level QFT circuit
generator and the FFT-based emulator, which agree exactly while the
emulator runs asymptotically faster (O(N log N) vs O(n^2) full-state
sweeps) — and a demonstration of *why* supremacy circuits admit no such
shortcut (their unitaries have no exploitable structure).
"""

from repro.emulation.qft import (
    apply_qft_emulated,
    apply_qft_gates,
    qft_circuit,
    qft_matrix,
)

__all__ = [
    "apply_qft_emulated",
    "apply_qft_gates",
    "qft_circuit",
    "qft_matrix",
]
