"""Quantum Fourier transform: gate circuit and FFT emulation.

Conventions: little-endian basis (state index bit ``q`` = qubit ``q``),
and the QFT unitary is ``F[y, x] = exp(2*pi*i*x*y / N) / sqrt(N)`` with
``N = 2**n`` — the textbook matrix *including* the final qubit-reversal
swaps.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuit.circuit import Circuit
from repro.gates.gate import Gate
from repro.gates.matrices import controlled_phase_matrix
from repro.statevector.state import StateVector

__all__ = ["qft_matrix", "qft_circuit", "apply_qft_gates", "apply_qft_emulated"]


def qft_matrix(num_qubits: int) -> np.ndarray:
    """The dense QFT unitary (small n only; for testing)."""
    if num_qubits > 12:
        raise ValueError("dense QFT matrix only supported for n <= 12")
    dim = 1 << num_qubits
    x = np.arange(dim)
    return np.exp(2j * np.pi * np.outer(x, x) / dim) / math.sqrt(dim)


def qft_circuit(num_qubits: int) -> Circuit:
    """The standard QFT gate decomposition.

    H plus controlled-phase ladders, followed by the qubit-reversal SWAP
    layer so the circuit equals :func:`qft_matrix` exactly.
    ``n(n+1)/2 + n//2`` gates.
    """
    circuit = Circuit(num_qubits)
    for j in range(num_qubits - 1, -1, -1):
        circuit.append(Gate("h", (j,)))
        for k in range(j - 1, -1, -1):
            angle = math.pi / (1 << (j - k))
            circuit.append(
                Gate(
                    f"cphase(pi/{1 << (j - k)})",
                    (k, j),
                    controlled_phase_matrix(angle),
                )
            )
    for q in range(num_qubits // 2):
        circuit.append(Gate("swap", (q, num_qubits - 1 - q)))
    return circuit


def apply_qft_gates(state: StateVector) -> StateVector:
    """Apply the QFT gate by gate (the *simulation* route)."""
    return state.apply_circuit(qft_circuit(state.num_qubits))


def apply_qft_emulated(state: StateVector) -> StateVector:
    """Apply the QFT via a fast Fourier transform (the *emulation* route).

    ``(F psi)[y] = sum_x exp(2 pi i x y / N) psi[x] / sqrt(N)`` is numpy's
    inverse FFT scaled by ``sqrt(N)`` — one O(N log N) pass instead of
    O(n^2) full-state gate sweeps.  Mutates and returns *state*.
    """
    dim = state.data.shape[0]
    state.data[:] = np.fft.ifft(state.data) * math.sqrt(dim)
    return state
