"""Cross-validation harness.

A simulator's most important property is being *right*; this subpackage
provides the comparison tooling the paper's authors would have used to
validate their C++ kernels against a reference (and that users of this
library can point at their own backends):

* :func:`compare_states` — amplitude-level comparison with a structured
  report (max deviation, fidelity, worst indices);
* :func:`spot_check_amplitudes` — random-subset comparison for states
  too large to diff wholesale (the only option at 2**45 amplitudes);
* :func:`cross_validate` — run one circuit through multiple backend
  configurations and verify pairwise agreement.
"""

from repro.verify.compare import (
    ComparisonReport,
    compare_states,
    cross_validate,
    spot_check_amplitudes,
)

__all__ = [
    "ComparisonReport",
    "compare_states",
    "cross_validate",
    "spot_check_amplitudes",
]
