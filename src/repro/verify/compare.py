"""State comparison and backend cross-validation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.circuit import Circuit
from repro.statevector.state import StateVector
from repro.util.rng import ensure_rng

__all__ = [
    "ComparisonReport",
    "compare_states",
    "spot_check_amplitudes",
    "cross_validate",
]


@dataclass(frozen=True)
class ComparisonReport:
    """Outcome of an amplitude-level comparison."""

    num_qubits: int
    max_abs_deviation: float
    fidelity: float
    worst_index: int
    compared_amplitudes: int

    def ok(self, *, atol: float = 1e-9) -> bool:
        """True when the states agree within *atol* everywhere compared."""
        return self.max_abs_deviation <= atol

    def __str__(self) -> str:
        return (
            f"ComparisonReport(n={self.num_qubits}, "
            f"max|Δ|={self.max_abs_deviation:.3e} @ index {self.worst_index}, "
            f"fidelity={self.fidelity:.12f}, "
            f"compared={self.compared_amplitudes})"
        )


def compare_states(a: StateVector, b: StateVector) -> ComparisonReport:
    """Full amplitude-wise comparison of two states."""
    if a.num_qubits != b.num_qubits:
        raise ValueError(
            f"qubit-count mismatch: {a.num_qubits} vs {b.num_qubits}"
        )
    deviation = np.abs(a.data - b.data)
    worst = int(np.argmax(deviation))
    return ComparisonReport(
        num_qubits=a.num_qubits,
        max_abs_deviation=float(deviation[worst]),
        fidelity=a.fidelity(b),
        worst_index=worst,
        compared_amplitudes=a.data.shape[0],
    )


def spot_check_amplitudes(
    a: StateVector,
    b: StateVector,
    *,
    samples: int = 1024,
    seed=None,
) -> ComparisonReport:
    """Compare a random subset of amplitudes (for very large states).

    Samples indices from the union of both states' high-probability
    outcomes plus uniform indices, so both heavy and tail amplitudes are
    covered.  Fidelity is estimated over the sampled subset (normalised
    partial inner product) — exact comparison should use
    :func:`compare_states` when memory allows.
    """
    if a.num_qubits != b.num_qubits:
        raise ValueError("qubit-count mismatch")
    rng = ensure_rng(seed)
    dim = a.data.shape[0]
    samples = min(samples, dim)
    uniform = rng.choice(dim, size=samples // 2 + 1, replace=False)
    top_a = np.argsort(np.abs(a.data))[-(samples // 4 + 1):]
    top_b = np.argsort(np.abs(b.data))[-(samples // 4 + 1):]
    indices = np.unique(np.concatenate([uniform, top_a, top_b]))
    deviation = np.abs(a.data[indices] - b.data[indices])
    worst_pos = int(np.argmax(deviation))
    overlap = np.vdot(a.data[indices], b.data[indices])
    norm_a = np.linalg.norm(a.data[indices])
    norm_b = np.linalg.norm(b.data[indices])
    fid = float(abs(overlap) ** 2 / max((norm_a * norm_b) ** 2, 1e-300))
    return ComparisonReport(
        num_qubits=a.num_qubits,
        max_abs_deviation=float(deviation[worst_pos]),
        fidelity=fid,
        worst_index=int(indices[worst_pos]),
        compared_amplitudes=int(indices.shape[0]),
    )


def cross_validate(
    circuit: Circuit,
    local_qubits: int,
    *,
    kmax: int = 4,
    seed: int = 0,
    atol: float = 1e-9,
) -> dict[str, ComparisonReport]:
    """Run *circuit* through every backend and compare against reference.

    Backends: in-process distributed (per-gate), in-process distributed
    (scheduled), scheduled with absorption.  Returns one report per
    backend; raises AssertionError when any disagrees beyond *atol*.
    """
    from repro.distributed import DistributedSimulator
    from repro.scheduling import SchedulerConfig, schedule_circuit
    from repro.statevector import Simulator

    n = circuit.num_qubits
    reference = Simulator(n).run(circuit).state
    reports: dict[str, ComparisonReport] = {}

    per_gate = DistributedSimulator(n, local_qubits).run(circuit, auto_swap=True)
    reports["distributed-per-gate"] = compare_states(
        reference, per_gate.state.to_statevector()
    )

    for label, absorb in (("scheduled", False), ("scheduled-absorbed", True)):
        sched = schedule_circuit(
            circuit,
            SchedulerConfig(
                local_qubits=local_qubits,
                kmax=kmax,
                seed=seed,
                skip_initial_hadamards=False,
                absorb_diagonals=absorb,
            ),
        )
        run = DistributedSimulator(n, local_qubits).run_schedule(sched)
        reports[label] = compare_states(reference, run.state.to_statevector())

    for label, report in reports.items():
        if not report.ok(atol=atol):
            raise AssertionError(f"backend {label!r} disagrees: {report}")
    return reports
