"""Work partitioning across threads."""

from __future__ import annotations

__all__ = ["partition_range", "partition_work"]


def partition_range(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most *parts* contiguous spans.

    Spans differ in length by at most one; empty spans are dropped, so
    fewer than *parts* spans are returned when ``total < parts``.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    base, extra = divmod(total, parts)
    spans = []
    start = 0
    for i in range(parts):
        length = base + (1 if i < extra else 0)
        if length == 0:
            continue
        spans.append((start, start + length))
        start += length
    return spans


def partition_work(
    total_c: int, threads: int, *, min_chunk: int = 1024
) -> list[tuple[int, int]]:
    """Partition the kernel's ``c`` index range for a thread pool.

    Mirrors the paper's OpenMP ``collapse`` reasoning: when the outermost
    loop has too few iterations to feed all threads, we still hand each
    thread a span of at least *min_chunk* products so per-task overhead
    stays negligible.
    """
    if total_c <= min_chunk or threads <= 1:
        return [(0, total_c)] if total_c else []
    parts = min(threads, max(1, total_c // min_chunk))
    return partition_range(total_c, parts)
