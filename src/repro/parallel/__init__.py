"""Node-level parallel kernel execution (the paper's OpenMP layer, Sec. 3.3).

The paper parallelises k-qubit kernels over cores with OpenMP (with
``collapse`` to expose enough outer-loop iterations and NUMA-aware state
initialisation).  The Python analogue here partitions the ``c`` index
range of the indexed kernel across a thread pool: different ``c`` blocks
touch disjoint state entries, so workers need no synchronisation, and
numpy's BLAS matmul releases the GIL for the per-block panel products.

On the single-core container this layer is validated for correctness and
determinism; the *scaling* curves of Figs. 7 and 10 come from
:mod:`repro.perfmodel.scaling`.
"""

from repro.parallel.executor import ChunkedExecutor
from repro.parallel.partition import partition_range, partition_work

__all__ = ["ChunkedExecutor", "partition_range", "partition_work"]
