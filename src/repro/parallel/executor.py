"""Thread-pool kernel executor (the OpenMP stand-in)."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from repro.kernels.apply import _gather_indices, apply_diagonal_gate
from repro.parallel.partition import partition_work
from repro.util.bits import bit_length_of_power_of_two
from repro.util.validation import check_qubit_indices

__all__ = ["ChunkedExecutor"]


class ChunkedExecutor:
    """Applies gate kernels across a pool of worker threads.

    Different ``c`` blocks of the indexed kernel read and write disjoint
    state entries, so block tasks are embarrassingly parallel — the same
    decomposition the paper's OpenMP pragmas exploit.  Use as a context
    manager or call :meth:`close` to release the pool.
    """

    def __init__(self, num_threads: int, *, min_chunk: int = 1 << 12) -> None:
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = num_threads
        self.min_chunk = min_chunk
        self._pool = (
            ThreadPoolExecutor(max_workers=num_threads) if num_threads > 1 else None
        )

    # ------------------------------------------------------------------
    def apply_gate(
        self, state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
    ) -> np.ndarray:
        """Apply a dense k-qubit gate in place, parallel over ``c`` blocks."""
        n = bit_length_of_power_of_two(state.shape[0])
        qubits = check_qubit_indices(qubits, n)
        k = len(qubits)
        matrix = np.ascontiguousarray(matrix, dtype=state.dtype)
        total_c = 1 << (n - k)
        spans = partition_work(total_c, self.num_threads, min_chunk=self.min_chunk)

        def work(span: tuple[int, int]) -> None:
            c_start, c_stop = span
            idx = _gather_indices(n, qubits, c_start, c_stop)
            state[idx] = matrix @ state[idx]

        if self._pool is None or len(spans) <= 1:
            for span in spans:
                work(span)
        else:
            list(self._pool.map(work, spans))
        return state

    def apply_diagonal(
        self, state: np.ndarray, diag: np.ndarray, qubits: Sequence[int]
    ) -> np.ndarray:
        """Apply a diagonal gate in place, parallel over contiguous slabs.

        Slabs split the state along its most significant bits, so every
        worker multiplies a contiguous slice; the diagonal factor for a
        slab is found by fixing the high bits the slab implies.
        """
        n = bit_length_of_power_of_two(state.shape[0])
        qubits = check_qubit_indices(qubits, n)
        if self._pool is None:
            return apply_diagonal_gate(state, diag, qubits)
        # Split on the top bits NOT used by the gate so each slab sees the
        # same qubit geometry.
        top_free = [b for b in range(n - 1, -1, -1) if b not in qubits]
        split_bits: list[int] = []
        while (1 << len(split_bits)) < self.num_threads and top_free:
            b = top_free.pop(0)
            if (1 << b) * 2 <= state.shape[0]:
                split_bits.append(b)
        if not split_bits or min(split_bits) <= max(qubits):
            return apply_diagonal_gate(state, diag, qubits)
        slab = 1 << min(split_bits)

        def work(start: int) -> None:
            view = state[start : start + slab]
            apply_diagonal_gate(view, diag, qubits)

        starts = range(0, state.shape[0], slab)
        list(self._pool.map(work, starts))
        return state

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ChunkedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
