"""Deterministic fault injection for distributed execution.

The paper's record run pinned 0.5 PB across 8,192 Cori II nodes for ~10
minutes — a scale at which hardware faults are a *when*, not an *if* —
yet, like qHiPSTER (arXiv:1601.07195), it assumes a fault-free machine.
This module supplies the failure side of the story: a seeded
:class:`FaultPlan` names exactly which faults strike which operations,
and a :class:`FaultInjector` arms them against a live run.

Fault model (all deterministic from ``(plan.seed, op_index, kind)``):

* ``crash`` — a rank dies.  ``phase="before"`` kills it before the op
  touches any data; ``phase="mid"`` lets the all-to-all complete, then
  scribbles over the crashed rank's shard and raises — the state cannot
  be trusted afterwards, forcing a checkpoint restart.
* ``corrupt`` — silent data corruption: one bit of one amplitude of one
  shard is flipped at rest.  Nothing raises; only the supervisor's
  checksum verification can catch it.
* ``transient`` — the exchange fails before moving any bytes (link
  reset / retryable MPI error).  Succeeds after ``times`` firings.
* ``stall`` — a slow link: the op completes but is charged
  ``stall_seconds`` of (simulated) delay.

Injection happens at two seams the supervisor controls: an op-boundary
hook (:meth:`FaultInjector.on_op_start`) and a patch of the storage
backend's ``exchange_blocks`` (:meth:`FaultInjector.exchange_guard`), so
neither :class:`~repro.distributed.state.DistributedState` nor the
storage backends know faults exist.
"""

from __future__ import annotations

import json
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.distributed.state import DistributedState

__all__ = [
    "FATAL_FAULTS",
    "FAULT_KINDS",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RankCrashError",
    "RestartBudgetExceededError",
    "RetryBudgetExceededError",
    "ShardCorruptionError",
    "TransientCommError",
]

FAULT_KINDS = ("crash", "corrupt", "transient", "stall")


class FaultError(RuntimeError):
    """Base class of every injected or detected fault condition."""


class RankCrashError(FaultError):
    """A (virtual) rank died; the in-flight state is unrecoverable."""


class TransientCommError(FaultError):
    """A retryable communication error (no data was moved)."""


class ShardCorruptionError(FaultError):
    """Shard checksum verification failed."""

    def __init__(self, ranks: list[int]) -> None:
        super().__init__(f"checksum mismatch on rank(s) {ranks}")
        self.ranks = ranks


class RetryBudgetExceededError(FaultError):
    """Per-op transient retries exhausted; escalated to a restart."""


class RestartBudgetExceededError(FaultError):
    """The run burned through its checkpoint-restart budget."""


#: Fault classes that trigger a checkpoint restart rather than a retry.
FATAL_FAULTS = (
    RankCrashError,
    ShardCorruptionError,
    RetryBudgetExceededError,
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault bound to one operation index.

    ``times`` is how many firings the fault has: a crash with ``times=1``
    strikes once and the replay sails through; ``times`` beyond the
    restart budget models a hard failure that exhausts it.
    """

    op_index: int
    kind: str
    phase: str = "before"  # crash only: "before" | "mid"
    rank: int | None = None  # corrupt / mid-crash target (None: seeded)
    times: int = 1
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "crash" and self.phase not in ("before", "mid"):
            raise ValueError(f"crash phase must be before|mid, got {self.phase!r}")
        if self.op_index < 0:
            raise ValueError("op_index must be >= 0")
        if self.times < 1:
            raise ValueError("times must be >= 1")

    def to_dict(self) -> dict:
        """JSON-ready representation (the fault-plan file format)."""
        out = {"op_index": self.op_index, "kind": self.kind}
        if self.kind == "crash":
            out["phase"] = self.phase
        if self.rank is not None:
            out["rank"] = self.rank
        if self.times != 1:
            out["times"] = self.times
        if self.kind == "stall":
            out["stall_seconds"] = self.stall_seconds
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            op_index=int(data["op_index"]),
            kind=str(data["kind"]),
            phase=str(data.get("phase", "before")),
            rank=None if data.get("rank") is None else int(data["rank"]),
            times=int(data.get("times", 1)),
            stall_seconds=float(data.get("stall_seconds", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded list of faults — the unit of reproducibility.

    Running the same plan against the same schedule twice produces
    identical traces and identical recovery reports (modulo wall time):
    every random choice (which rank, which amplitude, which bit) derives
    from ``seed`` and the fault's own coordinates.
    """

    seed: int = 0
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def faults_at(self, op_index: int) -> tuple[FaultSpec, ...]:
        """The plan's faults bound to one op index, in plan order."""
        return tuple(f for f in self.faults if f.op_index == op_index)

    def to_json(self) -> str:
        """Serialize to the documented fault-plan JSON format."""
        return json.dumps(
            {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from :meth:`to_json` output."""
        data = json.loads(text)
        return cls(
            seed=int(data.get("seed", 0)),
            faults=tuple(FaultSpec.from_dict(f) for f in data.get("faults", ())),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file."""
        return cls.from_json(Path(path).read_text())


class FaultInjector:
    """Arms a :class:`FaultPlan` against one resilient execution.

    The injector owns the plan's mutable trial state (remaining firings
    per fault) and a log of everything that actually fired; ``reset()``
    restores it for a bit-identical rerun.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._remaining: list[int] = [f.times for f in plan.faults]
        #: every fault firing, in order: dicts with op_index/kind/detail.
        self.log: list[dict] = []

    def reset(self) -> None:
        """Re-arm every fault and clear the firing log."""
        self._remaining = [f.times for f in self.plan.faults]
        self.log.clear()

    # ------------------------------------------------------------------
    def _armed(self, op_index: int, kind: str, phase: str | None = None):
        """(plan position, spec) pairs still armed for this op/kind."""
        for i, spec in enumerate(self.plan.faults):
            if spec.op_index != op_index or spec.kind != kind:
                continue
            if phase is not None and spec.phase != phase:
                continue
            if self._remaining[i] > 0:
                yield i, spec

    def _fire(self, i: int, spec: FaultSpec, detail: str) -> None:
        self._remaining[i] -= 1
        self.log.append(
            {"op_index": spec.op_index, "kind": spec.kind, "detail": detail}
        )

    def _rng(self, spec: FaultSpec, salt: str) -> np.random.Generator:
        # crc32, not hash(): str hashing is randomized per process and
        # would break run-to-run determinism of the injected corruption.
        return np.random.default_rng(
            [self.plan.seed, spec.op_index, zlib.crc32(salt.encode())]
        )

    def _corrupt_shard(
        self, state: DistributedState, spec: FaultSpec, salt: str
    ) -> tuple[int, int, int]:
        """Flip one deterministic bit of one amplitude of one shard."""
        rng = self._rng(spec, salt)
        rank = spec.rank if spec.rank is not None else int(
            rng.integers(state.num_ranks)
        )
        shard = state.storage.get(rank)
        byte = int(rng.integers(shard.nbytes))
        bit = int(rng.integers(8))
        raw = np.ascontiguousarray(shard).view(np.uint8)
        raw[byte] ^= 1 << bit
        state.storage.set(rank, raw.view(shard.dtype))
        return rank, byte, bit

    # ------------------------------------------------------------------
    # Supervisor seams
    # ------------------------------------------------------------------
    def on_op_start(self, op_index: int, state: DistributedState) -> float:
        """Op-boundary hook: crash-before, at-rest corruption, stalls.

        Returns the simulated stall seconds charged to this op (0.0 when
        no stall fault fired).  Raises :class:`RankCrashError` for an
        armed crash-before fault.
        """
        stall = 0.0
        for i, spec in self._armed(op_index, "stall"):
            self._fire(i, spec, f"stalled link +{spec.stall_seconds}s")
            stall += spec.stall_seconds
        for i, spec in self._armed(op_index, "corrupt"):
            rank, byte, bit = self._corrupt_shard(state, spec, "corrupt")
            self._fire(
                i, spec, f"flipped bit {bit} of byte {byte} on rank {rank}"
            )
        for i, spec in self._armed(op_index, "crash", phase="before"):
            self._fire(i, spec, "rank crashed before op")
            raise RankCrashError(
                f"injected crash before op {op_index}"
            )
        return stall

    @contextmanager
    def exchange_guard(self, op_index: int, state: DistributedState):
        """Patch ``storage.exchange_blocks`` for one op attempt.

        Transient faults raise before any bytes move; mid-swap crashes
        let the exchange finish, corrupt the crashed rank's shard, and
        then raise — the partially-trusted state forces a restart.
        """
        storage = state.storage
        original = storage.exchange_blocks
        injector = self

        def guarded(swap_qubits: int) -> None:
            for i, spec in injector._armed(op_index, "transient"):
                injector._fire(i, spec, "transient all-to-all error")
                raise TransientCommError(
                    f"injected transient comm error at op {op_index}"
                )
            original(swap_qubits)
            for i, spec in injector._armed(op_index, "crash", phase="mid"):
                # The exchange completed before the rank died, so its bytes
                # really crossed the network — record them so the restart
                # accounting can charge them as redundant.  swap_global_set
                # aborts before its own record_alltoall on the raise below.
                group = 1 << swap_qubits
                state.stats.record_alltoall(
                    num_groups=storage.num_shards // group,
                    group_size=group,
                    shard_bytes=storage.shard_bytes,
                )
                rank, byte, bit = injector._corrupt_shard(
                    state, spec, "crash-mid"
                )
                injector._fire(
                    i, spec, f"rank {rank} crashed mid-swap (shard torn)"
                )
                raise RankCrashError(
                    f"injected crash mid-swap at op {op_index} (rank {rank})"
                )

        had_override = "exchange_blocks" in storage.__dict__
        storage.exchange_blocks = guarded
        try:
            yield
        finally:
            if had_override:
                storage.exchange_blocks = original
            else:
                # Remove our instance-level patch so the class
                # implementation shows through again untouched.
                del storage.__dict__["exchange_blocks"]
