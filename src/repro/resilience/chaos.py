"""Chaos harness: sweep fault scenarios, prove bit-exact recovery.

Each :class:`ChaosScenario` builds a :class:`FaultPlan` against a
concrete schedule (fault coordinates depend on where its swaps land),
runs it through :class:`~repro.resilience.supervisor.ResilientExecutor`,
and compares the recovered final state **bit-for-bit** against a
fault-free reference execution of the same schedule.  Bit-exactness (not
``allclose``) is the honest bar: recovery replays identical kernels on
identical checkpointed amplitudes, so even the last ulp must match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.distributed.checkpoint import CheckpointManager
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    RestartBudgetExceededError,
)
from repro.resilience.supervisor import (
    RecoveryReport,
    ResilientExecutor,
    RetryPolicy,
)
from repro.scheduling.program import Schedule, SwapOp

__all__ = [
    "ChaosRunResult",
    "ChaosScenario",
    "ChaosSuiteResult",
    "default_scenarios",
    "run_chaos_suite",
    "run_scenario",
]


def _no_sleep(_seconds: float) -> None:
    """Default sleeper: account delays without actually waiting."""


@dataclass(frozen=True)
class ChaosScenario:
    """One named fault configuration.

    ``build_plan`` receives ``(schedule, swap_indices, policy)`` and
    returns the plan (or ``None`` for a fault-free control).
    ``expect_error`` marks scenarios that must *fail* with a typed error
    instead of recovering.
    """

    name: str
    description: str
    build_plan: Callable[[Schedule, list[int], RetryPolicy], FaultPlan | None]
    expect_error: type | None = None
    verify: str = "swap"


@dataclass
class ChaosRunResult:
    """Outcome of one scenario."""

    scenario: ChaosScenario
    passed: bool
    bit_exact: bool | None  # None when the scenario expects an error
    error: str | None
    report: RecoveryReport | None
    trace_signature: list = field(default_factory=list)

    @property
    def name(self) -> str:
        """Scenario name (convenience for reports)."""
        return self.scenario.name


@dataclass
class ChaosSuiteResult:
    """All scenario outcomes plus the shared reference metadata."""

    schedule_summary: dict
    results: list[ChaosRunResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every scenario passed."""
        return all(r.passed for r in self.results)

    @property
    def num_passed(self) -> int:
        """Number of passing scenarios."""
        return sum(1 for r in self.results if r.passed)


def swap_op_indices(schedule: Schedule) -> list[int]:
    """Op-stream indices of the schedule's global-to-local swaps."""
    return [
        i
        for i, op in enumerate(schedule.operations())
        if isinstance(op, SwapOp)
    ]


def default_scenarios() -> list[ChaosScenario]:
    """The six-plus canonical fault scenarios of the acceptance sweep."""

    def control(schedule, swaps, policy):
        return None

    def crash_before_swap(schedule, swaps, policy):
        return FaultPlan(
            seed=11,
            faults=(FaultSpec(op_index=swaps[0], kind="crash", phase="before"),),
        )

    def crash_mid_swap(schedule, swaps, policy):
        return FaultPlan(
            seed=12,
            faults=(FaultSpec(op_index=swaps[-1], kind="crash", phase="mid"),),
        )

    def corrupt_one_shard(schedule, swaps, policy):
        # Strike between swaps; verify="every" catches it at the next op.
        target = max(0, swaps[0] - 1)
        return FaultPlan(
            seed=13, faults=(FaultSpec(op_index=target, kind="corrupt"),)
        )

    def transient_then_success(schedule, swaps, policy):
        return FaultPlan(
            seed=14,
            faults=(FaultSpec(op_index=swaps[0], kind="transient", times=2),),
        )

    def stalled_link(schedule, swaps, policy):
        return FaultPlan(
            seed=15,
            faults=(
                FaultSpec(
                    op_index=swaps[0], kind="stall", stall_seconds=0.25
                ),
            ),
        )

    def restart_budget_exhausted(schedule, swaps, policy):
        return FaultPlan(
            seed=16,
            faults=(
                FaultSpec(
                    op_index=swaps[0],
                    kind="crash",
                    phase="before",
                    times=policy.max_restarts + 2,
                ),
            ),
        )

    return [
        ChaosScenario(
            "fault-free-control",
            "no faults; baseline the harness itself",
            control,
        ),
        ChaosScenario(
            "crash-before-swap",
            "rank dies before the first all-to-all; checkpoint restart",
            crash_before_swap,
        ),
        ChaosScenario(
            "crash-mid-swap",
            "rank dies mid-exchange leaving a torn shard; restart discards it",
            crash_mid_swap,
        ),
        ChaosScenario(
            "corrupt-one-shard",
            "silent bit flip at rest, detected by CRC32 verification",
            corrupt_one_shard,
            verify="every",
        ),
        ChaosScenario(
            "transient-then-success",
            "two transient all-to-all errors, then success under backoff",
            transient_then_success,
        ),
        ChaosScenario(
            "stalled-link",
            "slow link charged as stall overhead; no recovery needed",
            stalled_link,
        ),
        ChaosScenario(
            "restart-budget-exhausted",
            "crash striking on every attempt must raise the typed error",
            restart_budget_exhausted,
            expect_error=RestartBudgetExceededError,
        ),
    ]


def _reference_amplitudes(schedule: Schedule) -> np.ndarray:
    """Fault-free final state of the schedule, in logical order."""
    from repro.runtime import ExecutionEngine

    state = CheckpointManager.initial_state_for(schedule)
    result = ExecutionEngine(schedule, use_plan=False).run(state=state)  # lint: allow-engine-direct
    return result.state.to_statevector().data.copy()


def run_scenario(
    schedule: Schedule,
    scenario: ChaosScenario,
    workdir: str | Path,
    *,
    policy: RetryPolicy | None = None,
    checkpoint_every: int = 2,
    reference: np.ndarray | None = None,
    sleep=_no_sleep,
) -> ChaosRunResult:
    """Run one scenario and judge it against the fault-free reference."""
    policy = policy or RetryPolicy()
    if reference is None:
        reference = _reference_amplitudes(schedule)
    swaps = swap_op_indices(schedule)
    if not swaps:
        raise ValueError("chaos scenarios need a schedule with >= 1 swap")
    plan = scenario.build_plan(schedule, swaps, policy)
    ckpt_dir = Path(workdir) / scenario.name
    CheckpointManager(ckpt_dir).clear()
    executor = ResilientExecutor(
        schedule,
        ckpt_dir,
        plan=plan,
        policy=policy,
        checkpoint_every=checkpoint_every,
        verify=scenario.verify,
        sleep=sleep,
    )
    try:
        result = executor.run()
    except Exception as exc:  # noqa: BLE001 — judged below
        expected = scenario.expect_error is not None and isinstance(
            exc, scenario.expect_error
        )
        return ChaosRunResult(
            scenario=scenario,
            passed=expected,
            bit_exact=None,
            error=f"{type(exc).__name__}: {exc}",
            report=None,
        )
    if scenario.expect_error is not None:
        return ChaosRunResult(
            scenario=scenario,
            passed=False,
            bit_exact=None,
            error=f"expected {scenario.expect_error.__name__}, run succeeded",
            report=result.report,
            trace_signature=result.trace.signature(),
        )
    recovered = result.state.to_statevector().data
    bit_exact = bool(np.array_equal(recovered, reference))
    return ChaosRunResult(
        scenario=scenario,
        passed=bit_exact,
        bit_exact=bit_exact,
        error=None if bit_exact else "final state differs from reference",
        report=result.report,
        trace_signature=result.trace.signature(),
    )


def run_chaos_suite(
    schedule: Schedule,
    workdir: str | Path,
    *,
    scenarios: list[ChaosScenario] | None = None,
    policy: RetryPolicy | None = None,
    checkpoint_every: int = 2,
    sleep=_no_sleep,
) -> ChaosSuiteResult:
    """Run every scenario against one shared fault-free reference."""
    scenarios = scenarios if scenarios is not None else default_scenarios()
    reference = _reference_amplitudes(schedule)
    suite = ChaosSuiteResult(schedule_summary=schedule.summary())
    for scenario in scenarios:
        suite.results.append(
            run_scenario(
                schedule,
                scenario,
                workdir,
                policy=policy,
                checkpoint_every=checkpoint_every,
                reference=reference,
                sleep=sleep,
            )
        )
    return suite
