"""Fault-tolerant schedule execution.

:class:`ResilientExecutor` runs a :class:`~repro.scheduling.Schedule`
under an (optional) :class:`~repro.resilience.faults.FaultPlan` and
guarantees the final state is bit-exact with a fault-free run, or raises
a typed error once its recovery budget is spent.  Three mechanisms:

* **retry with exponential backoff** — transient communication errors
  re-attempt the op; a global-to-local swap is resumable (the free
  renumbering and local staging swaps are idempotent once done, and the
  all-to-all records nothing until it succeeds), so a retried op never
  double-counts bytes or kernels;
* **shard integrity verification** — CRC32 checksums recorded after
  every op and re-verified at swap boundaries (or every op with
  ``verify="every"``) turn silent corruption into a detected
  :class:`ShardCorruptionError`;
* **checkpoint restart** — fatal faults (crashes, detected corruption,
  exhausted retries) roll back to the last
  :class:`~repro.distributed.checkpoint.CheckpointManager` checkpoint
  (or a fresh initial state) and replay.

Since the runtime engine landed this class is a thin assembler: it
builds an :class:`~repro.runtime.ExecutionEngine` with the resilient
layer stack (tracing, checkpoint, fault injection, integrity,
sanitizer) and a :class:`RetryPolicy`, and the engine owns the retry and
restart machinery.  Execution is recorded as telemetry spans: one span
per op *attempt* (transient failures mutate into ``fault`` spans,
aborted fatal attempts into ``aborted`` ones, excluded from the op-event
view), nested under a ``resilient_run`` root.  The result's
:class:`~repro.distributed.tracing.ExecutionTrace` is the flat view over
those spans, so chaos reports and normal traces share one model and the
timing-free ``signature()`` stays comparable across runs.  All
quantities except measured wall seconds are deterministic given the
schedule, plan and policy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.distributed.checkpoint import CheckpointManager
from repro.distributed.comm import CommStats
from repro.distributed.state import DistributedState
from repro.distributed.tracing import ExecutionTrace
from repro.resilience.faults import (  # noqa: F401  (FATAL_FAULTS re-export)
    FATAL_FAULTS,
    FaultInjector,
    FaultPlan,
)
from repro.runtime import (
    CheckpointLayer,
    ExecutionEngine,
    FaultLayer,
    IntegrityLayer,
    RecoveryReport,
    RetryPolicy,
    SanitizerLayer,
    TracingLayer,
)
from repro.scheduling.program import Schedule
from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.runtime import Telemetry
from repro.telemetry.spans import Tracer

__all__ = [
    "RecoveryReport",
    "ResilientExecutor",
    "ResilientRunResult",
    "RetryPolicy",
]


@dataclass
class ResilientRunResult:
    """Output of one resilient run."""

    state: DistributedState
    trace: ExecutionTrace
    report: RecoveryReport

    @property
    def comm(self) -> CommStats:
        """Communication counters of the (successful) execution path."""
        return self.state.stats

    @property
    def spans(self) -> list:
        """The run's telemetry spans (the trace is the flat view over them)."""
        return self.trace.spans


class ResilientExecutor:
    """Runs a schedule to bit-exact completion under injected faults.

    Parameters
    ----------
    schedule:
        The program to execute.
    checkpoint_dir:
        Directory for :class:`CheckpointManager`; restart state lives
        here.  An existing checkpoint in the directory is resumed.
    plan:
        Optional :class:`FaultPlan`; ``None`` runs fault-free (the
        control configuration chaos suites compare against).
    policy:
        Retry/restart budgets and backoff shape.
    checkpoint_every:
        Checkpoint after every N completed ops (0 disables periodic
        checkpoints; a final checkpoint is always written).
    verify:
        ``"swap"`` (default) verifies shard checksums at swap boundaries
        and at the end of the run; ``"every"`` before every op;
        ``"never"`` disables integrity checking.
    sleep:
        Injectable sleeper for backoff/stall delays (default
        ``time.sleep``; pass a no-op to keep tests instant — the report
        accounts the delays either way).
    sanitizer:
        Optional :class:`repro.staticcheck.ShardSanitizer` driven at
        every op boundary (NaN/Inf, norm conservation, checksum
        divergence); its findings accumulate in ``sanitizer.report``
        across restarts.  Complements ``verify``: the checksum table
        here turns corruption into a restart, the sanitizer into
        op-pinned diagnostics.
    telemetry:
        Optional :class:`~repro.telemetry.runtime.Telemetry` bundle.  The
        executor *always* records spans (the result's trace is built
        from them); passing an enabled bundle makes them land in the
        caller's tracer (for export) and streams ``comm.*`` /
        ``resilience.*`` metrics into its registry.
    state_factory:
        Builds the state a run or restart starts from (and the vessel a
        checkpoint loads into).  Defaults to the schedule's canonical
        in-memory initial state; pass a factory closing over a custom
        :class:`~repro.distributed.ShardStorage` backend to carry it
        across restarts.
    use_plan:
        Execute through the schedule's compiled plan instead of the raw
        op stream.  Off by default: with diagonal fusion, plan-unit
        boundaries differ from raw op boundaries, which shifts
        checkpoint indices and trace signatures relative to historical
        resilient runs.
    """

    def __init__(
        self,
        schedule: Schedule,
        checkpoint_dir,
        *,
        plan: FaultPlan | None = None,
        policy: RetryPolicy | None = None,
        checkpoint_every: int = 4,
        verify: str = "swap",
        sleep=time.sleep,
        sanitizer=None,
        telemetry: Telemetry | None = None,
        state_factory=None,
        use_plan: bool = False,
    ) -> None:
        if verify not in ("swap", "every", "never"):
            raise ValueError(f"verify must be swap|every|never, got {verify!r}")
        self.schedule = schedule
        self.manager = CheckpointManager(checkpoint_dir)
        self.injector = FaultInjector(plan) if plan is not None else None
        self.policy = policy or RetryPolicy()
        self.checkpoint_every = checkpoint_every
        self.verify = verify
        self._sleep = sleep
        self.sanitizer = sanitizer
        self.use_plan = use_plan
        self._state_factory = state_factory or (
            lambda: CheckpointManager.initial_state_for(self.schedule)
        )
        # The trace is a view over spans, so a live tracer is mandatory:
        # use the caller's when it is collecting, else a private one.
        if telemetry is not None and telemetry.tracer.enabled:
            tracer = telemetry.tracer
        else:
            tracer = Tracer(enabled=True, per_rank=False)
        metrics = telemetry.metrics if telemetry is not None else NULL_METRICS
        self.telemetry = Telemetry(tracer=tracer, metrics=metrics)

    # ------------------------------------------------------------------
    def _build_engine(self) -> ExecutionEngine:
        """The engine + layer stack equivalent of this executor."""
        layers = [
            TracingLayer(self.telemetry, mode="resilient", trace_scope="run"),
            CheckpointLayer(
                self.manager,
                every=self.checkpoint_every,
                resume=True,
                skip_last=True,
                state_factory=self._state_factory,
            ),
        ]
        if self.injector is not None:
            layers.append(FaultLayer(self.injector, sleep=self._sleep))
        if self.verify != "never":
            layers.append(IntegrityLayer(self.verify))
        if self.sanitizer is not None:
            layers.append(SanitizerLayer(self.sanitizer))
        num_ops = len(list(self.schedule.operations()))
        return ExecutionEngine(  # lint: allow-engine-direct
            self.schedule,
            use_plan=self.use_plan,
            layers=layers,
            policy=self.policy,
            state_factory=self._state_factory,
            sleep=self._sleep,
            root_span="resilient_run",
            root_attrs={"ops": num_ops},
        )

    def run(self) -> ResilientRunResult:
        """Execute to completion; raises a typed error past the budget."""
        result = self._build_engine().run()
        return ResilientRunResult(
            state=result.state, trace=result.trace, report=result.report
        )
