"""Fault-tolerant schedule execution.

:class:`ResilientExecutor` runs a :class:`~repro.scheduling.Schedule`
under an (optional) :class:`~repro.resilience.faults.FaultPlan` and
guarantees the final state is bit-exact with a fault-free run, or raises
a typed error once its recovery budget is spent.  Three mechanisms:

* **retry with exponential backoff** — transient communication errors
  re-attempt the op; a global-to-local swap is resumable (the free
  renumbering and local staging swaps are idempotent once done, and the
  all-to-all records nothing until it succeeds), so a retried op never
  double-counts bytes or kernels;
* **shard integrity verification** — CRC32 checksums recorded after
  every op and re-verified at swap boundaries (or every op with
  ``verify="every"``) turn silent corruption into a detected
  :class:`ShardCorruptionError`;
* **checkpoint restart** — fatal faults (crashes, detected corruption,
  exhausted retries) roll back to the last
  :class:`~repro.distributed.checkpoint.CheckpointManager` checkpoint
  (or a fresh initial state) and replay.

Execution is recorded as telemetry spans: one span per op *attempt*
(transient failures mutate into ``fault`` spans, aborted fatal attempts
into ``aborted`` ones, excluded from the op-event view), nested under a
``resilient_run`` root.  The result's
:class:`~repro.distributed.tracing.ExecutionTrace` is the flat view over
those spans, so chaos reports and normal traces share one model and the
timing-free ``signature()`` stays comparable across runs.  All
quantities except measured wall seconds are deterministic given the
schedule, plan and policy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.distributed.checkpoint import CheckpointManager
from repro.distributed.comm import CommStats
from repro.distributed.state import DistributedState
from repro.distributed.tracing import ExecutionTrace, _classify
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    RankCrashError,
    RestartBudgetExceededError,
    RetryBudgetExceededError,
    ShardCorruptionError,
    TransientCommError,
)
from repro.scheduling.program import Schedule, SwapOp
from repro.telemetry.metrics import NULL_METRICS
from repro.telemetry.runtime import Telemetry
from repro.telemetry.spans import Tracer

__all__ = [
    "RecoveryReport",
    "ResilientExecutor",
    "ResilientRunResult",
    "RetryPolicy",
]

#: fault classes that trigger a checkpoint restart rather than a retry.
FATAL_FAULTS = (RankCrashError, ShardCorruptionError, RetryBudgetExceededError)


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery budgets and backoff shape.

    ``backoff(attempt)`` returns ``base * factor**attempt`` seconds; the
    supervisor always *accounts* the delay deterministically and only
    actually sleeps through the injected ``sleep`` callable (tests pass a
    no-op).
    """

    max_retries: int = 3
    max_restarts: int = 2
    backoff_base_seconds: float = 0.01
    backoff_factor: float = 2.0

    def backoff(self, attempt: int) -> float:
        """Deterministic delay before retry number ``attempt`` (0-based)."""
        return self.backoff_base_seconds * self.backoff_factor**attempt


@dataclass
class RecoveryReport:
    """Everything the run spent on surviving faults.

    All fields except ``wall_overhead_seconds`` are deterministic given
    (schedule, plan, policy); :meth:`to_dict` with
    ``deterministic=True`` drops the measured field so two runs of the
    same plan compare equal.
    """

    faults_injected: list[dict] = field(default_factory=list)
    transient_retries: int = 0
    restarts: int = 0
    redundant_bytes: int = 0
    backoff_seconds: float = 0.0
    stall_seconds: float = 0.0
    integrity_checks: int = 0
    corruption_detections: int = 0
    checkpoints_written: int = 0
    checkpoint_bytes: int = 0
    wall_overhead_seconds: float = 0.0

    def to_dict(self, *, deterministic: bool = False) -> dict:
        """Dict form; ``deterministic=True`` excludes measured wall time."""
        out = {
            "faults_injected": list(self.faults_injected),
            "transient_retries": self.transient_retries,
            "restarts": self.restarts,
            "redundant_bytes": self.redundant_bytes,
            "backoff_seconds": round(self.backoff_seconds, 9),
            "stall_seconds": round(self.stall_seconds, 9),
            "integrity_checks": self.integrity_checks,
            "corruption_detections": self.corruption_detections,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_bytes": self.checkpoint_bytes,
        }
        if not deterministic:
            out["wall_overhead_seconds"] = self.wall_overhead_seconds
        return out


@dataclass
class ResilientRunResult:
    """Output of one resilient run."""

    state: DistributedState
    trace: ExecutionTrace
    report: RecoveryReport

    @property
    def comm(self) -> CommStats:
        """Communication counters of the (successful) execution path."""
        return self.state.stats

    @property
    def spans(self) -> list:
        """The run's telemetry spans (the trace is the flat view over them)."""
        return self.trace.spans


class ResilientExecutor:
    """Runs a schedule to bit-exact completion under injected faults.

    Parameters
    ----------
    schedule:
        The program to execute.
    checkpoint_dir:
        Directory for :class:`CheckpointManager`; restart state lives
        here.  An existing checkpoint in the directory is resumed.
    plan:
        Optional :class:`FaultPlan`; ``None`` runs fault-free (the
        control configuration chaos suites compare against).
    policy:
        Retry/restart budgets and backoff shape.
    checkpoint_every:
        Checkpoint after every N completed ops (0 disables periodic
        checkpoints; a final checkpoint is always written).
    verify:
        ``"swap"`` (default) verifies shard checksums at swap boundaries
        and at the end of the run; ``"every"`` before every op;
        ``"never"`` disables integrity checking.
    sleep:
        Injectable sleeper for backoff/stall delays (default
        ``time.sleep``; pass a no-op to keep tests instant — the report
        accounts the delays either way).
    sanitizer:
        Optional :class:`repro.staticcheck.ShardSanitizer` driven at
        every op boundary (NaN/Inf, norm conservation, checksum
        divergence); its findings accumulate in ``sanitizer.report``
        across restarts.  Complements ``verify``: the checksum table
        here turns corruption into a restart, the sanitizer into
        op-pinned diagnostics.
    telemetry:
        Optional :class:`~repro.telemetry.runtime.Telemetry` bundle.  The
        supervisor *always* records spans (the result's trace is built
        from them); passing an enabled bundle makes them land in the
        caller's tracer (for export) and streams ``comm.*`` /
        ``resilience.*`` metrics into its registry.
    """

    def __init__(
        self,
        schedule: Schedule,
        checkpoint_dir,
        *,
        plan: FaultPlan | None = None,
        policy: RetryPolicy | None = None,
        checkpoint_every: int = 4,
        verify: str = "swap",
        sleep=time.sleep,
        sanitizer=None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if verify not in ("swap", "every", "never"):
            raise ValueError(f"verify must be swap|every|never, got {verify!r}")
        self.schedule = schedule
        self.manager = CheckpointManager(checkpoint_dir)
        self.injector = FaultInjector(plan) if plan is not None else None
        self.policy = policy or RetryPolicy()
        self.checkpoint_every = checkpoint_every
        self.verify = verify
        self._sleep = sleep
        self.sanitizer = sanitizer
        # The trace is a view over spans, so a live tracer is mandatory:
        # use the caller's when it is collecting, else a private one.
        if telemetry is not None and telemetry.tracer.enabled:
            tracer = telemetry.tracer
        else:
            tracer = Tracer(enabled=True, per_rank=False)
        metrics = telemetry.metrics if telemetry is not None else NULL_METRICS
        self.telemetry = Telemetry(tracer=tracer, metrics=metrics)

    # ------------------------------------------------------------------
    def _verify_integrity(
        self, state: DistributedState, table: list[int], report: RecoveryReport
    ) -> None:
        report.integrity_checks += 1
        bad = [
            r
            for r, crc in enumerate(state.shard_checksums())
            if crc != table[r]
        ]
        if bad:
            report.corruption_detections += 1
            raise ShardCorruptionError(bad)

    def _checkpoint(
        self, state: DistributedState, next_op: int, report: RecoveryReport
    ) -> None:
        report.checkpoint_bytes += self.manager.save(state, next_op)
        report.checkpoints_written += 1

    def _attempt_op(
        self, op, index: int, state: DistributedState, report: RecoveryReport
    ) -> tuple[float, int]:
        """One op with transient retries; returns (seconds, bytes_moved).

        Each attempt is one span: a successful attempt keeps the op's
        kind/label; a transient failure mutates into a ``fault`` span; a
        fatally aborted attempt becomes ``aborted`` (dropped from the
        op-event view — the run-level ``fatal:`` event records it).
        """
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        kind, label = _classify(op)
        for attempt in range(self.policy.max_retries + 1):
            run_stats = state.stats
            # Fresh per-attempt counters, streaming into the same registry
            # the run counters are bound to (so comm.* metrics stay equal
            # to the cumulative stats).
            state.stats = CommStats().bind_metrics(run_stats.metrics)
            start = time.perf_counter()
            with tracer.span(label, kind=kind, op_index=index) as span:
                try:
                    if self.injector is not None:
                        with self.injector.exchange_guard(index, state):
                            op.execute(state)
                    else:
                        op.execute(state)
                except BaseException as exc:
                    # Always restore the run counters — a fatal fault
                    # escaping here must leave ``state.stats`` cumulative
                    # so the restart path can compute
                    # bytes-since-checkpoint.
                    attempt_stats, state.stats = state.stats, run_stats
                    run_stats.merge(attempt_stats)
                    if not isinstance(exc, TransientCommError):
                        span.kind = "aborted"
                        raise
                    # Nothing moved (transients strike before the
                    # transfer), but any staging work the op performed
                    # stays counted exactly once: the swap path is
                    # resumable, so the retry skips what is already done.
                    report.redundant_bytes += attempt_stats.bytes_on_network
                    report.transient_retries += 1
                    metrics.counter("resilience.transient_retries").inc()
                    span.name = f"transient at op {index} (attempt {attempt})"
                    span.kind = "fault"
                else:
                    seconds = time.perf_counter() - start
                    attempt_stats, state.stats = state.stats, run_stats
                    run_stats.merge(attempt_stats)
                    if kind == "swap":
                        span.attrs["bytes"] = attempt_stats.bytes_on_network
                    return seconds, attempt_stats.bytes_on_network
            if attempt >= self.policy.max_retries:
                raise RetryBudgetExceededError(
                    f"op {index}: {self.policy.max_retries} retries exhausted"
                )
            delay = self.policy.backoff(attempt)
            report.backoff_seconds += delay
            self._sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    def run(self) -> ResilientRunResult:
        """Execute to completion; raises a typed error past the budget."""
        ops = list(self.schedule.operations())
        report = RecoveryReport()
        policy = self.policy
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        span_base = len(tracer.spans)
        restarts = 0
        wall_start = time.perf_counter()
        productive_seconds = 0.0  # op time whose results survived
        if self.sanitizer is not None:
            self.sanitizer.use_metrics(metrics)

        with tracer.span(
            "resilient_run", kind="run", ops=len(ops)
        ) as run_span:
            while True:
                if self.manager.has_checkpoint():
                    state, start_index = self.manager.load()
                else:
                    state = CheckpointManager.initial_state_for(self.schedule)
                    start_index = 0
                state.use_telemetry(self.telemetry)
                table = (
                    state.shard_checksums() if self.verify != "never" else []
                )
                if self.sanitizer is not None:
                    self.sanitizer.reset()
                    self.sanitizer.attach(state)
                bytes_at_ckpt = state.stats.bytes_on_network
                seconds_since_ckpt = 0.0
                try:
                    for index in range(start_index, len(ops)):
                        op = ops[index]
                        if self.injector is not None:
                            stall = self.injector.on_op_start(index, state)
                            if stall:
                                report.stall_seconds += stall
                                self._sleep(stall)
                        if self.verify == "every" or (
                            self.verify == "swap" and isinstance(op, SwapOp)
                        ):
                            self._verify_integrity(state, table, report)
                        if self.sanitizer is not None:
                            self.sanitizer.before_op(state, index)
                        seconds, moved = self._attempt_op(
                            op, index, state, report
                        )
                        if self.sanitizer is not None:
                            self.sanitizer.after_op(state, index)
                        productive_seconds += seconds
                        seconds_since_ckpt += seconds
                        if self.verify != "never":
                            table = state.shard_checksums()
                        if (
                            self.checkpoint_every
                            and (index + 1) % self.checkpoint_every == 0
                            and index + 1 < len(ops)
                        ):
                            self._checkpoint(state, index + 1, report)
                            bytes_at_ckpt = state.stats.bytes_on_network
                            seconds_since_ckpt = 0.0
                    if self.verify != "never":
                        self._verify_integrity(state, table, report)
                    self._checkpoint(state, len(ops), report)
                    break
                except FATAL_FAULTS as exc:
                    # Bytes moved since the last checkpoint will be
                    # re-moved by the replay: pure recovery overhead.
                    report.redundant_bytes += (
                        state.stats.bytes_on_network - bytes_at_ckpt
                    )
                    # Un-checkpointed op time is re-spent by the replay.
                    productive_seconds -= seconds_since_ckpt
                    tracer.event(
                        f"fatal: {type(exc).__name__}: {exc}", kind="fault"
                    )
                    restarts += 1
                    if restarts > policy.max_restarts:
                        run_span.attrs["outcome"] = "budget_exhausted"
                        raise RestartBudgetExceededError(
                            f"{restarts} restarts exceed budget of "
                            f"{policy.max_restarts} (last fault: {exc})"
                        ) from exc
                    report.restarts += 1
                    metrics.counter("resilience.restarts").inc()

        if self.injector is not None:
            report.faults_injected = list(self.injector.log)
        report.wall_overhead_seconds = max(
            0.0, (time.perf_counter() - wall_start) - productive_seconds
        )
        trace = ExecutionTrace.from_spans(tracer.spans[span_base:])
        return ResilientRunResult(state=state, trace=trace, report=report)
