"""Fault injection and fault-tolerant distributed execution.

The paper's record run held 0.5 PB of amplitudes across 8,192 nodes for
~10 minutes assuming a fault-free machine; at that scale node failure is
a *when*, not an *if*.  This subsystem makes the reproduction survive
failure and proves it:

* :mod:`repro.resilience.faults` — a seeded, deterministic
  :class:`FaultPlan`/:class:`FaultInjector` injecting rank crashes
  (before or mid all-to-all), silent shard bit flips, stalled links and
  transient communication errors at chosen op indices;
* :mod:`repro.resilience.supervisor` — :class:`ResilientExecutor`:
  retry with exponential backoff for transients, CRC32 shard integrity
  verification at swap boundaries, checkpoint-restart for fatal faults,
  all within a :class:`RetryPolicy` budget and accounted in a
  :class:`RecoveryReport`;
* :mod:`repro.resilience.chaos` — a scenario sweep asserting the
  recovered final state is **bit-exact** against a fault-free run;
* :mod:`repro.resilience.report` — the text reports behind the
  ``repro chaos`` CLI subcommand.
"""

from repro.resilience.chaos import (
    ChaosRunResult,
    ChaosScenario,
    ChaosSuiteResult,
    default_scenarios,
    run_chaos_suite,
    run_scenario,
    swap_op_indices,
)
from repro.resilience.faults import (
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RankCrashError,
    RestartBudgetExceededError,
    RetryBudgetExceededError,
    ShardCorruptionError,
    TransientCommError,
)
from repro.resilience.report import format_chaos_suite, format_recovery_report
from repro.resilience.supervisor import (
    RecoveryReport,
    ResilientExecutor,
    ResilientRunResult,
    RetryPolicy,
)

__all__ = [
    "ChaosRunResult",
    "ChaosScenario",
    "ChaosSuiteResult",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RankCrashError",
    "RecoveryReport",
    "ResilientExecutor",
    "ResilientRunResult",
    "RestartBudgetExceededError",
    "RetryBudgetExceededError",
    "RetryPolicy",
    "ShardCorruptionError",
    "TransientCommError",
    "default_scenarios",
    "format_chaos_suite",
    "format_recovery_report",
    "run_chaos_suite",
    "run_scenario",
    "swap_op_indices",
]
