"""Human-readable recovery and chaos-suite reports.

The `repro chaos` CLI prints these; the quantities mirror the
recovery-overhead model the paper's Sec. 5 scale implies but never
measures: faults injected, retries, restarts, redundant bytes re-moved,
and overhead seconds split into measured wall, deterministic backoff and
simulated stall.
"""

from __future__ import annotations

from repro.resilience.chaos import ChaosRunResult, ChaosSuiteResult
from repro.resilience.supervisor import RecoveryReport

__all__ = ["format_chaos_suite", "format_recovery_report"]


def _human_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} TiB"  # pragma: no cover


def format_recovery_report(report: RecoveryReport, *, indent: str = "") -> str:
    """Multi-line text form of one :class:`RecoveryReport`."""
    lines = [
        f"faults injected      : {len(report.faults_injected)}",
        f"transient retries    : {report.transient_retries}",
        f"checkpoint restarts  : {report.restarts}",
        f"redundant bytes moved: {_human_bytes(report.redundant_bytes)}",
        f"integrity checks     : {report.integrity_checks} "
        f"({report.corruption_detections} corruption(s) detected)",
        f"checkpoints written  : {report.checkpoints_written} "
        f"({_human_bytes(report.checkpoint_bytes)})",
        f"backoff seconds      : {report.backoff_seconds:.3f}",
        f"stall seconds        : {report.stall_seconds:.3f}",
        f"wall overhead seconds: {report.wall_overhead_seconds:.3f}",
    ]
    for fault in report.faults_injected:
        lines.append(
            f"  - op {fault['op_index']}: {fault['kind']} ({fault['detail']})"
        )
    return "\n".join(indent + line for line in lines)


def format_chaos_suite(suite: ChaosSuiteResult) -> str:
    """Full chaos report: verdict table plus per-scenario recovery detail."""
    lines = ["chaos suite", "==========="]
    summary = suite.schedule_summary
    lines.append(
        f"schedule: {summary['num_qubits']} qubits, "
        f"{summary['local_qubits']} local "
        f"(ranks={1 << (summary['num_qubits'] - summary['local_qubits'])}), "
        f"{summary['num_swaps']} swaps, {summary['num_clusters']} clusters"
    )
    lines.append("")
    width = max(len(r.name) for r in suite.results) if suite.results else 8
    for r in suite.results:
        verdict = "PASS" if r.passed else "FAIL"
        if r.bit_exact is None:
            detail = r.error or ""
        else:
            detail = "bit-exact" if r.bit_exact else (r.error or "mismatch")
        lines.append(f"{r.name:<{width}}  {verdict}  {detail}")
    lines.append("")
    for r in suite.results:
        if r.report is None:
            continue
        lines.append(f"[{r.name}] {r.scenario.description}")
        lines.append(format_recovery_report(r.report, indent="  "))
        lines.append("")
    lines.append(
        f"{suite.num_passed}/{len(suite.results)} scenarios passed"
    )
    return "\n".join(lines)


def _scenario_result_line(result: ChaosRunResult) -> str:
    """One-line verdict (used by tests and compact listings)."""
    verdict = "PASS" if result.passed else "FAIL"
    return f"{result.name}: {verdict}"
