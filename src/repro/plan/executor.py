"""Executing a :class:`~repro.plan.CompiledProgram` on a distributed state."""

from __future__ import annotations

import time

from repro.distributed.tracing import ExecutionTrace
from repro.kernels.tables import GATHER_CACHE

__all__ = ["execute_plan"]


def _run_op(plan_op, state) -> None:
    kind = plan_op.exec_kind
    if kind == "kernel":
        state.apply_compiled(
            plan_op.matrix,
            plan_op.qubits,
            strategy=plan_op.strategy,
            chunk_size=plan_op.chunk_size,
        )
    elif kind in ("diagonal", "fused_diagonal"):
        state.apply_diagonal(plan_op.diag, plan_op.qubits)
    else:  # "swap" | "passthrough"
        plan_op.source_op.execute(state)


def execute_plan(plan, state, *, telemetry=None):
    """Run *plan* on *state*; returns an :class:`ExecutionTrace` or ``None``.

    Without an active *telemetry* bundle this is the minimal loop: one
    pre-resolved kernel call per plan op, nothing re-derived.

    With telemetry the emitted span stream matches the unplanned executor
    op for op — fused diagonals record their first source's span around
    the real work plus zero-length spans for the ops folded in — so
    :meth:`ExecutionTrace.signature` is identical to an unplanned traced
    run of the same schedule.  The shared gather-table cache mirrors its
    counters into the bundle's metrics (``plan.cache.hits`` /
    ``plan.cache.misses``) for the duration of the run.
    """
    if telemetry is None or not telemetry.active:
        for plan_op in plan.ops:
            _run_op(plan_op, state)
        return None

    previous = state.telemetry
    state.use_telemetry(telemetry)
    tracer = telemetry.tracer
    GATHER_CACHE.bind_metrics(telemetry.metrics)
    try:
        with tracer.span("execute_schedule", kind="run"):
            for plan_op in plan.ops:
                first = plan_op.sources[0]
                bytes_before = state.stats.bytes_on_network
                start = time.perf_counter()
                with tracer.span(
                    first.label,
                    kind=first.kind,
                    op_index=first.op_index,
                    stage=plan_op.stage,
                ) as span:
                    _run_op(plan_op, state)
                seconds = time.perf_counter() - start
                if span is not None and first.kind == "swap":
                    span.attrs["bytes"] = (
                        state.stats.bytes_on_network - bytes_before
                    )
                telemetry.metrics.histogram(
                    "op.seconds", kind=first.kind
                ).observe(seconds)
                if plan_op.num_sources > 1:
                    # Ops folded into this one still get their (zero-length)
                    # events, keeping one event per original schedule op.
                    mark = tracer.now()
                    for source in plan_op.sources[1:]:
                        tracer.add_span(
                            source.label,
                            kind=source.kind,
                            start=mark,
                            end=mark,
                            op_index=source.op_index,
                            stage=plan_op.stage,
                            fused_into=first.op_index,
                        )
                        telemetry.metrics.histogram(
                            "op.seconds", kind=source.kind
                        ).observe(0.0)
    finally:
        GATHER_CACHE.bind_metrics(None)
        state.use_telemetry(previous)
    return ExecutionTrace.from_spans(tracer.spans)
