"""Executing a :class:`~repro.plan.CompiledProgram` on a distributed state."""

from __future__ import annotations

__all__ = ["execute_plan"]


def _run_op(plan_op, state) -> None:
    kind = plan_op.exec_kind
    if kind in ("kernel", "fused_kernel"):
        state.apply_compiled(
            plan_op.matrix,
            plan_op.qubits,
            strategy=plan_op.strategy,
            chunk_size=plan_op.chunk_size,
        )
    elif kind in ("diagonal", "fused_diagonal"):
        state.apply_diagonal(plan_op.diag, plan_op.qubits)
    else:  # "swap" | "passthrough"
        plan_op.source_op.execute(state)


def execute_plan(plan, state, *, telemetry=None):
    """Run *plan* on *state*; returns an :class:`ExecutionTrace` or ``None``.

    Delegates to the canonical loop in
    :class:`repro.runtime.ExecutionEngine`.  Without an active
    *telemetry* bundle that is the engine's bare fast path: one
    pre-resolved kernel call per plan op, nothing re-derived, no trace.

    With telemetry a :class:`~repro.runtime.TracingLayer` records the
    same span stream as the unplanned executor op for op — fused
    diagonals record their first source's span around the real work plus
    zero-length spans for the ops folded in — so
    :meth:`ExecutionTrace.signature` is identical to an unplanned traced
    run of the same schedule.  The shared gather-table cache mirrors its
    counters into the bundle's metrics (``plan.cache.hits`` /
    ``plan.cache.misses``) for the duration of the run.
    """
    from repro.runtime import ExecutionEngine, TracingLayer

    if telemetry is None or not telemetry.active:
        layers = ()
    else:
        layers = [TracingLayer(telemetry)]
    return ExecutionEngine(plan, layers=layers).run(state=state).trace  # lint: allow-engine-direct
