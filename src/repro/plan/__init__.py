"""Compiled execution plans (pass-based plan compiler + kernel-plan cache).

A :class:`~repro.scheduling.Schedule` describes *what* to run; every
kernel decision — diagonal vs indexed vs reference strategy, the gather
index tables, the extracted diagonals, fusion, the chunk size — is
re-derivable from it, and the pre-plan executor re-derived all of it on
every shard of every rank.  :func:`compile_program` resolves those
decisions exactly once through a staged pass pipeline
(:data:`repro.plan.passes.PIPELINE`)::

    lower  ->  refuse  ->  specialize  ->  finalize

Each pass consumes and produces a typed stream of frozen
:class:`PlanOp`\\ s that every rank replays:

* dense cluster ops carry their fused matrix, pre-resolved strategy and
  the autotuned chunk size (gather tables come from the process-wide
  :data:`repro.kernels.GATHER_CACHE`, shared across ranks and repeated
  layers);
* the *refuse* pass merges adjacent dense/diagonal ops whose qubit
  union stays within ``PlanConfig.fusion_kmax`` into one batched
  multi-op kernel (``exec_kind="fused_kernel"``), executed through
  :func:`repro.kernels.apply.apply_fused_kernel`;
* diagonal ops carry their extracted ``2**k`` diagonal, and consecutive
  runs of them are fused into a single per-amplitude multiply;
* swaps and rank-conditional ops pass through to the distributed state
  unchanged.

Execution preserves the op-level
:meth:`~repro.distributed.tracing.ExecutionTrace.signature` exactly: a
fused diagonal or fused kernel emits its first source op's span for the
real work plus zero-length spans for the ops folded into it.

All compile options live in a frozen :class:`PlanConfig`; use
:func:`plan_for` to get the memoized plan of a schedule (compiled at
most once per config — the config object is the entire cache key).
"""

from repro.plan.config import DEFAULT_FUSION_KMAX, PlanConfig
from repro.plan.executor import execute_plan
from repro.plan.program import (
    CompiledProgram,
    PlanOp,
    SourceEvent,
    compile_program,
    plan_for,
)

__all__ = [
    "CompiledProgram",
    "DEFAULT_FUSION_KMAX",
    "PlanConfig",
    "PlanOp",
    "SourceEvent",
    "compile_program",
    "execute_plan",
    "plan_for",
]
