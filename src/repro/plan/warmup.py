"""Compile-time kernel-table warm-up for compiled plans.

A compiled plan fixes every kernel decision up front, but the gather
index tables and diagonal phase factors those kernels consume were still
built lazily on first use — inside the timed execution, on the critical
path.  Their cache keys are pure functions of the *bit layout* at each
op, and the layout evolution of a scheduled run is fully determined by
the schedule (initial global set + the swap points), so the plan
compiler can walk a lightweight layout shadow of
:class:`~repro.distributed.state.DistributedState` and warm every table
the run will look up — off the execution clock, through the
counter-neutral ``warm_*`` paths (so ``--plan-stats`` stays
bit-identical to an unwarmed run).

:class:`PlanLayout` mirrors only the ``bit_of_qubit`` bookkeeping of
``DistributedState.__init__`` and ``swap_global_set``; a parity test
pins the two against each other.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.kernels.tables import GATHER_CACHE

__all__ = ["PlanLayout", "warm_plan_tables"]


class PlanLayout:
    """Layout-only shadow of a distributed state's qubit-to-bit map.

    Tracks exactly the ``bit_of_qubit`` updates of
    :class:`~repro.distributed.state.DistributedState` — free initial
    placement and the three layout-affecting steps of
    ``swap_global_set`` — without touching any amplitude data.
    """

    def __init__(
        self,
        num_qubits: int,
        local_qubits: int,
        initial_global_qubits: Iterable[int] | None = None,
    ) -> None:
        self.num_qubits = num_qubits
        self.local_qubits = local_qubits
        self.bit_of_qubit: list[int] = list(range(num_qubits))
        if initial_global_qubits:
            global_set = sorted({int(q) for q in initial_global_qubits})
            if len(global_set) != num_qubits - local_qubits:
                raise ValueError(
                    f"initial_global_qubits must have "
                    f"{num_qubits - local_qubits} entries, got "
                    f"{len(global_set)}"
                )
            local_set = [
                q for q in range(num_qubits) if q not in set(global_set)
            ]
            for bit, q in enumerate(local_set + global_set):
                self.bit_of_qubit[q] = bit

    def global_qubit_set(self) -> set[int]:
        l = self.local_qubits
        return {q for q, b in enumerate(self.bit_of_qubit) if b >= l}

    def _qubit_at_bit(self, bit: int) -> int:
        return self.bit_of_qubit.index(bit)

    def swap_global_set(
        self, new_global_qubits: Iterable[int]
    ) -> list[tuple[int, int]]:
        """Replay the layout effect of a global-to-local swap point.

        Returns the staging transpositions the runtime will compose into
        its permutation gather (empty when no data motion is needed).
        """
        new_global = {int(q) for q in new_global_qubits}
        cur_global = self.global_qubit_set()
        incoming = sorted(cur_global - new_global)
        outgoing = sorted(new_global - cur_global)
        q = len(incoming)
        if q == 0:
            return []
        l = self.local_qubits
        # 1. Free renumbering (mirrors _permute_global_bits).
        staying = sorted(
            cur_global & new_global, key=lambda qq: self.bit_of_qubit[qq]
        )
        new_positions = {qq: l + i for i, qq in enumerate(incoming)}
        new_positions.update(
            {qq: l + q + i for i, qq in enumerate(staying)}
        )
        for qq, bit in new_positions.items():
            self.bit_of_qubit[qq] = bit
        # 2. Local staging swaps.
        transpositions: list[tuple[int, int]] = []
        for i, qq in enumerate(outgoing):
            target = l - q + i
            current = self.bit_of_qubit[qq]
            if current != target:
                transpositions.append((current, target))
                other = self._qubit_at_bit(target)
                self.bit_of_qubit[qq] = target
                self.bit_of_qubit[other] = current
        # 4. (Step 3 moves data only.)  The bit ranges swap contents.
        for qubit in range(self.num_qubits):
            bit = self.bit_of_qubit[qubit]
            if l - q <= bit < l:
                self.bit_of_qubit[qubit] = bit + q
            elif l <= bit < l + q:
                self.bit_of_qubit[qubit] = bit - q
        return transpositions


def warm_plan_tables(program) -> int:
    """Warm every kernel table *program*'s execution will look up.

    Walks the plan ops with a :class:`PlanLayout` shadow, warming gather
    tables for indexed/fused dense ops and phase factors for diagonal
    ops through the counter-neutral ``GATHER_CACHE.warm_*`` paths.
    Returns the number of entries warmed (already-cached keys count as
    zero).  Factors are warmed at complex128 — a single-precision state
    keys differently and simply misses the warm, which is harmless.
    """
    schedule = program.schedule
    layout = PlanLayout(
        schedule.num_qubits,
        schedule.local_qubits,
        schedule.initial_global_qubits,
    )
    n = schedule.local_qubits
    warmed = 0
    for op in program.ops:
        if op.exec_kind == "swap":
            transpositions = layout.swap_global_set(
                op.source_op.new_global_qubits
            )
            if transpositions:
                perm_bits = list(range(n))
                for bit_a, bit_b in transpositions:
                    perm_bits[bit_a], perm_bits[bit_b] = (
                        perm_bits[bit_b], perm_bits[bit_a],
                    )
                if not GATHER_CACHE.warm_bit_permutation(n, perm_bits):
                    warmed += 1
            continue
        if not op.qubits:
            continue
        bits = [layout.bit_of_qubit[q] for q in op.qubits]
        if any(b >= n for b in bits):
            continue  # global diagonal / passthrough: rank-conditional
        if op.exec_kind in ("kernel", "fused_kernel"):
            if op.strategy in ("indexed", "fused"):
                # Column-major tables feed both the batched multi-rank
                # sweep and the per-rank traced path; the inverse
                # permutation covers the single-block write-back.
                if not GATHER_CACHE.warm_gather_tables_t(
                    n, bits, op.chunk_size
                ):
                    warmed += 1
                if not GATHER_CACHE.warm_gather_inverse(
                    n, bits, op.chunk_size
                ):
                    warmed += 1
        elif op.exec_kind in ("diagonal", "fused_diagonal"):
            diag = np.asarray(op.diag, dtype=np.complex128)
            if not GATHER_CACHE.warm_diagonal_factor(n, bits, diag):
                warmed += 1
    return warmed
