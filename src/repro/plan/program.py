"""Compiling a schedule into a flat, pre-resolved kernel program.

Compilation is a staged pass pipeline (see :mod:`repro.plan.passes`)::

    lower  ->  refuse  ->  specialize  ->  finalize

Every pass consumes and produces a typed stream of frozen
:class:`PlanOp`; compile options live in a frozen
:class:`~repro.plan.config.PlanConfig`, which is the single memoization
key for :func:`plan_for` (and for the service plan cache and
``--plan-stats``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.plan.config import PlanConfig
from repro.plan.passes import PIPELINE, PassContext
from repro.scheduling.program import Schedule
from repro.util.locktrack import TrackedLock

__all__ = [
    "SourceEvent",
    "PlanOp",
    "CompiledProgram",
    "compile_program",
    "plan_for",
]


@dataclass(frozen=True)
class SourceEvent:
    """Identity of one schedule op a plan op covers (for trace parity)."""

    op_index: int
    kind: str
    label: str


@dataclass(frozen=True)
class PlanOp:
    """One pre-resolved execution step of a compiled program.

    ``exec_kind`` selects the executor path:

    * ``"kernel"`` — dense op: *matrix*, *strategy* and *chunk_size* are
      fixed; gather tables come from the shared cache at run time.
    * ``"fused_kernel"`` — several adjacent dense/diagonal schedule ops
      refused into one batched multi-op kernel over the qubit union
      (strategy ``"fused"``: the batched apply path of
      :func:`repro.kernels.apply.apply_fused_kernel`).
    * ``"diagonal"`` — one diagonal op: *diag* is the extracted ``2**k``
      diagonal (local or global qubits; no communication either way).
    * ``"fused_diagonal"`` — several consecutive diagonal schedule ops
      collapsed into one per-amplitude multiply over the qubit union.
    * ``"swap"`` / ``"passthrough"`` — delegated to *source_op* verbatim
      (global-to-local swaps, monomial specializations, rank-conditional
      absorbed clusters).

    ``sources`` lists the covered schedule ops in op-stream order — one
    entry except for fused diagonals and fused kernels — so executed
    traces keep exactly one event per original op.
    """

    exec_kind: str
    sources: tuple[SourceEvent, ...]
    stage: int
    qubits: tuple[int, ...] = ()
    matrix: np.ndarray | None = None
    diag: np.ndarray | None = None
    strategy: str | None = None
    chunk_size: int | None = None
    source_op: object | None = None

    @property
    def num_sources(self) -> int:
        """Schedule ops covered (>1 only for fused diagonals/kernels)."""
        return len(self.sources)


def _counts_of(ops: tuple[PlanOp, ...]) -> dict:
    """Per-kind op tallies of a final op stream.

    The reconciliation identity the tests pin down::

        num_source_ops == len(ops) + fused_away_ops + refused_away_ops

    ``fused_away_ops`` counts sources folded into surviving fused
    *diagonal* ops; ``refused_away_ops`` counts sources folded into
    fused *kernel* ops (including diagonals first fused into a run that
    a fused kernel then absorbed).
    """
    counts = {
        "kernel_ops": 0,
        "fused_kernel_ops": 0,
        "diagonal_ops": 0,
        "fused_diagonal_ops": 0,
        "fused_away_ops": 0,
        "refused_away_ops": 0,
        "passthrough_ops": 0,
        "swap_ops": 0,
    }
    for op in ops:
        if op.exec_kind == "kernel":
            counts["kernel_ops"] += 1
        elif op.exec_kind == "fused_kernel":
            counts["fused_kernel_ops"] += 1
            counts["refused_away_ops"] += op.num_sources - 1
        elif op.exec_kind == "diagonal":
            counts["diagonal_ops"] += 1
        elif op.exec_kind == "fused_diagonal":
            counts["fused_diagonal_ops"] += 1
            counts["fused_away_ops"] += op.num_sources - 1
        elif op.exec_kind == "swap":
            counts["swap_ops"] += 1
        else:
            counts["passthrough_ops"] += 1
    return counts


@dataclass
class CompiledProgram:
    """A schedule lowered to flat kernel ops with all decisions resolved.

    Execute with :meth:`execute` (or via
    ``DistributedSimulator.run_schedule``, which compiles lazily); the
    same program is valid for every state with the schedule's qubit
    split, so all ranks — and repeated runs — share one compilation.
    """

    schedule: Schedule
    ops: tuple[PlanOp, ...]
    config: PlanConfig
    compile_seconds: float
    counts: dict = field(default_factory=dict)

    @property
    def chunk_size(self) -> int:
        """Blocking chunk every dense op was resolved with."""
        return self.config.chunk_size

    @property
    def fuse_diagonals(self) -> bool:
        """Whether diagonal-run fusion was enabled."""
        return self.config.fuse_diagonals

    @property
    def num_source_ops(self) -> int:
        """Ops in the original schedule stream."""
        return sum(op.num_sources for op in self.ops)

    def execute(self, state, *, telemetry=None):
        """Run the program on *state*; see :func:`repro.plan.execute_plan`."""
        from repro.plan.executor import execute_plan

        return execute_plan(self, state, telemetry=telemetry)

    def summary(self) -> dict:
        """Counters for display (``repro simulate --plan-stats``)."""
        return {
            "num_source_ops": self.num_source_ops,
            "num_plan_ops": len(self.ops),
            "chunk_size": self.config.chunk_size,
            "fusion_kmax": self.config.fusion_kmax,
            "max_fused_qubits": self.config.max_fused_qubits,
            "compile_seconds": round(self.compile_seconds, 6),
            **self.counts,
        }


def _resolve_config(
    config: PlanConfig | None,
    *,
    chunk_size=None,
    fuse_diagonals=True,
    max_fused_qubits=10,
    fusion_kmax=None,
    kernel_strategy=None,
) -> PlanConfig:
    if config is not None:
        if not isinstance(config, PlanConfig):
            raise TypeError(
                f"config must be a PlanConfig, got {type(config).__name__}"
            )
        return config
    return PlanConfig(
        chunk_size=chunk_size,
        fuse_diagonals=fuse_diagonals,
        max_fused_qubits=max_fused_qubits,
        fusion_kmax=fusion_kmax,
        kernel_strategy=kernel_strategy,
    )


def compile_program(
    schedule: Schedule,
    config: PlanConfig | None = None,
    *,
    chunk_size: int | None = None,
    fuse_diagonals: bool = True,
    max_fused_qubits: int = 10,
    fusion_kmax: int | None = None,
    kernel_strategy: str | None = None,
) -> CompiledProgram:
    """Lower *schedule* into a :class:`CompiledProgram`.

    Every per-call decision of the old executor — diagonality scans,
    strategy choice, diagonal extraction, fusion, chunk size — happens
    here, once, in the pass pipeline.  Pass a :class:`PlanConfig` (or
    the equivalent keyword options; a given *config* wins over them).
    """
    resolved = _resolve_config(
        config,
        chunk_size=chunk_size,
        fuse_diagonals=fuse_diagonals,
        max_fused_qubits=max_fused_qubits,
        fusion_kmax=fusion_kmax,
        kernel_strategy=kernel_strategy,
    )
    t0 = time.perf_counter()
    ctx = PassContext.for_schedule(schedule, resolved)
    ops: tuple[PlanOp, ...] = ()
    for pipeline_pass in PIPELINE:
        ops = pipeline_pass(ops, ctx)
    program = CompiledProgram(
        schedule=schedule,
        ops=ops,
        config=resolved,
        compile_seconds=0.0,
        counts=_counts_of(ops),
    )
    # Precompute gather tables / phase factors off the execution clock;
    # counter-neutral, so --plan-stats is unchanged by the warm-up.
    from repro.plan.warmup import warm_plan_tables

    warm_plan_tables(program)
    program.compile_seconds = time.perf_counter() - t0
    return program


def plan_for(
    schedule: Schedule,
    config: PlanConfig | None = None,
    *,
    chunk_size: int | None = None,
    fuse_diagonals: bool = True,
    max_fused_qubits: int = 10,
    fusion_kmax: int | None = None,
    kernel_strategy: str | None = None,
) -> CompiledProgram:
    """The memoized compiled plan of *schedule*.

    Compiled at most once per :class:`PlanConfig` — the frozen config is
    the *entire* cache key, so every compile option participates and two
    callers asking for different fusion widths never share a plan — and
    cached on the schedule instance, so every rank, repeat run and
    benchmark round shares one compilation.  Thread-safe: the service
    layer shares schedules across concurrent requests, so a miss
    double-checks under a lock and exactly one thread compiles each key.
    """
    key = _resolve_config(
        config,
        chunk_size=chunk_size,
        fuse_diagonals=fuse_diagonals,
        max_fused_qubits=max_fused_qubits,
        fusion_kmax=fusion_kmax,
        kernel_strategy=kernel_strategy,
    )
    cache = getattr(schedule, "_compiled_plans", None)
    if cache is not None:
        plan = cache.get(key)
        if plan is not None:
            return plan
    with _PLAN_FOR_LOCK:
        cache = getattr(schedule, "_compiled_plans", None)
        if cache is None:
            cache = {}
            schedule._compiled_plans = cache
        plan = cache.get(key)
        if plan is None:
            plan = compile_program(schedule, key)
            cache[key] = plan
    return plan


#: Serialises plan compilation: compiles are rare and fast relative to
#: execution, so one process-wide lock beats per-schedule bookkeeping.
_PLAN_FOR_LOCK = TrackedLock(
    "repro.plan.program._PLAN_FOR_LOCK", lock=threading.Lock()
)
