"""Compiling a schedule into a flat, pre-resolved kernel program."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.distributed.tracing import _classify
from repro.kernels import DEFAULT_CHUNK
from repro.scheduling.program import ClusterOp, GateOp, Schedule, SwapOp
from repro.util.bits import extract_bits
from repro.util.locktrack import TrackedLock

__all__ = ["SourceEvent", "PlanOp", "CompiledProgram", "compile_program", "plan_for"]

#: Dense kernels stay indexed up to this k; larger clusters use tensordot.
_INDEXED_MAX_QUBITS = 6


@dataclass(frozen=True)
class SourceEvent:
    """Identity of one schedule op a plan op covers (for trace parity)."""

    op_index: int
    kind: str
    label: str


@dataclass(frozen=True)
class PlanOp:
    """One pre-resolved execution step of a compiled program.

    ``exec_kind`` selects the executor path:

    * ``"kernel"`` — dense op: *matrix*, *strategy* and *chunk_size* are
      fixed; gather tables come from the shared cache at run time.
    * ``"diagonal"`` — one diagonal op: *diag* is the extracted ``2**k``
      diagonal (local or global qubits; no communication either way).
    * ``"fused_diagonal"`` — several consecutive diagonal schedule ops
      collapsed into one per-amplitude multiply over the qubit union.
    * ``"swap"`` / ``"passthrough"`` — delegated to *source_op* verbatim
      (global-to-local swaps, monomial specializations, rank-conditional
      absorbed clusters).

    ``sources`` lists the covered schedule ops in op-stream order — one
    entry except for fused diagonals — so executed traces keep exactly
    one event per original op.
    """

    exec_kind: str
    sources: tuple[SourceEvent, ...]
    stage: int
    qubits: tuple[int, ...] = ()
    matrix: np.ndarray | None = None
    diag: np.ndarray | None = None
    strategy: str | None = None
    chunk_size: int | None = None
    source_op: object | None = None

    @property
    def num_sources(self) -> int:
        """Schedule ops covered (>1 only for fused diagonals)."""
        return len(self.sources)


@dataclass
class CompiledProgram:
    """A schedule lowered to flat kernel ops with all decisions resolved.

    Execute with :meth:`execute` (or via
    ``DistributedSimulator.run_schedule``, which compiles lazily); the
    same program is valid for every state with the schedule's qubit
    split, so all ranks — and repeated runs — share one compilation.
    """

    schedule: Schedule
    ops: tuple[PlanOp, ...]
    chunk_size: int
    fuse_diagonals: bool
    compile_seconds: float
    counts: dict = field(default_factory=dict)

    @property
    def num_source_ops(self) -> int:
        """Ops in the original schedule stream."""
        return sum(op.num_sources for op in self.ops)

    def execute(self, state, *, telemetry=None):
        """Run the program on *state*; see :func:`repro.plan.execute_plan`."""
        from repro.plan.executor import execute_plan

        return execute_plan(self, state, telemetry=telemetry)

    def summary(self) -> dict:
        """Counters for display (``repro simulate --plan-stats``)."""
        return {
            "num_source_ops": self.num_source_ops,
            "num_plan_ops": len(self.ops),
            "chunk_size": self.chunk_size,
            "compile_seconds": round(self.compile_seconds, 6),
            **self.counts,
        }


def _lift_diag(
    diag: np.ndarray, qubits: tuple[int, ...], union: tuple[int, ...]
) -> np.ndarray:
    """Expand a ``2**k`` diagonal over *qubits* to the *union* space."""
    pos_of = {q: p for p, q in enumerate(union)}
    idx = extract_bits(
        np.arange(1 << len(union), dtype=np.int64),
        [pos_of[q] for q in qubits],
    )
    return np.asarray(diag)[idx]


def _fuse_diagonal_run(run: list[PlanOp], max_fused_qubits: int) -> list[PlanOp]:
    """Collapse a run of consecutive diagonal plan ops into one multiply.

    Diagonal operators commute, so the fused diagonal over the qubit
    union is their elementwise product in any order; one broadcast
    multiply then replaces ``len(run)`` state sweeps.  Runs whose union
    exceeds *max_fused_qubits* (a ``2**u`` table would get large) are
    left as-is.
    """
    if len(run) < 2:
        return run
    union: list[int] = []
    for op in run:
        for q in op.qubits:
            if q not in union:
                union.append(q)
    if len(union) > max_fused_qubits:
        return run
    union_t = tuple(union)
    combined = np.ones(1 << len(union_t), dtype=np.complex128)
    for op in run:
        combined *= _lift_diag(op.diag, op.qubits, union_t)
    sources = tuple(src for op in run for src in op.sources)
    return [
        PlanOp(
            exec_kind="fused_diagonal",
            sources=sources,
            stage=run[0].stage,
            qubits=union_t,
            diag=combined,
        )
    ]


def compile_program(
    schedule: Schedule,
    *,
    chunk_size: int | None = None,
    fuse_diagonals: bool = True,
    max_fused_qubits: int = 10,
) -> CompiledProgram:
    """Lower *schedule* into a :class:`CompiledProgram`.

    Every per-call decision of the old executor — diagonality scans,
    strategy choice, diagonal extraction, chunk size — happens here, once.
    ``chunk_size`` defaults to the autotuned
    :data:`repro.kernels.DEFAULT_CHUNK`.
    """
    t0 = time.perf_counter()
    chunk = int(chunk_size) if chunk_size is not None else DEFAULT_CHUNK
    ops: list[PlanOp] = []
    pending_diagonals: list[PlanOp] = []
    counts = {
        "kernel_ops": 0,
        "diagonal_ops": 0,
        "fused_diagonal_ops": 0,
        "fused_away_ops": 0,
        "passthrough_ops": 0,
        "swap_ops": 0,
    }

    def flush_diagonals() -> None:
        if not pending_diagonals:
            return
        fused = (
            _fuse_diagonal_run(pending_diagonals, max_fused_qubits)
            if fuse_diagonals
            else list(pending_diagonals)
        )
        for op in fused:
            if op.exec_kind == "fused_diagonal":
                counts["fused_diagonal_ops"] += 1
                counts["fused_away_ops"] += op.num_sources - 1
            else:
                counts["diagonal_ops"] += 1
        ops.extend(fused)
        pending_diagonals.clear()

    stage = 0
    for index, op in enumerate(schedule.operations()):
        kind, label = _classify(op)
        if kind == "swap":
            stage += 1
        source = SourceEvent(op_index=index, kind=kind, label=label)
        if isinstance(op, SwapOp):
            flush_diagonals()
            counts["swap_ops"] += 1
            ops.append(
                PlanOp(
                    exec_kind="swap", sources=(source,), stage=stage,
                    source_op=op,
                )
            )
            continue
        if isinstance(op, GateOp):
            gate = op.gate
            if gate.is_diagonal:
                pending_diagonals.append(
                    PlanOp(
                        exec_kind="diagonal", sources=(source,), stage=stage,
                        qubits=gate.qubits, diag=np.diagonal(gate.matrix),
                    )
                )
                continue
            # Monomial specialization: rank renumbering logic stays with
            # the state; nothing to pre-resolve.
            flush_diagonals()
            counts["passthrough_ops"] += 1
            ops.append(
                PlanOp(
                    exec_kind="passthrough", sources=(source,), stage=stage,
                    source_op=op,
                )
            )
            continue
        if isinstance(op, ClusterOp):
            fused_gate = op.fused
            if fused_gate.is_diagonal:
                pending_diagonals.append(
                    PlanOp(
                        exec_kind="diagonal", sources=(source,), stage=stage,
                        qubits=op.qubits,
                        diag=np.diagonal(fused_gate.matrix),
                    )
                )
                continue
            flush_diagonals()
            k = len(op.qubits)
            counts["kernel_ops"] += 1
            ops.append(
                PlanOp(
                    exec_kind="kernel", sources=(source,), stage=stage,
                    qubits=op.qubits,
                    matrix=fused_gate.matrix,
                    strategy="indexed" if k <= _INDEXED_MAX_QUBITS else "reference",
                    chunk_size=chunk,
                )
            )
            continue
        # AbsorbedClusterOp (or any future op type): per-rank matrices are
        # built at execution time, so it passes through unchanged.
        flush_diagonals()
        counts["passthrough_ops"] += 1
        ops.append(
            PlanOp(
                exec_kind="passthrough", sources=(source,), stage=stage,
                source_op=op,
            )
        )
    flush_diagonals()
    return CompiledProgram(
        schedule=schedule,
        ops=tuple(ops),
        chunk_size=chunk,
        fuse_diagonals=fuse_diagonals,
        compile_seconds=time.perf_counter() - t0,
        counts=counts,
    )


def plan_for(
    schedule: Schedule,
    *,
    chunk_size: int | None = None,
    fuse_diagonals: bool = True,
) -> CompiledProgram:
    """The memoized compiled plan of *schedule*.

    Compiled at most once per ``(chunk_size, fuse_diagonals)`` pair and
    cached on the schedule instance, so every rank, repeat run and
    benchmark round shares one compilation.  Thread-safe: the service
    layer shares schedules across concurrent requests, so a miss
    double-checks under a lock and exactly one thread compiles each key.
    """
    key = (chunk_size, fuse_diagonals)
    cache = getattr(schedule, "_compiled_plans", None)
    if cache is not None:
        plan = cache.get(key)
        if plan is not None:
            return plan
    with _PLAN_FOR_LOCK:
        cache = getattr(schedule, "_compiled_plans", None)
        if cache is None:
            cache = {}
            schedule._compiled_plans = cache
        plan = cache.get(key)
        if plan is None:
            plan = compile_program(
                schedule, chunk_size=chunk_size, fuse_diagonals=fuse_diagonals
            )
            cache[key] = plan
    return plan


#: Serialises plan compilation: compiles are rare and fast relative to
#: execution, so one process-wide lock beats per-schedule bookkeeping.
_PLAN_FOR_LOCK = TrackedLock(
    "repro.plan.program._PLAN_FOR_LOCK", lock=threading.Lock()
)
