"""The plan compiler's pass pipeline: lower → refuse → specialize → finalize.

Each pass is a pure function ``(ops, ctx) -> ops`` over a typed op
stream (a tuple of frozen :class:`~repro.plan.program.PlanOp`): it
consumes one immutable stream and produces a new one, never mutating its
input (the ``plan-pass-mutation`` lint rule enforces this).  The stages:

* :func:`lower_pass` — classify every schedule op into a plan op:
  diagonal extraction, swap/passthrough delegation, dense kernels.  No
  fusion and no strategy decisions happen here.
* :func:`refuse_pass` — the fusion stage.  First collapses runs of
  consecutive diagonal ops into one per-amplitude multiply (Fusion v1),
  then performs general cluster refusion (Fusion v2): adjacent dense and
  diagonal plan ops whose qubit union stays within
  ``config.fusion_kmax`` merge into one batched multi-op kernel
  (``exec_kind="fused_kernel"``) when the measured cost model says the
  single fused sweep beats the separate sweeps.
* :func:`specialize_pass` — resolve kernel strategy and blocking chunk
  for every dense op (including fused groups).
* :func:`finalize_pass` — freeze and validate the stream (source
  ordering, per-kind field invariants).

The cost model is calibrated against the batched apply path
(:func:`repro.kernels.apply.apply_fused_kernel`) on the reference host:
one k-qubit dense sweep over all ranks costs roughly
``_KERNEL_COST_US[k]`` microseconds and a diagonal sweep
``_DIAG_COST_US``; a merge is accepted only when the fused sweep is
predicted no slower than the sweeps it replaces, so refusion can only
help (larger ``fusion_kmax`` admits strictly more merge opportunities).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.tracing import _classify
from repro.gates.fusion import lift_gate_matrix
from repro.kernels.tables import GATHER_CACHE
from repro.plan.config import PlanConfig
from repro.scheduling.program import ClusterOp, GateOp, Schedule, SwapOp

__all__ = [
    "PassContext",
    "PIPELINE",
    "lower_pass",
    "refuse_pass",
    "specialize_pass",
    "finalize_pass",
]

#: Dense kernels stay indexed up to this k; larger clusters use tensordot.
_INDEXED_MAX_QUBITS = 6

#: Fused unions wider than this fall back to the tensordot kernel.
_FUSED_INDEXED_MAX_QUBITS = 8

#: Shards up to this many local qubits (a 512 KB complex128 panel) run
#: single-block: one gather table covers the whole c range, enabling the
#: permutation write-back (``GATHER_CACHE.gather_inverse``) instead of a
#: per-block fancy-index scatter.  Only applied when the caller left
#: ``chunk_size`` at the autotuned default — an explicit chunk is
#: honored verbatim.
_SINGLE_BLOCK_MAX_QUBITS = 15

#: Measured microseconds for one k-qubit dense sweep over all virtual
#: ranks of the headline shard shape (batched apply path, l=14, 16
#: ranks), taken *cold* — every sweep pays a fixed state-streaming
#: component (~1.7 ms for 16 x 256 KB shards) on top of the ``2**k``
#: matmul term, which is why fewer, wider sweeps win well past the
#: point where raw FLOP counts would say otherwise.  Beyond the
#: measured range the matmul term dominates and the cost is
#: extrapolated by doubling.
_KERNEL_COST_US = {
    1: 2500.0,
    2: 1950.0,
    3: 2200.0,
    4: 2600.0,
    5: 3500.0,
    6: 4900.0,
    7: 8000.0,
}

#: Measured microseconds for one diagonal (per-amplitude multiply) sweep.
_DIAG_COST_US = 1000.0


def _kernel_cost(k: int) -> float:
    """Predicted cost of one k-qubit dense sweep (µs over all ranks)."""
    if k in _KERNEL_COST_US:
        return _KERNEL_COST_US[k]
    top = max(_KERNEL_COST_US)
    return _KERNEL_COST_US[top] * (1 << (k - top))


@dataclass(frozen=True)
class PassContext:
    """Read-only compile context shared by every pass."""

    schedule: Schedule
    config: PlanConfig
    #: Per-stage global qubit sets (stage i of the schedule).
    stage_globals: tuple[frozenset, ...]

    @classmethod
    def for_schedule(
        cls, schedule: Schedule, config: PlanConfig
    ) -> "PassContext":
        return cls(
            schedule=schedule,
            config=config,
            stage_globals=tuple(
                frozenset(stage.global_qubits) for stage in schedule.stages
            ),
        )

    def globals_of_stage(self, stage: int) -> frozenset:
        """Global qubits during *stage* (empty set off the end)."""
        if 0 <= stage < len(self.stage_globals):
            return self.stage_globals[stage]
        return frozenset()


# ----------------------------------------------------------------------
# lower: schedule ops -> typed plan ops
# ----------------------------------------------------------------------
def lower_pass(ops, ctx: PassContext):
    """Classify every schedule op into exactly one plan op.

    The input stream is empty (lowering is the source pass); the output
    carries one plan op per schedule op, with diagonals extracted but
    not yet fused and kernel strategies not yet resolved.
    """
    from repro.plan.program import PlanOp, SourceEvent

    lowered = list(ops)
    stage = 0
    for index, op in enumerate(ctx.schedule.operations()):
        kind, label = _classify(op)
        if kind == "swap":
            stage += 1
        source = SourceEvent(op_index=index, kind=kind, label=label)
        if isinstance(op, SwapOp):
            lowered.append(
                PlanOp(
                    exec_kind="swap", sources=(source,), stage=stage,
                    source_op=op,
                )
            )
            continue
        if isinstance(op, GateOp):
            gate = op.gate
            if gate.is_diagonal:
                lowered.append(
                    PlanOp(
                        exec_kind="diagonal", sources=(source,), stage=stage,
                        qubits=gate.qubits, diag=np.diagonal(gate.matrix),
                    )
                )
            elif not (set(gate.qubits) & ctx.globals_of_stage(stage)):
                # A dense gate on stage-local qubits runs as an ordinary
                # local kernel — lowering it as one (instead of a
                # passthrough) makes it absorbable by refusion.
                lowered.append(
                    PlanOp(
                        exec_kind="kernel", sources=(source,), stage=stage,
                        qubits=gate.qubits, matrix=gate.matrix,
                    )
                )
            else:
                # Monomial specialization on global qubits: the rank
                # renumbering logic stays with the state.
                lowered.append(
                    PlanOp(
                        exec_kind="passthrough", sources=(source,),
                        stage=stage, source_op=op,
                    )
                )
            continue
        if isinstance(op, ClusterOp):
            fused_gate = op.fused
            if fused_gate.is_diagonal:
                lowered.append(
                    PlanOp(
                        exec_kind="diagonal", sources=(source,), stage=stage,
                        qubits=op.qubits,
                        diag=np.diagonal(fused_gate.matrix),
                    )
                )
            else:
                lowered.append(
                    PlanOp(
                        exec_kind="kernel", sources=(source,), stage=stage,
                        qubits=op.qubits, matrix=fused_gate.matrix,
                    )
                )
            continue
        # AbsorbedClusterOp (or any future op type): per-rank matrices
        # are built at execution time, so it passes through unchanged.
        lowered.append(
            PlanOp(
                exec_kind="passthrough", sources=(source,), stage=stage,
                source_op=op,
            )
        )
    return tuple(lowered)


# ----------------------------------------------------------------------
# refuse: diagonal-run fusion + general cluster refusion
# ----------------------------------------------------------------------
def _lift_diag(diag, qubits, union) -> np.ndarray:
    """Expand a ``2**k`` diagonal over *qubits* to the *union* space.

    The ``2**u`` index table depends only on the bit positions of
    *qubits* within *union*, so it is memoized through
    :data:`~repro.kernels.tables.GATHER_CACHE` — repeated fusions of the
    same qubit sets (every CZ layer of a supremacy circuit) stop
    recomputing it.
    """
    pos_of = {q: p for p, q in enumerate(union)}
    idx = GATHER_CACHE.lift_index_table(
        len(union), tuple(pos_of[q] for q in qubits)
    )
    return np.asarray(diag)[idx]


def _fuse_diagonal_run(run, max_fused_qubits):
    """Collapse a run of consecutive diagonal plan ops into one multiply.

    Diagonal operators commute, so the fused diagonal over the qubit
    union is their elementwise product in any order; one broadcast
    multiply then replaces ``len(run)`` state sweeps.  Runs whose union
    exceeds *max_fused_qubits* (a ``2**u`` table would get large) are
    left as-is.
    """
    from repro.plan.program import PlanOp

    if len(run) < 2:
        return list(run)
    union_t = tuple(dict.fromkeys(q for op in run for q in op.qubits))
    if len(union_t) > max_fused_qubits:
        return list(run)
    combined = np.ones(1 << len(union_t), dtype=np.complex128)
    for op in run:
        combined *= _lift_diag(op.diag, op.qubits, union_t)
    sources = tuple(src for op in run for src in op.sources)
    return [
        PlanOp(
            exec_kind="fused_diagonal",
            sources=sources,
            stage=run[0].stage,
            qubits=union_t,
            diag=combined,
        )
    ]


def _fuse_diagonal_runs(ops, ctx: PassContext):
    """Sweep 1 of refusion: merge maximal runs of consecutive diagonals."""
    out: list = []
    run: list = []
    for op in ops:
        if op.exec_kind == "diagonal":
            run.append(op)
            continue
        out.extend(_fuse_diagonal_run(run, ctx.config.max_fused_qubits))
        run = []
        out.append(op)
    out.extend(_fuse_diagonal_run(run, ctx.config.max_fused_qubits))
    return out


def _op_cost(op) -> float:
    """Predicted standalone cost of one plan op (µs over all ranks)."""
    if op.exec_kind in ("diagonal", "fused_diagonal"):
        return _DIAG_COST_US
    return _kernel_cost(len(op.qubits))


def _absorbable(op, ctx: PassContext) -> bool:
    """Can *op* join a fused dense group?

    Dense kernels always can (their qubits are stage-local by scheduler
    construction).  Diagonals can when every qubit is stage-local — a
    diagonal touching global qubits runs rank-conditionally and cannot
    be lifted into a local dense kernel, so it is a fusion barrier, as
    are swaps and passthroughs.
    """
    if op.exec_kind == "kernel":
        return True
    if op.exec_kind in ("diagonal", "fused_diagonal"):
        return not (set(op.qubits) & ctx.globals_of_stage(op.stage))
    return False


def _fuse_cluster_group(group):
    """One ``fused_kernel`` plan op from adjacent dense/diagonal members.

    The fused unitary is the in-order product of every member lifted to
    the qubit union: dense members embed via
    :func:`repro.gates.fusion.lift_gate_matrix`, diagonal members scale
    the accumulated rows.  ``sources`` concatenates every member's
    sources in op-stream order, so traces keep one event per original
    schedule op.
    """
    from repro.plan.program import PlanOp

    union = tuple(dict.fromkeys(q for op in group for q in op.qubits))
    u = len(union)
    pos_of = {q: p for p, q in enumerate(union)}
    fused = np.eye(1 << u, dtype=np.complex128)
    for op in group:
        if op.exec_kind in ("diagonal", "fused_diagonal"):
            lifted = _lift_diag(
                np.asarray(op.diag, dtype=np.complex128), op.qubits, union
            )
            fused = lifted[:, None] * fused
        else:
            fused = (
                lift_gate_matrix(
                    op.matrix, [pos_of[q] for q in op.qubits], u
                )
                @ fused
            )
    return PlanOp(
        exec_kind="fused_kernel",
        sources=tuple(src for op in group for src in op.sources),
        stage=group[0].stage,
        qubits=union,
        matrix=fused,
    )


def _refuse_clusters(ops, ctx: PassContext):
    """Sweep 2 of refusion: greedy cost-guided merging of adjacent ops.

    Walks the stream keeping one open group.  An absorbable op joins the
    group when the merged union stays within ``config.fusion_kmax`` and
    the predicted fused sweep is no slower than the group's current cost
    plus the op's standalone cost; otherwise the group is flushed.  A
    flushed group of two or more members becomes one ``fused_kernel``.
    """
    kmax = ctx.config.fusion_kmax
    out: list = []
    group: list = []
    group_union: tuple = ()
    group_cost = 0.0

    def flush() -> None:
        nonlocal group, group_union, group_cost
        if len(group) <= 1:
            out.extend(group)
        else:
            out.append(_fuse_cluster_group(group))
        group = []
        group_union = ()
        group_cost = 0.0

    for op in ops:
        if not _absorbable(op, ctx):
            flush()
            out.append(op)
            continue
        merged_union = tuple(dict.fromkeys(group_union + tuple(op.qubits)))
        merged_cost = _kernel_cost(len(merged_union))
        if (
            group
            and len(merged_union) <= kmax
            and merged_cost <= group_cost + _op_cost(op)
        ):
            group.append(op)
            group_union = merged_union
            group_cost = merged_cost
        else:
            flush()
            group = [op]
            group_union = tuple(op.qubits)
            group_cost = _op_cost(op)
    flush()
    return out


def refuse_pass(ops, ctx: PassContext):
    """The fusion stage: diagonal-run fusion, then cluster refusion."""
    stream = list(ops)
    if ctx.config.fuse_diagonals:
        stream = _fuse_diagonal_runs(stream, ctx)
    if ctx.config.fusion_kmax >= 2:
        stream = _refuse_clusters(stream, ctx)
    return tuple(stream)


# ----------------------------------------------------------------------
# specialize: resolve strategy + chunk for every dense op
# ----------------------------------------------------------------------
def specialize_pass(ops, ctx: PassContext):
    """Fix kernel strategy and blocking chunk for dense plan ops."""
    from repro.kernels import DEFAULT_CHUNK
    from repro.plan.program import PlanOp

    config = ctx.config
    local = ctx.schedule.local_qubits

    def _chunk_for(k: int) -> int:
        # At small shard sizes the whole panel is cache-resident, so a
        # single block covering all 2**(l-k) substrings beats chunking:
        # the write-back becomes one permutation gather.  Respect an
        # explicitly pinned (non-default) chunk.
        total_c = 1 << (local - k)
        if (
            config.chunk_size == DEFAULT_CHUNK
            and local <= _SINGLE_BLOCK_MAX_QUBITS
            and total_c > config.chunk_size
        ):
            return total_c
        return config.chunk_size

    out: list = []
    for op in ops:
        if op.exec_kind == "kernel":
            k = len(op.qubits)
            strategy = config.kernel_strategy or (
                "indexed" if k <= _INDEXED_MAX_QUBITS else "reference"
            )
            out.append(
                PlanOp(
                    exec_kind=op.exec_kind, sources=op.sources,
                    stage=op.stage, qubits=op.qubits, matrix=op.matrix,
                    strategy=strategy, chunk_size=_chunk_for(k),
                )
            )
        elif op.exec_kind == "fused_kernel":
            u = len(op.qubits)
            strategy = (
                "fused" if u <= _FUSED_INDEXED_MAX_QUBITS else "reference"
            )
            out.append(
                PlanOp(
                    exec_kind=op.exec_kind, sources=op.sources,
                    stage=op.stage, qubits=op.qubits, matrix=op.matrix,
                    strategy=strategy, chunk_size=_chunk_for(u),
                )
            )
        else:
            out.append(op)
    return tuple(out)


# ----------------------------------------------------------------------
# finalize: freeze + validate the stream
# ----------------------------------------------------------------------
def finalize_pass(ops, ctx: PassContext):
    """Validate stream invariants and freeze the final op tuple.

    Checks that every plan op carries the fields its executor path
    needs, and that source events appear in strictly increasing
    op-stream order (what trace parity relies on).
    """
    last_index = -1
    for op in ops:
        if op.exec_kind in ("kernel", "fused_kernel"):
            if op.matrix is None or op.strategy is None:
                raise ValueError(
                    f"{op.exec_kind} op missing matrix/strategy: {op!r}"
                )
        elif op.exec_kind in ("diagonal", "fused_diagonal"):
            if op.diag is None:
                raise ValueError(f"diagonal op missing diag: {op!r}")
        elif op.exec_kind in ("swap", "passthrough"):
            if op.source_op is None:
                raise ValueError(f"{op.exec_kind} op missing source_op: {op!r}")
        else:
            raise ValueError(f"unknown exec_kind {op.exec_kind!r}")
        for source in op.sources:
            if source.op_index <= last_index:
                raise ValueError(
                    f"source events out of order at op_index "
                    f"{source.op_index}"
                )
            last_index = source.op_index
    return tuple(ops)


#: The pipeline, in execution order.  Every pass consumes and produces a
#: typed op stream; ``lower_pass`` is the source (its input is empty).
PIPELINE = (lower_pass, refuse_pass, specialize_pass, finalize_pass)
