"""Frozen compile options: the single memoization key for plans.

Every knob the pass pipeline consults lives in :class:`PlanConfig`, and
the *config itself* is the cache key — for :func:`repro.plan.plan_for`,
for the service :class:`~repro.service.cache.PlanCache` and for the
``--plan-stats`` payload.  Two callers asking for different fusion
widths (or chunk sizes, or strategies) can therefore never silently
share one compiled plan, which was exactly the bug with the old
``(chunk_size, fuse_diagonals)``-only key.

``fusion_kmax`` defaults to the autotuned value persisted in
``benchmarks/results/BENCH_fusion.json`` (the same mechanism that backs
:data:`repro.kernels.DEFAULT_CHUNK` from the kernels-autotune record),
falling back to :data:`_FALLBACK_FUSION_KMAX` when no record exists.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path

from repro.kernels import DEFAULT_CHUNK

__all__ = ["PlanConfig", "DEFAULT_FUSION_KMAX"]

#: Refusion width when no autotune record is available.  6 keeps every
#: fused union within the indexed kernel's sweet spot on this host
#: class; 0 disables cluster refusion entirely.
_FALLBACK_FUSION_KMAX = 6


def _autotuned_default_fusion_kmax() -> int:
    """Read the winning fusion width from the checked-in bench record.

    ``benchmarks/results/BENCH_fusion.json`` names its winner e.g.
    ``"plan[kmax=6 strategy=auto chunk=4096]"``; any failure falls back
    to :data:`_FALLBACK_FUSION_KMAX` so plan compilation never depends
    on the benchmark tree being present.
    """
    record = (
        Path(__file__).resolve().parents[3]
        / "benchmarks"
        / "results"
        / "BENCH_fusion.json"
    )
    try:
        winner = json.loads(record.read_text())["metrics"]["winner"]
        match = re.search(r"kmax=(\d+)", str(winner))
        if match:
            return int(match.group(1))
    except (OSError, ValueError, KeyError, TypeError):
        pass
    return _FALLBACK_FUSION_KMAX


#: Default refusion width.  Sourced from the fusion benchmark record so
#: the shipped default tracks what actually wins on this host class.
DEFAULT_FUSION_KMAX = _autotuned_default_fusion_kmax()


@dataclass(frozen=True)
class PlanConfig:
    """Every compile option of the pass pipeline, normalized and frozen.

    Instances are hashable and normalized at construction (``None``
    chunk/fusion widths resolve to the autotuned defaults), so equal
    configurations always compare — and key caches — equal.

    * ``chunk_size`` — blocking chunk of the indexed/fused kernels
      (``None`` → :data:`repro.kernels.DEFAULT_CHUNK`).
    * ``fuse_diagonals`` — collapse runs of consecutive diagonal ops
      into one per-amplitude multiply.
    * ``max_fused_qubits`` — widest qubit union a *diagonal* run may
      fuse to (a ``2**u`` table is built).
    * ``fusion_kmax`` — widest qubit union general cluster refusion may
      build a dense fused unitary for (``None`` → the autotuned
      :data:`DEFAULT_FUSION_KMAX`; 0 disables refusion).  Distinct from
      the scheduler's ``kmax``: the scheduler bounds what one *cluster*
      may contain, refusion bounds what adjacent *plan ops* may merge
      into.
    * ``kernel_strategy`` — force every dense kernel onto one strategy
      (``"indexed"`` / ``"reference"``); ``None`` lets the specialize
      pass choose per op.
    """

    chunk_size: int | None = None
    fuse_diagonals: bool = True
    max_fused_qubits: int = 10
    fusion_kmax: int | None = None
    kernel_strategy: str | None = None

    def __post_init__(self) -> None:
        chunk = self.chunk_size
        object.__setattr__(
            self, "chunk_size", DEFAULT_CHUNK if chunk is None else int(chunk)
        )
        kmax = self.fusion_kmax
        object.__setattr__(
            self,
            "fusion_kmax",
            DEFAULT_FUSION_KMAX if kmax is None else int(kmax),
        )
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.fusion_kmax < 0:
            raise ValueError(
                f"fusion_kmax must be >= 0, got {self.fusion_kmax}"
            )
        if self.max_fused_qubits < 1:
            raise ValueError(
                f"max_fused_qubits must be >= 1, got {self.max_fused_qubits}"
            )
        if self.kernel_strategy not in (None, "indexed", "reference"):
            raise ValueError(
                f"kernel_strategy must be None|indexed|reference, got "
                f"{self.kernel_strategy!r}"
            )
