"""JSON (de)serialization of circuits and schedules.

Gates serialize by name when their matrix matches the registry, and by
explicit matrix (real/imag nested lists) otherwise, so fused clusters
and custom unitaries round-trip exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.circuit.circuit import Circuit
from repro.gates.gate import Gate
from repro.gates.matrices import gate_matrix
from repro.scheduling.absorption import AbsorbedClusterOp
from repro.scheduling.program import ClusterOp, GateOp, Schedule, Stage

__all__ = [
    "save_circuit_json",
    "load_circuit_json",
    "save_schedule_json",
    "load_schedule_json",
]


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------
def _gate_to_obj(gate: Gate) -> dict:
    obj: dict = {"name": gate.name, "qubits": list(gate.qubits)}
    if gate.cycle is not None:
        obj["cycle"] = gate.cycle
    try:
        named = gate_matrix(gate.name)
    except KeyError:
        named = None
    if named is None or not np.allclose(named, gate.matrix):
        obj["matrix_re"] = gate.matrix.real.tolist()
        obj["matrix_im"] = gate.matrix.imag.tolist()
    return obj


def _gate_from_obj(obj: dict) -> Gate:
    matrix = None
    if "matrix_re" in obj:
        matrix = np.asarray(obj["matrix_re"]) + 1j * np.asarray(obj["matrix_im"])
    return Gate(
        obj["name"], tuple(obj["qubits"]), matrix, cycle=obj.get("cycle")
    )


# ----------------------------------------------------------------------
# Circuits
# ----------------------------------------------------------------------
def save_circuit_json(circuit: Circuit, path: str | Path) -> Path:
    """Write *circuit* (including custom matrices) to JSON."""
    path = Path(path)
    payload = {
        "num_qubits": circuit.num_qubits,
        "gates": [_gate_to_obj(g) for g in circuit],
    }
    path.write_text(json.dumps(payload))
    return path


def load_circuit_json(path: str | Path) -> Circuit:
    """Load a circuit written by :func:`save_circuit_json`."""
    payload = json.loads(Path(path).read_text())
    return Circuit(
        payload["num_qubits"], (_gate_from_obj(o) for o in payload["gates"])
    )


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
def _op_to_obj(op) -> dict:
    if isinstance(op, GateOp):
        return {"kind": "gate", "gate": _gate_to_obj(op.gate)}
    if isinstance(op, ClusterOp):
        return {
            "kind": "cluster",
            "qubits": list(op.qubits),
            "gates": [_gate_to_obj(g) for g in op.gates],
        }
    if isinstance(op, AbsorbedClusterOp):
        return {
            "kind": "absorbed",
            "cluster": _op_to_obj(op.cluster),
            "pre": [_gate_to_obj(g) for g in op.pre_diagonals],
            "post": [_gate_to_obj(g) for g in op.post_diagonals],
        }
    raise TypeError(f"cannot serialize op of type {type(op).__name__}")


def _op_from_obj(obj: dict):
    kind = obj["kind"]
    if kind == "gate":
        return GateOp(_gate_from_obj(obj["gate"]))
    if kind == "cluster":
        return ClusterOp(
            qubits=tuple(obj["qubits"]),
            gates=tuple(_gate_from_obj(o) for o in obj["gates"]),
        )
    if kind == "absorbed":
        return AbsorbedClusterOp(
            cluster=_op_from_obj(obj["cluster"]),
            pre_diagonals=tuple(_gate_from_obj(o) for o in obj["pre"]),
            post_diagonals=tuple(_gate_from_obj(o) for o in obj["post"]),
        )
    raise ValueError(f"unknown op kind {kind!r}")


def save_schedule_json(schedule: Schedule, path: str | Path) -> Path:
    """Write a schedule program (circuit included) to JSON."""
    path = Path(path)
    payload = {
        "num_qubits": schedule.num_qubits,
        "local_qubits": schedule.local_qubits,
        "initial_state": schedule.initial_state,
        "kmax": schedule.kmax,
        "circuit": [_gate_to_obj(g) for g in schedule.circuit],
        "stages": [
            {
                "global_qubits": sorted(stage.global_qubits),
                "ops": [_op_to_obj(op) for op in stage.ops],
            }
            for stage in schedule.stages
        ],
    }
    path.write_text(json.dumps(payload))
    return path


def load_schedule_json(path: str | Path, *, validate: bool = True) -> Schedule:
    """Load and re-validate a schedule written by :func:`save_schedule_json`.

    Pass ``validate=False`` to load without the raising validation pass —
    ``repro check`` does this so the static checker can diagnose a broken
    file instead of dying on the first assertion.
    """
    payload = json.loads(Path(path).read_text())
    circuit = Circuit(
        payload["num_qubits"], (_gate_from_obj(o) for o in payload["circuit"])
    )
    stages = [
        Stage(
            global_qubits=frozenset(s["global_qubits"]),
            ops=[_op_from_obj(o) for o in s["ops"]],
        )
        for s in payload["stages"]
    ]
    schedule = Schedule(
        circuit=circuit,
        local_qubits=payload["local_qubits"],
        stages=stages,
        initial_state=payload["initial_state"],
        kmax=payload["kmax"],
    )
    if validate:
        schedule.validate()
    return schedule
