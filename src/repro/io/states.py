"""State-vector persistence."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.statevector.state import StateVector
from repro.util.bits import bit_length_of_power_of_two

__all__ = ["save_statevector", "load_statevector"]


def save_statevector(state: StateVector, path: str | Path) -> Path:
    """Write the amplitudes to an ``.npy`` file; returns the path."""
    path = Path(path)
    if path.suffix != ".npy":
        path = path.with_suffix(".npy")
    np.save(path, state.data)
    return path


def load_statevector(path: str | Path) -> StateVector:
    """Load a state vector written by :func:`save_statevector`."""
    data = np.load(Path(path))
    if data.ndim != 1:
        raise ValueError(f"{path}: expected a 1-D amplitude array")
    num_qubits = bit_length_of_power_of_two(data.shape[0])
    return StateVector(num_qubits, data)
