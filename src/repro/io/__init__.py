"""Persistence: state vectors, circuits and schedules on disk.

* :mod:`repro.io.states` — save/load :class:`StateVector` objects as
  ``.npy`` files, and spill/restore distributed states shard by shard.
* :mod:`repro.io.schedules` — JSON (de)serialization of circuits and
  :class:`Schedule` programs, so an expensive scheduling pre-computation
  (Sec. 3.6: reusable "for all instances of the same size") can be done
  once and shipped with the workload.
"""

from repro.io.schedules import (
    load_circuit_json,
    load_schedule_json,
    save_circuit_json,
    save_schedule_json,
)
from repro.io.states import load_statevector, save_statevector

__all__ = [
    "load_circuit_json",
    "load_schedule_json",
    "load_statevector",
    "save_circuit_json",
    "save_schedule_json",
    "save_statevector",
]
