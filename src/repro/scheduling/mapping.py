"""Qubit -> bit-location mapping (Sec. 3.6.2).

High-order bit locations suffer the cache-associativity penalty (Figs. 6
and 9), so the mapping heuristic packs the most cluster-active qubits
into the lowest bit locations:

    "Assign the qubit to bit-location 0 such that the number of clusters
    accessing bit-location 0 is maximal.  From now on, ignore all clusters
    which act on this qubit and assign bit-locations 1, 2, and 3 in the
    same manner.  Bit locations 4, 5, 6, and 7 are assigned the same way,
    except that after each step, only clusters acting on two of these four
    bit-locations are ignored when assigning the next higher bit-location."

On top of the verbatim paper heuristic, the implementation runs two
exchange hill climbs — maximizing the clusters *fully contained* in the
low 8 bit locations and minimizing the clusters *touching* the top 8 —
from both the heuristic's assignment and the identity assignment, and
keeps the better result.  The identity start guarantees the returned
mapping is never worse than no mapping at all; the paper reports up to a
2x time-to-solution gain on its workloads (supremacy circuits, by their
own design, leave the least room for it).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["cluster_bit_mapping", "mapping_cost"]


def mapping_cost(
    clusters: Sequence[Iterable[int]],
    mapping: dict[int, int],
    *,
    high_order_threshold: int,
) -> int:
    """Number of clusters touching a bit location >= *high_order_threshold*.

    The quantity the mapping minimises; the performance model converts it
    into a slowdown via the cache-associativity penalty.
    """
    penalised = 0
    for cs in clusters:
        if any(mapping[q] >= high_order_threshold for q in cs):
            penalised += 1
    return penalised


def _paper_heuristic(
    cluster_sets: list[frozenset[int]], num_qubits: int
) -> dict[int, int]:
    """The verbatim Sec. 3.6.2 assignment of bit locations 0-7, with the
    remaining qubits placed top-down by a union-minimising greedy."""
    mapping: dict[int, int] = {}
    active = list(cluster_sets)

    def most_active_qubit() -> int | None:
        counts: dict[int, int] = {}
        for cs in active:
            for q in cs:
                if q not in mapping:
                    counts[q] = counts.get(q, 0) + 1
        if not counts:
            return None
        best = max(counts.values())
        return min(q for q, c in counts.items() if c == best)

    # Bit locations 0-3: drop every cluster touching the assigned qubit.
    for bit in range(min(4, num_qubits)):
        q = most_active_qubit()
        if q is None:
            break
        mapping[q] = bit
        active = [cs for cs in active if q not in cs]

    # Bit locations 4-7: drop only clusters touching >= 2 of this quartet.
    quartet: set[int] = set()
    for bit in range(4, min(8, num_qubits)):
        q = most_active_qubit()
        if q is None:
            break
        mapping[q] = bit
        quartet.add(q)
        active = [cs for cs in active if len(cs & quartet) < 2]

    # Remaining bits from the top down: each takes the qubit that newly
    # penalises the fewest clusters.
    clusters_of = _clusters_of(cluster_sets, num_qubits)
    used_bits = set(mapping.values())
    penalised: set[int] = set()
    unassigned = [q for q in range(num_qubits) if q not in mapping]
    for bit in sorted(
        (b for b in range(num_qubits) if b not in used_bits), reverse=True
    ):
        best = min(
            unassigned,
            key=lambda q: (len(clusters_of[q] - penalised), len(clusters_of[q]), q),
        )
        mapping[best] = bit
        penalised |= clusters_of[best]
        unassigned.remove(best)
    return mapping


def _clusters_of(
    cluster_sets: list[frozenset[int]], num_qubits: int
) -> dict[int, set[int]]:
    out: dict[int, set[int]] = {q: set() for q in range(num_qubits)}
    for i, cs in enumerate(cluster_sets):
        for q in cs:
            out[q].add(i)
    return out


def _refine(
    mapping: dict[int, int],
    cluster_sets: list[frozenset[int]],
    num_qubits: int,
    penalty_threshold: int,
) -> dict[int, int]:
    """Exchange hill climbs on the low-8 and penalty bit regions."""
    if num_qubits <= 8:
        return dict(mapping)
    clusters_of = _clusters_of(cluster_sets, num_qubits)
    qubit_at = {bit: q for q, bit in mapping.items()}

    def contained_low() -> int:
        low = {qubit_at[b] for b in range(8)}
        return sum(1 for cs in cluster_sets if cs <= low)

    def penalised_top() -> int:
        union: set[int] = set()
        for b in range(penalty_threshold, num_qubits):
            union |= clusters_of[qubit_at[b]]
        return len(union)

    # Climb A: maximize clusters fully inside bit locations 0-7.
    best = contained_low()
    improved = True
    while improved:
        improved = False
        for lo in range(8):
            for hi in range(8, num_qubits):
                qubit_at[lo], qubit_at[hi] = qubit_at[hi], qubit_at[lo]
                score = contained_low()
                if score > best:
                    best = score
                    improved = True
                else:
                    qubit_at[lo], qubit_at[hi] = qubit_at[hi], qubit_at[lo]

    # Climb B: minimize clusters touching the penalty region,
    # exchanging only with the middle region so climb A's result holds.
    top_start = penalty_threshold
    if top_start > 8:
        best = penalised_top()
        improved = True
        while improved:
            improved = False
            for hi in range(top_start, num_qubits):
                for mid in range(8, top_start):
                    qubit_at[hi], qubit_at[mid] = qubit_at[mid], qubit_at[hi]
                    score = penalised_top()
                    if score < best:
                        best = score
                        improved = True
                    else:
                        qubit_at[hi], qubit_at[mid] = qubit_at[mid], qubit_at[hi]

    # Re-order the low 8 members by cluster participation (the paper's
    # per-bit rule: most-accessed qubit at bit location 0).
    low_members = [qubit_at[b] for b in range(8)]
    low_members.sort(key=lambda q: (-len(clusters_of[q]), q))
    for bit, q in enumerate(low_members):
        qubit_at[bit] = q

    return {q: bit for bit, q in qubit_at.items()}


def cluster_bit_mapping(
    clusters: Sequence[Iterable[int]],
    num_qubits: int,
    *,
    penalty_threshold: int | None = None,
) -> dict[int, int]:
    """Compute the qubit -> bit-location mapping from cluster qubit sets.

    Parameters
    ----------
    clusters:
        Qubit sets of the schedule's clusters.
    num_qubits:
        Size of the bit-location space (the local qubit count when
        mapping for a distributed run).
    penalty_threshold:
        First bit location where the cache-associativity penalty bites
        (machine-dependent; defaults to ``max(8, num_qubits - 8)``).
        The returned bijection is never worse than the identity mapping
        on the number of clusters touching that region, and among
        equally-penalised candidates maximises the clusters fully inside
        bit locations 0-7.
    """
    cluster_sets = [frozenset(c) for c in clusters]
    for cs in cluster_sets:
        for q in cs:
            if not 0 <= q < num_qubits:
                raise ValueError(f"cluster qubit {q} out of range")
    if penalty_threshold is None:
        penalty_threshold = max(8, num_qubits - 8)
    # Small systems (n <= 8) have no penalty region at all.
    penalty_threshold = min(max(penalty_threshold, 8), num_qubits)
    identity = {q: q for q in range(num_qubits)}
    candidates = [
        _refine(
            _paper_heuristic(cluster_sets, num_qubits),
            cluster_sets,
            num_qubits,
            penalty_threshold,
        ),
        _refine(identity, cluster_sets, num_qubits, penalty_threshold),
        identity,  # floor: never return something worse than no mapping
    ]

    def key(mapping: dict[int, int]) -> tuple[int, int]:
        penalised = mapping_cost(
            cluster_sets, mapping, high_order_threshold=penalty_threshold
        )
        low = {q for q, b in mapping.items() if b < 8}
        contained = sum(1 for cs in cluster_sets if cs <= low)
        return (penalised, -contained)

    return min(candidates, key=key)
