"""The per-gate communication baseline of Boixo et al. [5].

The state-of-the-art scheme the paper compares against keeps a fixed
qubit layout (highest-index qubits global) and executes the circuit cycle
by cycle; every non-specializable gate touching a global qubit is one
communication step.  The lower panels of Fig. 5 plot exactly this count,
and the Table 2 speedup model divides it by the swap count (with the
paper's factor-2 locality correction).

Two instance models, matching Fig. 5's caption:

* ``worst_case=True`` — every random single-qubit gate is dense (dashed
  lines in Fig. 5's lower panels);
* ``worst_case=False`` — "median" instances: the actual gate identities
  are used, so diagonal T gates on global qubits are free (solid lines).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import Circuit

__all__ = ["BaselineCommReport", "baseline_global_gates"]


@dataclass(frozen=True)
class BaselineCommReport:
    """Communication counts for per-gate execution as in [5]."""

    num_qubits: int
    local_qubits: int
    global_gates: int
    specialized_global_gates: int
    local_gates: int

    @property
    def communication_steps(self) -> int:
        """One step per dense global gate (the Fig. 5 lower-panel metric)."""
        return self.global_gates


def baseline_global_gates(
    circuit: Circuit,
    local_qubits: int,
    *,
    worst_case: bool = False,
    specialize: bool = True,
) -> BaselineCommReport:
    """Count global gates under the fixed-layout per-gate scheme of [5].

    Qubits ``0..local_qubits-1`` are local, the rest global.  A gate
    requires communication when it touches a global qubit and cannot be
    specialized: with ``specialize``, diagonal gates are free (all CZs;
    also T unless ``worst_case``), matching [5]'s own handling of diagonal
    gates.
    """
    n = circuit.num_qubits
    l = min(local_qubits, n)
    global_gates = 0
    specialized = 0
    local = 0
    for gate in circuit:
        touches_global = any(q >= l for q in gate.qubits)
        if not touches_global:
            local += 1
            continue
        free = False
        if specialize and gate.is_diagonal:
            free = gate.num_qubits >= 2 or not worst_case
        if free:
            specialized += 1
        else:
            global_gates += 1
    return BaselineCommReport(
        num_qubits=n,
        local_qubits=l,
        global_gates=global_gates,
        specialized_global_gates=specialized,
        local_gates=local,
    )
