"""Clustering: merge stage gates into fused k-qubit kernels (Sec. 3.6.1, step 2).

Within one stage every gate is either local (all qubits local) or
specializable on global qubits.  Local gates are merged greedily into
clusters of at most ``kmax`` qubits; specializable global gates become
standalone :class:`GateOp` items (they cost no kernel time and no
communication).

The scan respects per-qubit gate order with a *blocking* rule: once a
gate is skipped (not admitted to the growing cluster), its qubits are
blocked and no later gate touching them may join the cluster.  The
paper's "small local search" is implemented per cluster: several seed
gates propose qubit sets, each grown by absorption lookahead and then
improved by a first-improvement hill climb exchanging one cluster qubit
at a time; the candidate absorbing the most gates wins.
"""

from __future__ import annotations

from typing import Sequence

from repro.gates.gate import Gate
from repro.scheduling.program import ClusterOp, GateOp, gate_specializable_under
from repro.util.rng import ensure_rng

__all__ = ["cluster_stage_gates"]

#: How many distinct local seed gates to try per cluster.
_SEED_GATES = 4
#: Lookahead window (in pending gates) used to score candidate qubits.
_HORIZON = 96
#: Scan cap: a cluster's gates always lie near the front of the pending
#: list (all its qubits block quickly), so scans need not walk the tail.
_SCAN_LIMIT = 192


def _scan_with_set(
    gates: Sequence[Gate],
    order: Sequence[int],
    global_qubits: frozenset[int],
    allowed: frozenset[int],
) -> list[int]:
    """Collect, in order, the gates fitting entirely inside *allowed*.

    Applies the blocking rule: skipped gates (global, oversize, or
    touching blocked qubits) block their qubits for the rest of the scan.
    Returns positions (into *order*) of the cluster's gates.
    """
    cluster: list[int] = []
    blocked: set[int] = set()
    for pos in order[:_SCAN_LIMIT]:
        qubits = gates[pos].qubits
        if any(q in blocked for q in qubits):
            blocked.update(qubits)
            continue
        if all(q in allowed for q in qubits):
            cluster.append(pos)
        else:
            blocked.update(qubits)
            if allowed <= blocked:
                break  # every cluster qubit is blocked: nothing more fits
    return cluster


def _grow_lookahead(
    gates: Sequence[Gate],
    order: Sequence[int],
    global_qubits: frozenset[int],
    base: set[int],
    kmax: int,
    rng,
) -> set[int]:
    """Grow *base* to ``kmax`` qubits by absorption-count lookahead."""
    horizon = []
    for pos in order[:_HORIZON]:
        qubits = gates[pos].qubits
        if not any(q in global_qubits for q in qubits):
            horizon.append(qubits)
    qubit_set = set(base)
    while len(qubit_set) < kmax:
        scores: dict[int, int] = {}
        for qubits in horizon:
            outside = [q for q in qubits if q not in qubit_set]
            if len(outside) == 1:
                scores[outside[0]] = scores.get(outside[0], 0) + 1
        if not scores:
            break
        best = max(scores.values())
        ties = sorted(q for q, s in scores.items() if s == best)
        qubit_set.add(int(ties[int(rng.integers(len(ties)))]))
    return qubit_set


def _hill_climb_set(
    gates: Sequence[Gate],
    order: Sequence[int],
    global_qubits: frozenset[int],
    qubit_set: set[int],
    kmax: int,
    rng,
) -> tuple[list[int], set[int]]:
    """Improve a candidate qubit set by single-qubit exchanges."""
    horizon_qubits: set[int] = set()
    for pos in order[:_HORIZON]:
        qubits = gates[pos].qubits
        if not any(q in global_qubits for q in qubits):
            horizon_qubits.update(qubits)
    best_cluster = _scan_with_set(gates, order, global_qubits, frozenset(qubit_set))
    best_size = len(best_cluster)
    improved = True
    while improved:
        improved = False
        outside = sorted(horizon_qubits - qubit_set)
        rng.shuffle(outside)
        for q_out in sorted(qubit_set):
            for q_in in outside:
                if q_in in qubit_set:
                    continue
                trial = (qubit_set - {q_out}) | {q_in}
                cand = _scan_with_set(gates, order, global_qubits, frozenset(trial))
                if len(cand) > best_size:
                    qubit_set = trial
                    best_cluster, best_size = cand, len(cand)
                    improved = True
                    break
            if improved:
                break
    return best_cluster, qubit_set


def _cluster_qubit_order(
    gates: Sequence[Gate], order: Sequence[int], cluster: Sequence[int]
) -> tuple[int, ...]:
    """Qubit tuple in first-touch order (defines the fused matrix bits)."""
    qubits: list[int] = []
    for pos in cluster:
        for q in gates[pos].qubits:
            if q not in qubits:
                qubits.append(q)
    return tuple(qubits)


def cluster_stage_gates(
    gates: Sequence[Gate],
    global_qubits: frozenset[int],
    kmax: int,
    *,
    trials: int = 3,
    seed: int = 0,
) -> list:
    """Partition a stage's gate sequence into ordered ops.

    Returns a list of :class:`ClusterOp` / :class:`GateOp` whose
    concatenated gates are a per-qubit-order-preserving permutation of the
    input sequence.

    Parameters
    ----------
    gates:
        Stage gates in a valid topological (circuit) order.
    global_qubits:
        Stage's global set; gates touching it become GateOps.
    kmax:
        Maximum cluster size (Table 1 sweeps 3, 4, 5).
    trials:
        Randomised lookahead growths per seed gate (the "small local
        search" of Sec. 3.6.1).
    """
    if kmax < 1:
        raise ValueError(f"kmax must be >= 1, got {kmax}")
    for gate in gates:
        if any(q in global_qubits for q in gate.qubits):
            if not gate_specializable_under(gate, global_qubits):
                raise ValueError(
                    f"stage gate {gate!r} touches global qubits but is not "
                    "specializable"
                )
        elif gate.num_qubits > kmax:
            raise ValueError(f"gate {gate!r} is larger than kmax={kmax}")
    rng = ensure_rng(seed)
    remaining = list(range(len(gates)))
    ops: list = []
    while remaining:
        first = remaining[0]
        if any(q in global_qubits for q in gates[first].qubits):
            ops.append(GateOp(gates[first]))
            remaining.pop(0)
            continue
        # Seed gates: the first few distinct local gates.
        seeds: list[int] = []
        for pos in remaining:
            if any(q in global_qubits for q in gates[pos].qubits):
                continue
            seeds.append(pos)
            if len(seeds) >= _SEED_GATES:
                break
        best_cluster: list[int] = []
        best_set: set[int] = set()
        for seed_pos in seeds:
            base = set(gates[seed_pos].qubits)
            if len(base) > kmax:
                continue
            for _ in range(max(1, trials)):
                grown = _grow_lookahead(
                    gates, remaining, global_qubits, base, kmax, rng
                )
                cluster, improved_set = _hill_climb_set(
                    gates, remaining, global_qubits, grown, kmax, rng
                )
                if len(cluster) > len(best_cluster) or (
                    len(cluster) == len(best_cluster)
                    and len(improved_set) < len(best_set)
                ):
                    best_cluster, best_set = cluster, improved_set
        if not best_cluster:
            # Fall back to the first local gate alone (always legal).
            best_cluster = [first]
        chosen = set(best_cluster)
        ops.append(
            ClusterOp(
                qubits=_cluster_qubit_order(gates, remaining, best_cluster),
                gates=tuple(gates[pos] for pos in best_cluster),
            )
        )
        remaining = [pos for pos in remaining if pos not in chosen]
    return _merge_adjacent_clusters(ops, kmax)


def _merge_adjacent_clusters(ops: list, kmax: int) -> list:
    """Fixpoint pass merging cluster pairs whose union fits in kmax.

    Two clusters merge when their combined qubit set has at most kmax
    qubits and no op between them touches any of those qubits (so the
    later one can slide back without reordering shared-qubit gates).
    """
    changed = True
    while changed:
        changed = False
        for i, first in enumerate(ops):
            if not isinstance(first, ClusterOp):
                continue
            # Qubits touched by skipped intermediates: a later candidate
            # sliding back across them must not share any.
            blocked: set[int] = set()
            for j in range(i + 1, len(ops)):
                other = ops[j]
                other_qubits = (
                    set(other.qubits)
                    if isinstance(other, ClusterOp)
                    else set(other.gate.qubits)
                )
                mergeable = (
                    isinstance(other, ClusterOp) and not (other_qubits & blocked)
                )
                if mergeable:
                    union = list(first.qubits)
                    union += [q for q in other.qubits if q not in first.qubits]
                    if len(union) <= kmax:
                        ops[i] = ClusterOp(
                            qubits=tuple(union), gates=first.gates + other.gates
                        )
                        del ops[j]
                        changed = True
                        break
                if other_qubits & set(first.qubits):
                    break  # order with `first` itself now constrains
                blocked |= other_qubits
            if changed:
                break
    return ops
