"""Schedule program representation.

A :class:`Schedule` is the executable output of the scheduler: a sequence
of stages, each holding ordered operations (fused k-qubit clusters and
specialized diagonal/monomial gates touching global qubits), separated by
global-to-local swap points.  :class:`repro.distributed.DistributedSimulator`
executes these programs directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator

from repro.circuit.circuit import Circuit
from repro.gates.fusion import fuse_gates
from repro.gates.gate import Gate

__all__ = ["ClusterOp", "GateOp", "SwapOp", "Stage", "Schedule"]


@dataclass(frozen=True)
class ClusterOp:
    """A fused k-qubit gate applied by one kernel invocation.

    ``qubits`` is the cluster's qubit tuple (matrix bit ``j`` = qubit
    ``qubits[j]``); ``gates`` are the original circuit gates merged into
    it, in application order.
    """

    qubits: tuple[int, ...]
    gates: tuple[Gate, ...]

    @cached_property
    def fused(self) -> Gate:
        """The fused cluster unitary (built lazily: O(4**k))."""
        return fuse_gates(list(self.gates), self.qubits)

    @property
    def num_qubits(self) -> int:
        """Cluster size k."""
        return len(self.qubits)

    @property
    def num_gates(self) -> int:
        """Number of original gates merged into this cluster."""
        return len(self.gates)

    def execute(self, state) -> None:
        """Apply the fused unitary to a distributed or local state."""
        state.apply_gate(self.fused)


@dataclass(frozen=True)
class GateOp:
    """A single gate executed via global-gate specialization (Sec. 3.5).

    Used for diagonal (CZ, T) or monomial gates that touch global qubits
    and therefore cannot join a local cluster, but need no communication.
    """

    gate: Gate

    def execute(self, state) -> None:
        """Apply the gate (the state dispatches to the specialized path)."""
        state.apply_gate(self.gate)


@dataclass(frozen=True)
class SwapOp:
    """A global-to-local swap establishing a new global qubit set."""

    new_global_qubits: frozenset[int]

    def execute(self, state) -> None:
        """Perform the swap (one communication step)."""
        state.swap_global_set(self.new_global_qubits)


def gate_specializable_under(gate: Gate, global_qubits) -> bool:
    """True when *gate* executes without communication under this layout.

    Diagonal gates always specialize.  Monomial gates specialize only
    when their action on the global qubits is independent of the local
    qubits (e.g. CNOT with a *global* control yes; CNOT with a local
    control and global target no) — the exact rank-separability rule the
    distributed state enforces at execution time.
    """
    global_qubits = set(global_qubits)
    if not any(q in global_qubits for q in gate.qubits):
        return True
    if gate.is_diagonal:
        return True
    if not gate.is_monomial:
        return False
    perm = gate.basis_permutation
    local_js = [j for j, q in enumerate(gate.qubits) if q not in global_qubits]
    global_js = [j for j, q in enumerate(gate.qubits) if q in global_qubits]
    for xg_pattern in range(1 << len(global_js)):
        seen: set[int] = set()
        for xl_pattern in range(1 << len(local_js)):
            x = 0
            for jj, j in enumerate(global_js):
                x |= ((xg_pattern >> jj) & 1) << j
            for jj, j in enumerate(local_js):
                x |= ((xl_pattern >> jj) & 1) << j
            out = int(perm[x])
            out_global = 0
            for jj, j in enumerate(global_js):
                out_global |= ((out >> j) & 1) << jj
            seen.add(out_global)
        if len(seen) != 1:
            return False
    return True


def _is_cluster_like(op) -> bool:
    """True for ClusterOp and AbsorbedClusterOp (lazy import, no cycle)."""
    if isinstance(op, ClusterOp):
        return True
    from repro.scheduling.absorption import AbsorbedClusterOp

    return isinstance(op, AbsorbedClusterOp)


def _op_gates(op) -> list[Gate]:
    """The original circuit gates an op covers, in application order."""
    if isinstance(op, ClusterOp):
        return list(op.gates)
    if isinstance(op, GateOp):
        return [op.gate]
    return op.gates_in_order()  # AbsorbedClusterOp


@dataclass
class Stage:
    """One communication-free span of the program."""

    global_qubits: frozenset[int]
    ops: list = field(default_factory=list)

    @property
    def cluster_ops(self) -> list:
        """The fused-kernel operations of this stage (plain or absorbed)."""
        return [op for op in self.ops if _is_cluster_like(op)]

    @property
    def num_clusters(self) -> int:
        """Number of k-qubit kernel invocations in this stage."""
        return len(self.cluster_ops)

    @property
    def num_gates(self) -> int:
        """Original gates covered by this stage (clustered + specialized)."""
        return sum(len(_op_gates(op)) for op in self.ops)


@dataclass
class Schedule:
    """A fully scheduled program for a circuit.

    ``num_swaps`` is the headline metric of Sec. 3.6.1 (Fig. 5's top
    panels): the number of global-to-local swap communication steps; the
    initial stage's layout is adopted for free at state initialisation.
    """

    circuit: Circuit
    local_qubits: int
    stages: list[Stage]
    initial_state: str = "zero"
    kmax: int | None = None

    @property
    def num_qubits(self) -> int:
        """Total qubits of the underlying circuit."""
        return self.circuit.num_qubits

    @property
    def num_swaps(self) -> int:
        """Global-to-local swaps needed to run the program."""
        return max(0, len(self.stages) - 1)

    @property
    def num_clusters(self) -> int:
        """Total k-qubit kernel invocations (the Table 1 quantity)."""
        return sum(stage.num_clusters for stage in self.stages)

    @property
    def num_specialized_gates(self) -> int:
        """Gates executed via global specialization rather than kernels.

        Absorbed diagonals (folded into cluster matrices) count too —
        they are specialized gates that additionally cost zero sweeps.
        """
        total = 0
        for stage in self.stages:
            for op in stage.ops:
                if isinstance(op, GateOp):
                    total += 1
                elif not isinstance(op, ClusterOp) and _is_cluster_like(op):
                    total += len(op.pre_diagonals) + len(op.post_diagonals)
        return total

    @property
    def num_absorbed_gates(self) -> int:
        """Diagonal gates folded into cluster matrices (zero sweeps)."""
        total = 0
        for stage in self.stages:
            for op in stage.ops:
                if not isinstance(op, (ClusterOp, GateOp)) and _is_cluster_like(op):
                    total += len(op.pre_diagonals) + len(op.post_diagonals)
        return total

    @property
    def initial_global_qubits(self) -> frozenset[int]:
        """Global set the state should be created with (free placement)."""
        if not self.stages:
            return frozenset()
        return self.stages[0].global_qubits

    def cluster_sizes(self) -> list[int]:
        """k of every cluster, in execution order."""
        return [
            op.num_qubits
            for stage in self.stages
            for op in stage.ops
            if _is_cluster_like(op)
        ]

    def gates_per_cluster(self) -> float:
        """Average original gates merged per cluster."""
        clusters = [
            op for stage in self.stages for op in stage.ops if _is_cluster_like(op)
        ]
        if not clusters:
            return 0.0
        return sum(c.num_gates for c in clusters) / len(clusters)

    def operations(self) -> Iterator:
        """The executable op stream: stage ops with SwapOps in between."""
        for i, stage in enumerate(self.stages):
            if i > 0:
                yield SwapOp(stage.global_qubits)
            yield from stage.ops

    def scheduled_gates(self) -> list[Gate]:
        """All original gates in scheduled execution order.

        Absorbed diagonals are emitted adjacent to their host cluster,
        which may reorder them relative to other *diagonal* gates on
        shared qubits — a commuting, physically identical reordering
        that :meth:`validate` accounts for.
        """
        out: list[Gate] = []
        for stage in self.stages:
            for op in stage.ops:
                out.extend(_op_gates(op))
        return out

    def validate(self) -> None:
        """Check structural invariants; raises on violation.

        * every circuit gate appears exactly once,
        * per-qubit gate order is preserved (up to reorderings of
          mutually commuting diagonal gates, which absorption performs),
        * cluster sizes respect ``kmax`` (when set),
        * every cluster touches only stage-local qubits,
        * specialized ops touching global qubits are diagonal or monomial,
        * absorbed diagonals' non-cluster qubits are stage-global.
        """
        rescheduled = Circuit(self.num_qubits, self.scheduled_gates())
        if len(rescheduled) != len(self.circuit):
            raise AssertionError(
                f"schedule covers {len(rescheduled)} gates, circuit has "
                f"{len(self.circuit)}"
            )
        if not _order_equivalent(self.circuit, rescheduled):
            raise AssertionError("schedule violates per-qubit gate order")
        for stage in self.stages:
            if len(stage.global_qubits) != self.num_qubits - self.local_qubits:
                raise AssertionError("stage global set has wrong size")
            for op in stage.ops:
                if isinstance(op, GateOp):
                    if not gate_specializable_under(op.gate, stage.global_qubits):
                        raise AssertionError(
                            f"non-specializable gate {op.gate!r} on global qubits"
                        )
                    continue
                if self.kmax is not None and op.num_qubits > self.kmax:
                    raise AssertionError(
                        f"cluster of size {op.num_qubits} exceeds kmax={self.kmax}"
                    )
                overlap = set(op.qubits) & stage.global_qubits
                if overlap:
                    raise AssertionError(
                        f"cluster touches global qubits {sorted(overlap)}"
                    )
                if not isinstance(op, ClusterOp):  # AbsorbedClusterOp
                    member = set(op.qubits)
                    for gate in list(op.pre_diagonals) + list(op.post_diagonals):
                        if not gate.is_diagonal:
                            raise AssertionError(
                                f"absorbed gate {gate!r} is not diagonal"
                            )
                        outside = set(gate.qubits) - member
                        if outside - stage.global_qubits:
                            raise AssertionError(
                                f"absorbed diagonal {gate!r} has local qubits "
                                f"outside its host cluster"
                            )

    def summary(self) -> dict:
        """Human-readable summary counters."""
        return {
            "num_qubits": self.num_qubits,
            "local_qubits": self.local_qubits,
            "num_gates": len(self.circuit),
            "num_stages": len(self.stages),
            "num_swaps": self.num_swaps,
            "num_clusters": self.num_clusters,
            "num_specialized_gates": self.num_specialized_gates,
            "num_absorbed_gates": self.num_absorbed_gates,
            "gates_per_cluster": round(self.gates_per_cluster(), 2),
            "kmax": self.kmax,
        }


def _order_equivalent(original: Circuit, rescheduled: Circuit) -> bool:
    """Per-qubit order equality, up to commuting-diagonal reorderings.

    Diagonal gates commute with each other, so on every qubit the two
    sequences must have identical *dense* gates in identical relative
    positions, with equal multisets of diagonal gates between consecutive
    dense anchors.
    """

    def canonical(circ: Circuit) -> list[list]:
        per_qubit: list[list] = [[] for _ in range(circ.num_qubits)]
        for gate in circ:
            key = (gate.name, gate.qubits, gate.matrix.tobytes())
            for q in gate.qubits:
                per_qubit[q].append((gate.is_diagonal, key))
        canon: list[list] = []
        for seq in per_qubit:
            blocks: list = []
            run: list = []
            for is_diag, key in seq:
                if is_diag:
                    run.append(key)
                else:
                    blocks.append(tuple(sorted(run)))
                    blocks.append(key)
                    run = []
            blocks.append(tuple(sorted(run)))
            canon.append(blocks)
        return canon

    return canonical(original) == canonical(rescheduled)
