"""Absorption of specialized diagonal gates into cluster matrices.

Sec. 3.5: a T gate on a global qubit "results in a global phase, which
can be absorbed into the next gate matrix to be applied"; a CZ with a
global qubit becomes a rank-conditional local Z that can likewise ride
along with a neighbouring cluster.  Absorbing them removes their state
sweeps entirely — the specialized gate costs *nothing* at execution time,
which is the assumption the Table-2 performance model makes.

:func:`absorb_diagonals` rewrites a stage's op list, folding each
diagonal :class:`GateOp` into the nearest cluster that covers its local
qubits (forward first — "the next gate matrix" — falling back to the
preceding cluster).  The result uses :class:`AbsorbedClusterOp`, whose
per-rank matrix is ``post_diag @ cluster @ pre_diag`` with the diagonal
factors evaluated at each rank's global bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gates.fusion import lift_gate_matrix
from repro.gates.gate import Gate
from repro.scheduling.program import ClusterOp, GateOp

__all__ = ["AbsorbedClusterOp", "absorb_diagonals"]


@dataclass(frozen=True)
class AbsorbedClusterOp:
    """A cluster with rank-conditional diagonal gates folded in.

    ``pre_diagonals`` apply before the cluster (circuit order), and
    ``post_diagonals`` after; every diagonal's *local* qubits are members
    of ``cluster.qubits`` while its remaining qubits are stage-global
    (their values come from the rank number at execution time).
    """

    cluster: ClusterOp
    pre_diagonals: tuple[Gate, ...] = field(default_factory=tuple)
    post_diagonals: tuple[Gate, ...] = field(default_factory=tuple)

    @property
    def qubits(self) -> tuple[int, ...]:
        """The cluster's qubit tuple (the kernel footprint)."""
        return self.cluster.qubits

    @property
    def num_qubits(self) -> int:
        """Cluster size k."""
        return len(self.cluster.qubits)

    @property
    def num_gates(self) -> int:
        """Original gates covered, including the absorbed diagonals."""
        return (
            self.cluster.num_gates
            + len(self.pre_diagonals)
            + len(self.post_diagonals)
        )

    def gates_in_order(self) -> list[Gate]:
        """All covered gates in application order."""
        return (
            list(self.pre_diagonals)
            + list(self.cluster.gates)
            + list(self.post_diagonals)
        )

    def _rank_diagonal(
        self, gate: Gate, rank_bits: dict[int, int]
    ) -> np.ndarray:
        """Lift one absorbed diagonal to the cluster space for one rank."""
        position_of = {q: i for i, q in enumerate(self.cluster.qubits)}
        local_js = [j for j, q in enumerate(gate.qubits) if q in position_of]
        global_js = [j for j, q in enumerate(gate.qubits) if q not in position_of]
        diag = np.diagonal(gate.matrix)
        xg = 0
        for j in global_js:
            xg |= rank_bits[gate.qubits[j]] << j
        k_l = len(local_js)
        sub = np.empty(1 << k_l, dtype=np.complex128)
        for xl in range(1 << k_l):
            x = xg
            for jj, j in enumerate(local_js):
                x |= ((xl >> jj) & 1) << j
            sub[xl] = diag[x]
        if not local_js:
            return sub[0] * np.eye(1 << self.num_qubits, dtype=np.complex128)
        positions = [position_of[gate.qubits[j]] for j in local_js]
        return lift_gate_matrix(np.diag(sub), positions, self.num_qubits)

    def matrix_for_rank(self, rank_bits: dict[int, int]) -> np.ndarray:
        """The fused per-rank matrix ``post @ cluster @ pre``.

        *rank_bits* maps each absorbed gate's global qubit to its bit
        value on the executing rank.
        """
        matrix = self.cluster.fused.matrix.copy()
        for gate in self.pre_diagonals:
            matrix = matrix @ self._rank_diagonal(gate, rank_bits)
        for gate in self.post_diagonals:
            matrix = self._rank_diagonal(gate, rank_bits) @ matrix
        return matrix

    def global_qubits_used(self) -> set[int]:
        """Global qubits whose rank bits the execution needs."""
        member = set(self.cluster.qubits)
        out: set[int] = set()
        for gate in list(self.pre_diagonals) + list(self.post_diagonals):
            out.update(q for q in gate.qubits if q not in member)
        return out

    def execute(self, state) -> None:
        """Apply the rank-conditional fused matrix on every shard."""
        state.apply_rank_conditional_cluster(self)


def _local_qubits(gate: Gate, global_set: frozenset[int]) -> list[int]:
    return [q for q in gate.qubits if q not in global_set]


def absorb_diagonals(ops: list, global_set: frozenset[int]) -> list:
    """Fold diagonal GateOps of one stage into neighbouring clusters.

    Only diagonal gates are folded (monomial non-diagonal gates keep
    their rank-renumbering path).  A gate is folded forward into the
    first subsequent op touching any of its local qubits, provided that
    op is a cluster containing *all* of them; otherwise backward into
    the last preceding such cluster; otherwise it stays standalone.
    Purely-global diagonals (per-rank phases) fold into the next cluster
    unconditionally.
    """
    result: list = []
    pending: list[tuple[Gate, list[int]]] = []  # awaiting a forward host

    def try_backward(gate: Gate, local: list[int]) -> bool:
        # Walk back to the most recent op sharing ANY qubit with the gate
        # (global qubits included: crossing a rank renumbering would
        # change the rank bits the diagonal evaluates).  Host only if it
        # is a cluster covering every local qubit of the gate.
        for i in range(len(result) - 1, -1, -1):
            op = result[i]
            if not set(gate.qubits) & set(_op_qubits(op)):
                continue
            if isinstance(op, (ClusterOp, AbsorbedClusterOp)) and set(
                local
            ) <= set(_op_qubits(op)):
                result[i] = _add_post(op, gate)
                return True
            return False
        return False

    for op in ops:
        if isinstance(op, GateOp) and op.gate.is_diagonal:
            local = _local_qubits(op.gate, global_set)
            pending.append((op.gate, local))
            continue
        if isinstance(op, ClusterOp):
            cluster_qubits = set(op.qubits)
            still_pending: list[tuple[Gate, list[int]]] = []
            pre: list[Gate] = []
            for gate, local in pending:
                if not local or set(local) <= cluster_qubits:
                    pre.append(gate)
                elif set(local) & cluster_qubits:
                    # Partially covered: ordering forces resolution now.
                    if not try_backward(gate, local):
                        result.append(GateOp(gate))
                else:
                    still_pending.append((gate, local))
            pending = still_pending
            result.append(
                AbsorbedClusterOp(cluster=op, pre_diagonals=tuple(pre))
                if pre
                else op
            )
            continue
        # Non-cluster op (e.g. a monomial GateOp): any pending diagonal
        # sharing ANY qubit with it — local or global — must resolve
        # before it executes.
        op_qubits = set(_op_qubits(op))
        still_pending = []
        for gate, local in pending:
            if set(gate.qubits) & op_qubits:
                if not try_backward(gate, local):
                    result.append(GateOp(gate))
            else:
                still_pending.append((gate, local))
        pending = still_pending
        result.append(op)

    for gate, local in pending:  # stage ended: fold backward or keep
        if not try_backward(gate, local):
            result.append(GateOp(gate))
    return result


def _op_qubits(op) -> tuple[int, ...]:
    if isinstance(op, (ClusterOp, AbsorbedClusterOp)):
        return op.qubits
    if isinstance(op, GateOp):
        return op.gate.qubits
    return ()


def _add_post(op, gate: Gate) -> AbsorbedClusterOp:
    if isinstance(op, ClusterOp):
        return AbsorbedClusterOp(cluster=op, post_diagonals=(gate,))
    return AbsorbedClusterOp(
        cluster=op.cluster,
        pre_diagonals=op.pre_diagonals,
        post_diagonals=op.post_diagonals + (gate,),
    )
