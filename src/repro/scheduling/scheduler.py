"""The full scheduling pipeline (Sec. 3.6.1 steps 1-3).

``schedule_circuit`` chains stage finding, per-stage clustering and the
swap-point adjustment into an executable :class:`Schedule`.  The whole
pre-computation runs in seconds on a laptop (the paper quotes 1-3 s) and
its output can be reused for every instance of the same circuit shape.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.circuit.circuit import Circuit
from repro.gates.gate import Gate
from repro.scheduling.clustering import cluster_stage_gates
from repro.scheduling.program import ClusterOp, Schedule, Stage
from repro.scheduling.stages import find_stages
from repro.telemetry.runtime import NULL_TELEMETRY, Telemetry

__all__ = ["SchedulerConfig", "schedule_circuit"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Tuning knobs of the scheduling pipeline.

    Parameters
    ----------
    local_qubits:
        ``l`` — amplitudes per node are ``2**l`` (Table 1 uses 30).
    kmax:
        Largest fused-kernel size (Table 1 sweeps 3/4/5; Sec. 4 finds 4-5
        optimal depending on the machine).
    specialize_global_diagonal:
        The Sec. 3.5 optimization; turning it off reproduces the "3 swaps
        instead of 2" ablation for the 45-qubit circuit.
    worst_case_dense:
        Stage finding treats every random single-qubit gate as dense (the
        paper's conservative default, enabling schedule reuse across
        instances).
    skip_initial_hadamards:
        Drop a leading all-qubit Hadamard layer and mark the schedule for
        ``"plus"`` initialisation (Sec. 3.6's shortcut).
    drop_final_diagonals:
        Remove trailing diagonal gates (the paper: "we do not simulate
        the final CZ gates as they only alter the phases ... not the
        probabilities").  Output *probabilities* are preserved exactly;
        amplitudes are not — leave off when amplitudes matter.
    adjust_swaps:
        Step 3: try to move each swap earlier to kill trailing small
        clusters, when this does not increase the swap count.
    absorb_diagonals:
        Fold specialized diagonal gates into neighbouring cluster
        matrices as rank-conditional factors (Sec. 3.5's "absorbed into
        the next gate matrix"), removing their state sweeps entirely.
    seed / stage_restarts / neighbor_samples / cluster_trials:
        Search-effort knobs for the stochastic parts.
    """

    local_qubits: int
    kmax: int = 5
    specialize_global_diagonal: bool = True
    worst_case_dense: bool = True
    skip_initial_hadamards: bool = True
    drop_final_diagonals: bool = False
    adjust_swaps: bool = True
    absorb_diagonals: bool = False
    seed: int = 0
    stage_restarts: int = 3
    neighbor_samples: int = 150
    cluster_trials: int = 3

    def __post_init__(self) -> None:
        if self.local_qubits < 1:
            raise ValueError(
                f"local_qubits must be >= 1, got {self.local_qubits}"
            )
        if self.kmax < 1:
            raise ValueError(f"kmax must be >= 1, got {self.kmax}")
        if self.kmax > self.local_qubits:
            raise ValueError(
                f"kmax={self.kmax} exceeds local_qubits="
                f"{self.local_qubits}: a fused cluster kernel must fit "
                f"inside the local partition (pass kmax<="
                f"{self.local_qubits})"
            )

    def with_(self, **kwargs) -> "SchedulerConfig":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)


def _strip_initial_hadamards(circuit: Circuit) -> tuple[Circuit, str]:
    """Remove a leading H-on-every-qubit layer if present."""
    n = circuit.num_qubits
    if len(circuit) < n:
        return circuit, "zero"
    head = circuit.gates[:n]
    covered = set()
    for gate in head:
        if gate.name != "h" or gate.num_qubits != 1:
            return circuit, "zero"
        covered.update(gate.qubits)
    if covered != set(range(n)):
        return circuit, "zero"
    return Circuit(n, circuit.gates[n:]), "plus"


def _adjust_swap_points(
    stage_data: list[tuple[frozenset[int], list[Gate]]],
    kmax: int,
    config: SchedulerConfig,
) -> list[tuple[frozenset[int], list[Gate], list]]:
    """Step 3: migrate trailing clusters across swap points when cheaper.

    For each stage boundary, repeatedly try moving the last cluster of the
    stage into the next stage (i.e. performing the swap earlier).  The
    move is legal when every migrated gate remains executable under the
    next stage's global set; it is kept when the total cluster count does
    not increase.
    """
    clustered: list[tuple[frozenset[int], list[Gate], list]] = []
    for i, (global_set, gates) in enumerate(stage_data):
        ops = cluster_stage_gates(
            gates, global_set, kmax, trials=config.cluster_trials, seed=config.seed + i
        )
        clustered.append((global_set, list(gates), ops))

    if not config.adjust_swaps:
        return clustered

    # Backward migration: a leading cluster of stage s+1 whose gates are
    # all executable under stage s's global set can move into stage s,
    # where it may fuse with s's trailing clusters.
    for i in range(len(clustered) - 1):
        while True:
            global_i, gates_i, ops_i = clustered[i]
            global_next, gates_next, ops_next = clustered[i + 1]
            leading = None
            for op in ops_next:
                if isinstance(op, ClusterOp):
                    leading = op
                    break
            if leading is None:
                break
            # Gates before `leading` in stage s+1 sharing its qubits
            # would be reordered: disallow.
            blocked = set()
            for op in ops_next:
                if op is leading:
                    break
                blocked.update(
                    op.qubits if isinstance(op, ClusterOp) else op.gate.qubits
                )
            if blocked & set(leading.qubits):
                break
            if not all(_executable_under(g, global_i) for g in leading.gates):
                break
            to_remove = list(leading.gates)
            new_gates_next = []
            for g in gates_next:
                for k, pending in enumerate(to_remove):
                    if pending is g:
                        to_remove.pop(k)
                        break
                else:
                    new_gates_next.append(g)
            if not new_gates_next:
                break  # never empty a stage
            new_gates_i = gates_i + list(leading.gates)
            new_ops_i = cluster_stage_gates(
                new_gates_i, global_i, kmax,
                trials=config.cluster_trials, seed=config.seed + i,
            )
            new_ops_next = cluster_stage_gates(
                new_gates_next, global_next, kmax,
                trials=config.cluster_trials, seed=config.seed + i + 1,
            )
            old_total = _count_clusters(ops_i) + _count_clusters(ops_next)
            new_total = _count_clusters(new_ops_i) + _count_clusters(new_ops_next)
            if new_total < old_total:
                clustered[i] = (global_i, new_gates_i, new_ops_i)
                clustered[i + 1] = (global_next, new_gates_next, new_ops_next)
            else:
                break

    for i in range(len(clustered) - 1):
        while True:
            global_i, gates_i, ops_i = clustered[i]
            global_next, gates_next, ops_next = clustered[i + 1]
            trailing = None
            trailing_pos = -1
            for pos in range(len(ops_i) - 1, -1, -1):
                if isinstance(ops_i[pos], ClusterOp):
                    trailing = ops_i[pos]
                    trailing_pos = pos
                    break
            if trailing is None:
                break
            # Ops after the trailing cluster (specialized GateOps) must
            # not touch its qubits: the move would reorder shared-qubit
            # gates across them.
            tail_conflict = any(
                set(op.gate.qubits) & set(trailing.qubits)
                for op in ops_i[trailing_pos + 1 :]
                if hasattr(op, "gate")
            )
            if tail_conflict:
                break
            movable = all(
                _executable_under(g, global_next) for g in trailing.gates
            )
            if not movable:
                break
            # Remove exactly the trailing cluster's gate occurrences
            # (positional, robust to repeated identical Gate objects).
            to_remove = list(trailing.gates)
            new_gates_i = []
            for g in gates_i:
                for k, pending in enumerate(to_remove):
                    if pending is g:
                        to_remove.pop(k)
                        break
                else:
                    new_gates_i.append(g)
            new_gates_next = list(trailing.gates) + gates_next
            new_ops_i = cluster_stage_gates(
                new_gates_i, global_i, kmax,
                trials=config.cluster_trials, seed=config.seed + i,
            )
            new_ops_next = cluster_stage_gates(
                new_gates_next, global_next, kmax,
                trials=config.cluster_trials, seed=config.seed + i + 1,
            )
            old_total = _count_clusters(ops_i) + _count_clusters(ops_next)
            new_total = _count_clusters(new_ops_i) + _count_clusters(new_ops_next)
            if new_total < old_total and new_gates_i:
                clustered[i] = (global_i, new_gates_i, new_ops_i)
                clustered[i + 1] = (global_next, new_gates_next, new_ops_next)
            else:
                break
    return clustered


def _executable_under(gate: Gate, global_set: frozenset[int]) -> bool:
    from repro.scheduling.program import gate_specializable_under

    return gate_specializable_under(gate, global_set)


def _count_clusters(ops) -> int:
    return sum(1 for op in ops if isinstance(op, ClusterOp))


def schedule_circuit(
    circuit: Circuit,
    config: SchedulerConfig,
    *,
    telemetry: Telemetry | None = None,
) -> Schedule:
    """Run the full pipeline and return an executable :class:`Schedule`.

    The returned schedule references the (possibly Hadamard-stripped)
    circuit it covers; ``Schedule.initial_state`` says how the state must
    be initialised (``"plus"`` when the H layer was absorbed).  An active
    *telemetry* bundle records one ``schedule``-kind span per pipeline
    phase plus summary gauges (stages, swaps, clusters).
    """
    if config.local_qubits > circuit.num_qubits:
        raise ValueError(
            f"local_qubits={config.local_qubits} exceeds the circuit's "
            f"{circuit.num_qubits} qubits: the local partition cannot "
            f"hold more qubits than exist (pass local_qubits<="
            f"{circuit.num_qubits})"
        )
    tel = telemetry if telemetry is not None else NULL_TELEMETRY
    tracer = tel.tracer
    with tracer.span(
        "schedule_circuit",
        kind="schedule",
        qubits=circuit.num_qubits,
        gates=len(circuit),
        kmax=config.kmax,
    ):
        work = circuit
        initial_state = "zero"
        if config.skip_initial_hadamards:
            work, initial_state = _strip_initial_hadamards(circuit)
        if config.drop_final_diagonals:
            from repro.circuit.transforms import drop_final_diagonal_gates

            work = drop_final_diagonal_gates(work)

        with tracer.span("find_stages", kind="schedule"):
            plan = find_stages(
                work,
                config.local_qubits,
                specialize=config.specialize_global_diagonal,
                worst_case_dense=config.worst_case_dense,
                seed=config.seed,
                restarts=config.stage_restarts,
                neighbor_samples=config.neighbor_samples,
            )
        stage_data = [
            (global_set, [work.gates[i] for i in gate_ids])
            for global_set, gate_ids in plan.stages
        ]
        with tracer.span("cluster_and_adjust", kind="schedule"):
            clustered = _adjust_swap_points(stage_data, config.kmax, config)

        if config.absorb_diagonals:
            from repro.scheduling.absorption import absorb_diagonals

            with tracer.span("absorb_diagonals", kind="schedule"):
                clustered = [
                    (gs, gates, absorb_diagonals(ops, gs))
                    for gs, gates, ops in clustered
                ]

        stages = [Stage(global_qubits=gs, ops=ops) for gs, _, ops in clustered]
        schedule = Schedule(
            circuit=work,
            local_qubits=config.local_qubits,
            stages=stages,
            initial_state=initial_state,
            kmax=config.kmax,
        )
        with tracer.span("validate", kind="schedule"):
            schedule.validate()
    if tel.metrics.enabled:
        tel.metrics.gauge("schedule.stages").set(len(schedule.stages))
        tel.metrics.gauge("schedule.swaps").set(schedule.num_swaps)
        tel.metrics.gauge("schedule.clusters").set(schedule.num_clusters)
    return schedule
