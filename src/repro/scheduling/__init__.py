"""Circuit scheduling and qubit mapping (Sec. 3.6 — the paper's core).

The pipeline transforms a circuit into a :class:`Schedule` — an alternating
program of *stages* (gate clusters executable without communication) and
*global-to-local swaps*:

1. :mod:`repro.scheduling.stages` — stage finding: choose which qubits are
   global per stage so the number of swaps is minimized (Sec. 3.6.1 step 1
   plus the "cheap search" refinement).
2. :mod:`repro.scheduling.clustering` — merge each stage's gates into
   fused k-qubit clusters, ``k <= kmax`` (step 2; Table 1).
3. :mod:`repro.scheduling.scheduler` — the full pipeline, including the
   step-3 swap-point adjustment that removes trailing small clusters.
4. :mod:`repro.scheduling.mapping` — the qubit -> bit-location heuristic
   dodging cache-associativity penalties (Sec. 3.6.2).
5. :mod:`repro.scheduling.baseline` — the per-gate execution model of
   Boixo et al. [5], used as the communication baseline in Fig. 5 and the
   speedup column of Table 2.
"""

from repro.scheduling.baseline import BaselineCommReport, baseline_global_gates
from repro.scheduling.clustering import cluster_stage_gates
from repro.scheduling.mapping import cluster_bit_mapping
from repro.scheduling.program import ClusterOp, GateOp, Schedule, Stage, SwapOp
from repro.scheduling.scheduler import SchedulerConfig, schedule_circuit
from repro.scheduling.stages import StagePlan, find_stages

__all__ = [
    "BaselineCommReport",
    "ClusterOp",
    "GateOp",
    "Schedule",
    "SchedulerConfig",
    "Stage",
    "StagePlan",
    "SwapOp",
    "baseline_global_gates",
    "cluster_bit_mapping",
    "cluster_stage_gates",
    "find_stages",
    "schedule_circuit",
]
