"""Stage finding: minimize the number of global-to-local swaps.

Sec. 3.6.1, step 1.  A *stage* is a maximal set of gates executable with a
fixed global-qubit assignment: dense gates need all their qubits local,
while diagonal gates are executable anywhere thanks to the Sec. 3.5
specialization.  Following the paper, the finder assumes the worst case in
which every *random single-qubit* gate is dense (so a T cannot be relied
on to specialize — schedules are reused across instances of the same
shape), while the structural CZ gates always specialize.

The global set for each stage is chosen by a greedy seed (qubits whose
first locality-requiring gate lies furthest in the future) improved by a
first-improvement hill climb over single qubit exchanges — the paper's
"cheap search algorithm".  A one-stage-completion check terminates the
loop as soon as every qubit still requiring locality fits into the local
set, which is what recovers the 36-qubit "2 swaps -> 1 swap" result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.circuit import Circuit
from repro.util.rng import ensure_rng

__all__ = ["StagePlan", "find_stages"]


@dataclass
class StagePlan:
    """Output of the stage finder: per stage, a global set and gate ids."""

    num_qubits: int
    local_qubits: int
    stages: list[tuple[frozenset[int], list[int]]] = field(default_factory=list)

    @property
    def num_swaps(self) -> int:
        """Global-to-local swaps (stage transitions)."""
        return max(0, len(self.stages) - 1)

    @property
    def num_stages(self) -> int:
        """Number of communication-free stages."""
        return len(self.stages)

    def all_gate_ids(self) -> list[int]:
        """Every scheduled gate id, in execution order."""
        out: list[int] = []
        for _, gate_ids in self.stages:
            out.extend(gate_ids)
        return out


class _CircuitView:
    """Preprocessed circuit arrays for fast stage evaluation."""

    def __init__(
        self, circuit: Circuit, *, specialize: bool, worst_case_dense: bool
    ) -> None:
        self.num_qubits = circuit.num_qubits
        self.qubits_of: list[tuple[int, ...]] = []
        #: True when the gate is executable regardless of qubit locality.
        self.anywhere: list[bool] = []
        for gate in circuit:
            self.qubits_of.append(gate.qubits)
            ok = False
            if specialize and gate.is_diagonal:
                # Worst-case mode: random single-qubit gates are assumed
                # dense (T may be an X^(1/2) in another instance); the
                # structural multi-qubit CZs always specialize.
                ok = gate.num_qubits >= 2 or not worst_case_dense
            self.anywhere.append(ok)
        self.per_qubit: list[list[int]] = [[] for _ in range(self.num_qubits)]
        #: position of each gate within per_qubit[first_qubit], for fast
        #: "already executed?" checks.
        self.anchor: list[tuple[int, int]] = []
        for gid, qubits in enumerate(self.qubits_of):
            q0 = qubits[0]
            self.anchor.append((q0, len(self.per_qubit[q0])))
            for q in qubits:
                self.per_qubit[q].append(gid)
        self.num_gates = len(self.qubits_of)

    def gate_remaining(self, gid: int, fronts: list[int]) -> bool:
        """True when gate *gid* has not yet been executed."""
        q0, pos = self.anchor[gid]
        return fronts[q0] <= pos

    def interaction_adjacency(self, fronts: list[int]) -> dict[int, set[int]]:
        """Qubit adjacency via the *remaining* multi-qubit gates."""
        adj: dict[int, set[int]] = {q: set() for q in range(self.num_qubits)}
        for gid, qubits in enumerate(self.qubits_of):
            if len(qubits) < 2 or not self.gate_remaining(gid, fronts):
                continue
            for a in qubits:
                for b in qubits:
                    if a != b:
                        adj[a].add(b)
        return adj

    # ------------------------------------------------------------------
    def max_executable(
        self, fronts: list[int], is_global: np.ndarray
    ) -> tuple[list[int], list[int]]:
        """Greedily execute every gate runnable under *is_global*.

        ``fronts[q]`` is the index into ``per_qubit[q]`` of the next
        pending gate on qubit ``q``.  Returns the executed gate ids
        (unsorted) and the advanced fronts.  Kahn-style worklist — O(gates)
        per call, the inner loop of the whole scheduler.
        """
        fronts = list(fronts)
        per_qubit = self.per_qubit
        qubits_of = self.qubits_of
        anywhere = self.anywhere
        executed: list[int] = []
        queue: list[int] = []
        for q in range(self.num_qubits):
            f = fronts[q]
            if f < len(per_qubit[q]):
                queue.append(per_qubit[q][f])
        while queue:
            gid = queue.pop()
            qubits = qubits_of[gid]
            ready = True
            for q in qubits:
                pq = per_qubit[q]
                if fronts[q] >= len(pq) or pq[fronts[q]] != gid:
                    ready = False
                    break
            if not ready:
                continue
            if not anywhere[gid]:
                blocked = False
                for q in qubits:
                    if is_global[q]:
                        blocked = True
                        break
                if blocked:
                    continue
            executed.append(gid)
            for q in qubits:
                fronts[q] += 1
                pq = per_qubit[q]
                if fronts[q] < len(pq):
                    queue.append(pq[fronts[q]])
        return executed, fronts

    def qubits_needing_local(self, fronts: list[int]) -> set[int]:
        """Qubits with a remaining gate that requires them to be local."""
        needing: set[int] = set()
        for q in range(self.num_qubits):
            for gid in self.per_qubit[q][fronts[q] :]:
                if not self.anywhere[gid]:
                    needing.add(q)
                    break
        return needing

    def first_block_distance(self, fronts: list[int]) -> list[float]:
        """Per qubit: #pending gates before its first locality-requiring one.

        ``inf`` when the qubit never needs to be local again — the safest
        qubits to keep global.
        """
        dist: list[float] = []
        for q in range(self.num_qubits):
            pending = self.per_qubit[q][fronts[q] :]
            d = float("inf")
            for i, gid in enumerate(pending):
                if not self.anywhere[gid]:
                    d = float(i)
                    break
            dist.append(d)
        return dist

    def remaining(self, fronts: list[int]) -> int:
        """Number of gate *slots* left (gate counted once per qubit)."""
        return sum(len(self.per_qubit[q]) - fronts[q] for q in range(self.num_qubits))

    def max_gate_local_requirement(self) -> int:
        """Largest number of local qubits any single gate requires."""
        worst = 0
        for gid, qubits in enumerate(self.qubits_of):
            if not self.anywhere[gid]:
                worst = max(worst, len(qubits))
        return worst


def _candidate_seeds(
    view: _CircuitView,
    fronts: list[int],
    dist: list[float],
    g: int,
    rng,
    count: int,
) -> list[set[int]]:
    """Initial global-set candidates for the stage search.

    Two families: (a) the g qubits whose first locality-requiring gate
    lies furthest ahead (the paper's "lowest-order / upper-bound" analogue
    generalised to gate distance); (b) BFS balls on the remaining
    interaction graph — compact frozen regions minimize how far blocking
    propagates through the circuit's light cone, which is what makes the
    one-swap 36-qubit schedule findable.
    """
    n = view.num_qubits
    seeds: list[set[int]] = []
    order = sorted(range(n), key=lambda q: (-dist[q], q))
    seeds.append(set(order[:g]))

    # Frontier rescue: a set that provably lets the earliest pending gate
    # run (its qubits forced local).  Without it the search can stall on
    # circuits whose whole frontier is two-qubit gates straddling every
    # candidate global set (seen with specialization disabled).
    frontier_qubits: set[int] = set()
    for q in range(n):
        f = fronts[q]
        if f < len(view.per_qubit[q]):
            gid = view.per_qubit[q][f]
            ready = all(
                view.per_qubit[p][fronts[p]] == gid
                for p in view.qubits_of[gid]
                if fronts[p] < len(view.per_qubit[p])
            )
            if ready:
                frontier_qubits.update(view.qubits_of[gid])
                break
    if frontier_qubits:
        rescue = [q for q in order if q not in frontier_qubits][:g]
        if len(rescue) == g and set(rescue) not in seeds:
            seeds.append(set(rescue))

    adj = view.interaction_adjacency(fronts)
    degrees = sorted(range(n), key=lambda q: (len(adj[q]), q))
    roots = degrees[: max(2, count)] + [
        int(x) for x in rng.choice(n, size=max(0, count - 2), replace=False)
    ]
    for root in roots:
        ball = [root]
        seen = {root}
        frontier = [root]
        while len(ball) < g and frontier:
            nxt: list[int] = []
            for q in frontier:
                neighbors = sorted(adj[q] - seen)
                rng.shuffle(neighbors)
                for nb in neighbors:
                    if len(ball) >= g:
                        break
                    seen.add(nb)
                    ball.append(nb)
                    nxt.append(nb)
            frontier = nxt
        if len(ball) < g:
            # Disconnected leftovers: pad with furthest-blocking qubits.
            for q in order:
                if len(ball) >= g:
                    break
                if q not in seen:
                    ball.append(q)
                    seen.add(q)
        seed = set(ball)
        if seed not in seeds:
            seeds.append(seed)
        if len(seeds) >= count + 1:
            break
    return seeds


def _mask(num_qubits: int, global_set) -> np.ndarray:
    mask = np.zeros(num_qubits, dtype=bool)
    for q in global_set:
        mask[q] = True
    return mask


def _hill_climb(
    view: _CircuitView,
    fronts: list[int],
    global_set: set[int],
    rng,
    *,
    local_qubits: int,
    neighbor_samples: int,
    max_passes: int,
) -> tuple[set[int], list[int], list[int]]:
    """First-improvement hill climb over single qubit exchanges.

    The objective is lexicographic: primarily, whether the *remainder*
    after this stage completes in a single further stage (this is what
    turns two swaps into one for the 36-qubit circuit); secondarily, the
    number of gates the stage executes.
    """
    n = view.num_qubits

    def score(mask: np.ndarray) -> tuple[tuple[int, int], list[int], list[int]]:
        cand_exec, cand_fronts = view.max_executable(fronts, mask)
        finishes = int(len(view.qubits_needing_local(cand_fronts)) <= local_qubits)
        return (finishes, len(cand_exec)), cand_exec, cand_fronts

    current = set(global_set)
    mask = _mask(n, current)
    best_key, executed, new_fronts = score(mask)
    for _ in range(max_passes):
        improved = False
        local = [q for q in range(n) if q not in current]
        pairs = [(go, li) for go in current for li in local]
        rng.shuffle(pairs)
        for go, li in pairs[:neighbor_samples]:
            if go not in current or li in current:
                continue  # stale after an accepted move
            mask[go], mask[li] = False, True
            cand_key, cand_exec, cand_fronts = score(mask)
            if cand_key > best_key:
                current.discard(go)
                current.add(li)
                best_key = cand_key
                executed, new_fronts = cand_exec, cand_fronts
                improved = True
            else:
                mask[go], mask[li] = True, False
        if not improved:
            break
    return current, executed, new_fronts


def find_stages(
    circuit: Circuit,
    local_qubits: int,
    *,
    specialize: bool = True,
    worst_case_dense: bool = True,
    seed: int = 0,
    restarts: int = 3,
    neighbor_samples: int = 150,
    max_passes: int = 4,
) -> StagePlan:
    """Partition *circuit* into communication-free stages.

    Returns a :class:`StagePlan` whose ``num_swaps`` is the Fig. 5 metric.
    The first stage's global set is adopted for free at initialisation.

    Parameters mirror :class:`repro.scheduling.SchedulerConfig`; see the
    module docstring for the algorithm.
    """
    n = circuit.num_qubits
    view = _CircuitView(
        circuit, specialize=specialize, worst_case_dense=worst_case_dense
    )
    plan = StagePlan(num_qubits=n, local_qubits=min(local_qubits, n))
    g = n - plan.local_qubits
    fronts = [0] * n
    rng = ensure_rng(seed)

    if g == 0:
        executed, fronts = view.max_executable(fronts, np.zeros(n, dtype=bool))
        plan.stages.append((frozenset(), sorted(executed)))
        return plan

    if view.max_gate_local_requirement() > plan.local_qubits:
        raise ValueError(
            "a gate requires more local qubits than available"
        )

    while view.remaining(fronts) > 0:
        needing = view.qubits_needing_local(fronts)
        if len(needing) <= plan.local_qubits:
            # Completion: park g qubits that never need locality again.
            candidates = sorted(
                (q for q in range(n) if q not in needing),
                key=lambda q: len(view.per_qubit[q]) - fronts[q],
            )
            final_global = frozenset(candidates[:g])
            executed, fronts = view.max_executable(fronts, _mask(n, final_global))
            plan.stages.append((final_global, sorted(executed)))
            if view.remaining(fronts) != 0:
                raise AssertionError("completion stage failed to drain circuit")
            break

        dist = view.first_block_distance(fronts)
        seeds = _candidate_seeds(view, fronts, dist, g, rng, max(1, restarts))
        best = None  # ((finishes_next, stage_size), set, executed, fronts)
        for seed_set in seeds:
            cand_set, executed, cand_fronts = _hill_climb(
                view,
                fronts,
                seed_set,
                rng,
                local_qubits=plan.local_qubits,
                neighbor_samples=neighbor_samples,
                max_passes=max_passes,
            )
            finishes_next = len(view.qubits_needing_local(cand_fronts)) <= plan.local_qubits
            key = (finishes_next, len(executed))
            if best is None or key > best[0]:
                best = (key, cand_set, executed, cand_fronts)
                if finishes_next:
                    break
        _, chosen_set, executed, fronts = best
        if not executed:
            raise RuntimeError(
                "stage finder made no progress; circuit may contain a gate "
                "larger than the local qubit count"
            )
        plan.stages.append((frozenset(chosen_set), sorted(executed)))

    return plan
