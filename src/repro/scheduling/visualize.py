"""ASCII rendering of schedules.

A schedule is easier to audit when you can see it: which qubits are
global per stage, where the swaps fall, and how gates pack into
clusters.  :func:`render_schedule` draws a per-qubit lane diagram::

    q  0 | [A][B]    | SWAP | [C]       |
    q  1 | [A]  t    | SWAP | [C][D]    |
    q  5 | g..g      | SWAP | [D]       |

Lane symbols: ``[X]`` cluster membership (letters cycle per stage),
``t`` a specialized diagonal gate, ``g`` the qubit is global for the
stage, ``SWAP`` a global-to-local swap boundary.
"""

from __future__ import annotations

from string import ascii_uppercase

from repro.scheduling.program import GateOp, Schedule

__all__ = ["render_schedule", "schedule_table"]


def _stage_lane_tokens(stage, num_qubits: int) -> list[list[str]]:
    """Per qubit, the ordered tokens of one stage."""
    lanes: list[list[str]] = [[] for _ in range(num_qubits)]
    labels = iter(ascii_uppercase)
    label_of_op: dict[int, str] = {}
    for op in stage.ops:
        if isinstance(op, GateOp):
            for q in op.gate.qubits:
                lanes[q].append("t" if op.gate.is_diagonal else "m")
            continue
        try:
            label = next(labels)
        except StopIteration:
            label = "#"
        label_of_op[id(op)] = label
        for q in op.qubits:
            lanes[q].append(f"[{label}]")
    for q in stage.global_qubits:
        if not lanes[q]:
            lanes[q] = ["g"]
    return lanes


def render_schedule(schedule: Schedule, *, max_width: int = 120) -> str:
    """Render *schedule* as a per-qubit lane diagram (see module docs)."""
    n = schedule.num_qubits
    stage_lanes = [
        _stage_lane_tokens(stage, n) for stage in schedule.stages
    ]
    stage_widths = [
        max((len("".join(lanes[q])) for q in range(n)), default=1)
        for lanes in stage_lanes
    ]
    lines = []
    header = "      "
    for i, width in enumerate(stage_widths):
        header += f" stage{i:<2}".ljust(width + 3)
        if i < len(stage_widths) - 1:
            header += " SWAP "
    lines.append(header.rstrip()[:max_width])
    for q in range(n):
        row = f"q {q:>3} |"
        for i, lanes in enumerate(stage_lanes):
            cell = "".join(lanes[q]) or (
                "g" if q in schedule.stages[i].global_qubits else "."
            )
            row += f" {cell.ljust(stage_widths[i])} |"
        lines.append(row[:max_width])
    lines.append("")
    lines.append(
        "legend: [X] cluster membership, t specialized diagonal gate, "
        "m specialized monomial gate, g global (idle), . idle"
    )
    return "\n".join(line[:max_width] for line in lines)


def schedule_table(schedule: Schedule) -> str:
    """A compact per-stage summary table."""
    lines = [
        f"{'stage':>5} {'globals':<24} {'clusters':>8} {'spec.':>6} {'gates':>6}"
    ]
    for i, stage in enumerate(schedule.stages):
        globals_str = ",".join(map(str, sorted(stage.global_qubits))) or "-"
        specialized = sum(1 for op in stage.ops if isinstance(op, GateOp))
        lines.append(
            f"{i:>5} {globals_str:<24} {stage.num_clusters:>8} "
            f"{specialized:>6} {stage.num_gates:>6}"
        )
    lines.append(
        f"total: {schedule.num_swaps} swaps, {schedule.num_clusters} clusters, "
        f"{len(schedule.circuit)} gates, kmax={schedule.kmax}"
    )
    return "\n".join(lines)
