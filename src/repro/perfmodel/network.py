"""Dragonfly network model (Cray Aries) for all-to-all exchanges.

Both Edison and Cori II use a Cray Aries dragonfly interconnect [9].
The model reduces it to one quantity: the *effective per-node all-to-all
bandwidth* as a function of node count, calibrated on the communication
times the paper reports:

* Cori II (Table 2): a 36-qubit run on 64 nodes spends 12.4 s moving one
  global-to-local swap of a 16 GiB shard -> ~1.39 GB/s/node; the 42-qubit
  run on 4096 nodes gives ~0.60 GB/s/node and the 45-qubit run on 8192
  nodes ~0.32 GB/s/node.
* Edison (Sec. 4.2.2): the 36-qubit 64-socket run implies
  ~0.53 GB/s/socket.

Between anchors the model interpolates log-log; outside, it extrapolates
with the nearest segment's slope.  Everything downstream (Table 2's
comm columns, Fig. 8's multi-node scaling, the speedup estimates) is a
prediction of this one calibrated curve plus the real swap counts and
shard sizes coming from the scheduler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["NetworkSpec", "ARIES_DRAGONFLY", "ARIES_EDISON"]


@dataclass(frozen=True)
class NetworkSpec:
    """Effective all-to-all bandwidth curve of an interconnect."""

    name: str
    #: (nodes, effective GB/s per node) anchors, sorted by nodes.
    anchors: tuple[tuple[int, float], ...] = field(default_factory=tuple)

    def effective_bw_gbs(self, nodes: int) -> float:
        """Per-node all-to-all bandwidth at *nodes* participants."""
        if nodes < 2:
            return float("inf")  # single node: no network traffic
        anchors = self.anchors
        if not anchors:
            raise ValueError(f"network {self.name} has no calibration anchors")
        if len(anchors) == 1:
            (n0, b0) = anchors[0]
            # Single anchor: assume a gentle dragonfly falloff.
            return b0 * (n0 / nodes) ** 0.2
        log_n = math.log(nodes)
        for (n1, b1), (n2, b2) in zip(anchors, anchors[1:]):
            if nodes <= n1:
                slope = (math.log(b2) - math.log(b1)) / (math.log(n2) - math.log(n1))
                return math.exp(math.log(b1) + slope * (log_n - math.log(n1)))
            if n1 <= nodes <= n2:
                slope = (math.log(b2) - math.log(b1)) / (math.log(n2) - math.log(n1))
                return math.exp(math.log(b1) + slope * (log_n - math.log(n1)))
        (n1, b1), (n2, b2) = anchors[-2], anchors[-1]
        slope = (math.log(b2) - math.log(b1)) / (math.log(n2) - math.log(n1))
        return math.exp(math.log(b2) + slope * (log_n - math.log(n2)))

    def alltoall_seconds(self, nodes: int, shard_bytes: float) -> float:
        """Time of one full global-to-local swap across *nodes* nodes.

        Every node ships all but its diagonal block:
        ``shard_bytes * (nodes - 1) / nodes`` at the effective bandwidth.
        """
        if nodes < 2:
            return 0.0
        useful = shard_bytes * (nodes - 1) / nodes
        return useful / (self.effective_bw_gbs(nodes) * 1e9)

    def global_gate_seconds(self, nodes: int, shard_bytes: float) -> float:
        """Time of one dense global gate executed individually (as in [5]).

        The paper (Fig. 5 caption): averaged over global qubits, a dense
        global gate takes about half the time of a full swap, thanks to
        the higher locality of low-order global exchanges.
        """
        return 0.5 * self.alltoall_seconds(nodes, shard_bytes)


#: Cori II Aries calibration (see module docstring).
ARIES_DRAGONFLY = NetworkSpec(
    name="Cray Aries dragonfly (Cori II)",
    anchors=((64, 1.39), (1024, 0.79), (4096, 0.60), (8192, 0.32)),
)

#: Edison Aries calibration (per socket: 2 MPI ranks per node).
ARIES_EDISON = NetworkSpec(
    name="Cray Aries dragonfly (Edison, per socket)",
    anchors=((64, 0.53),),
)
