"""Roofline model of the k-qubit kernels (Fig. 2).

The attainable performance at operational intensity ``I`` on a machine
with peak ``P`` and stream bandwidth ``B`` is ``min(P, I*B)``.  The
k-qubit kernels sit at ``I = (8*2**k - 2)/32`` FLOP/byte (Sec. 3.1):
0.4375 for 1-qubit kernels and ~3.94 for the 4-qubit kernels, which is
why fusing gates into clusters (Sec. 3.3) moves the application off the
bandwidth roof.

The optimization *steps* of Fig. 2 (1: lazy evaluation + MCDRAM blocking,
2: explicit vectorization / instruction reordering, 3: register blocking
+ matrix pre-computation) are modelled as fractions of the roof; the
fractions are calibrated against the GFLOPS values annotated in the
paper's plots (166.2 on Edison; 229.6 / 442.7 / 878.7 on KNL).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.machine import CORI_KNL_NODE, EDISON_SOCKET, MachineSpec
from repro.util.flops import operational_intensity

__all__ = [
    "attainable_gflops",
    "RooflinePoint",
    "KERNEL_OPT_STEPS",
    "roofline_table",
]


def attainable_gflops(
    oi: float, machine: MachineSpec, *, bw_gbs: float | None = None
) -> float:
    """Roofline bound ``min(peak, OI * bandwidth)`` in GFLOPS."""
    if oi <= 0:
        raise ValueError(f"operational intensity must be positive, got {oi}")
    bw = machine.best_bw_gbs if bw_gbs is None else bw_gbs
    return min(machine.peak_gflops, oi * bw)


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel/optimization-step point of Fig. 2."""

    label: str
    kernel_qubits: int
    oi: float
    roof_gflops: float
    modeled_gflops: float
    #: The paper's annotated measurement, when the plot gives one.
    paper_gflops: float | None = None


#: (label, kernel k, fraction-of-roof, {machine name: paper value}).
#: Fractions are calibrated on the KNL annotations and reused for Edison
#: where the paper gives no number (documented assumption).
KERNEL_OPT_STEPS: list[tuple[str, int, float, dict[str, float]]] = [
    (
        "1-qubit kernel (step 1: lazy evaluation, in-place)",
        1,
        1.0,
        {},
    ),
    (
        "4-qubit kernel (step 2: explicit AVX vectorization)",
        4,
        0.1268,
        {CORI_KNL_NODE.name: 229.6},
    ),
    (
        "4-qubit kernel (step 2: AVX512 + FMA reordering)",
        4,
        0.2444,
        {CORI_KNL_NODE.name: 442.7},
    ),
    (
        "4-qubit kernel (step 3: register blocking + matrix precompute)",
        4,
        0.485,
        {CORI_KNL_NODE.name: 878.7, EDISON_SOCKET.name: 166.2},
    ),
]


def roofline_table(machine: MachineSpec) -> list[RooflinePoint]:
    """Fig. 2's points for *machine*: per step, roof and modeled GFLOPS.

    On Edison the step-3 fraction is overridden by the annotated 166.2
    GFLOPS (0.81 of the roof — the narrower gap reflects that a 12-core
    Xeon needs far less parallel slack than a 68-core KNL).
    """
    points = []
    for label, k, fraction, annotated in KERNEL_OPT_STEPS:
        oi = operational_intensity(k)
        roof = attainable_gflops(oi, machine)
        paper = annotated.get(machine.name)
        modeled = paper if paper is not None else fraction * roof
        points.append(
            RooflinePoint(
                label=label,
                kernel_qubits=k,
                oi=oi,
                roof_gflops=roof,
                modeled_gflops=modeled,
                paper_gflops=paper,
            )
        )
    return points
