"""Single-node strong scaling of k-qubit kernels (Figs. 7 and 10).

The kernel's throughput on ``p`` cores is the roofline minimum of

* compute: ``p`` times the per-core k-qubit rate (vector efficiency grows
  with k — a 5-qubit kernel's 32-wide scalar products keep FMA pipes
  busy, a 1-qubit kernel's 2-element updates do not), and
* memory: the bandwidth ``p`` cores can draw, saturating at the socket's
  stream bandwidth (one core draws ``single_core_bw_fraction`` of it).

Speedup(p) = throughput(p) / throughput(1).  Memory-bound kernels
(k <= 3, Fig. 10) stop scaling once bandwidth saturates; the 5-qubit
kernel stays compute-bound and scales almost ideally — exactly the
shapes of Figs. 7 and 10 and the reason the paper pairs "k = 4 with one
MPI process per Edison socket".
"""

from __future__ import annotations

from repro.perfmodel.cache_model import _compute_ceiling
from repro.perfmodel.machine import MachineSpec
from repro.util.flops import operational_intensity

__all__ = ["kernel_gflops_at_cores", "strong_scaling_speedup"]


def kernel_gflops_at_cores(
    machine: MachineSpec, kernel_qubits: int, cores: int
) -> float:
    """Modeled GFLOPS of one k-qubit kernel invocation on *cores* cores."""
    if not 1 <= cores <= machine.cores:
        raise ValueError(
            f"cores must be in [1, {machine.cores}], got {cores}"
        )
    oi = operational_intensity(kernel_qubits)
    compute = _compute_ceiling(machine, kernel_qubits) * cores / machine.cores
    bw = machine.best_bw_gbs * min(
        1.0, cores * machine.single_core_bw_fraction
    )
    return min(compute, oi * bw)


def strong_scaling_speedup(
    machine: MachineSpec, kernel_qubits: int, cores: int
) -> float:
    """Speedup over one core for a k-qubit kernel (Fig. 7 / Fig. 10).

    Capped at *cores* (mixed memory/compute regimes in the model could
    otherwise report slightly super-linear values).
    """
    speedup = kernel_gflops_at_cores(
        machine, kernel_qubits, cores
    ) / kernel_gflops_at_cores(machine, kernel_qubits, 1)
    return min(speedup, float(cores))
