"""Machine descriptions with the paper's published constants.

All headline numbers are taken verbatim from Sec. 4 and the Fig. 2
annotations:

* **Edison socket**: 12-core Intel Xeon E5-2695 v2 (Ivy Bridge) at
  2.4 GHz; peak 230.4 GFLOPS (12 cores x 2.4 GHz x 8 DP FLOP/cycle with
  AVX); STREAM TRIAD 52 GB/s; 8-way set-associative L1/L2.
* **Cori II KNL node**: 68-core Intel Xeon Phi 7250 at 1.4 GHz; peak
  3133.4 GFLOPS (AVX512 + FMA); MCDRAM 460 GB/s (16 GiB), DRAM
  115.2 GB/s; L2 16-way but shared between 2 cores, so effectively 8-way
  per core (Fig. 6 caption).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "EDISON_SOCKET", "EDISON_NODE", "CORI_KNL_NODE"]


@dataclass(frozen=True)
class MachineSpec:
    """A compute node (or socket) as seen by the performance models."""

    name: str
    cores: int
    frequency_ghz: float
    peak_gflops: float
    #: Sustained main-memory bandwidth in GB/s (STREAM TRIAD).
    dram_bw_gbs: float
    #: High-bandwidth memory (MCDRAM) bandwidth, or None if absent.
    fast_mem_bw_gbs: float | None = None
    #: High-bandwidth memory capacity in GiB (None if absent).
    fast_mem_gib: float | None = None
    #: Effective last-level-cache set associativity per core (the paper's
    #: analysis: performance drops once 2**k exceeds this).
    effective_associativity: int = 8
    #: Fraction of total memory bandwidth one core can draw.  Controls
    #: where memory-bound kernels stop scaling (Figs. 7 and 10).
    single_core_bw_fraction: float = 0.25
    #: Vector efficiency of the k-qubit kernel as a function of k is
    #: modelled elsewhere; this is the ceiling for k >= 4 kernels.
    compute_efficiency: float = 0.5

    @property
    def per_core_gflops(self) -> float:
        """Peak GFLOPS of a single core."""
        return self.peak_gflops / self.cores

    @property
    def best_bw_gbs(self) -> float:
        """The bandwidth the state vector streams at when it fits the
        fastest memory level (MCDRAM when present, DRAM otherwise)."""
        return self.fast_mem_bw_gbs or self.dram_bw_gbs

    def stream_bw_gbs(self, state_bytes: float) -> float:
        """Bandwidth available for a state vector of *state_bytes*.

        On KNL, state vectors larger than MCDRAM fall back to DRAM; the
        paper (Sec. 4.1.2) models this as a 2x drop since the 4-qubit
        kernel sustains about half the MCDRAM bandwidth.
        """
        if self.fast_mem_bw_gbs is None or self.fast_mem_gib is None:
            return self.dram_bw_gbs
        if state_bytes <= self.fast_mem_gib * 2**30:
            return self.fast_mem_bw_gbs
        return self.dram_bw_gbs


EDISON_SOCKET = MachineSpec(
    name="Edison socket (Ivy Bridge E5-2695 v2)",
    cores=12,
    frequency_ghz=2.4,
    peak_gflops=230.4,
    dram_bw_gbs=52.0,
    effective_associativity=8,
    single_core_bw_fraction=0.22,
    compute_efficiency=0.72,
)

EDISON_NODE = MachineSpec(
    name="Edison node (2x Ivy Bridge E5-2695 v2)",
    cores=24,
    frequency_ghz=2.4,
    peak_gflops=460.8,
    dram_bw_gbs=104.0,
    effective_associativity=8,
    single_core_bw_fraction=0.11,
    compute_efficiency=0.72,
)

CORI_KNL_NODE = MachineSpec(
    name="Cori II KNL node (Xeon Phi 7250)",
    cores=68,
    frequency_ghz=1.4,
    peak_gflops=3133.4,
    dram_bw_gbs=115.2,
    fast_mem_bw_gbs=460.0,
    fast_mem_gib=16.0,
    effective_associativity=8,  # 16-way L2 shared between 2 cores
    single_core_bw_fraction=0.035,
    compute_efficiency=0.33,
)
