"""Cache-associativity penalty for high-order qubits (Figs. 6 and 9).

Sec. 3.3: applying a k-qubit kernel gathers ``2**k`` state entries that
are at least ``2**m`` apart (m = lowest target bit).  For large m all
``2**k`` cache lines map into the same set; once ``2**k`` exceeds the
last-level cache's effective associativity, lines evict each other and
every matrix-vector product re-loads its operands from memory.

The model: high-order kernels with ``2**k > ways`` lose bandwidth by
``(ways / 2**k) ** p`` with ``p = 1.5`` — one factor for the extra
reloads, half a factor for the loss of streaming (the prefetcher cannot
follow the thrashing pattern).  ``p`` is a fit; the resulting curves
match the paper's qualitative findings: no drop for k <= 3 on 8-way
caches, a visible drop at k = 4 and a much larger one at k = 5
(Sec. 4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.machine import MachineSpec
from repro.util.flops import operational_intensity

__all__ = ["CacheModel", "kernel_performance"]

#: Exponent of the associativity penalty (fit; see module docstring).
_PENALTY_EXPONENT = 1.5


@dataclass(frozen=True)
class CacheModel:
    """Bandwidth degradation of high-order k-qubit kernels."""

    machine: MachineSpec

    def bandwidth_factor(self, kernel_qubits: int, *, high_order: bool) -> float:
        """Multiplier on stream bandwidth for this kernel placement."""
        ways = self.machine.effective_associativity
        footprint = 1 << kernel_qubits
        if not high_order or footprint <= ways:
            return 1.0
        return (ways / footprint) ** _PENALTY_EXPONENT


def _compute_ceiling(machine: MachineSpec, kernel_qubits: int) -> float:
    """Achievable compute rate of a k-qubit kernel (GFLOPS).

    Vector efficiency grows with k (larger matrix-vector products keep
    the FMA pipes busy); the ceiling is the machine's calibrated
    compute efficiency at k = 5.
    """
    k_eff = min(kernel_qubits, 5) / 5.0
    return machine.peak_gflops * machine.compute_efficiency * (0.55 + 0.45 * k_eff)


def kernel_performance(
    machine: MachineSpec,
    kernel_qubits: int,
    *,
    high_order: bool = False,
    state_bytes: float | None = None,
) -> float:
    """Modeled GFLOPS of a k-qubit kernel on *machine* (Figs. 6 / 9).

    ``high_order=True`` places the kernel on the highest qubit indices,
    triggering the associativity penalty; ``state_bytes`` selects the
    memory level (MCDRAM vs DRAM on KNL).
    """
    oi = operational_intensity(kernel_qubits)
    bw = (
        machine.best_bw_gbs
        if state_bytes is None
        else machine.stream_bw_gbs(state_bytes)
    )
    bw *= CacheModel(machine).bandwidth_factor(kernel_qubits, high_order=high_order)
    return min(_compute_ceiling(machine, kernel_qubits), oi * bw)
