"""Performance models for the paper's evaluation hardware.

The repository runs on commodity hardware, so the Cori II / Edison
figures are reproduced through calibrated analytic models driven by the
*real* schedules, cluster counts and communication volumes produced by
the rest of the stack:

* :mod:`repro.perfmodel.machine` — machine descriptions with the paper's
  published constants (peaks, bandwidths, cache associativity).
* :mod:`repro.perfmodel.roofline` — the roofline model behind Fig. 2.
* :mod:`repro.perfmodel.cache_model` — the set-associativity penalty for
  high-order qubits (Figs. 6 and 9).
* :mod:`repro.perfmodel.scaling` — single-node strong scaling of k-qubit
  kernels over cores (Figs. 7 and 10).
* :mod:`repro.perfmodel.network` — the dragonfly all-to-all model behind
  the communication columns of Table 2 and Fig. 8.
* :mod:`repro.perfmodel.timeline` — end-to-end time-to-solution of a
  schedule on a machine (Table 2, Fig. 8, Sec. 4.2).
"""

from repro.perfmodel.cache_model import CacheModel, kernel_performance
from repro.perfmodel.machine import (
    CORI_KNL_NODE,
    EDISON_NODE,
    EDISON_SOCKET,
    MachineSpec,
)
from repro.perfmodel.network import ARIES_DRAGONFLY, NetworkSpec
from repro.perfmodel.roofline import (
    KERNEL_OPT_STEPS,
    RooflinePoint,
    attainable_gflops,
    roofline_table,
)
from repro.perfmodel.scaling import strong_scaling_speedup
from repro.perfmodel.timeline import (
    BaselineModel,
    TimelineModel,
    TimelineReport,
)

__all__ = [
    "ARIES_DRAGONFLY",
    "BaselineModel",
    "CORI_KNL_NODE",
    "CacheModel",
    "EDISON_NODE",
    "EDISON_SOCKET",
    "KERNEL_OPT_STEPS",
    "MachineSpec",
    "NetworkSpec",
    "RooflinePoint",
    "TimelineModel",
    "TimelineReport",
    "attainable_gflops",
    "kernel_performance",
    "roofline_table",
    "strong_scaling_speedup",
]
