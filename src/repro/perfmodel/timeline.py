"""End-to-end time-to-solution model (Table 2, Fig. 8, Sec. 4.2).

Combines the kernel, cache, and network models with the *actual*
schedules produced by :mod:`repro.scheduling`:

* **kernel time** — one state-vector sweep per cluster, at the memory
  bandwidth the state qualifies for.  On KNL, states larger than MCDRAM
  stream at half the MCDRAM bandwidth *if* MCDRAM blocking is effective,
  which requires long runs of low-order gates between swaps (Sec. 4.1.2
  explains why this fails for supremacy circuits at scale: too few
  gates per stage).  The effectiveness heuristic — blocking works when a
  stage contains at least 32 clusters — is calibrated so both the
  30-qubit single-node time and the 45-qubit GFLOPS emerge correctly.
* **specialized gates** — diagonal/monomial global gates are absorbed
  into neighbouring cluster matrices (Sec. 3.5: "absorbed into the next
  gate matrix"), so they cost no kernel sweeps.
* **communication** — one all-to-all per global-to-local swap, timed by
  the calibrated dragonfly model.

:class:`BaselineModel` prices the per-gate scheme of [5]: one two-vector
sweep per gate (1.5x the in-place traffic) and one half-swap-equivalent
exchange per dense global gate.  Table 2's speedup column is the ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import Circuit
from repro.perfmodel.cache_model import _compute_ceiling
from repro.perfmodel.machine import MachineSpec
from repro.perfmodel.network import NetworkSpec
from repro.scheduling.baseline import baseline_global_gates
from repro.scheduling.program import Schedule
from repro.util.flops import COMPLEX128_BYTES, gate_flops

__all__ = ["StagePrediction", "TimelineReport", "TimelineModel", "BaselineModel"]

#: Clusters per stage above which MCDRAM blocking is considered effective
#: (calibrated; see module docstring).
MCDRAM_BLOCKING_MIN_CLUSTERS = 32

#: Fraction of stream bandwidth the real kernels sustain (loop overheads,
#: TLB, imperfect prefetch).  Calibrated on the Table 2 kernel times.
KERNEL_BW_EFFICIENCY = 0.85


@dataclass(frozen=True)
class TimelineReport:
    """Predicted execution profile of one run."""

    nodes: int
    kernel_seconds: float
    comm_seconds: float
    total_flops: float

    @property
    def total_seconds(self) -> float:
        """Wall-clock time: kernels + communication."""
        return self.kernel_seconds + self.comm_seconds

    @property
    def comm_fraction(self) -> float:
        """Share of time in communication (Table 2's "Comm." column)."""
        total = self.total_seconds
        return self.comm_seconds / total if total > 0 else 0.0

    @property
    def pflops(self) -> float:
        """Aggregate sustained PFLOPS over the whole run."""
        total = self.total_seconds
        return self.total_flops / total / 1e15 if total > 0 else 0.0

    @property
    def gflops_per_node(self) -> float:
        """Per-node sustained GFLOPS."""
        return self.pflops * 1e6 / self.nodes


@dataclass(frozen=True)
class StagePrediction:
    """Model prediction for one stage of a schedule.

    ``comm_seconds``/``comm_bytes`` price the swap *entering* the stage
    (zero for stage 0, whose layout is adopted for free).  The byte count
    uses exactly the :class:`~repro.distributed.comm.CommStats`
    all-to-all formula, so a simulated run's measured bytes must match it
    to the byte — the join the predicted-vs-actual report exploits.
    """

    stage: int
    clusters: int
    kernel_seconds: float
    comm_seconds: float
    comm_bytes: int
    flops: float

    @property
    def total_seconds(self) -> float:
        """Predicted wall time attributed to this stage."""
        return self.kernel_seconds + self.comm_seconds


@dataclass(frozen=True)
class TimelineModel:
    """Prices a :class:`Schedule` on a machine + network pair."""

    machine: MachineSpec
    network: NetworkSpec
    kernel_bw_efficiency: float = KERNEL_BW_EFFICIENCY

    def _kernel_bandwidth(self, shard_bytes: float, clusters_per_stage: float) -> float:
        """Memory bandwidth one node's kernels stream at (GB/s)."""
        m = self.machine
        if m.fast_mem_bw_gbs is None or m.fast_mem_gib is None:
            return m.dram_bw_gbs * self.kernel_bw_efficiency
        if shard_bytes < m.fast_mem_gib * 2**30:
            bw = m.fast_mem_bw_gbs
        elif clusters_per_stage >= MCDRAM_BLOCKING_MIN_CLUSTERS:
            bw = m.fast_mem_bw_gbs / 2  # blocked streaming through MCDRAM
        else:
            bw = m.dram_bw_gbs
        return bw * self.kernel_bw_efficiency

    def predict(self, schedule: Schedule) -> TimelineReport:
        """Predict the execution profile of *schedule*.

        The node count is implied by the schedule's qubit split:
        ``2**(n - local_qubits)`` nodes with ``2**local_qubits``
        amplitudes each.
        """
        n = schedule.num_qubits
        l = schedule.local_qubits
        nodes = 1 << (n - l)
        shard_bytes = float((1 << l) * COMPLEX128_BYTES)
        num_stages = max(1, len(schedule.stages))
        clusters_per_stage = schedule.num_clusters / num_stages
        bw = self._kernel_bandwidth(shard_bytes, clusters_per_stage)

        kernel_seconds = 0.0
        total_flops = 0.0
        for k in schedule.cluster_sizes():
            sweep_bytes = 2.0 * shard_bytes  # in-place: one load + one store
            mem_time = sweep_bytes / (bw * 1e9)
            node_flops = gate_flops(l, k)
            compute_time = node_flops / (_compute_ceiling(self.machine, k) * 1e9)
            kernel_seconds += max(mem_time, compute_time)
            total_flops += float(gate_flops(n, k))

        comm_seconds = schedule.num_swaps * self.network.alltoall_seconds(
            nodes, shard_bytes
        )
        return TimelineReport(
            nodes=nodes,
            kernel_seconds=kernel_seconds,
            comm_seconds=comm_seconds,
            total_flops=total_flops,
        )

    def predict_stages(self, schedule: Schedule) -> list[StagePrediction]:
        """Per-stage breakdown of :meth:`predict`.

        Uses the same bandwidth qualification as the aggregate model, so
        the per-stage kernel/comm seconds sum exactly to the
        :class:`TimelineReport` totals.  Each stage's communication is
        the swap entering it; its byte count follows the
        ``shard_bytes * (2**q - 1) / 2**q`` all-to-all formula for the
        ``q`` qubits actually exchanged at that boundary.
        """
        n = schedule.num_qubits
        l = schedule.local_qubits
        nodes = 1 << (n - l)
        shard_bytes = float((1 << l) * COMPLEX128_BYTES)
        shard_bytes_int = (1 << l) * COMPLEX128_BYTES
        num_stages = max(1, len(schedule.stages))
        clusters_per_stage = schedule.num_clusters / num_stages
        bw = self._kernel_bandwidth(shard_bytes, clusters_per_stage)
        swap_seconds = self.network.alltoall_seconds(nodes, shard_bytes)

        out: list[StagePrediction] = []
        prev_global: frozenset[int] | None = None
        for index, stage in enumerate(schedule.stages):
            kernel_seconds = 0.0
            flops = 0.0
            for op in stage.cluster_ops:
                k = op.num_qubits
                mem_time = 2.0 * shard_bytes / (bw * 1e9)
                compute_time = gate_flops(l, k) / (
                    _compute_ceiling(self.machine, k) * 1e9
                )
                kernel_seconds += max(mem_time, compute_time)
                flops += float(gate_flops(n, k))
            comm_seconds = 0.0
            comm_bytes = 0
            if prev_global is not None:
                q = len(prev_global - stage.global_qubits)
                if q:
                    group_size = 1 << q
                    num_groups = 1 << (n - l - q)
                    moved_per_rank = (
                        shard_bytes_int * (group_size - 1) // group_size
                    )
                    comm_bytes = moved_per_rank * group_size * num_groups
                    comm_seconds = swap_seconds
            prev_global = stage.global_qubits
            out.append(
                StagePrediction(
                    stage=index,
                    clusters=stage.num_clusters,
                    kernel_seconds=kernel_seconds,
                    comm_seconds=comm_seconds,
                    comm_bytes=comm_bytes,
                    flops=flops,
                )
            )
        return out


@dataclass(frozen=True)
class BaselineModel:
    """Prices the per-gate execution scheme of Boixo et al. [5]."""

    machine: MachineSpec
    network: NetworkSpec
    kernel_bw_efficiency: float = KERNEL_BW_EFFICIENCY
    #: Two-vector traffic (load in, store out, read-for-ownership).
    traffic_factor: float = 1.5

    def predict(
        self,
        circuit: Circuit,
        local_qubits: int,
        *,
        worst_case: bool = False,
    ) -> TimelineReport:
        """Predict the per-gate baseline's profile for *circuit*.

        One sweep per gate (no fusion), streamed at the machine's
        non-blocked bandwidth; one half-swap exchange per dense global
        gate.
        """
        n = circuit.num_qubits
        l = min(local_qubits, n)
        nodes = 1 << (n - l)
        shard_bytes = float((1 << l) * COMPLEX128_BYTES)
        m = self.machine
        if (
            m.fast_mem_bw_gbs is not None
            and m.fast_mem_gib is not None
            and shard_bytes < m.fast_mem_gib * 2**30
        ):
            bw = m.fast_mem_bw_gbs
        else:
            bw = m.dram_bw_gbs
        bw *= self.kernel_bw_efficiency

        kernel_seconds = 0.0
        total_flops = 0.0
        for gate in circuit:
            k = gate.num_qubits
            sweep = self.traffic_factor * 2.0 * shard_bytes
            mem_time = sweep / (bw * 1e9)
            compute_time = gate_flops(l, k) / (
                _compute_ceiling(self.machine, k) * 1e9
            )
            kernel_seconds += max(mem_time, compute_time)
            total_flops += float(gate_flops(n, k, diagonal=gate.is_diagonal))

        report = baseline_global_gates(circuit, l, worst_case=worst_case)
        comm_seconds = report.global_gates * self.network.global_gate_seconds(
            nodes, shard_bytes
        )
        return TimelineReport(
            nodes=nodes,
            kernel_seconds=kernel_seconds,
            comm_seconds=comm_seconds,
            total_flops=total_flops,
        )
