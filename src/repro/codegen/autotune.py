"""Measurement-driven kernel selection (the paper's feedback loop)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.codegen.generator import generated_kernel
from repro.kernels.apply import (
    apply_diagonal_gate,
    apply_gate_indexed,
    apply_gate_reference,
)
from repro.kernels.split import SplitGateMatrix, apply_gate_split_real
from repro.util.rng import random_statevector

__all__ = ["TuneResult", "AutoTuner", "tune_plan"]

#: Blocking chunk sizes (in ``c`` substrings) tried for the indexed kernel.
_CHUNK_CANDIDATES: tuple[int | None, ...] = (1 << 12, 1 << 14, 1 << 16, None)


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one autotuning run."""

    strategy: str
    seconds_per_call: float
    timings: dict[str, float] = field(default_factory=dict)

    def speedup_over(self, strategy: str) -> float:
        """How much faster the winner is than *strategy*."""
        return self.timings[strategy] / self.seconds_per_call


class AutoTuner:
    """Benchmarks kernel strategies on real shapes and caches the winner.

    The candidates per (n, qubits):

    * ``indexed[chunk]`` — the gather/matmul/scatter kernel with several
      register/cache blocking sizes (the paper's block-size search),
      rebuilding its index tables on every call;
    * ``cached[chunk]`` — the same kernel with memoized gather tables
      from :data:`repro.kernels.GATHER_CACHE` (the plan-execution path);
    * ``generated`` — the specialized reshape/einsum source from
      :mod:`repro.codegen.generator`;
    * ``reference`` — the generic tensordot kernel.

    With ``diagonal=True`` the candidate pool switches to the diagonal
    fast path — ``diagonal`` (factor tensor rebuilt per call) vs
    ``fused-diagonal`` (memoized factor tensor, as executed for fused
    diagonal runs in a compiled plan) — since dense kernels and the
    per-amplitude multiply compute different transformations and must not
    compete in one pool.

    Tuning uses a scratch random state of the target size, so call it at
    a representative ``n`` (timings transfer across n at equal qubit
    *positions relative to n*, which is how :meth:`tune` buckets its
    cache).
    """

    def __init__(self, *, repeats: int = 3, seed: int = 0) -> None:
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.repeats = repeats
        self.seed = seed
        self._cache: dict[tuple[int, tuple[int, ...]], TuneResult] = {}

    # ------------------------------------------------------------------
    def _candidates(
        self, num_qubits: int, qubits: tuple[int, ...], *, diagonal: bool = False
    ) -> dict[str, Callable[[np.ndarray, np.ndarray], None]]:
        if diagonal:
            return {
                "diagonal": lambda state, matrix: apply_diagonal_gate(
                    state, np.diagonal(matrix), qubits, cache=None
                ),
                "fused-diagonal": lambda state, matrix: apply_diagonal_gate(
                    state, np.diagonal(matrix), qubits
                ),
            }
        cands: dict[str, Callable] = {}
        for chunk in _CHUNK_CANDIDATES:
            cands[f"indexed[chunk={chunk}]"] = (
                lambda state, matrix, _c=chunk: apply_gate_indexed(
                    state, matrix, qubits, chunk_size=_c, cache=None
                )
            )
            cands[f"cached[chunk={chunk}]"] = (
                lambda state, matrix, _c=chunk: apply_gate_indexed(
                    state, matrix, qubits, chunk_size=_c
                )
            )
        gen_fn, _src = generated_kernel(num_qubits, qubits)
        cands["generated"] = lambda state, matrix: gen_fn(state, matrix)
        cands["reference"] = lambda state, matrix: apply_gate_reference(
            state, matrix, qubits
        )
        # Sec. 3.2's FMA trick: the complex product as four real GEMMs on
        # pre-split matrices.
        split_cache: dict[int, SplitGateMatrix] = {}

        def split_kernel(state, matrix):
            key = id(matrix)
            if key not in split_cache:
                split_cache.clear()
                split_cache[key] = SplitGateMatrix(matrix)
            apply_gate_split_real(state, split_cache[key], qubits)

        cands["split-real"] = split_kernel
        return cands

    def tune(
        self, num_qubits: int, qubits: Sequence[int], *, diagonal: bool = False
    ) -> TuneResult:
        """Benchmark all strategies for this shape; cached per (n, qubits).

        ``diagonal`` selects the diagonal-only candidate pool (see class
        docstring) and is part of the cache key.
        """
        qubits = tuple(qubits)
        key = (num_qubits, qubits, diagonal)
        if key in self._cache:
            return self._cache[key]
        k = len(qubits)
        state = random_statevector(num_qubits, self.seed).copy()
        rng = np.random.default_rng(self.seed)
        if diagonal:
            # Unit-modulus phases: a representative CZ/T-style diagonal.
            matrix = np.diag(np.exp(2j * np.pi * rng.random(1 << k)))
        else:
            # Any unitary works for timing; use a random dense matrix.
            matrix = rng.standard_normal(
                (1 << k, 1 << k)
            ) + 1j * rng.standard_normal((1 << k, 1 << k))
        timings: dict[str, float] = {}
        for label, fn in self._candidates(
            num_qubits, qubits, diagonal=diagonal
        ).items():
            best = float("inf")
            for _ in range(self.repeats):
                start = time.perf_counter()
                fn(state, matrix)
                best = min(best, time.perf_counter() - start)
            timings[label] = best
        winner = min(timings, key=timings.get)
        result = TuneResult(
            strategy=winner, seconds_per_call=timings[winner], timings=timings
        )
        self._cache[key] = result
        return result

    def best_kernel(
        self, num_qubits: int, qubits: Sequence[int], *, diagonal: bool = False
    ) -> Callable[[np.ndarray, np.ndarray], None]:
        """The tuned kernel function for this shape (tunes on first use)."""
        qubits = tuple(qubits)
        result = self.tune(num_qubits, qubits, diagonal=diagonal)
        return self._candidates(num_qubits, qubits, diagonal=diagonal)[
            result.strategy
        ]

    def apply(
        self, state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
    ) -> np.ndarray:
        """Apply *matrix* using the tuned kernel (in place)."""
        num_qubits = int(np.log2(state.shape[0]))
        self.best_kernel(num_qubits, tuple(qubits))(state, matrix)
        return state


#: Best times within this fraction of the fastest candidate are treated
#: as a tie and broken toward the plan with the fewest ops (see
#: :func:`tune_plan`).
_TUNE_NOISE_FRACTION = 0.05


def tune_plan(
    schedule,
    state_factory: Callable[[], object],
    *,
    fusion_candidates: Sequence[int] = (0, 2, 4, 5, 6, 7),
    chunk_candidates: Sequence[int | None] = (None,),
    strategies: Sequence[str | None] = (None,),
    repeats: int = 2,
) -> TuneResult:
    """Joint plan-compile search: fusion depth x strategy x chunk size.

    Per-kernel tuning (:class:`AutoTuner`) cannot see fusion: merging two
    ops changes *which* kernels run, not just how each runs, so the
    refusion width has to be searched at whole-plan granularity.  Each
    grid point compiles the schedule under the corresponding
    :class:`~repro.plan.PlanConfig` (memoized on the schedule, so
    repeated timings share one compile) and times a full execution on a
    fresh state from *state_factory*; the best-of-*repeats* wall time is
    the candidate's score.

    The winner label — ``plan[kmax=6 strategy=auto chunk=4096]`` — is
    what ``benchmarks/bench_fusion.py`` persists to
    ``BENCH_fusion.json``, where
    :data:`repro.plan.DEFAULT_FUSION_KMAX` reads the ``kmax=`` field
    back at import time: exactly the mechanism that sources
    :data:`repro.kernels.DEFAULT_CHUNK` from the kernels-autotune
    record.

    Candidates whose best times land within :data:`_TUNE_NOISE_FRACTION`
    of the fastest are treated as a measurement-noise tie, broken toward
    the *fewest plan ops*: repeated in-process timings run against warm
    CPU caches, which systematically understate the fixed per-sweep
    state-streaming cost that makes fewer, wider sweeps win cold.
    """
    from repro.plan import PlanConfig, plan_for

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    timings: dict[str, float] = {}
    plan_ops: dict[str, int] = {}
    for kmax in fusion_candidates:
        for strategy in strategies:
            for chunk in chunk_candidates:
                config = PlanConfig(
                    chunk_size=chunk,
                    fusion_kmax=kmax,
                    kernel_strategy=strategy,
                )
                program = plan_for(schedule, config)
                label = (
                    f"plan[kmax={config.fusion_kmax} "
                    f"strategy={strategy or 'auto'} "
                    f"chunk={config.chunk_size}]"
                )
                best = float("inf")
                for _ in range(repeats):
                    state = state_factory()
                    start = time.perf_counter()
                    program.execute(state)
                    best = min(best, time.perf_counter() - start)
                timings[label] = best
                plan_ops[label] = len(program.ops)
    cutoff = min(timings.values()) * (1.0 + _TUNE_NOISE_FRACTION)
    winner = min(
        (label for label, seconds in timings.items() if seconds <= cutoff),
        key=lambda label: (plan_ops[label], timings[label]),
    )
    return TuneResult(
        strategy=winner, seconds_per_call=timings[winner], timings=timings
    )
