"""Automatic kernel code generation and autotuning.

The paper's kernels are produced by "automatic code generation and
optimization of compute kernels ... using an automatic code-generation /
benchmarking feedback loop" (abstract, Sec. 3.2), which also buys
performance portability.  The Python analogue:

* :mod:`repro.codegen.generator` — emits *specialized Python source* for
  a given (state size, qubit tuple) pair: a reshape/einsum kernel whose
  axis layout, einsum subscripts and reshape dimensions are constants
  baked into the generated code, plus specialized slicing kernels for
  single-qubit gates.  Sources are compiled with :func:`compile`/``exec``
  and cached.
* :mod:`repro.codegen.autotune` — benchmarks the generated variants
  against the generic indexed kernel (with several blocking chunk sizes)
  on the actual array shape, then caches the winner — the same
  measurement-driven selection loop the paper uses to pick block sizes.
  :func:`tune_plan` lifts the same loop to whole-plan granularity,
  searching fusion depth x kernel strategy x chunk size jointly (fusion
  changes *which* kernels run, so it can only be tuned end to end).
"""

from repro.codegen.autotune import AutoTuner, TuneResult, tune_plan
from repro.codegen.generator import (
    generate_einsum_kernel,
    generate_single_qubit_kernel,
    generated_kernel,
)

__all__ = [
    "AutoTuner",
    "TuneResult",
    "tune_plan",
    "generate_einsum_kernel",
    "generate_single_qubit_kernel",
    "generated_kernel",
]
